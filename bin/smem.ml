(* smem: command-line front end for the shared-memory characterization
   toolkit.  Subcommands:

     models     list the memory models
     check      check a litmus file against models
     corpus     run the built-in corpus (verdict matrix)
     explain    show witness views for a corpus test or file
     lattice    recompute the paper's Figure 5 empirically
     mutex      explore a mutual-exclusion algorithm on a machine
     simulate   machine reachability for a litmus test *)

module Model = Smem_core.Model
module History = Smem_core.History
module Witness = Smem_core.Witness
module Registry = Smem_core.Registry
module Test = Smem_litmus.Test
module Corpus = Smem_litmus.Corpus
module Cert = Smem_cert.Cert
module Kernel = Smem_cert.Kernel
module RunnerL = Smem_litmus.Runner
module Machines = Smem_machine.Machines
module Driver = Smem_machine.Driver
module Request = Smem_api.Request
module Response = Smem_api.Response
module Verdict = Smem_api.Verdict
module Wire = Smem_api.Wire
module Service = Smem_serve.Service
open Cmdliner

(* Model arguments go through {!Registry.resolve}: catalogue keys and
   family references ([pc-part(blocks=3)], [session(ryw,mr)]) both
   work, and the failure message carries the grammar or argument error
   — with a did-you-mean suggestion for near-misses. *)
let model_conv =
  let parse s =
    match Registry.resolve s with
    | Ok m -> Ok m
    | Error reason -> Error (`Msg reason)
  in
  Arg.conv (parse, fun ppf (m : Model.t) -> Format.pp_print_string ppf m.Model.key)

let machine_conv =
  let parse s =
    match Machines.find s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown machine %S (known: %s)" s
               (String.concat ", " (List.map Machines.name Machines.all))))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Machines.name m))

let models_arg =
  Arg.(
    value
    & opt_all model_conv []
    & info [ "m"; "model" ] ~docv:"MODEL" ~doc:"Model(s) to check against.")

let resolve_models = function [] -> Registry.all | ms -> ms

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the search (1 = serial; 0 = one per \
           recommended core).  Verdicts are identical for every value.")

let resolve_jobs = function
  | 0 -> Smem_parallel.Pool.default_jobs ()
  | n when n < 1 -> 1
  | n -> n

let default_cache_capacity = 65536

let cache_arg =
  Arg.(
    value & opt int default_cache_capacity
    & info [ "cache" ] ~docv:"N"
        ~doc:
          "Verdict cache capacity in entries, keyed by canonical history \
           digest x model (0 disables caching).  Equivalent histories — up \
           to processor permutation and location/value renaming — share \
           entries.")

(* Every verdict-producing subcommand goes through one Service: typed
   requests in, structured responses out; the CLI only parses arguments
   and renders. *)
let make_service ?(jobs = 1) capacity =
  let cache =
    if capacity > 0 then Some (Smem_cache.Cache.create ~capacity ())
    else None
  in
  Service.create ?cache ~jobs ()

let model_keys models =
  List.map (fun (m : Model.t) -> m.Model.key) models

let die_on_error (resp : Response.t) =
  match resp.Response.payload with
  | Response.Error { message; _ } ->
      Format.eprintf "error: %s@." message;
      exit 2
  | _ -> resp

let verdicts_of_response (resp : Response.t) =
  match (die_on_error resp).Response.payload with
  | Response.Verdicts vs -> vs
  | _ ->
      Format.eprintf "error: unexpected %s payload@." resp.Response.kind;
      exit 2

let disagreements vs = List.filter (fun v -> not (Verdict.agrees v)) vs

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print search statistics on exit: checks run, reads-from maps \
           and coherence orders enumerated, candidates pruned, \
           topological sorts, and wall time.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print every registered observability metric on exit (the \
           search counters plus pool, machine, fuzz and certificate \
           instrumentation), as a name/value table.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans of the instrumented hot paths (checks, rf/co \
           enumeration, toposorts, pool tasks, machine replays, fuzz \
           cases, kernel verifications) and write them to $(docv) as \
           Chrome trace-event JSON on exit; open it in chrome://tracing \
           or https://ui.perfetto.dev.")

(* The three observability switches travel together: reset the
   registry up front and report/flush on exit (several subcommands exit
   early on mismatches; at_exit covers every path). *)
type obs = { stats : bool; metrics : bool; trace : string option }

let obs_term =
  let combine stats metrics trace = { stats; metrics; trace } in
  Term.(const combine $ stats_arg $ metrics_arg $ trace_arg)

(* [serve] keeps stdout machine-clean (it is the protocol stream), so
   it reports on stderr instead. *)
let setup_obs ?(ppf = Format.std_formatter) o =
  Smem_core.Stats.reset ();
  (match o.trace with
  | Some file -> Smem_obs.Trace.start ~file ()
  | None -> ());
  at_exit (fun () ->
      if o.stats then
        Format.fprintf ppf "@.%a@." Smem_core.Stats.pp
          (Smem_core.Stats.snapshot ());
      if o.metrics then
        Format.fprintf ppf "@.%a@." Smem_obs.Metrics.pp
          (Smem_obs.Metrics.snapshot ());
      if o.stats || o.metrics then Format.pp_print_flush ppf ();
      Smem_obs.Trace.stop ())

(* The witness engine is process-global state (Model.witness_of
   dispatches on it), so the flag is plain setup like the observability
   switches: parse, install the solver, set the mode. *)
let engine_arg =
  Arg.(
    value
    & opt
        (enum [ ("enum", Model.Enum); ("solve", Model.Solve) ])
        Model.Enum
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Witness engine: $(b,enum) runs each model's own rf × co \
           enumeration; $(b,solve) routes every model with a declared \
           parameter quadruple through the constraint-propagation engine \
           (watched views, conflict-driven nogood learning), falling back \
           to enumeration for composed models.  Verdicts are identical — \
           $(b,smem fuzz --engines) checks exactly that.")

let setup_engine engine =
  Smem_solve.Solve.install ();
  Model.set_engine engine

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_test source =
  match Corpus.find source with
  | Some t -> Ok t
  | None ->
      if Sys.file_exists source then
        match Smem_litmus.Parse.test_of_string (read_file source) with
        | Ok t -> Ok t
        | Error e -> Error (Format.asprintf "%s: %a" source Smem_litmus.Parse.pp_error e)
      else Error (Printf.sprintf "no corpus test or file named %S" source)

let cert_format_arg =
  Arg.(
    value
    & opt (enum [ ("sexp", `Sexp); ("json", `Json) ]) `Sexp
    & info [ "cert-format" ] ~docv:"FMT"
        ~doc:"Certificate serialization: $(b,sexp) or $(b,json).")

let certify_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "certify" ] ~docv:"DIR"
        ~doc:
          "Emit a verdict certificate per test × model into $(docv) as \
           <test>.<model>.cert, re-validating each with the independent \
           kernel before writing.  Exits nonzero if the kernel rejects \
           one.  Models without a declared parameter triple are skipped.")

(* A test as a request source: corpus tests go by name, anything else
   travels inline in litmus syntax ({!Print} inverts {!Parse}). *)
let source_of_test (t : Test.t) =
  match Corpus.find t.Test.name with
  | Some _ -> Request.Named t.Test.name
  | None -> Request.Inline (Smem_litmus.Print.to_string t)

(* Certify every test × model cell into [dir] through the service (the
   kernel re-checks each certificate before it is answered).  Exits 1
   if the kernel rejects any (that would mean the engine and the kernel
   disagree — exactly the bug class certificates exist to catch). *)
let certify_all ~service ~dir ~format ~models tests =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let written = ref 0 and skipped = ref 0 and rejected = ref 0 in
  List.iter
    (fun (t : Test.t) ->
      List.iter
        (fun key ->
          let resp =
            Service.handle service
              (Request.Certify { test = source_of_test t; model = key; format })
          in
          match resp.Response.payload with
          | Response.Certificate { body; _ } ->
              let path =
                Filename.concat dir
                  (Printf.sprintf "%s.%s.cert" t.Test.name key)
              in
              let oc = open_out path in
              output_string oc body;
              close_out oc;
              incr written
          | Response.Error { code = Response.Uncertifiable; _ } ->
              incr skipped
          | Response.Error { message; _ } ->
              Format.eprintf "certificate REJECTED (%s under %s): %s@."
                t.Test.name key message;
              incr rejected
          | _ -> assert false)
        (model_keys models))
    tests;
  Format.printf
    "%d certificate(s) written to %s (%d cell(s) uncertifiable)@." !written
    dir !skipped;
  if !rejected > 0 then begin
    Format.eprintf "%d certificate(s) rejected by the kernel@." !rejected;
    exit 1
  end

(* An algorithm argument is a library name (bakery, peterson, dekker,
   naive, spinlock) or a path to a .smem program file. *)
let load_program name ~labeled ~n =
  match name with
  | "bakery" -> Ok (Smem_lang.Programs.bakery ~labeled ~n ())
  | "peterson" -> Ok (Smem_lang.Programs.peterson ~labeled ())
  | "dekker" -> Ok (Smem_lang.Programs.dekker ~labeled ())
  | "naive" -> Ok (Smem_lang.Programs.naive_flags ~labeled ())
  | "spinlock" -> Ok (Smem_lang.Programs.tas_spinlock ())
  | "spinlock-stress" -> Ok (Smem_lang.Programs.spinlock_stress ~nprocs:n ())
  | "mp" -> Ok (Smem_lang.Programs.mp ~labeled ())
  | "sb" -> Ok (Smem_lang.Programs.sb ())
  | "seqlock" -> Ok (Smem_lang.Programs.seqlock ~labeled ())
  | path when Sys.file_exists path -> (
      match Smem_lang.Parse_prog.program_of_string (read_file path) with
      | Ok p -> Ok p
      | Error e ->
          Error (Format.asprintf "%s: %a" path Smem_lang.Parse_prog.pp_error e))
  | other ->
      Error
        (Printf.sprintf
           "no algorithm or program file named %S (known: bakery, peterson,             dekker, naive, spinlock, spinlock-stress, mp, sb, seqlock)"
           other)

(* ------------------------------------------------------------------ *)

let models_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the catalogue as JSON — the payload of the smem-api/2 \
             [models] response, the same bytes a daemon client gets.")
  in
  let run json =
    let resp = die_on_error (Service.handle (Service.create ()) Request.Models) in
    match resp.Response.payload with
    | Response.Catalogue { models; families } ->
        if json then
          (match
             Smem_obs.Json.member "payload"
               (Wire.response_to_json ~proto:Wire.V2 resp)
           with
          | Some payload -> print_string (Smem_obs.Json.to_string payload)
          | None -> ())
        else begin
          List.iter
            (fun (m : Response.model_info) ->
              Format.printf "%-24s %-34s %s@." m.Response.key m.Response.name
                m.Response.description;
              match m.Response.params with
              | None -> ()
              | Some rows ->
                  Format.printf "%-24s   %s@." ""
                    (String.concat "; "
                       (List.map (fun (k, v) -> k ^ "=" ^ v) rows)))
            models;
          Format.printf "@.parameterized families (smem check -m \
                         'family(arg=value,...)'):@.";
          List.iter
            (fun (f : Response.family_info) ->
              Format.printf "  %-12s %s@." f.Response.family f.Response.doc;
              List.iter
                (fun (name, doc) -> Format.printf "    %-10s %s@." name doc)
                f.Response.params)
            families
        end
    | _ ->
        Format.eprintf "error: unexpected %s payload@." resp.Response.kind;
        exit 2
  in
  Cmd.v
    (Cmd.info "models"
       ~doc:
         "List the memory models: every catalogued model with its \
          parameter quadruple, and the parameterized families with \
          their argument domains.")
    Term.(const run $ json_arg)

let check_cmd =
  let source =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TEST" ~doc:"Corpus test name or litmus file.")
  in
  let check_one ~service ~models test =
    Format.printf "%s@." (Smem_litmus.Print.to_string test);
    let resp =
      Service.handle service
        (Request.Check { test = source_of_test test; models = model_keys models })
    in
    let vs = verdicts_of_response resp in
    List.iter (fun v -> Format.printf "%a@." Verdict.pp v) vs;
    List.length (disagreements vs)
  in
  let run source models obs engine certify format cache =
    setup_obs obs;
    setup_engine engine;
    let models = resolve_models models in
    let service = make_service cache in
    let emit tests =
      match certify with
      | Some dir -> certify_all ~service ~dir ~format ~models tests
      | None -> ()
    in
    if Sys.file_exists source && Sys.is_directory source then begin
      (* Check every .litmus file in the directory. *)
      let files =
        Sys.readdir source |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".litmus")
        |> List.sort compare
      in
      let mismatches = ref 0 in
      let checked = ref [] in
      List.iter
        (fun file ->
          let path = Filename.concat source file in
          match Smem_litmus.Parse.tests_of_string (read_file path) with
          | Error e ->
              Format.eprintf "%s: %a@." path Smem_litmus.Parse.pp_error e;
              incr mismatches
          | Ok tests ->
              List.iter
                (fun t ->
                  checked := t :: !checked;
                  mismatches := !mismatches + check_one ~service ~models t)
                tests)
        files;
      Format.printf "@.%d file(s), %d mismatch(es)@." (List.length files)
        !mismatches;
      emit (List.rev !checked);
      if !mismatches > 0 then exit 1
    end
    else
      match load_test source with
      | Error msg ->
          Format.eprintf "error: %s@." msg;
          exit 2
      | Ok test ->
          let bad = check_one ~service ~models test in
          emit [ test ];
          if bad > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Check a litmus test — or every .litmus file in a directory —           against memory models.")
    Term.(const run $ source $ models_arg $ obs_term $ engine_arg
          $ certify_arg $ cert_format_arg $ cache_arg)

let corpus_cmd =
  let run models jobs obs engine certify format cache =
    setup_obs obs;
    setup_engine engine;
    let models = resolve_models models in
    let service = make_service ~jobs:(resolve_jobs jobs) cache in
    let resp =
      Service.handle service (Request.Corpus { models = model_keys models })
    in
    let vs = verdicts_of_response resp in
    Verdict.pp_matrix Format.std_formatter vs;
    let bad = disagreements vs in
    Format.printf "%d verdicts, %d disagree with stated expectations@."
      (List.length vs) (List.length bad);
    (match certify with
    | Some dir -> certify_all ~service ~dir ~format ~models Corpus.all
    | None -> ());
    if bad <> [] then exit 1
  in
  let builtin_term =
    Term.(const run $ models_arg $ jobs_arg $ obs_term $ engine_arg
          $ certify_arg $ cert_format_arg $ cache_arg)
  in
  let generate_cmd =
    let seed =
      Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generation seed.")
    in
    let count =
      Arg.(
        value & opt int 1000
        & info [ "count" ] ~doc:"Number of deduplicated tests to generate.")
    in
    let max_ops =
      Arg.(
        value & opt int 12
        & info [ "max-ops" ]
            ~doc:
              "Largest history kept; longer executions contribute their \
               prefixes instead.")
    in
    let expect =
      Arg.(
        value & opt_all model_conv []
        & info [ "expect" ] ~docv:"MODEL"
            ~doc:
              "Stamp each test with this model's computed verdict as an \
               expect line (repeatable).")
    in
    let out =
      Arg.(
        value
        & opt (some string) None
        & info [ "o"; "out" ] ~docv:"FILE"
            ~doc:"Write the artifact to $(docv) instead of stdout.")
    in
    let run seed count max_ops expect out =
      let tests = Smem_corpus.Corpus.generate ~seed ~count ~max_ops ~expect () in
      let s = Smem_corpus.Corpus.to_string ~seed tests in
      match out with
      | None -> print_string s
      | Some path ->
          let oc = open_out_bin path in
          output_string oc s;
          close_out oc;
          Format.eprintf "%d tests -> %s@." (List.length tests) path
    in
    Cmd.v
      (Cmd.info "generate"
         ~doc:
           "Generate a deduplicated smem-corpus/1 litmus artifact from \
            program executions (deterministic in --seed).")
      Term.(const run $ seed $ count $ max_ops $ expect $ out)
  in
  Cmd.group ~default:builtin_term
    (Cmd.info "corpus"
       ~doc:"Run the built-in litmus corpus, or generate one from programs.")
    [ generate_cmd ]

let explain_cmd =
  let source =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TEST" ~doc:"Corpus test name or litmus file.")
  in
  let model =
    Arg.(
      required
      & opt (some model_conv) None
      & info [ "m"; "model" ] ~docv:"MODEL" ~doc:"Model to explain under.")
  in
  let run source (model : Model.t) obs engine =
    setup_obs obs;
    setup_engine engine;
    match load_test source with
    | Error msg ->
        Format.eprintf "error: %s@." msg;
        exit 2
    | Ok test -> (
        let h = test.Test.history in
        Format.printf "%a@.@." History.pp h;
        match Model.witness_of model h with
        | Some w ->
            Format.printf "allowed by %s; witness views:@.%a@." model.Model.name
              (Witness.pp h) w
        | None ->
            let rf_count, co_count = Smem_core.Diagnose.candidate_space h in
            Format.printf
              "forbidden by %s: no legal views exist (%d reads-from map(s) x \
               %d coherence order(s) exhausted).@."
              model.Model.name rf_count co_count;
            if model.Model.key = "sc" then
              match Smem_core.Diagnose.sc_cycle h with
              | Some cycle ->
                  Format.printf
                    "under the first candidate, the constraint graph cycles:@.%a"
                    (Smem_core.Diagnose.pp_cycle h) cycle
              | None -> ())
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show witness views (or their absence) for a test.")
    Term.(const run $ source $ model $ obs_term $ engine_arg)

let lattice_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit a Graphviz Hasse diagram.")
  in
  let run dot jobs obs engine =
    setup_obs obs;
    setup_engine engine;
    if dot then
      (* Graphviz needs the full matrix (witness histories included),
         so the dot path stays on the library API. *)
      print_string
        (Smem_lattice.Classify.to_dot
           (Smem_lattice.Classify.classify_scopes ~jobs:(resolve_jobs jobs)
              ~models:Registry.comparable
              Smem_lattice.Classify.standard_scopes))
    else
      let service = make_service ~jobs:(resolve_jobs jobs) 0 in
      let resp =
        Service.handle service (Request.Classify { models = []; scopes = [] })
      in
      match (die_on_error resp).Response.payload with
      | Response.Classification { total; allowed; relations; hasse } ->
          Format.printf "%d histories enumerated@." total;
          List.iter
            (fun (key, count) -> Format.printf "  %-12s allows %d@." key count)
            allowed;
          Format.printf "pairwise relations:@.";
          List.iter
            (fun (a, b, rel) -> Format.printf "  %-12s %-12s %s@." a b rel)
            (List.filter (fun (a, b, _) -> a < b) relations);
          Format.printf "Hasse edges (stronger -> weaker):@.";
          List.iter
            (fun (s, w) -> Format.printf "  %s -> %s@." s w)
            hasse
      | _ ->
          Format.eprintf "error: unexpected %s payload@." resp.Response.kind;
          exit 2
  in
  Cmd.v
    (Cmd.info "lattice"
       ~doc:"Recompute the containment lattice of the paper's Figure 5.")
    Term.(const run $ dot $ jobs_arg $ obs_term $ engine_arg)

let mutex_cmd =
  let alg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ALGORITHM"
          ~doc:"bakery | peterson | dekker | naive | spinlock | spinlock-stress | mp | sb | seqlock, or a .smem file.")
  in
  let machine =
    Arg.(
      required
      & opt (some machine_conv) None
      & info [ "machine" ] ~docv:"MACHINE" ~doc:"Machine to run on.")
  in
  let n = Arg.(value & opt int 2 & info [ "n" ] ~doc:"Processors (bakery only).") in
  let unlabeled =
    Arg.(
      value & flag
      & info [ "unlabeled" ]
          ~doc:"Mark no operation as synchronization (ordinary accesses only).")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Report the DPOR reduction counters (states, transitions, ample \
             hits, sleep and covering skips) after the verdict.")
  in
  let naive =
    Arg.(
      value & flag
      & info [ "naive" ]
          ~doc:
            "Also run the unreduced enumerator and report its transition \
             count next to the DPOR one (the differential baseline).")
  in
  let run alg machine n unlabeled stats naive =
    let program =
      match load_program alg ~labeled:(not unlabeled) ~n with
      | Ok p -> p
      | Error msg ->
          Format.eprintf "error: %s@." msg;
          exit 2
    in
    let verdict, dstats = Smem_lang.Explore.check_mutex_stats machine program in
    let report () =
      if stats then
        Format.printf "%a@." Smem_lang.Dpor.pp_stats dstats;
      if naive then begin
        let _, ntrans = Smem_lang.Explore.check_mutex_naive machine program in
        Format.printf
          "naive enumeration: %d transitions (%.1fx the reduced %d)@." ntrans
          (float_of_int ntrans
          /. float_of_int (max 1 dstats.Smem_lang.Dpor.transitions))
          dstats.Smem_lang.Dpor.transitions
      end
    in
    match verdict with
    | Smem_lang.Explore.Safe states ->
        Format.printf "mutual exclusion HOLDS (%d states explored)@." states;
        report ()
    | Smem_lang.Explore.Violation trace ->
        Format.printf "mutual exclusion VIOLATED; schedule:@.";
        List.iter (fun line -> Format.printf "  %s@." line) trace;
        report ();
        exit 1
    | Smem_lang.Explore.State_limit ->
        Format.printf "state limit reached (no violation found so far)@.";
        report ();
        exit 3
  in
  Cmd.v
    (Cmd.info "mutex"
       ~doc:
         "Exhaustively explore a mutual-exclusion algorithm on a machine \
          (sleep-set DPOR; --naive for the unreduced baseline).")
    Term.(const run $ alg $ machine $ n $ unlabeled $ stats $ naive)

let distinguish_cmd =
  let model_pos n doc =
    Arg.(required & pos n (some model_conv) None & info [] ~docv:"MODEL" ~doc)
  in
  let procs =
    Arg.(
      value
      & opt (list int) [ 2; 2 ]
      & info [ "procs" ] ~docv:"N,M,..."
          ~doc:"Operations per processor in the search scope.")
  in
  let nlocs = Arg.(value & opt int 2 & info [ "locs" ] ~doc:"Locations.") in
  let maxv = Arg.(value & opt int 1 & info [ "max-value" ] ~doc:"Largest written value.") in
  let labeled =
    Arg.(
      value & flag
      & info [ "labeled" ] ~doc:"Also enumerate labeled/ordinary attributes.")
  in
  let standard =
    Arg.(
      value & flag
      & info [ "standard-scopes" ]
          ~doc:"Search the Figure-5 sweep instead of a single custom scope.")
  in
  let run (a : Model.t) (b : Model.t) procs nlocs maxv labeled standard jobs
      obs =
    setup_obs obs;
    let scopes =
      if standard then []
      else [ { Request.procs; nlocs; max_value = maxv; labeled } ]
    in
    let service = make_service ~jobs:(resolve_jobs jobs) 0 in
    let resp =
      Service.handle service
        (Request.Distinguish { a = a.Model.key; b = b.Model.key; scopes })
    in
    match (die_on_error resp).Response.payload with
    | Response.Distinction { relation; witnesses } ->
        (match relation with
        | "equal" ->
            Format.printf
              "%s and %s allow the same histories over the searched scopes@."
              a.Model.key b.Model.key
        | "a-stronger" ->
            Format.printf "%s is strictly stronger than %s@." a.Model.key
              b.Model.key
        | "b-stronger" ->
            Format.printf "%s is strictly stronger than %s@." b.Model.key
              a.Model.key
        | _ ->
            Format.printf "%s and %s are incomparable@." a.Model.key
              b.Model.key);
        List.iter
          (fun (role, litmus) ->
            Format.printf "@.witness (%s):@.%s@." role (String.trim litmus))
          witnesses
    | _ ->
        Format.eprintf "error: unexpected %s payload@." resp.Response.kind;
        exit 2
  in
  Cmd.v
    (Cmd.info "distinguish"
       ~doc:
         "Search exhaustively for histories separating two memory models \
          (the paper's §4 comparisons, automated).")
    Term.(
      const run $ model_pos 0 "First model." $ model_pos 1 "Second model."
      $ procs $ nlocs $ maxv $ labeled $ standard $ jobs_arg $ obs_term)

let liveness_cmd =
  let alg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ALGORITHM"
          ~doc:"bakery | peterson | dekker | naive | spinlock | spinlock-stress | mp | sb | seqlock, or a .smem file.")
  in
  let machine =
    Arg.(
      required
      & opt (some machine_conv) None
      & info [ "machine" ] ~docv:"MACHINE" ~doc:"Machine to run on.")
  in
  let n = Arg.(value & opt int 2 & info [ "n" ] ~doc:"Processors (bakery only).") in
  let unlabeled =
    Arg.(
      value & flag
      & info [ "unlabeled" ] ~doc:"Mark no operation as synchronization.")
  in
  let run alg machine n unlabeled =
    let program =
      match load_program alg ~labeled:(not unlabeled) ~n with
      | Ok p -> p
      | Error msg ->
          Format.eprintf "error: %s@." msg;
          exit 2
    in
    match Smem_lang.Explore.check_deadlock_freedom machine program with
    | Smem_lang.Explore.Deadlock_free states ->
        Format.printf
          "deadlock-free: every reachable state can terminate (%d states)@."
          states
    | Smem_lang.Explore.Stuck k ->
        Format.printf "STUCK: %d reachable state(s) cannot reach termination@." k;
        exit 1
    | Smem_lang.Explore.Liveness_state_limit ->
        Format.printf "state limit reached@.";
        exit 3
  in
  Cmd.v
    (Cmd.info "liveness"
       ~doc:
         "Check deadlock freedom: from every reachable state some schedule           completes all threads (the §5 deadlock-freedom claim for the           Bakery algorithm under SC).")
    Term.(const run $ alg $ machine $ n $ unlabeled)

let races_cmd =
  let alg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ALGORITHM"
          ~doc:"bakery | peterson | dekker | naive | spinlock | spinlock-stress | mp | sb | seqlock, or a .smem file.")
  in
  let n = Arg.(value & opt int 2 & info [ "n" ] ~doc:"Processors (bakery only).") in
  let unlabeled =
    Arg.(
      value & flag
      & info [ "unlabeled" ] ~doc:"Mark no operation as synchronization.")
  in
  let run alg n unlabeled =
    let program =
      match load_program alg ~labeled:(not unlabeled) ~n with
      | Ok p -> p
      | Error msg ->
          Format.eprintf "error: %s@." msg;
          exit 2
    in
    match Smem_lang.Races.find_race program with
    | Smem_lang.Races.Race_free states ->
        Format.printf
          "race-free over all SC executions (%d states): properly labeled@."
          states
    | Smem_lang.Races.Race (a, b) ->
        Format.printf "DATA RACE: %a concurrent with %a@."
          Smem_lang.Races.pp_access a Smem_lang.Races.pp_access b;
        exit 1
    | Smem_lang.Races.State_limit ->
        Format.printf "state limit reached@.";
        exit 3
  in
  Cmd.v
    (Cmd.info "races"
       ~doc:
         "Detect data races over the SC executions of an algorithm (the           properly-labeled condition of the paper).")
    Term.(const run $ alg $ n $ unlabeled)

let simulate_cmd =
  let source =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TEST" ~doc:"Corpus test name or litmus file.")
  in
  let machine =
    Arg.(
      required
      & opt (some machine_conv) None
      & info [ "machine" ] ~docv:"MACHINE" ~doc:"Machine to replay on.")
  in
  let run source machine =
    match load_test source with
    | Error msg ->
        Format.eprintf "error: %s@." msg;
        exit 2
    | Ok test ->
        let h = test.Test.history in
        let program = Driver.program_of_history h in
        let ok = Driver.reachable machine program h in
        Format.printf "%a@.@." History.pp h;
        Format.printf "%s on the %s machine@."
          (if ok then "REACHABLE" else "unreachable")
          (Machines.name machine);
        if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Decide whether a machine can exhibit a litmus history.")
    Term.(const run $ source $ machine)

let custom_cmd =
  let module B = Smem_core.Build in
  let source =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TEST" ~doc:"Corpus test name or litmus file.")
  in
  let conv_of parse =
    Arg.conv
      ( (fun s -> Result.map_error (fun m -> `Msg m) (parse s)),
        fun ppf _ -> Format.pp_print_string ppf "<param>" )
  in
  let ops_arg =
    Arg.(
      value
      & opt (conv_of B.parse_operations) `Writes_of_others
      & info [ "ops" ] ~docv:"SET" ~doc:"View population: all | writes.")
  in
  let mutual_arg =
    Arg.(
      value
      & opt (conv_of B.parse_mutual) `No_agreement
      & info [ "mutual" ] ~docv:"REQ"
          ~doc:"Mutual consistency: none | coherence | global-writes | total.")
  in
  let order_arg =
    Arg.(
      value
      & opt_all (conv_of B.parse_ordering) []
      & info [ "order" ] ~docv:"ORD"
          ~doc:
            "Ordering requirement (repeatable; union): po | ppo | po-loc |              own-po | causal | semi-causal.")
  in
  let run source operations mutual orderings obs =
    setup_obs obs;
    let orderings = match orderings with [] -> [ `Po ] | os -> os in
    let model =
      try
        B.make ~key:"custom" ~name:"Custom Model" ~operations ~mutual ~orderings
          ()
      with Invalid_argument msg ->
        Format.eprintf "error: %s@." msg;
        exit 2
    in
    match load_test source with
    | Error msg ->
        Format.eprintf "error: %s@." msg;
        exit 2
    | Ok test -> (
        let h = test.Test.history in
        Format.printf "%a@.@.%s@." History.pp h model.Model.description;
        match Model.witness_of model h with
        | Some w ->
            Format.printf "allowed; witness views:@.%a@." (Witness.pp h) w
        | None -> Format.printf "forbidden: no legal views exist.@.")
  in
  Cmd.v
    (Cmd.info "custom"
       ~doc:
         "Check a test against a model composed from the paper's three           parameters (§2): view population, mutual consistency, ordering.")
    Term.(const run $ source $ ops_arg $ mutual_arg $ order_arg $ obs_term)

let outcomes_cmd =
  let source =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TEST" ~doc:"Corpus test name or litmus file.")
  in
  let machines_arg =
    Arg.(
      value
      & opt_all machine_conv []
      & info [ "machine" ] ~docv:"MACHINE"
          ~doc:"Machine(s) to enumerate (default: all).")
  in
  let run source machines =
    match load_test source with
    | Error msg ->
        Format.eprintf "error: %s@." msg;
        exit 2
    | Ok test ->
        let h = test.Test.history in
        let program = Driver.program_of_history h in
        let machines = match machines with [] -> Machines.all | ms -> ms in
        Format.printf "%a@.@." History.pp h;
        Format.printf
          "read-value outcomes (reads in processor-major order):@.";
        List.iter
          (fun m ->
            let outcomes = Driver.outcomes m program in
            Format.printf "  %-8s %d outcome(s): %s@." (Machines.name m)
              (List.length outcomes)
              (String.concat " "
                 (List.map
                    (fun o ->
                      "(" ^ String.concat "," (List.map string_of_int o) ^ ")")
                    outcomes)))
          machines
  in
  Cmd.v
    (Cmd.info "outcomes"
       ~doc:
         "Enumerate every read-value outcome each machine can produce for a           litmus test's program skeleton.")
    Term.(const run $ source $ machines_arg)

let generate_cmd =
  let count =
    Arg.(value & opt int 10 & info [ "count" ] ~doc:"Tests to generate.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let procs =
    Arg.(
      value
      & opt (list int) [ 2; 2 ]
      & info [ "procs" ] ~docv:"N,M,..." ~doc:"Operations per processor.")
  in
  let nlocs = Arg.(value & opt int 2 & info [ "locs" ] ~doc:"Locations.") in
  let maxv =
    Arg.(value & opt int 1 & info [ "max-value" ] ~doc:"Largest written value.")
  in
  let labeled =
    Arg.(value & flag & info [ "labeled" ] ~doc:"Randomize labeled/ordinary attributes.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR" ~doc:"Write one .litmus file per test there.")
  in
  let run count seed procs nlocs maxv labeled models out =
    let models = resolve_models models in
    let rand = Random.State.make [| seed |] in
    let loc_names = [| "x"; "y"; "z"; "u"; "v"; "w" |] in
    if nlocs > Array.length loc_names then begin
      Format.eprintf "error: at most %d locations@." (Array.length loc_names);
      exit 2
    end;
    let random_event () =
      let loc = loc_names.(Random.State.int rand nlocs) in
      let labeled = labeled && Random.State.bool rand in
      if Random.State.bool rand then
        History.write ~labeled loc (1 + Random.State.int rand maxv)
      else History.read ~labeled loc (Random.State.int rand (maxv + 1))
    in
    (match out with
    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
    | _ -> ());
    for i = 1 to count do
      let rows = List.map (fun n -> List.init n (fun _ -> random_event ())) procs in
      let h = History.make rows in
      let expect =
        List.map
          (fun (m : Model.t) ->
            ( m.Model.key,
              Smem_litmus.Test.verdict_of_bool (Model.check m h) ))
          models
      in
      let name = Printf.sprintf "gen%03d" i in
      let test =
        {
          Test.name;
          doc = Printf.sprintf "generated (seed %d)" seed;
          history = h;
          expectations = expect;
        }
      in
      let text = Smem_litmus.Print.to_string test in
      match out with
      | None -> print_string (text ^ "\n")
      | Some dir ->
          let path = Filename.concat dir (name ^ ".litmus") in
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          Format.printf "wrote %s@." path
    done
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:
         "Generate random litmus tests with verdicts computed by the           checkers (for corpus building and cross-tool fuzzing).")
    Term.(const run $ count $ seed $ procs $ nlocs $ maxv $ labeled $ models_arg $ out)

let fuzz_cmd =
  let module Gen = Smem_fuzz.Gen in
  let module Campaign = Smem_fuzz.Campaign in
  let module Oracle = Smem_fuzz.Oracle in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let count =
    Arg.(value & opt int 500 & info [ "count" ] ~doc:"Fuzz cases to run.")
  in
  let max_procs =
    Arg.(value & opt int 3 & info [ "max-procs" ] ~doc:"Largest processor count.")
  in
  let max_ops =
    Arg.(
      value & opt int 4
      & info [ "max-ops" ] ~doc:"Largest per-processor operation count.")
  in
  let nlocs = Arg.(value & opt int 3 & info [ "locs" ] ~doc:"Locations (max 6).") in
  let maxv =
    Arg.(value & opt int 2 & info [ "max-value" ] ~doc:"Largest written value.")
  in
  let labels =
    let mode_conv =
      Arg.enum [ ("no", `No); ("mixed", `Mixed); ("separated", `Separated) ]
    in
    Arg.(
      value & opt mode_conv `Separated
      & info [ "labels" ] ~docv:"MODE"
          ~doc:
            "Labeling discipline: no | mixed | separated.  $(b,separated) \
             dedicates the last location to synchronization (the \
             properly-labeled discipline of §5, which also enables the \
             conditional SC ⊆ RC_sc containment checks); $(b,mixed) draws \
             the attribute per access; $(b,no) generates ordinary accesses \
             only.")
  in
  let no_machines =
    Arg.(
      value & flag
      & info [ "no-machines" ]
          ~doc:"Skip machine replays (lattice oracle on random histories only).")
  in
  let lang_every =
    Arg.(
      value & opt int 3
      & info [ "lang-every" ] ~docv:"N"
          ~doc:
            "Run a random structured Smem_lang program on every machine each \
             N-th case (0 disables).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Write each shrunk counterexample there as a .litmus file.")
  in
  let corpus_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"FILE"
          ~doc:
            "Replay a generated corpus ($(b,smem corpus generate)) alongside \
             the random cases: case $(i,i) additionally runs corpus test \
             $(i,i) mod $(i,n) through the lattice oracle.")
  in
  let engines =
    Arg.(
      value & flag
      & info [ "engines" ]
          ~doc:
            "Differential-test the constraint-propagation engine against \
             each model's own enumeration on every history checked \
             (including machine traces and corpus replays); a verdict \
             disagreement is a shrunk, certificate-carrying violation.")
  in
  let run seed count jobs max_procs max_ops nlocs maxv labels no_machines
      lang_every engines out corpus_file cert_format obs =
    setup_obs obs;
    let corpus =
      match corpus_file with
      | None -> []
      | Some path -> (
          match Smem_corpus.Corpus.load path with
          | Ok tests -> tests
          | Error e ->
              Format.eprintf "error: %s: %s@." path e;
              exit 2)
    in
    if obs.stats then
      at_exit (fun () ->
          Format.printf "@.%a@." Smem_core.Stats.pp_fuzz
            (Smem_core.Stats.fuzz_snapshot ()));
    let config =
      {
        Gen.default with
        Gen.seed;
        count;
        jobs = resolve_jobs jobs;
        max_procs;
        max_ops;
        nlocs;
        max_value = maxv;
        labels;
        machines = not no_machines;
        lang_every;
        engines;
        corpus;
      }
    in
    let outcome =
      try Campaign.run config
      with Invalid_argument msg ->
        Format.eprintf "error: %s@." msg;
        exit 2
    in
    Format.printf "%a@." Campaign.pp_summary outcome;
    (match out with
    | Some dir when outcome.Campaign.violations <> [] ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iter
          (fun (v : Oracle.violation) ->
            let name = v.Oracle.test.Smem_litmus.Test.name in
            let path = Filename.concat dir (name ^ ".litmus") in
            let oc = open_out path in
            output_string oc (Smem_litmus.Print.to_string v.Oracle.test);
            close_out oc;
            Format.printf "wrote %s@." path;
            (* Each shrunk repro ships with its verdict certificate so the
               violation can be audited without re-running the fuzzer. *)
            match v.Oracle.certificate with
            | None -> ()
            | Some c ->
                let cpath = Filename.concat dir (name ^ ".cert") in
                let oc = open_out cpath in
                output_string oc (Cert.to_string ~format:cert_format c);
                close_out oc;
                Format.printf "wrote %s@." cpath)
          outcome.Campaign.violations
    | _ -> ());
    if outcome.Campaign.violations <> [] then begin
      List.iter
        (fun v -> Format.printf "@.%a@." Oracle.pp_violation v)
        outcome.Campaign.violations;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential conformance fuzzing: random histories and programs \
          cross-checked between every operational machine and its axiomatic \
          model (soundness) and across the Figure-5 containment lattice \
          (metamorphic); violations are shrunk to minimal replayable litmus \
          counterexamples.")
    Term.(
      const run $ seed $ count $ jobs_arg $ max_procs $ max_ops $ nlocs $ maxv
      $ labels $ no_machines $ lang_every $ engines $ out $ corpus_file
      $ cert_format_arg $ obs_term)

let cert_cmd =
  let files =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Certificate file(s) to verify.")
  in
  let max_ops =
    Arg.(
      value
      & opt int Kernel.default_max_search_ops
      & info [ "max-search-ops" ] ~docv:"N"
          ~doc:
            "Re-refute forbidden certificates on histories up to $(docv) \
             operations by independent enumeration (larger histories get \
             the frontier cross-check only).")
  in
  let run files max_ops obs =
    setup_obs obs;
    let failures = ref 0 in
    List.iter
      (fun file ->
        if not (Sys.file_exists file) then begin
          Format.eprintf "%s: no such file@." file;
          incr failures
        end
        else
          match Cert.parse (read_file file) with
          | Error msg ->
              Format.printf "%s: MALFORMED: %s@." file msg;
              incr failures
          | Ok c -> (
              match Kernel.verify ~max_search_ops:max_ops c with
              | Ok accepted ->
                  Format.printf "%s: %s — %s %s%s@." file
                    (match accepted with
                    | Kernel.Complete -> "OK"
                    | Kernel.Unverified_cap _ -> "OK [UNVERIFIED-CAP]")
                    (match c.Cert.verdict with
                    | Cert.Allowed -> "allowed"
                    | Cert.Forbidden -> "forbidden")
                    ("under " ^ c.Cert.model)
                    (match accepted with
                    | Kernel.Complete -> ""
                    | Kernel.Unverified_cap { nops; max_search_ops } ->
                        Printf.sprintf
                          " (frontier matched; refutation not re-enumerated: \
                           %d ops > --max-search-ops %d)"
                          nops max_search_ops)
              | Error reason ->
                  Format.printf "%s: REJECTED — %s@." file reason;
                  incr failures))
      files;
    if !failures > 0 then begin
      Format.eprintf "%d certificate(s) failed verification@." !failures;
      exit 1
    end
  in
  let verify =
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Re-validate verdict certificates with the independent checking \
            kernel (no search-engine code involved).")
      Term.(const run $ files $ max_ops $ obs_term)
  in
  Cmd.group
    (Cmd.info "cert" ~doc:"Audit verdict certificates offline.")
    [ verify ]

let serve_cmd =
  let module Daemon = Smem_serve.Daemon in
  let batch =
    Arg.(
      value & opt int 16
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Answer up to $(docv) request lines per batch, fanning the \
             batch across worker domains.  The reader never waits for a \
             batch to fill: it blocks for the first line only and drains \
             what is already pending, so request/response clients get \
             partial batches answered immediately and pipelining clients \
             get cross-request parallelism.")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"[HOST:]PORT"
          ~doc:
            "Listen for clients on a TCP socket (default host 127.0.0.1; \
             port 0 picks a free port, reported on stderr).  Repeatable \
             with $(b,--socket); with neither, the daemon speaks NDJSON \
             over stdin/stdout to a single client.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen for clients on a Unix-domain socket at $(docv) (an \
             existing file there is replaced; the socket is removed on \
             shutdown).")
  in
  let store =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:
            "Persist every computed verdict to an append-only log at \
             $(docv) (format smem-store/1) and replay it into the cache at \
             startup, so a restarted daemon answers known histories \
             without recomputing.  Requires a cache ($(b,--cache) > 0).")
  in
  let queue =
    Arg.(
      value & opt int 256
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Bound the shared work queue at $(docv) pending requests \
             (daemon mode).  A full queue blocks the submitting \
             connection — backpressure reaches the client through TCP \
             instead of growing the heap.")
  in
  let parse_tcp spec =
    match String.rindex_opt spec ':' with
    | None -> (
        match int_of_string_opt spec with
        | Some port -> Ok (Daemon.Tcp ("127.0.0.1", port))
        | None -> Error (Printf.sprintf "--tcp: not a port number: %S" spec))
    | Some i -> (
        let host = String.sub spec 0 i in
        let port = String.sub spec (i + 1) (String.length spec - i - 1) in
        match int_of_string_opt port with
        | Some port -> Ok (Daemon.Tcp (host, port))
        | None -> Error (Printf.sprintf "--tcp: not a port number: %S" port))
  in
  let run batch jobs cache store queue tcp socket obs engine =
    setup_obs ~ppf:Format.err_formatter obs;
    setup_engine engine;
    let jobs = resolve_jobs jobs in
    let cache =
      if cache > 0 then Some (Smem_cache.Cache.create ~capacity:cache ())
      else None
    in
    (if store <> None && cache = None then begin
       Format.eprintf "error: --store requires a cache (--cache > 0)@.";
       exit 2
     end);
    let endpoints =
      (match tcp with
      | None -> []
      | Some spec -> (
          match parse_tcp spec with
          | Ok e -> [ e ]
          | Error msg ->
              Format.eprintf "error: %s@." msg;
              exit 2))
      @ match socket with None -> [] | Some path -> [ Daemon.Unix_socket path ]
    in
    match endpoints with
    | [] ->
        (* stdio mode: one client over stdin/stdout, machine-clean stdout *)
        Smem_serve.Server.run ~batch ~jobs ?cache ?store stdin stdout
    | endpoints ->
        (* Block SIGINT/SIGTERM before spawning anything: every thread
           and domain inherits the mask, so the signal is only ever
           consumed by the [Thread.wait_signal] below — a handler would
           not run while the main thread is blocked joining threads. *)
        let (_ : int list) =
          Thread.sigmask Unix.SIG_BLOCK [ Sys.sigint; Sys.sigterm ]
        in
        let d =
          try Daemon.create ~batch ~jobs ~queue ?cache ?store ~endpoints ()
          with Unix.Unix_error (err, fn, arg) ->
            Format.eprintf "error: cannot listen: %s (%s %s)@."
              (Unix.error_message err) fn arg;
            exit 2
        in
        (match Daemon.store d with
        | Some s ->
            Format.eprintf "smem serve: store %s (%d verdict(s) replayed)@."
              (Smem_serve.Store.path s)
              (Smem_serve.Store.replayed s)
        | None -> ());
        List.iter
          (fun ep ->
            Format.eprintf "smem serve: listening on %a@." Daemon.pp_endpoint
              ep)
          (Daemon.addresses d);
        Daemon.start d;
        let signal = Thread.wait_signal [ Sys.sigint; Sys.sigterm ] in
        Format.eprintf "smem serve: %s, draining@."
          (if signal = Sys.sigint then "SIGINT" else "SIGTERM");
        Daemon.stop d;
        Daemon.wait d;
        Format.eprintf "smem serve: drained, bye@."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serving daemon: newline-delimited smem-api/2 JSON requests in \
          (smem-api/1 still accepted, answered in kind), \
          structured verdicts, certificates, classifications and \
          distinctions out (see docs/API.md).  With $(b,--tcp) and/or \
          $(b,--socket) it accepts any number of concurrent clients, \
          answering each in order over shared worker domains; without \
          either it serves one client over stdin/stdout.  Membership \
          verdicts are served from the canonicalizing cache when already \
          known, and survive restarts when $(b,--store) is given.")
    Term.(
      const run $ batch $ jobs_arg $ cache_arg $ store $ queue $ tcp $ socket
      $ obs_term $ engine_arg)

let sim_cmd =
  let module Sim = Smem_sim.Sim in
  let module Schedule = Smem_sim.Schedule in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let count =
    Arg.(
      value & opt int 200
      & info [ "count" ] ~doc:"Simulation cases to run (cases 1..N).")
  in
  let case =
    Arg.(
      value
      & opt (some int) None
      & info [ "case" ] ~docv:"N"
          ~doc:
            "Run only case $(docv) — replay mode, usually combined with \
             $(b,--schedule) from a failure report.")
  in
  let clients =
    Arg.(
      value
      & opt int Sim.default.Sim.clients
      & info [ "clients" ] ~docv:"N"
          ~doc:"Simulated client connections per case.")
  in
  let requests =
    Arg.(
      value
      & opt int Sim.default.Sim.requests_per_client
      & info [ "requests" ] ~docv:"N"
          ~doc:"Scripted requests per connection.")
  in
  let batch =
    Arg.(
      value
      & opt int Sim.default.Sim.batch
      & info [ "batch" ] ~docv:"N" ~doc:"Serving batch bound under test.")
  in
  let steps =
    Arg.(
      value
      & opt int Sim.default.Sim.steps
      & info [ "steps" ] ~docv:"N"
          ~doc:"Schedule events drawn per generated case.")
  in
  let capacity =
    Arg.(
      value
      & opt int Sim.default.Sim.cache_capacity
      & info [ "cache" ] ~docv:"N"
          ~doc:
            "Verdict cache capacity.  Deliberately small by default so \
             eviction storms actually evict live entries.")
  in
  let faults =
    Arg.(
      value & opt string "default"
      & info [ "faults" ] ~docv:"LIST"
          ~doc:
            "Comma-separated fault injections to enable, or $(b,default) \
             (every benign fault), $(b,all) (benign plus the deliberate \
             bug faults), $(b,none).  Known faults: worker-crash, \
             evict-storm, malformed-frame, truncated-frame, slow-reader, \
             oversized-batch, store-kill, bug-cache-corrupt.")
  in
  let no_store =
    Arg.(
      value & flag
      & info [ "no-store" ]
          ~doc:
            "Run without a persistent verdict store (store faults become \
             no-ops).")
  in
  let schedule =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"EVENTS"
          ~doc:
            "Execute exactly this schedule instead of generating one — \
             the token list printed with every failure (d<conn>:<bytes>, \
             s<conn>, x<conn>, crash, storm, kill, corrupt).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write every minimized failing schedule to $(docv), one \
             replay command per failure.")
  in
  let log_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:
            "Write the full event log of every case to $(docv).  Two runs \
             with the same seed and configuration produce byte-identical \
             files — CI diffs them as the determinism check.")
  in
  let run seed count case clients requests batch steps capacity faults no_store
      schedule out log_file jobs obs =
    setup_obs obs;
    let faults =
      match faults with
      | "default" -> Schedule.default_faults
      | "all" -> Schedule.all_faults
      | "none" -> []
      | s -> (
          match Schedule.faults_of_string s with
          | Ok fs -> fs
          | Error msg ->
              Format.eprintf "error: %s@." msg;
              exit 2)
    in
    let schedule =
      Option.map
        (fun s ->
          match Schedule.of_string s with
          | Ok e -> e
          | Error msg ->
              Format.eprintf "error: --schedule: %s@." msg;
              exit 2)
        schedule
    in
    let cfg =
      {
        Sim.clients;
        requests_per_client = requests;
        batch;
        cache_capacity = capacity;
        steps;
        faults;
        store = not no_store;
      }
    in
    let cases =
      match case with
      | Some n -> [ n ]
      | None -> List.init (max 0 count) (fun i -> i + 1)
    in
    let outcome = Sim.run ~jobs:(resolve_jobs jobs) ?schedule cfg ~seed ~cases in
    (match log_file with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        List.iter
          (fun (r : Sim.report) ->
            Printf.fprintf oc "=== case %d digest %s\n%s" r.Sim.case
              r.Sim.digest r.Sim.log)
          outcome.Sim.reports;
        close_out oc;
        Format.printf "wrote %s@." file);
    Format.printf
      "sim: seed %d, %d case(s), %d event(s), %d response(s), %d failure(s)@."
      seed outcome.Sim.cases outcome.Sim.events outcome.Sim.responses
      (List.length outcome.Sim.failures);
    (match out with
    | Some file when outcome.Sim.failures <> [] ->
        let oc = open_out file in
        List.iter
          (fun (f : Sim.failure) ->
            Printf.fprintf oc "# case %d: %s\n%s\n" f.Sim.case f.Sim.reason
              (Sim.replay_command cfg f))
          outcome.Sim.failures;
        close_out oc;
        Format.printf "wrote %s@." file
    | _ -> ());
    if outcome.Sim.failures <> [] then begin
      List.iter
        (fun (f : Sim.failure) ->
          Format.printf
            "@.case %d FAILED: %s@.  schedule (%d event(s), %d shrink \
             step(s)): %s@.  replay: %s@."
            f.Sim.case f.Sim.reason
            (List.length f.Sim.schedule)
            f.Sim.shrink_steps
            (Schedule.to_string f.Sim.schedule)
            (Sim.replay_command cfg f))
        outcome.Sim.failures;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Deterministic simulation of the serving stack: seeded schedules \
          drive the real server loop, cache and store over in-memory \
          channels, an inline scheduler and a virtual clock, injecting \
          worker crashes, eviction storms, malformed and truncated frames, \
          slow readers, oversized batches and mid-append store kills; \
          invariants are checked after every event and failing schedules \
          are shrunk to minimal replayable repros.")
    Term.(
      const run $ seed $ count $ case $ clients $ requests $ batch $ steps
      $ capacity $ faults $ no_store $ schedule $ out $ log_file $ jobs_arg
      $ obs_term)

let api_cmd =
  let models_opt =
    Arg.(
      value
      & opt_all string []
      & info [ "m"; "model" ] ~docv:"MODEL"
          ~doc:"Model key(s) to request (default: all).")
  in
  let corpus_requests =
    (* One Check request line per corpus test: the input half of the CI
       serve smoke test, and a convenient seed for manual sessions.
       With --corpus the tests come from a generated smem-corpus/1
       artifact and travel inline (the daemon has no registry of
       generated names). *)
    let corpus_file =
      Arg.(
        value
        & opt (some string) None
        & info [ "corpus" ] ~docv:"FILE"
            ~doc:
              "Read tests from a generated smem-corpus/1 artifact \
               ($(b,smem corpus generate)) instead of the built-in corpus.")
    in
    let run models corpus_file =
      match corpus_file with
      | None ->
          List.iteri
            (fun i (t : Test.t) ->
              print_string
                (Wire.request_line ~id:(i + 1)
                   (Request.Check { test = Request.Named t.Test.name; models })))
            Corpus.all
      | Some path -> (
          match Smem_corpus.Corpus.load path with
          | Error msg ->
              Format.eprintf "error: %s@." msg;
              exit 2
          | Ok tests ->
              List.iteri
                (fun i (t : Test.t) ->
                  print_string
                    (Wire.request_line ~id:(i + 1)
                       (Request.Check
                          {
                            test =
                              Request.Inline (Smem_litmus.Print.to_string t);
                            models;
                          })))
                tests)
    in
    Cmd.v
      (Cmd.info "corpus-requests"
         ~doc:
           "Emit one smem-api/2 Check request per corpus test as \
            newline-delimited JSON (pipe into $(b,smem serve)).")
      Term.(const run $ models_opt $ corpus_file)
  in
  Cmd.group
    (Cmd.info "api" ~doc:"Produce and inspect smem-api/2 wire traffic.")
    [ corpus_requests ]

let () =
  let info =
    Cmd.info "smem" ~version:"1.0.0"
      ~doc:"A characterization of scalable shared memories (Kohli, Neiger, Ahamad 1993)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            models_cmd;
            check_cmd;
            corpus_cmd;
            explain_cmd;
            lattice_cmd;
            distinguish_cmd;
            mutex_cmd;
            liveness_cmd;
            races_cmd;
            simulate_cmd;
            outcomes_cmd;
            custom_cmd;
            generate_cmd;
            fuzz_cmd;
            cert_cmd;
            serve_cmd;
            sim_cmd;
            api_cmd;
          ]))
