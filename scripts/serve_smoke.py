#!/usr/bin/env python3
"""Check the `smem serve` smoke-run output.

Usage: serve_smoke.py REQS RESPONSES GOLDEN

REQS is the request file produced by `smem api corpus-requests`;
RESPONSES is the server's output for that file concatenated with
itself (a cold pass followed by a warm pass over one process).
Asserts that

  - every request got exactly one successful response, in order;
  - the warm pass computed nothing: every cell came from the cache;
  - warm verdicts are identical to cold verdicts; and
  - the cold verdicts reproduce test/golden/verdicts.expected exactly.
"""

import json
import sys


def fail(msg):
    print(f"serve-smoke: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 4:
        fail(f"usage: {sys.argv[0]} REQS RESPONSES GOLDEN")
    reqs_path, resp_path, golden_path = sys.argv[1:]

    with open(reqs_path) as f:
        reqs = [json.loads(line) for line in f if line.strip()]
    with open(resp_path) as f:
        resps = [json.loads(line) for line in f if line.strip()]

    n = len(reqs)
    if n == 0:
        fail("no requests generated")
    if len(resps) != 2 * n:
        fail(f"expected {2 * n} responses for two passes, got {len(resps)}")

    for i, r in enumerate(resps):
        # The server answers in the client's protocol version.
        want_schema = reqs[i % n].get("schema", "smem-api/1")
        if r.get("schema") != want_schema:
            fail(f"response {i}: schema {r.get('schema')!r}, "
                 f"request spoke {want_schema!r}")
        if not r.get("ok"):
            fail(f"response {i}: not ok: {json.dumps(r.get('payload'))}")

    cold, warm = resps[:n], resps[n:]

    def cells(r):
        return [
            (v["subject"], v["authority"], v["status"])
            for v in r["payload"]["verdicts"]
        ]

    computed_warm = sum(r["computed"] for r in warm)
    if computed_warm != 0:
        fail(f"warm pass computed {computed_warm} cells; expected all cache hits")
    for i, (c, w) in enumerate(zip(cold, warm)):
        if w["cached"] != len(cells(w)):
            fail(f"warm response {i}: only {w['cached']} of "
                 f"{len(cells(w))} cells marked cached")
        if cells(c) != cells(w):
            fail(f"response {i}: warm verdicts differ from cold verdicts")

    # The cold pass must reproduce the golden conformance suite.
    got = [
        f"{s:<18} {a:<12} {st}"
        for r in cold
        for (s, a, st) in cells(r)
    ]
    with open(golden_path) as f:
        want = [line.rstrip("\n") for line in f if line.strip()]
    if got != want:
        for i, (g, w) in enumerate(zip(got, want)):
            if g != w:
                fail(f"golden mismatch at line {i + 1}: got {g!r}, want {w!r}")
        fail(f"golden length mismatch: got {len(got)} lines, want {len(want)}")

    hits = sum(r["cached"] for r in warm)
    print(f"serve-smoke: ok — {n} requests/pass, {hits} warm cells all cached, "
          f"verdicts match golden")


if __name__ == "__main__":
    main()
