#!/usr/bin/env python3
"""Load-test the `smem serve` daemon and record the results.

Replays canonicalized corpus traffic (`smem api corpus-requests`) from
N concurrent TCP clients against a freshly started daemon, measures
closed-loop per-request latency and aggregate throughput, drains the
daemon with SIGTERM, restarts it on the same --store file, and replays
one more pass that must be answered entirely from the persistent
verdict store.

The measurements are merged into BENCH_smem.json under a "serve"
section (the rest of the file, written by `make bench`, is preserved).
Exit status gates on two claims:

  - throughput >= --min-throughput requests/second, and
  - the warm restart computed nothing (100% hits from the store).

With --corpus FILE the replayed traffic is a generated corpus artifact
(`smem corpus generate`) instead of the built-in matrix: the file is
passed through `smem api corpus-requests --corpus FILE`, so the daemon
serves one Check request per generated test.

Usage: serve_load.py [--exe PATH] [--clients N] [--repeat R]
                     [--out FILE] [--store FILE] [--min-throughput RPS]
                     [--corpus FILE]
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time


def fail(msg):
    print(f"serve-load: {msg}", file=sys.stderr)
    sys.exit(1)


def corpus_requests(exe, corpus=None):
    cmd = [exe, "api", "corpus-requests"]
    if corpus:
        cmd += ["--corpus", corpus]
    out = subprocess.run(cmd, capture_output=True, text=True)
    if out.returncode != 0:
        fail(f"`{' '.join(cmd)}` failed: {out.stderr.strip()}")
    reqs = [json.loads(line) for line in out.stdout.splitlines() if line.strip()]
    if not reqs:
        fail("corpus-requests produced no requests")
    return reqs


def start_daemon(exe, store, cache=65536):
    proc = subprocess.Popen(
        [exe, "serve", "--tcp", "127.0.0.1:0", "--store", store,
         "--cache", str(cache)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    seen = []
    while True:
        line = proc.stderr.readline()
        if not line:
            fail("daemon exited before listening: " + "".join(seen).strip())
        seen.append(line)
        if "listening on tcp://" in line:
            return proc, int(line.rsplit(":", 1)[1])


def drain(proc):
    """SIGTERM the daemon; return (exit_ok, stderr_tail)."""
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        return False, "daemon did not drain within 30s"
    tail = proc.stderr.read()
    return code == 0 and "drained, bye" in tail, tail.strip()


def replay(port, reqs, repeat, latencies, totals, cid):
    """One closed-loop client: send, await the reply, record latency."""
    s = socket.create_connection(("127.0.0.1", port))
    f = s.makefile("rw")
    lat, cached, computed, next_id = [], 0, 0, 0
    try:
        for _ in range(repeat):
            for req in reqs:
                next_id += 1
                line = json.dumps({**req, "id": next_id})
                t0 = time.monotonic()
                f.write(line + "\n")
                f.flush()
                resp = json.loads(f.readline())
                lat.append(time.monotonic() - t0)
                if resp.get("id") != next_id:
                    fail(f"client {cid}: reply {resp.get('id')} out of order "
                         f"(expected {next_id})")
                if not resp.get("ok"):
                    fail(f"client {cid}: request {next_id} failed: "
                         f"{json.dumps(resp.get('payload'))[:200]}")
                cached += resp.get("cached", 0)
                computed += resp.get("computed", 0)
    finally:
        s.close()
    latencies.extend(lat)
    totals[cid] = (cached, computed)


def percentile(sorted_vals, p):
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(p / 100.0 * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--exe", default="_build/default/bin/smem.exe")
    ap.add_argument("--clients", type=int, default=4)
    ap.add_argument("--repeat", type=int, default=3,
                    help="corpus passes per client")
    ap.add_argument("--out", default="BENCH_smem.json")
    ap.add_argument("--store", default="")
    ap.add_argument("--min-throughput", type=float, default=50.0,
                    help="gate: requests/second floor")
    ap.add_argument("--corpus", default="",
                    help="replay this generated corpus artifact instead of "
                         "the built-in matrix")
    args = ap.parse_args()

    store = args.store or f"/tmp/smem_serve_load_{os.getpid()}.store"
    if not args.store and os.path.exists(store):
        os.remove(store)
    reqs = corpus_requests(args.exe, corpus=args.corpus or None)

    # -- load phase: N concurrent clients against a cold daemon --------
    proc, port = start_daemon(args.exe, store)
    latencies, totals = [], {}
    threads = [
        threading.Thread(target=replay,
                         args=(port, reqs, args.repeat, latencies, totals, c))
        for c in range(args.clients)
    ]
    t0 = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.monotonic() - t0
    drained, tail = drain(proc)
    if not drained:
        fail(f"drain after load failed: {tail}")

    total_reqs = args.clients * args.repeat * len(reqs)
    throughput = total_reqs / wall if wall > 0 else 0.0
    latencies.sort()
    p50_ms = percentile(latencies, 50) * 1000
    p99_ms = percentile(latencies, 99) * 1000

    # -- warm restart: same store, one pass, zero computed cells -------
    proc, port = start_daemon(args.exe, store)
    warm_lat, warm_totals = [], {}
    replay(port, reqs, 1, warm_lat, warm_totals, 0)
    drained, tail = drain(proc)
    if not drained:
        fail(f"drain after warm restart failed: {tail}")
    warm_cached, warm_computed = warm_totals[0]
    warm_cells = warm_cached + warm_computed
    warm_hit_rate = warm_cached / warm_cells if warm_cells else 0.0
    if not args.store:
        os.remove(store)

    section = {
        "corpus": args.corpus or "builtin",
        "clients": args.clients,
        "requests": total_reqs,
        "wall_s": round(wall, 6),
        "throughput_rps": round(throughput, 1),
        "p50_ms": round(p50_ms, 3),
        "p99_ms": round(p99_ms, 3),
        "min_throughput_rps": args.min_throughput,
        "warm_restart_cells": warm_cells,
        "warm_restart_computed": warm_computed,
        "warm_restart_hit_rate": round(warm_hit_rate, 4),
        "drained": True,
    }

    doc = {}
    if os.path.exists(args.out):
        try:
            with open(args.out) as f:
                doc = json.load(f)
        except (OSError, ValueError):
            print(f"serve-load: {args.out} unreadable, rewriting", file=sys.stderr)
    doc["serve"] = section
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")

    print(f"serve-load: {args.clients} clients x {args.repeat} passes = "
          f"{total_reqs} requests in {wall:.2f}s "
          f"({throughput:.0f} req/s, p50 {p50_ms:.2f} ms, p99 {p99_ms:.2f} ms)")
    print(f"serve-load: warm restart {warm_cached}/{warm_cells} cells from "
          f"store (computed {warm_computed})")
    print(f"serve-load: wrote serve section to {args.out}")

    ok = True
    if throughput < args.min_throughput:
        print(f"serve-load: FAIL throughput {throughput:.0f} < floor "
              f"{args.min_throughput}", file=sys.stderr)
        ok = False
    if warm_computed != 0:
        print(f"serve-load: FAIL warm restart computed {warm_computed} "
              f"cells; expected all hits", file=sys.stderr)
        ok = False
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
