(* Tests of verdict certificates and the independent checking kernel:
   serialization round-trips in both formats, kernel acceptance of every
   engine-emitted certificate over the corpus, and adversarial rejection
   of hand-mutated certificates (the kernel must not be foolable by
   forged witnesses or forged frontiers). *)

module H = Smem_core.History
module Model = Smem_core.Model
module Registry = Smem_core.Registry
module Diagnose = Smem_core.Diagnose
module Test = Smem_litmus.Test
module Corpus = Smem_litmus.Corpus
module Runner = Smem_litmus.Runner
module Cert = Smem_cert.Cert
module Kernel = Smem_cert.Kernel

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let model key =
  match Registry.find key with
  | Some m -> m
  | None -> Alcotest.failf "model %s missing" key

(* Every corpus test certified under every certifiable model — the same
   matrix `smem corpus --certify` emits. *)
let corpus_certs =
  lazy
    (List.concat_map
       (fun (t : Test.t) ->
         List.filter_map
           (fun m ->
             Option.map
               (fun c -> (t.Test.name, m.Model.key, c))
               (Runner.certify t m))
           Registry.certifiable)
       Corpus.all)

(* ---------------- serialization ---------------- *)

let roundtrip format =
  List.iter
    (fun (test, mkey, c) ->
      let s = Cert.to_string ~format c in
      match Cert.parse s with
      | Error e -> Alcotest.failf "%s/%s: reparse failed: %s" test mkey e
      | Ok c' ->
          if c <> c' then
            Alcotest.failf "%s/%s: round-trip changed the certificate" test
              mkey)
    (Lazy.force corpus_certs)

let roundtrip_sexp () = roundtrip `Sexp
let roundtrip_json () = roundtrip `Json

let parse_rejects_garbage () =
  List.iter
    (fun s ->
      match Cert.parse s with
      | Ok _ -> Alcotest.failf "accepted garbage %S" s
      | Error _ -> ())
    [
      "";
      "(certificate)";
      "{\"version\":1}";
      "(certificate (version 99) (model sc) (history) (verdict allowed) \
       (evidence (views)))";
      "{\"version\":1,\"model\":\"sc\",\"history\":[],\"verdict\":\"maybe\",\
       \"evidence\":{\"rf_maps\":1,\"co_orders\":1}}";
    ]

(* ---------------- kernel accepts the engine's certificates -------- *)

let kernel_accepts_corpus () =
  let n = ref 0 in
  List.iter
    (fun (test, mkey, c) ->
      incr n;
      match Kernel.verify c with
      | Ok a ->
          if H.nops (Cert.history c) <= Kernel.default_max_search_ops then
            check Alcotest.bool
              (Printf.sprintf "%s/%s complete" test mkey)
              true (a = Kernel.Complete)
      | Error e -> Alcotest.failf "%s/%s rejected: %s" test mkey e)
    (Lazy.force corpus_certs);
  check Alcotest.bool "matrix is non-trivial" true (!n > 100)

let certify_skips_operational () =
  let t = List.hd Corpus.all in
  check Alcotest.bool "tso-op has no certificate" true
    (Runner.certify t (model "tso-op") = None)

(* ---------------- adversarial mutations ---------------- *)

(* Helpers to certify an in-test history and tear its evidence open. *)
let certified m h =
  match Cert.certify m h with
  | Some c -> c
  | None -> Alcotest.failf "model %s not certifiable" m.Model.key

let witness_of c =
  match c.Cert.evidence with
  | Cert.Witness { views; rf; sync; notes } -> (views, rf, sync, notes)
  | Cert.Frontier _ -> Alcotest.fail "expected a witness certificate"

let with_views c views =
  let _, rf, sync, notes = witness_of c in
  { c with Cert.evidence = Cert.Witness { views; rf; sync; notes } }

let rejected name c =
  match Kernel.verify c with
  | Ok _ -> Alcotest.failf "%s: kernel accepted a mutated certificate" name
  | Error _ -> ()

(* ids proc-major: 0 = w x 1, 1 = w x 2, 2 = r x 1.  SC allows it with
   the single view  w1 · r · w2. *)
let h_stale = H.make [ [ H.write "x" 1; H.write "x" 2 ]; [ H.read "x" 1 ] ]

let mutate_stale_read () =
  let c = certified (model "sc") h_stale in
  check Alcotest.bool "baseline accepted" true
    (Result.is_ok (Kernel.verify c));
  (* Move the read after the overwriting w x 2: po survives, but the
     read now returns an overwritten value.  The kernel's legality
     replay must notice. *)
  rejected "stale read" (with_views c [ (-1, [ 0; 1; 2 ]) ])

let mutate_reordered_po () =
  let c = certified (model "sc") h_stale in
  (* w x 2 placed before its program-order predecessor w x 1. *)
  rejected "reordered po" (with_views c [ (-1, [ 1; 0; 2 ]) ])

let mutate_truncated_view () =
  let c = certified (model "sc") h_stale in
  rejected "truncated view" (with_views c [ (-1, [ 0; 2 ]) ])

(* Store buffering under PRAM (allowed): per-processor views of own
   ops + all writes.  ids: 0 = w x 1, 1 = r y 0, 2 = w y 1, 3 = r x 0. *)
let h_sb =
  H.make [ [ H.write "x" 1; H.read "y" 0 ]; [ H.write "y" 1; H.read "x" 0 ] ]

let mutate_scope_violation () =
  let c = certified (model "pram") h_sb in
  check Alcotest.bool "baseline accepted" true
    (Result.is_ok (Kernel.verify c));
  let views, _, _, _ = witness_of c in
  (* Smuggle processor 1's read (id 3) into processor 0's view: reads of
     other processors are outside PRAM's view population. *)
  let views =
    List.map
      (fun (p, seq) -> if p = 0 then (p, seq @ [ 3 ]) else (p, seq))
      views
  in
  rejected "scope violation" (with_views c views)

let mutate_broken_coherence () =
  (* Two writes to x on different processors; PC requires every view to
     order them the same way. *)
  let h =
    H.make
      [ [ H.write "x" 1 ]; [ H.write "x" 2 ]; [ H.read "x" 1; H.read "x" 2 ] ]
  in
  let c = certified (model "pc") h in
  check Alcotest.bool "baseline accepted" true
    (Result.is_ok (Kernel.verify c));
  let views, _, _, _ = witness_of c in
  (* Flip the two writes (ids 0 and 1) in processor 0's view only. *)
  let flip seq =
    List.map (function 0 -> 1 | 1 -> 0 | id -> id) seq
  in
  let views =
    List.map (fun (p, seq) -> if p = 0 then (p, flip seq) else (p, seq)) views
  in
  rejected "broken coherence" (with_views c views)

let mutate_forged_frontier () =
  let c = certified (model "sc") h_sb in
  check Alcotest.bool "sb forbidden under sc" true
    (c.Cert.verdict = Cert.Forbidden);
  (match c.Cert.evidence with
  | Cert.Frontier { rf_maps; co_orders } ->
      rejected "forged frontier"
        {
          c with
          Cert.evidence = Cert.Frontier { rf_maps = rf_maps + 1; co_orders };
        }
  | Cert.Witness _ -> Alcotest.fail "expected a frontier certificate");
  (* Evidence kind contradicting the verdict is also rejected. *)
  rejected "verdict/evidence mismatch" { c with Cert.verdict = Cert.Allowed }

let mutate_forged_forbidden () =
  (* A correct frontier summary attached to a false forbidden claim:
     the history IS sc-allowed, so independent enumeration must find a
     witness and reject. *)
  let rf_maps, co_orders = Diagnose.candidate_space h_stale in
  let c = certified (model "sc") h_stale in
  rejected "forged forbidden verdict"
    {
      c with
      Cert.verdict = Cert.Forbidden;
      evidence = Cert.Frontier { rf_maps; co_orders };
    }

(* ---------------- the extended families ---------------- *)

(* Certificates for on-demand family instances — resolved through the
   reference grammar, not only the catalogued exemplars — must verify,
   in both verdict polarities. *)
let new_family_certs () =
  let mp =
    match Corpus.find "mp" with
    | Some t -> t.Test.history
    | None -> Alcotest.fail "corpus test mp missing"
  in
  List.iter
    (fun key ->
      let c = certified (model key) mp in
      check Alcotest.bool (key ^ " allowed on mp") true
        (c.Cert.verdict = Cert.Allowed);
      match Kernel.verify c with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: kernel rejected: %s" key e)
    [ "pc-part(blocks=2)"; "pc-part(blocks=3)"; "session(ryw,mr)" ];
  (* Forbidden polarity: mp violates writes-follow-reads (the corpus
     states it), and a lone read of an unwritten overwrite violates
     read-your-writes. *)
  let ryw = H.make [ [ H.write "x" 1; H.read "x" 0 ] ] in
  List.iter
    (fun (key, h) ->
      let c = certified (model key) h in
      check Alcotest.bool (key ^ " forbidden") true
        (c.Cert.verdict = Cert.Forbidden);
      match Kernel.verify c with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "forbidden %s cert rejected: %s" key e)
    [
      ( "session(ryw,mr,mw,wfr)",
        (match Corpus.find "mp" with
        | Some t -> t.Test.history
        | None -> Alcotest.fail "corpus test mp missing") );
      ("session(ryw,mr)", ryw);
      ("pc-part(blocks=2)", ryw);
    ]

let mutate_pc_part_scope () =
  (* Only location x exists, so under blocks=2 every operation lives in
     block 0; smuggling processor 1's read into processor 0's view is a
     population violation the kernel must notice. *)
  let c = certified (model "pc-part(blocks=2)") h_stale in
  check Alcotest.bool "baseline accepted" true
    (Result.is_ok (Kernel.verify c));
  let views, _, _, _ = witness_of c in
  let views =
    List.map
      (fun (p, seq) -> if p = 0 then (p, seq @ [ 2 ]) else (p, seq))
      views
  in
  rejected "pc-part scope violation" (with_views c views)

let mutate_session_stale_read () =
  (* Population- and order-preserving but value-illegal: force the view
     holding the read (id 2, r x 1) to place it after the overwriting
     w x 2.  The kernel's legality replay must reject. *)
  let c = certified (model "session(ryw,mr)") h_stale in
  check Alcotest.bool "baseline accepted" true
    (Result.is_ok (Kernel.verify c));
  let views, _, _, _ = witness_of c in
  let views =
    List.map
      (fun (p, seq) -> if List.mem 2 seq then (p, [ 0; 1; 2 ]) else (p, seq))
      views
  in
  rejected "session stale read" (with_views c views)

(* A forbidden certificate above the re-search cap must be accepted with
   the explicit [Unverified_cap] status — never silently as [Complete] —
   and raising the cap must upgrade it to a full acceptance. *)
let cap_surfaces_unverified () =
  (* co-pump(4): 10 operations, forbidden under SC (the reads see the
     first chain's writes in inverted order). *)
  let h =
    H.make
      [
        List.init 4 (fun i -> H.write "x" (i + 1));
        List.init 4 (fun i -> H.write "x" (5 + i));
        [ H.read "x" 2; H.read "x" 1 ];
      ]
  in
  let c = certified (model "sc") h in
  check Alcotest.bool "forbidden" true (c.Cert.verdict = Cert.Forbidden);
  (match Kernel.verify c with
  | Ok (Kernel.Unverified_cap { nops; max_search_ops }) ->
      check Alcotest.int "reported nops" (H.nops h) nops;
      check Alcotest.int "reported cap" Kernel.default_max_search_ops
        max_search_ops
  | Ok Kernel.Complete ->
      Alcotest.fail "capped acceptance misreported as Complete"
  | Error e -> Alcotest.failf "kernel rejected: %s" e);
  match Kernel.verify ~max_search_ops:(H.nops h) c with
  | Ok Kernel.Complete -> ()
  | Ok (Kernel.Unverified_cap _) ->
      Alcotest.fail "raised cap still reported Unverified_cap"
  | Error e -> Alcotest.failf "kernel rejected with raised cap: %s" e

(* ---------------- independent search sanity ---------------- *)

let search_matches_engine () =
  List.iter
    (fun (t : Test.t) ->
      if H.nops t.Test.history <= Kernel.default_max_search_ops then
        List.iter
          (fun (m : Model.t) ->
            match m.Model.params with
            | None -> ()
            | Some p ->
                check Alcotest.bool
                  (Printf.sprintf "%s/%s" t.Test.name m.Model.key)
                  (Model.check m t.Test.history)
                  (Kernel.search p t.Test.history))
          Registry.certifiable)
    Corpus.all

let () =
  Alcotest.run "cert"
    [
      ( "serialization",
        [
          tc "sexp round-trip over the corpus" roundtrip_sexp;
          tc "json round-trip over the corpus" roundtrip_json;
          tc "garbage rejected" parse_rejects_garbage;
        ] );
      ( "kernel",
        [
          tc "accepts every engine certificate" kernel_accepts_corpus;
          tc "operational models are uncertifiable" certify_skips_operational;
          tc "independent search matches the engine" search_matches_engine;
          tc "search cap surfaces Unverified_cap" cap_surfaces_unverified;
          tc "extended-family instances certify" new_family_certs;
        ] );
      ( "adversarial",
        [
          tc "stale read" mutate_stale_read;
          tc "reordered program order" mutate_reordered_po;
          tc "truncated view" mutate_truncated_view;
          tc "view-scope violation" mutate_scope_violation;
          tc "broken coherence" mutate_broken_coherence;
          tc "forged frontier" mutate_forged_frontier;
          tc "forged forbidden verdict" mutate_forged_forbidden;
          tc "pc-part view-scope violation" mutate_pc_part_scope;
          tc "session stale read" mutate_session_stale_read;
        ] );
    ]
