(* Tests for the serving subsystem: the bounded verdict cache (including
   full-key sharding and parallel-domain safety), the request-executing
   service (cached verdicts must equal fresh ones), the NDJSON server
   loop (partial batches, malformed frames mid-stream — driven over real
   socketpairs), the persistent verdict store, and the multi-client
   daemon (interleaved clients, drain, warm restart). *)

module H = Smem_core.History
module Model = Smem_core.Model
module Canon = Smem_core.Canon
module Cache = Smem_cache.Cache
module Request = Smem_api.Request
module Response = Smem_api.Response
module Verdict = Smem_api.Verdict
module Wire = Smem_api.Wire
module Service = Smem_serve.Service
module Server = Smem_serve.Server
module Frames = Smem_serve.Frames
module Sched = Smem_serve.Sched
module Store = Smem_serve.Store
module Daemon = Smem_serve.Daemon
module Registry = Smem_core.Registry
module Corpus = Smem_litmus.Corpus
module Helpers = Smem_testlib.Helpers

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---------------- cache ---------------- *)

let cache_basics () =
  let c = Cache.create ~capacity:16 () in
  check (Alcotest.option Alcotest.bool) "miss" None
    (Cache.find c ~digest:"d1" ~model:"sc");
  Cache.add c ~digest:"d1" ~model:"sc" true;
  Cache.add c ~digest:"d1" ~model:"pram" false;
  check (Alcotest.option Alcotest.bool) "hit true" (Some true)
    (Cache.find c ~digest:"d1" ~model:"sc");
  check (Alcotest.option Alcotest.bool) "hit false" (Some false)
    (Cache.find c ~digest:"d1" ~model:"pram");
  check (Alcotest.option Alcotest.bool) "other digest" None
    (Cache.find c ~digest:"d2" ~model:"sc");
  let s = Cache.stats c in
  check Alcotest.int "entries" 2 s.Cache.entries;
  check Alcotest.int "hits" 2 s.Cache.hits;
  check Alcotest.int "misses" 2 s.Cache.misses

let cache_bounded () =
  (* One shard makes eviction order deterministic: strict FIFO. *)
  let c = Cache.create ~shards:1 ~capacity:4 () in
  for i = 1 to 8 do
    Cache.add c ~digest:(string_of_int i) ~model:"sc" true
  done;
  let s = Cache.stats c in
  check Alcotest.int "bounded" 4 s.Cache.entries;
  check Alcotest.int "evictions" 4 s.Cache.evictions;
  (* the oldest four are gone, the newest four resident *)
  for i = 1 to 4 do
    check (Alcotest.option Alcotest.bool)
      (Printf.sprintf "%d evicted" i)
      None
      (Cache.find c ~digest:(string_of_int i) ~model:"sc")
  done;
  for i = 5 to 8 do
    check (Alcotest.option Alcotest.bool)
      (Printf.sprintf "%d resident" i)
      (Some true)
      (Cache.find c ~digest:(string_of_int i) ~model:"sc")
  done

let cache_find_or_add () =
  let c = Cache.create ~capacity:8 () in
  let calls = ref 0 in
  let compute () =
    incr calls;
    true
  in
  let v1, cached1 = Cache.find_or_add c ~digest:"d" ~model:"sc" compute in
  let v2, cached2 = Cache.find_or_add c ~digest:"d" ~model:"sc" compute in
  check Alcotest.bool "first verdict" true v1;
  check Alcotest.bool "first fresh" false cached1;
  check Alcotest.bool "second verdict" true v2;
  check Alcotest.bool "second cached" true cached2;
  check Alcotest.int "computed once" 1 !calls

let cache_clear () =
  let c = Cache.create ~capacity:8 () in
  Cache.add c ~digest:"d" ~model:"sc" true;
  Cache.clear c;
  check Alcotest.int "empty" 0 (Cache.stats c).Cache.entries;
  check (Alcotest.option Alcotest.bool) "gone" None
    (Cache.find c ~digest:"d" ~model:"sc")

let cache_rejects_bad_args () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Cache.create: capacity must be positive") (fun () ->
      ignore (Cache.create ~capacity:0 ()))

let cache_shards_on_full_key () =
  (* A hot history queried under many models must not serialize on one
     shard: the shard hash covers (digest, model), not digest alone. *)
  let shards = 8 in
  let c = Cache.create ~shards ~capacity:1024 () in
  let models =
    [ "sc"; "tso"; "pc"; "causal"; "pram"; "coh"; "tso-op"; "rc-sc";
      "rc-pc"; "atomic"; "m10"; "m11"; "m12"; "m13"; "m14"; "m15" ]
  in
  let indices =
    List.map (fun m -> Cache.shard_index c ~digest:"hot" ~model:m) models
  in
  List.iter
    (fun ix -> check Alcotest.bool "index in range" true (ix >= 0 && ix < shards))
    indices;
  check Alcotest.bool "one digest spreads over several shards" true
    (List.length (List.sort_uniq compare indices) >= 2)

let cache_parallel_find_or_add () =
  (* Four domains hammer one shard with disjoint key ranges: every
     returned verdict is the one computed for that key (none lost or
     crossed), and the FIFO accounting stays exact — entries = capacity,
     evictions = inserts - capacity. *)
  let domains = 4 and per = 256 and cap = 64 in
  let c = Cache.create ~shards:1 ~capacity:cap () in
  let worker d () =
    let wrong = ref 0 in
    for i = 0 to per - 1 do
      let digest = Printf.sprintf "%d-%d" d i in
      let expect = (d + i) mod 2 = 0 in
      let v, cached = Cache.find_or_add c ~digest ~model:"sc" (fun () -> expect) in
      if v <> expect || cached then incr wrong
    done;
    !wrong
  in
  let spawned = List.init domains (fun d -> Domain.spawn (worker d)) in
  let wrong = List.fold_left (fun acc t -> acc + Domain.join t) 0 spawned in
  check Alcotest.int "no lost or crossed verdicts" 0 wrong;
  let s = Cache.stats c in
  check Alcotest.int "entries at capacity" cap s.Cache.entries;
  check Alcotest.int "exact eviction count"
    ((domains * per) - cap)
    s.Cache.evictions

let cache_parallel_same_key () =
  (* All domains race find_or_add on the same keys: the cache must hand
     every caller the key's verdict, never a neighbour's. *)
  let c = Cache.create ~shards:4 ~capacity:1024 () in
  let worker () =
    let wrong = ref 0 in
    for i = 0 to 199 do
      let digest = string_of_int i in
      let expect = i mod 2 = 0 in
      let v, _ = Cache.find_or_add c ~digest ~model:"sc" (fun () -> expect) in
      if v <> expect then incr wrong
    done;
    !wrong
  in
  let spawned = List.init 4 (fun _ -> Domain.spawn worker) in
  let wrong = List.fold_left (fun acc t -> acc + Domain.join t) 0 spawned in
  check Alcotest.int "shared keys race cleanly" 0 wrong;
  check Alcotest.int "one entry per key" 200 (Cache.stats c).Cache.entries

(* ---------------- service: cached = fresh ---------------- *)

let cached_equals_fresh =
  QCheck.Test.make ~name:"cached verdict equals fresh verdict" ~count:150
    (Helpers.arb_history ~labeled_allowed:`Mixed ())
    (fun h ->
      let service =
        Service.create ~cache:(Cache.create ~capacity:1024 ()) ()
      in
      List.for_all
        (fun m ->
          let fresh = Model.check m h in
          let v1, c1 = Service.check_model service m h in
          let v2, c2 = Service.check_model service m h in
          v1 = fresh && v2 = fresh && (not c1) && c2)
        (List.filter_map Registry.find [ "sc"; "causal"; "pram"; "coh" ]))

let service_renaming_hits =
  QCheck.Test.make ~name:"renamed resubmission is a cache hit" ~count:100
    (Helpers.arb_history ())
    (fun h ->
      let service =
        Service.create ~cache:(Cache.create ~capacity:1024 ()) ()
      in
      let renamed =
        let rows =
          List.init (H.nprocs h) (fun p ->
              H.proc_ops h (H.nprocs h - 1 - p)
              |> Array.to_list
              |> List.map (fun id ->
                     let op = H.op h id in
                     let loc = "q" ^ H.loc_name h op.Smem_core.Op.loc in
                     let v = op.Smem_core.Op.value in
                     if Smem_core.Op.is_write op then H.write loc v
                     else H.read loc v))
        in
        H.make rows
      in
      let sc = Option.get (Registry.find "sc") in
      let v1, _ = Service.check_model service sc h in
      let v2, cached = Service.check_model service sc renamed in
      v1 = v2 && cached)

(* ---------------- service: corpus twice ---------------- *)

let corpus_twice () =
  let service =
    Service.create ~cache:(Cache.create ~capacity:65536 ()) ()
  in
  let req = Request.Corpus { models = [] } in
  let first = Service.handle service req in
  let second = Service.handle service req in
  let verdicts r =
    match r.Response.payload with
    | Response.Verdicts vs -> vs
    | _ -> Alcotest.fail "corpus did not answer with verdicts"
  in
  let v1 = verdicts first and v2 = verdicts second in
  let cells = List.length Corpus.all * List.length (Registry.all) in
  check Alcotest.int "all cells" cells (List.length v1);
  check Alcotest.int "first pass computed" cells first.Response.computed;
  check Alcotest.int "second pass cached" cells second.Response.cached;
  check Alcotest.int "second pass computed" 0 second.Response.computed;
  check Alcotest.bool "every second-pass verdict marked cached" true
    (List.for_all (fun v -> v.Verdict.cached) v2);
  (* statuses agree pairwise, and with a fresh uncached check *)
  List.iter2
    (fun a b ->
      check Alcotest.string "subject" a.Verdict.subject b.Verdict.subject;
      check Alcotest.string "authority" a.Verdict.authority b.Verdict.authority;
      check Alcotest.bool "status equal" true
        (a.Verdict.status = b.Verdict.status))
    v1 v2;
  let fresh = Service.create () in
  List.iter
    (fun v ->
      let test = Corpus.find v.Verdict.subject |> Option.get in
      let model = Registry.find v.Verdict.authority |> Option.get in
      let expect, _ =
        Service.check_model fresh model test.Smem_litmus.Test.history
      in
      check Alcotest.bool
        (v.Verdict.subject ^ "/" ^ v.Verdict.authority ^ " matches fresh")
        true
        (v.Verdict.status = Some (Verdict.status_of_bool expect)))
    v2

(* ---------------- service: structured errors ---------------- *)

let service_errors () =
  let s = Service.create () in
  let code r =
    match r.Response.payload with
    | Response.Error { code; _ } -> Some code
    | _ -> None
  in
  let got req = code (Service.handle s req) in
  check Alcotest.bool "unknown model" true
    (got (Request.Check { test = Named "fig1"; models = [ "zz" ] })
    = Some Response.Unknown_model);
  check Alcotest.bool "unknown test" true
    (got (Request.Check { test = Named "no-such-test"; models = [] })
    = Some Response.Unknown_test);
  check Alcotest.bool "bad litmus" true
    (got (Request.Check { test = Inline "]["; models = [] })
    = Some Response.Bad_request);
  check Alcotest.bool "id echoed" true
    ((Service.handle ~id:9 s (Request.Corpus { models = [ "sc" ] })).Response.id
    = Some 9)

let service_models_catalogue () =
  (* The catalogue request lists every catalogued model with its
     parameter quadruple and every on-demand family — the single source
     the CLI table and docs/API.md's model listing are generated from. *)
  let s = Service.create () in
  match (Service.handle s Request.Models).Response.payload with
  | Response.Catalogue { models; families } ->
      check Alcotest.int "every catalogued model listed"
        (List.length Registry.all) (List.length models);
      check Alcotest.bool "sc is present with params" true
        (List.exists
           (fun (m : Response.model_info) ->
             m.Response.key = "sc" && m.Response.params <> None)
           models);
      let family_names =
        List.map (fun (f : Response.family_info) -> f.Response.family) families
      in
      List.iter
        (fun f ->
          check Alcotest.bool (f ^ " family listed") true
            (List.mem f family_names))
        [ "pc-part"; "session" ]
  | _ -> Alcotest.fail "models request did not answer a catalogue"

(* A history at the view search's word-encoding boundary must come back
   as a structured [Too_large] error, not crash the daemon (the search
   raises the typed {!Smem_core.View.Too_large} and the service catches
   exactly that).  One below the boundary must still answer verdicts. *)
let service_too_large_boundary () =
  let s = Service.create () in
  let inline n =
    (* n writes of distinct values on one processor: the single-view
       By_value search answers instantly when it runs at all. *)
    let h = H.make [ List.init n (fun i -> H.write "x" (i + 1)) ] in
    let test =
      {
        Smem_litmus.Test.name = Printf.sprintf "boundary%d" n;
        doc = "";
        history = h;
        expectations = [];
      }
    in
    Request.Inline (Smem_litmus.Print.to_string test)
  in
  (* pram routes every processor through View.exists (By_value). *)
  let at = Service.handle s (Request.Check { test = inline Sys.int_size; models = [ "pram" ] }) in
  (match at.Response.payload with
  | Response.Error { code = Response.Too_large; message } ->
      check Alcotest.bool "message names the limit" true
        (let limit = string_of_int (Sys.int_size - 1) in
         let rec mem i =
           i + String.length limit <= String.length message
           && (String.sub message i (String.length limit) = limit
              || mem (i + 1))
         in
         mem 0)
  | Response.Error { code; _ } ->
      Alcotest.failf "wrong error code %s" (Response.error_code_to_string code)
  | _ -> Alcotest.fail "expected a Too_large error at the boundary");
  let below =
    Service.handle s
      (Request.Check { test = inline (Sys.int_size - 1); models = [ "pram" ] })
  in
  match below.Response.payload with
  | Response.Verdicts [ v ] ->
      check Alcotest.bool "below the boundary answers" true
        (v.Verdict.status = Some Verdict.Allowed)
  | _ -> Alcotest.fail "expected a verdict below the boundary"

(* ---------------- server loop ---------------- *)

(* Drive the NDJSON loop through temp files (the loop takes plain
   channels, so no process machinery is needed). *)
let run_server ?batch lines =
  let in_path = Filename.temp_file "smem_serve_in" ".ndjson" in
  let out_path = Filename.temp_file "smem_serve_out" ".ndjson" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove in_path;
      Sys.remove out_path)
    (fun () ->
      let oc = open_out in_path in
      List.iter (output_string oc) lines;
      close_out oc;
      let ic = open_in in_path and oc = open_out out_path in
      Server.run ?batch ~jobs:2 ~cache:(Cache.create ~capacity:4096 ()) ic oc;
      close_in ic;
      close_out oc;
      let ic = open_in out_path in
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read []))

let server_answers_in_order () =
  let reqs =
    [
      Wire.request_line ~id:10
        (Request.Check { test = Named "fig1"; models = [ "sc" ] });
      Wire.request_line (Request.Check { test = Named "fig2"; models = [ "sc" ] });
      Wire.request_line ~id:30
        (Request.Check { test = Named "mp"; models = [ "causal" ] });
    ]
  in
  let out = run_server ~batch:2 reqs in
  check Alcotest.int "one response per request" 3 (List.length out);
  let parsed =
    List.map
      (fun l ->
        match Wire.parse_response_line l with
        | Ok r -> r
        | Error e -> Alcotest.failf "unparseable response %S: %s" l e)
      out
  in
  check
    (Alcotest.list (Alcotest.option Alcotest.int))
    "ids echoed, arrival number otherwise" [ Some 10; Some 2; Some 30 ]
    (List.map (fun r -> r.Response.id) parsed);
  List.iter
    (fun r -> check Alcotest.bool "ok" true (Response.ok r))
    parsed

let server_bad_line_in_position () =
  let reqs =
    [
      Wire.request_line (Request.Check { test = Named "fig1"; models = [ "sc" ] });
      "this is not json\n";
      Wire.request_line (Request.Check { test = Named "fig2"; models = [ "sc" ] });
    ]
  in
  let out = run_server reqs in
  check Alcotest.int "three responses" 3 (List.length out);
  let parsed =
    List.map (fun l -> Wire.parse_response_line l |> Result.get_ok) out
  in
  let statuses = List.map Response.ok parsed in
  check (Alcotest.list Alcotest.bool) "error in position" [ true; false; true ]
    statuses;
  match (List.nth parsed 1).Response.payload with
  | Response.Error { code = Response.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "middle response is not a bad-request error"

let server_second_pass_all_cached () =
  (* The serve-smoke CI property, in-process: the same corpus sent
     twice over one connection answers the second pass entirely from
     cache, with identical statuses. *)
  let reqs =
    List.map
      (fun t ->
        Wire.request_line
          (Request.Check { test = Named t.Smem_litmus.Test.name; models = [] }))
      Corpus.all
  in
  let out = run_server (reqs @ reqs) in
  let parsed =
    List.map (fun l -> Wire.parse_response_line l |> Result.get_ok) out
  in
  let n = List.length Corpus.all in
  check Alcotest.int "responses" (2 * n) (List.length parsed);
  let firsts = List.filteri (fun i _ -> i < n) parsed in
  let seconds = List.filteri (fun i _ -> i >= n) parsed in
  List.iter2
    (fun a b ->
      check Alcotest.int "warm pass fully cached" 0 b.Response.computed;
      match (a.Response.payload, b.Response.payload) with
      | Response.Verdicts va, Response.Verdicts vb ->
          List.iter2
            (fun x y ->
              check Alcotest.bool "status stable" true
                (x.Verdict.status = y.Verdict.status))
            va vb
      | _ -> Alcotest.fail "corpus check did not answer verdicts")
    firsts seconds

(* ---------------- server loop over a live socket ---------------- *)

(* The temp-file harness above cannot catch the head-of-line stall (a
   regular file always has "more to read"), so these drive the loop
   over a real socketpair: the client writes, then *waits* — exactly
   the traffic shape that used to hang until 16 lines or EOF. *)

let write_fd fd s =
  ignore (Unix.write_substring fd s 0 (String.length s))

let read_line_fd ?(timeout = 10.) fd =
  let buf = Buffer.create 256 in
  let b = Bytes.create 1 in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0. then Alcotest.fail "timed out waiting for a reply"
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> Alcotest.fail "timed out waiting for a reply"
      | _ ->
          let n = Unix.read fd b 0 1 in
          if n = 0 then Alcotest.fail "connection closed before the reply"
          else
            let ch = Bytes.get b 0 in
            if ch = '\n' then Buffer.contents buf
            else begin
              Buffer.add_char buf ch;
              go ()
            end
  in
  go ()

let response_of_line line = Wire.parse_response_line line |> Result.get_ok

let with_server f =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let sfd, cfd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ic = Unix.in_channel_of_descr sfd in
  let oc = Unix.out_channel_of_descr sfd in
  let t =
    Thread.create
      (fun () ->
        (try Server.run ~jobs:2 ~cache:(Cache.create ~capacity:4096 ()) ic oc
         with Sys_error _ -> ());
        try flush oc with Sys_error _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close cfd with Unix.Unix_error _ -> ());
      Thread.join t;
      try Unix.close sfd with Unix.Unix_error _ -> ())
    (fun () -> f cfd)

let server_partial_batch () =
  (* The regression this PR fixes: one request, default batch of 16,
     connection held open — the reply must come anyway. *)
  with_server (fun fd ->
      write_fd fd
        (Wire.request_line ~id:1
           (Request.Check { test = Named "fig1"; models = [ "sc" ] }));
      let r = response_of_line (read_line_fd fd) in
      check (Alcotest.option Alcotest.int) "id" (Some 1) r.Response.id;
      check Alcotest.bool "ok" true (Response.ok r);
      (* the connection is still open and serving *)
      write_fd fd
        (Wire.request_line ~id:2
           (Request.Check { test = Named "fig2"; models = [ "sc" ] }));
      let r2 = response_of_line (read_line_fd fd) in
      check (Alcotest.option Alcotest.int) "second id" (Some 2) r2.Response.id;
      check Alcotest.bool "second ok" true (Response.ok r2))

let server_malformed_frame_mid_stream () =
  with_server (fun fd ->
      write_fd fd
        (Wire.request_line ~id:1
           (Request.Check { test = Named "fig1"; models = [ "sc" ] }));
      let r1 = response_of_line (read_line_fd fd) in
      check Alcotest.bool "first ok" true (Response.ok r1);
      write_fd fd "{\"schema\":\"smem-api/1\" oops\n";
      let r2 = response_of_line (read_line_fd fd) in
      check Alcotest.bool "malformed answered, not ok" false (Response.ok r2);
      (match r2.Response.payload with
      | Response.Error { code = Response.Bad_request; _ } -> ()
      | _ -> Alcotest.fail "malformed frame did not answer bad-request");
      check (Alcotest.option Alcotest.int) "arrival number" (Some 2)
        r2.Response.id;
      (* the stream survives the bad frame *)
      write_fd fd
        (Wire.request_line ~id:7
           (Request.Check { test = Named "mp"; models = [ "causal" ] }));
      let r3 = response_of_line (read_line_fd fd) in
      check (Alcotest.option Alcotest.int) "stream continues" (Some 7)
        r3.Response.id;
      check Alcotest.bool "third ok" true (Response.ok r3))

let server_answers_in_kind () =
  (* The smem-api/1 back-compatibility contract: a v1 client of a v2
     server gets v1 response lines — the legacy schema string, no
     [version] field — with the same verdicts a v2 client sees. *)
  let module Json = Smem_obs.Json in
  with_server (fun fd ->
      write_fd fd
        ("{\"schema\":\"smem-api/1\",\"id\":1,\"kind\":\"check\","
        ^ "\"test\":{\"corpus\":\"mp\"},"
        ^ "\"models\":[\"sc\",\"session(ryw,mr)\"]}\n");
      let v1_line = read_line_fd fd in
      let v1_json = Json.of_string v1_line |> Result.get_ok in
      check (Alcotest.option Alcotest.string) "v1 schema echoed"
        (Some Wire.schema_v1)
        (match Json.member "schema" v1_json with
        | Some (Json.Str s) -> Some s
        | _ -> None);
      check Alcotest.bool "no version field in a v1 reply" true
        (Json.member "version" v1_json = None);
      write_fd fd
        (Wire.request_line ~proto:Wire.V2 ~id:2
           (Request.Check
              { test = Named "mp"; models = [ "sc"; "session(ryw,mr)" ] }));
      let v2_line = read_line_fd fd in
      let v2_json = Json.of_string v2_line |> Result.get_ok in
      check (Alcotest.option Alcotest.string) "v2 schema echoed"
        (Some Wire.schema)
        (match Json.member "schema" v2_json with
        | Some (Json.Str s) -> Some s
        | _ -> None);
      check Alcotest.bool "version field in a v2 reply" true
        (Json.member "version" v2_json = Some (Json.Int Wire.version));
      let verdicts_of line =
        let r = response_of_line line in
        match r.Response.payload with
        | Response.Verdicts vs ->
            List.map
              (fun (v : Verdict.t) ->
                (v.Verdict.subject, v.Verdict.authority, v.Verdict.status))
              vs
        | _ -> Alcotest.fail "expected verdicts"
      in
      check Alcotest.bool "v1 and v2 clients see the same verdicts" true
        (verdicts_of v1_line = verdicts_of v2_line))

(* ---------------- frames ---------------- *)

let frames_drain_without_blocking () =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      let f = Frames.of_fd r in
      write_fd w "one\r\ntwo\nthr";
      check (Alcotest.option Alcotest.string) "next strips cr" (Some "one")
        (Frames.next f);
      check (Alcotest.list Alcotest.string) "drain takes complete lines only"
        [ "two" ] (Frames.drain f ~max:10);
      check (Alcotest.list Alcotest.string) "no blocking on a partial line" []
        (Frames.drain f ~max:10);
      write_fd w "ee\n";
      check (Alcotest.option Alcotest.string) "partial line completed"
        (Some "three") (Frames.next f);
      Unix.close w;
      check (Alcotest.option Alcotest.string) "eof" None (Frames.next f))

(* ---------------- sched ---------------- *)

let sched_map_in_order () =
  let s = Sched.create ~jobs:3 () in
  Fun.protect
    ~finally:(fun () -> Sched.shutdown s)
    (fun () ->
      let results = Sched.map s (List.init 40 (fun i () -> i * i)) in
      check (Alcotest.list Alcotest.int) "results in input order"
        (List.init 40 (fun i -> i * i))
        results;
      Alcotest.check_raises "task exception re-raised at submitter" Exit
        (fun () -> ignore (Sched.map s [ (fun () -> raise Exit) ]));
      check (Alcotest.list Alcotest.int) "pool survives a raising task"
        [ 7 ]
        (Sched.map s [ (fun () -> 7) ]))

(* ---------------- store ---------------- *)

let store_roundtrip () =
  let path = Filename.temp_file "smem_store" ".log" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let c1 = Cache.create ~capacity:64 () in
      let s1 = Store.attach ~path c1 in
      check Alcotest.int "fresh store replays nothing" 0 (Store.replayed s1);
      Cache.add c1 ~digest:"d1" ~model:"sc" true;
      Cache.add c1 ~digest:"d1" ~model:"pc" false;
      Cache.add c1 ~digest:"d2" ~model:"sc" true;
      check Alcotest.int "appended" 3 (Store.appended s1);
      Store.close s1;
      let c2 = Cache.create ~capacity:64 () in
      let s2 = Store.attach ~path c2 in
      check Alcotest.int "replayed" 3 (Store.replayed s2);
      check (Alcotest.option Alcotest.bool) "verdict survives restart"
        (Some false)
        (Cache.find c2 ~digest:"d1" ~model:"pc");
      check (Alcotest.option Alcotest.bool) "positive verdict too" (Some true)
        (Cache.find c2 ~digest:"d2" ~model:"sc");
      (* replay must not re-append what it just read *)
      check Alcotest.int "replay appends nothing" 0 (Store.appended s2);
      Store.close s2)

let store_tolerates_garbage_and_truncation () =
  let path = Filename.temp_file "smem_store" ".log" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let c1 = Cache.create ~capacity:64 () in
      let s1 = Store.attach ~path c1 in
      Cache.add c1 ~digest:"good" ~model:"sc" true;
      Store.close s1;
      (* simulate a crash mid-append plus stray junk *)
      let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 path in
      output_string oc "not a record at all\n";
      output_string oc "trunc sc";
      (* no verdict, no newline *)
      close_out oc;
      let c2 = Cache.create ~capacity:64 () in
      let s2 = Store.attach ~path c2 in
      check Alcotest.int "only the good record replays" 1 (Store.replayed s2);
      check (Alcotest.option Alcotest.bool) "good record intact" (Some true)
        (Cache.find c2 ~digest:"good" ~model:"sc");
      (* the store still accepts new appends after a dirty replay *)
      Cache.add c2 ~digest:"after" ~model:"sc" false;
      check Alcotest.int "appends resume" 1 (Store.appended s2);
      Store.close s2)

(* ---------------- daemon ---------------- *)

let temp_sock_path () =
  let path = Filename.temp_file "smem_daemon" ".sock" in
  Sys.remove path;
  path

let daemon_interleaved_clients () =
  let path = temp_sock_path () in
  let cache = Cache.create ~capacity:4096 () in
  let d =
    Daemon.create ~jobs:2 ~cache ~endpoints:[ Daemon.Unix_socket path ] ()
  in
  Daemon.start d;
  let names = [ "fig1"; "fig2"; "mp"; "lb"; "iriw" ] in
  let client i =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () ->
        try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_UNIX path);
        List.for_all Fun.id
          (List.mapi
             (fun j name ->
               let id = (i * 100) + j + 1 in
               write_fd fd
                 (Wire.request_line ~id
                    (Request.Check { test = Named name; models = [ "sc" ] }));
               (* request/response lockstep interleaves the clients *)
               let r = response_of_line (read_line_fd fd) in
               r.Response.id = Some id && Response.ok r)
             names))
  in
  let results = Array.make 4 false in
  let threads =
    List.init 4 (fun i ->
        Thread.create (fun () -> results.(i) <- client i) ())
  in
  List.iter Thread.join threads;
  Daemon.stop d;
  Daemon.wait d;
  Array.iteri
    (fun i ok ->
      check Alcotest.bool
        (Printf.sprintf "client %d: every reply in order and ok" i)
        true ok)
    results;
  check Alcotest.bool "socket file removed on drain" false
    (Sys.file_exists path)

let daemon_warm_restart () =
  let sock = temp_sock_path () in
  let store_path = Filename.temp_file "smem_store" ".log" in
  Sys.remove store_path;
  let names = [ "fig1"; "fig2"; "mp" ] in
  let pass () =
    let cache = Cache.create ~capacity:4096 () in
    let d =
      Daemon.create ~jobs:2 ~cache ~store:store_path
        ~endpoints:[ Daemon.Unix_socket sock ] ()
    in
    Daemon.start d;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    let totals =
      List.mapi
        (fun j name ->
          write_fd fd
            (Wire.request_line ~id:(j + 1)
               (Request.Check { test = Named name; models = [] }));
          let r = response_of_line (read_line_fd fd) in
          check Alcotest.bool (name ^ " ok") true (Response.ok r);
          (r.Response.cached, r.Response.computed))
        names
    in
    Unix.close fd;
    Daemon.stop d;
    Daemon.wait d;
    List.fold_left
      (fun (c, k) (c', k') -> (c + c', k + k'))
      (0, 0) totals
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists store_path then Sys.remove store_path)
    (fun () ->
      let _, computed_cold = pass () in
      check Alcotest.bool "cold pass computes" true (computed_cold > 0);
      (* brand-new daemon, brand-new cache, same store file *)
      let cached_warm, computed_warm = pass () in
      check Alcotest.int "warm restart computes nothing" 0 computed_warm;
      check Alcotest.bool "warm restart serves from the store" true
        (cached_warm > 0))

let () =
  Alcotest.run "serve"
    [
      ( "cache",
        [
          tc "basics" cache_basics;
          tc "bounded + fifo eviction" cache_bounded;
          tc "find_or_add" cache_find_or_add;
          tc "clear" cache_clear;
          tc "bad args" cache_rejects_bad_args;
          tc "shards on the full (digest, model) key" cache_shards_on_full_key;
          tc "parallel find_or_add: exact accounting" cache_parallel_find_or_add;
          tc "parallel find_or_add: shared keys" cache_parallel_same_key;
        ] );
      ( "service",
        tc "corpus twice: warm pass cached, verdicts stable" corpus_twice
        :: tc "structured errors" service_errors
        :: tc "models request answers the catalogue" service_models_catalogue
        :: tc "view-search boundary answers Too_large"
             service_too_large_boundary
        :: List.map QCheck_alcotest.to_alcotest
             [ cached_equals_fresh; service_renaming_hits ] );
      ( "server",
        [
          tc "in-order responses, id echo" server_answers_in_order;
          tc "bad line answered in position" server_bad_line_in_position;
          tc "second pass all cached" server_second_pass_all_cached;
          tc "partial batch answered without waiting" server_partial_batch;
          tc "malformed frame mid-stream" server_malformed_frame_mid_stream;
          tc "v1 client of a v2 server answered in kind"
            server_answers_in_kind;
        ] );
      ( "frames",
        [ tc "drain takes only what is available" frames_drain_without_blocking ]
      );
      ("sched", [ tc "map: ordered results, exceptions" sched_map_in_order ]);
      ( "store",
        [
          tc "roundtrip across restart" store_roundtrip;
          tc "garbage and truncation tolerated"
            store_tolerates_garbage_and_truncation;
        ] );
      ( "daemon",
        [
          tc "four interleaved clients, in-order replies"
            daemon_interleaved_clients;
          tc "warm restart answers from the store" daemon_warm_restart;
        ] );
    ]
