(* Tests for the serving subsystem: the bounded verdict cache, the
   request-executing service (cached verdicts must equal fresh ones),
   and the NDJSON server loop. *)

module H = Smem_core.History
module Model = Smem_core.Model
module Canon = Smem_core.Canon
module Cache = Smem_cache.Cache
module Request = Smem_api.Request
module Response = Smem_api.Response
module Verdict = Smem_api.Verdict
module Wire = Smem_api.Wire
module Service = Smem_serve.Service
module Server = Smem_serve.Server
module Registry = Smem_core.Registry
module Corpus = Smem_litmus.Corpus
module Helpers = Smem_testlib.Helpers

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---------------- cache ---------------- *)

let cache_basics () =
  let c = Cache.create ~capacity:16 () in
  check (Alcotest.option Alcotest.bool) "miss" None
    (Cache.find c ~digest:"d1" ~model:"sc");
  Cache.add c ~digest:"d1" ~model:"sc" true;
  Cache.add c ~digest:"d1" ~model:"pram" false;
  check (Alcotest.option Alcotest.bool) "hit true" (Some true)
    (Cache.find c ~digest:"d1" ~model:"sc");
  check (Alcotest.option Alcotest.bool) "hit false" (Some false)
    (Cache.find c ~digest:"d1" ~model:"pram");
  check (Alcotest.option Alcotest.bool) "other digest" None
    (Cache.find c ~digest:"d2" ~model:"sc");
  let s = Cache.stats c in
  check Alcotest.int "entries" 2 s.Cache.entries;
  check Alcotest.int "hits" 2 s.Cache.hits;
  check Alcotest.int "misses" 2 s.Cache.misses

let cache_bounded () =
  (* One shard makes eviction order deterministic: strict FIFO. *)
  let c = Cache.create ~shards:1 ~capacity:4 () in
  for i = 1 to 8 do
    Cache.add c ~digest:(string_of_int i) ~model:"sc" true
  done;
  let s = Cache.stats c in
  check Alcotest.int "bounded" 4 s.Cache.entries;
  check Alcotest.int "evictions" 4 s.Cache.evictions;
  (* the oldest four are gone, the newest four resident *)
  for i = 1 to 4 do
    check (Alcotest.option Alcotest.bool)
      (Printf.sprintf "%d evicted" i)
      None
      (Cache.find c ~digest:(string_of_int i) ~model:"sc")
  done;
  for i = 5 to 8 do
    check (Alcotest.option Alcotest.bool)
      (Printf.sprintf "%d resident" i)
      (Some true)
      (Cache.find c ~digest:(string_of_int i) ~model:"sc")
  done

let cache_find_or_add () =
  let c = Cache.create ~capacity:8 () in
  let calls = ref 0 in
  let compute () =
    incr calls;
    true
  in
  let v1, cached1 = Cache.find_or_add c ~digest:"d" ~model:"sc" compute in
  let v2, cached2 = Cache.find_or_add c ~digest:"d" ~model:"sc" compute in
  check Alcotest.bool "first verdict" true v1;
  check Alcotest.bool "first fresh" false cached1;
  check Alcotest.bool "second verdict" true v2;
  check Alcotest.bool "second cached" true cached2;
  check Alcotest.int "computed once" 1 !calls

let cache_clear () =
  let c = Cache.create ~capacity:8 () in
  Cache.add c ~digest:"d" ~model:"sc" true;
  Cache.clear c;
  check Alcotest.int "empty" 0 (Cache.stats c).Cache.entries;
  check (Alcotest.option Alcotest.bool) "gone" None
    (Cache.find c ~digest:"d" ~model:"sc")

let cache_rejects_bad_args () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Cache.create: capacity must be positive") (fun () ->
      ignore (Cache.create ~capacity:0 ()))

(* ---------------- service: cached = fresh ---------------- *)

let cached_equals_fresh =
  QCheck.Test.make ~name:"cached verdict equals fresh verdict" ~count:150
    (Helpers.arb_history ~labeled_allowed:`Mixed ())
    (fun h ->
      let service =
        Service.create ~cache:(Cache.create ~capacity:1024 ()) ()
      in
      List.for_all
        (fun m ->
          let fresh = Model.check m h in
          let v1, c1 = Service.check_model service m h in
          let v2, c2 = Service.check_model service m h in
          v1 = fresh && v2 = fresh && (not c1) && c2)
        (List.filter_map Registry.find [ "sc"; "causal"; "pram"; "coh" ]))

let service_renaming_hits =
  QCheck.Test.make ~name:"renamed resubmission is a cache hit" ~count:100
    (Helpers.arb_history ())
    (fun h ->
      let service =
        Service.create ~cache:(Cache.create ~capacity:1024 ()) ()
      in
      let renamed =
        let rows =
          List.init (H.nprocs h) (fun p ->
              H.proc_ops h (H.nprocs h - 1 - p)
              |> Array.to_list
              |> List.map (fun id ->
                     let op = H.op h id in
                     let loc = "q" ^ H.loc_name h op.Smem_core.Op.loc in
                     let v = op.Smem_core.Op.value in
                     if Smem_core.Op.is_write op then H.write loc v
                     else H.read loc v))
        in
        H.make rows
      in
      let sc = Option.get (Registry.find "sc") in
      let v1, _ = Service.check_model service sc h in
      let v2, cached = Service.check_model service sc renamed in
      v1 = v2 && cached)

(* ---------------- service: corpus twice ---------------- *)

let corpus_twice () =
  let service =
    Service.create ~cache:(Cache.create ~capacity:65536 ()) ()
  in
  let req = Request.Corpus { models = [] } in
  let first = Service.handle service req in
  let second = Service.handle service req in
  let verdicts r =
    match r.Response.payload with
    | Response.Verdicts vs -> vs
    | _ -> Alcotest.fail "corpus did not answer with verdicts"
  in
  let v1 = verdicts first and v2 = verdicts second in
  let cells = List.length Corpus.all * List.length (Registry.all) in
  check Alcotest.int "all cells" cells (List.length v1);
  check Alcotest.int "first pass computed" cells first.Response.computed;
  check Alcotest.int "second pass cached" cells second.Response.cached;
  check Alcotest.int "second pass computed" 0 second.Response.computed;
  check Alcotest.bool "every second-pass verdict marked cached" true
    (List.for_all (fun v -> v.Verdict.cached) v2);
  (* statuses agree pairwise, and with a fresh uncached check *)
  List.iter2
    (fun a b ->
      check Alcotest.string "subject" a.Verdict.subject b.Verdict.subject;
      check Alcotest.string "authority" a.Verdict.authority b.Verdict.authority;
      check Alcotest.bool "status equal" true
        (a.Verdict.status = b.Verdict.status))
    v1 v2;
  let fresh = Service.create () in
  List.iter
    (fun v ->
      let test = Corpus.find v.Verdict.subject |> Option.get in
      let model = Registry.find v.Verdict.authority |> Option.get in
      let expect, _ =
        Service.check_model fresh model test.Smem_litmus.Test.history
      in
      check Alcotest.bool
        (v.Verdict.subject ^ "/" ^ v.Verdict.authority ^ " matches fresh")
        true
        (v.Verdict.status = Some (Verdict.status_of_bool expect)))
    v2

(* ---------------- service: structured errors ---------------- *)

let service_errors () =
  let s = Service.create () in
  let code r =
    match r.Response.payload with
    | Response.Error { code; _ } -> Some code
    | _ -> None
  in
  let got req = code (Service.handle s req) in
  check Alcotest.bool "unknown model" true
    (got (Request.Check { test = Named "fig1"; models = [ "zz" ] })
    = Some Response.Unknown_model);
  check Alcotest.bool "unknown test" true
    (got (Request.Check { test = Named "no-such-test"; models = [] })
    = Some Response.Unknown_test);
  check Alcotest.bool "bad litmus" true
    (got (Request.Check { test = Inline "]["; models = [] })
    = Some Response.Bad_request);
  check Alcotest.bool "id echoed" true
    ((Service.handle ~id:9 s (Request.Corpus { models = [ "sc" ] })).Response.id
    = Some 9)

(* ---------------- server loop ---------------- *)

(* Drive the NDJSON loop through temp files (the loop takes plain
   channels, so no process machinery is needed). *)
let run_server ?batch lines =
  let in_path = Filename.temp_file "smem_serve_in" ".ndjson" in
  let out_path = Filename.temp_file "smem_serve_out" ".ndjson" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove in_path;
      Sys.remove out_path)
    (fun () ->
      let oc = open_out in_path in
      List.iter (output_string oc) lines;
      close_out oc;
      let ic = open_in in_path and oc = open_out out_path in
      Server.run ?batch ~jobs:2 ~cache:(Cache.create ~capacity:4096 ()) ic oc;
      close_in ic;
      close_out oc;
      let ic = open_in out_path in
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read []))

let server_answers_in_order () =
  let reqs =
    [
      Wire.request_line ~id:10
        (Request.Check { test = Named "fig1"; models = [ "sc" ] });
      Wire.request_line (Request.Check { test = Named "fig2"; models = [ "sc" ] });
      Wire.request_line ~id:30
        (Request.Check { test = Named "mp"; models = [ "causal" ] });
    ]
  in
  let out = run_server ~batch:2 reqs in
  check Alcotest.int "one response per request" 3 (List.length out);
  let parsed =
    List.map
      (fun l ->
        match Wire.parse_response_line l with
        | Ok r -> r
        | Error e -> Alcotest.failf "unparseable response %S: %s" l e)
      out
  in
  check
    (Alcotest.list (Alcotest.option Alcotest.int))
    "ids echoed, arrival number otherwise" [ Some 10; Some 2; Some 30 ]
    (List.map (fun r -> r.Response.id) parsed);
  List.iter
    (fun r -> check Alcotest.bool "ok" true (Response.ok r))
    parsed

let server_bad_line_in_position () =
  let reqs =
    [
      Wire.request_line (Request.Check { test = Named "fig1"; models = [ "sc" ] });
      "this is not json\n";
      Wire.request_line (Request.Check { test = Named "fig2"; models = [ "sc" ] });
    ]
  in
  let out = run_server reqs in
  check Alcotest.int "three responses" 3 (List.length out);
  let parsed =
    List.map (fun l -> Wire.parse_response_line l |> Result.get_ok) out
  in
  let statuses = List.map Response.ok parsed in
  check (Alcotest.list Alcotest.bool) "error in position" [ true; false; true ]
    statuses;
  match (List.nth parsed 1).Response.payload with
  | Response.Error { code = Response.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "middle response is not a bad-request error"

let server_second_pass_all_cached () =
  (* The serve-smoke CI property, in-process: the same corpus sent
     twice over one connection answers the second pass entirely from
     cache, with identical statuses. *)
  let reqs =
    List.map
      (fun t ->
        Wire.request_line
          (Request.Check { test = Named t.Smem_litmus.Test.name; models = [] }))
      Corpus.all
  in
  let out = run_server (reqs @ reqs) in
  let parsed =
    List.map (fun l -> Wire.parse_response_line l |> Result.get_ok) out
  in
  let n = List.length Corpus.all in
  check Alcotest.int "responses" (2 * n) (List.length parsed);
  let firsts = List.filteri (fun i _ -> i < n) parsed in
  let seconds = List.filteri (fun i _ -> i >= n) parsed in
  List.iter2
    (fun a b ->
      check Alcotest.int "warm pass fully cached" 0 b.Response.computed;
      match (a.Response.payload, b.Response.payload) with
      | Response.Verdicts va, Response.Verdicts vb ->
          List.iter2
            (fun x y ->
              check Alcotest.bool "status stable" true
                (x.Verdict.status = y.Verdict.status))
            va vb
      | _ -> Alcotest.fail "corpus check did not answer verdicts")
    firsts seconds

let () =
  Alcotest.run "serve"
    [
      ( "cache",
        [
          tc "basics" cache_basics;
          tc "bounded + fifo eviction" cache_bounded;
          tc "find_or_add" cache_find_or_add;
          tc "clear" cache_clear;
          tc "bad args" cache_rejects_bad_args;
        ] );
      ( "service",
        tc "corpus twice: warm pass cached, verdicts stable" corpus_twice
        :: tc "structured errors" service_errors
        :: List.map QCheck_alcotest.to_alcotest
             [ cached_equals_fresh; service_renaming_hits ] );
      ( "server",
        [
          tc "in-order responses, id echo" server_answers_in_order;
          tc "bad line answered in position" server_bad_line_in_position;
          tc "second pass all cached" server_second_pass_all_cached;
        ] );
    ]
