(* Golden conformance suite: print the verdict of every model on every
   corpus test, one line per cell, in a stable order.  The output is
   diffed against test/golden/verdicts.expected by a dune rule; after an
   intentional verdict change, regenerate with

     dune runtest --auto-promote

   and review the diff like any other source change.  An unintentional
   diff here is a conformance regression. *)

module Model = Smem_core.Model
module Test = Smem_litmus.Test

let () =
  List.iter
    (fun (t : Test.t) ->
      List.iter
        (fun (m : Model.t) ->
          Printf.printf "%-18s %-12s %s\n" t.Test.name m.Model.key
            (if Model.check m t.Test.history then "allowed" else "forbidden"))
        Smem_core.Registry.all)
    Smem_litmus.Corpus.all
