(* Tests of the memory-model checkers:

   - every stated expectation of the litmus corpus, as one test case per
     (test, model) pair — this covers the paper's Figures 1-4 and the §5
     Bakery result;
   - containment properties on random histories (the arrows of
     Figure 5, plus the extended family);
   - structural properties of witnesses;
   - the TSO/operational-TSO relationship, including the store-forwarding
     counterexample documented in EXPERIMENTS.md. *)

module H = Smem_core.History
module Model = Smem_core.Model
module Registry = Smem_core.Registry
module Test = Smem_litmus.Test
module Corpus = Smem_litmus.Corpus
module Helpers = Smem_testlib.Helpers

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let model key =
  match Registry.find key with
  | Some m -> m
  | None -> Alcotest.failf "unknown model %s" key

let allows key h = Model.check (model key) h

(* ---------------- corpus expectations ---------------- *)

let corpus_cases =
  List.concat_map
    (fun (test : Test.t) ->
      List.map
        (fun (key, verdict) ->
          tc
            (Printf.sprintf "%s / %s" test.Test.name key)
            (fun () ->
              let got = allows key test.Test.history in
              check Alcotest.bool "verdict" (Test.bool_of_verdict verdict) got))
        test.Test.expectations)
    Corpus.all

(* ---------------- paper-specific checks ---------------- *)

(* §3.2 exhibits explicit TSO views for Figure 1; the witness machinery
   must produce views with the same write order in every view. *)
let tso_views_share_write_order () =
  let h = Corpus.fig1_tso.Test.history in
  match Smem_core.Tso.witness h with
  | None -> Alcotest.fail "fig1 must be TSO"
  | Some w ->
      let write_projection (_, seq) =
        List.filter (fun id -> Smem_core.Op.is_write (H.op h id)) seq
      in
      let projections = List.map write_projection w.Smem_core.Witness.views in
      (match projections with
      | first :: rest ->
          List.iter
            (fun proj ->
              check (Alcotest.list Alcotest.int) "same write order" first proj)
            rest
      | [] -> Alcotest.fail "no views")

(* Witnesses of engine-B models are independently validated. *)
let pram_witness_valid () =
  let h = Corpus.fig3_pram_not_tso.Test.history in
  match Smem_core.Pram.witness h with
  | None -> Alcotest.fail "fig3 must be PRAM"
  | Some w ->
      List.iter
        (fun (p, seq) ->
          check Alcotest.bool "population" true
            (Helpers.correct_view_population h p seq);
          check Alcotest.bool "legal" true (Helpers.legal_sequence h seq);
          check Alcotest.bool "po respected" true
            (Helpers.respects h (Smem_core.Orders.po h) seq))
        w.Smem_core.Witness.views

let causal_witness_valid () =
  let h = Corpus.fig4_causal_not_tso.Test.history in
  match Smem_core.Causal.witness h with
  | None -> Alcotest.fail "fig4 must be causal"
  | Some w ->
      List.iter
        (fun (p, seq) ->
          check Alcotest.bool "population" true
            (Helpers.correct_view_population h p seq);
          check Alcotest.bool "legal" true (Helpers.legal_sequence h seq);
          (* causal ⊇ po *)
          check Alcotest.bool "po respected" true
            (Helpers.respects h (Smem_core.Orders.po h) seq))
        w.Smem_core.Witness.views

(* The store-forwarding counterexample: the paper's view-based TSO
   rejects sb+rfi while the operational machine accepts it — the paper's
   §3.2 equivalence claim fails on this history. *)
let tso_forwarding_divergence () =
  let h =
    match Corpus.find "sb+rfi" with
    | Some t -> t.Test.history
    | None -> Alcotest.fail "sb+rfi missing from corpus"
  in
  check Alcotest.bool "view-based TSO forbids" false (Smem_core.Tso.check h);
  check Alcotest.bool "operational TSO allows" true
    (Smem_core.Tso_operational.check h)

(* An empty-ish history is allowed by everything. *)
let trivial_history_everywhere () =
  let h = H.make [ [ H.write "x" 1 ]; [ H.read "x" 0 ] ] in
  List.iter
    (fun (m : Model.t) ->
      check Alcotest.bool (m.Model.key ^ " allows trivial") true (Model.check m h))
    Registry.all

(* A read of a value nobody wrote is forbidden by everything. *)
let unwritable_value_nowhere () =
  let h = H.make [ [ H.write "x" 1 ]; [ H.read "x" 7 ] ] in
  List.iter
    (fun (m : Model.t) ->
      check Alcotest.bool (m.Model.key ^ " forbids junk") false (Model.check m h))
    Registry.all

(* Single-processor histories: every model must coincide with plain
   sequential semantics. *)
let single_processor_agreement () =
  let legal = H.make [ [ H.write "x" 1; H.read "x" 1; H.write "x" 2; H.read "x" 2 ] ] in
  let illegal = H.make [ [ H.write "x" 1; H.read "x" 0 ] ] in
  List.iter
    (fun (m : Model.t) ->
      check Alcotest.bool (m.Model.key ^ " sequential ok") true (Model.check m legal);
      check Alcotest.bool
        (m.Model.key ^ " sequential violation caught")
        false (Model.check m illegal))
    Registry.all

(* ---------------- containment properties ---------------- *)

let containment ?(nlocs = 2) ~name stronger weaker ~labeled () =
  let arb = Helpers.arb_history ~labeled_allowed:labeled ~nlocs () in
  QCheck.Test.make ~name ~count:150 arb (fun h ->
      if Model.check (model stronger) h then Model.check (model weaker) h else true)

let containment_props =
  [
    containment ~name:"SC ⊆ TSO" "sc" "tso" ~labeled:`No ();
    containment ~name:"TSO ⊆ PC" "tso" "pc" ~labeled:`No ();
    containment ~name:"TSO ⊆ Causal" "tso" "causal" ~labeled:`No ();
    containment ~name:"PC ⊆ PRAM" "pc" "pram" ~labeled:`No ();
    containment ~name:"Causal ⊆ PRAM" "causal" "pram" ~labeled:`No ();
    containment ~name:"PRAM ⊆ Slow" "pram" "slow" ~labeled:`No ();
    containment ~name:"Slow ⊆ Local" "slow" "local" ~labeled:`No ();
    containment ~name:"PC ⊆ Coherence" "pc" "coh" ~labeled:`No ();
    containment ~name:"PC-G ⊆ PRAM" "pc-g" "pram" ~labeled:`No ();
    containment ~name:"PC-G ⊆ Coherence" "pc-g" "coh" ~labeled:`No ();
    containment ~name:"CausalCoh ⊆ Causal" "causal-coh" "causal" ~labeled:`No ();
    containment ~name:"CausalCoh ⊆ Coherence" "causal-coh" "coh" ~labeled:`No ();
    containment ~name:"SC ⊆ CausalCoh" "sc" "causal-coh" ~labeled:`No ();
    containment ~nlocs:3 ~name:"SC ⊆ RC_sc (separated sync)" "sc" "rc-sc"
      ~labeled:`Separated ();
    containment ~name:"RC_sc ⊆ RC_pc (mixed labels)" "rc-sc" "rc-pc"
      ~labeled:`Mixed ();
    containment ~name:"TSO ⊆ TSO-operational" "tso" "tso-op" ~labeled:`No ();
    containment ~name:"SC ⊆ WO (mixed labels)" "sc" "wo" ~labeled:`Mixed ();
    (* The extended families: partition consistency sits between PC-G
       and coherence (finer partitions are weaker), the session
       guarantees weaken monotonically as flags are dropped, and PRAM
       implies the three same-session guarantees. *)
    containment ~name:"PC-G ⊆ PC-part(2)" "pc-g" "pc-part(blocks=2)"
      ~labeled:`No ();
    containment ~nlocs:3 ~name:"PC-part(2) ⊆ PC-part(4)" "pc-part(blocks=2)"
      "pc-part(blocks=4)" ~labeled:`No ();
    containment ~name:"PC-part(4) ⊆ Coherence" "pc-part(blocks=4)" "coh"
      ~labeled:`No ();
    containment ~name:"PRAM ⊆ Session(ryw,mr,mw)" "pram" "session(ryw,mr,mw)"
      ~labeled:`No ();
    containment ~name:"SC ⊆ Session(ryw,mr,mw,wfr)" "sc"
      "session(ryw,mr,mw,wfr)" ~labeled:`No ();
    containment ~name:"Session(ryw,mr,mw,wfr) ⊆ Session(ryw,mr,mw)"
      "session(ryw,mr,mw,wfr)" "session(ryw,mr,mw)" ~labeled:`No ();
    containment ~name:"Session(ryw,mr,mw) ⊆ Session(ryw,mr)"
      "session(ryw,mr,mw)" "session(ryw,mr)" ~labeled:`No ();
  ]

(* The family extremes collapse onto catalogued models, extensionally:
   one partition block is PC-G (the global acyclicity pre-check PC-G
   also runs is redundant there), singleton blocks are coherence, and
   object-causal over register-only histories — the generator emits no
   queue or counter operations — is exactly causal. *)
let family_extremes_props =
  let equiv ~name a b arb =
    QCheck.Test.make ~name ~count:150 arb (fun h ->
        Model.check (model a) h = Model.check (model b) h)
  in
  [
    equiv ~name:"PC-part(1) = PC-G" "pc-part(blocks=1)" "pc-g"
      (Helpers.arb_history ());
    equiv ~name:"PC-part(64) = Coherence (singleton blocks)"
      "pc-part(blocks=64)" "coh"
      (Helpers.arb_history ~nlocs:3 ());
    equiv ~name:"Causal-obj = Causal on register histories" "causal-obj"
      "causal" (Helpers.arb_history ());
  ]

(* PRAM witnesses are always population-correct, legal, po-respecting. *)
let prop_pram_witness =
  QCheck.Test.make ~name:"PRAM witnesses are valid" ~count:200
    (Helpers.arb_history ()) (fun h ->
      match Smem_core.Pram.witness h with
      | None -> true
      | Some w ->
          List.for_all
            (fun (p, seq) ->
              Helpers.correct_view_population h p seq
              && Helpers.legal_sequence h seq
              && Helpers.respects h (Smem_core.Orders.po h) seq)
            w.Smem_core.Witness.views)

(* SC witnesses are legal total orders of all operations respecting po. *)
let prop_sc_witness =
  QCheck.Test.make ~name:"SC witnesses are valid" ~count:200
    (Helpers.arb_history ()) (fun h ->
      match Smem_core.Sc.witness h with
      | None -> true
      | Some w -> (
          match w.Smem_core.Witness.views with
          | [ (_, seq) ] ->
              List.length seq = H.nops h
              && Helpers.legal_sequence h seq
              && Helpers.respects h (Smem_core.Orders.po h) seq
          | _ -> false))

(* Anything the SC checker accepts, the dumbest possible reference — a
   brute-force enumeration of all interleavings with a value check —
   also accepts, and vice versa. *)
let sc_reference h =
  let po = Smem_core.Orders.po h in
  let found = ref false in
  ignore
    (Smem_relation.Rel.linear_extensions po ~f:(fun order ->
         if Helpers.legal_sequence h (Array.to_list order) then begin
           found := true;
           true
         end
         else false));
  !found

(* §6: atomic memory coincides with SC exactly when no timing
   information is present — generated histories never carry it. *)
let prop_atomic_is_sc_untimed =
  QCheck.Test.make ~name:"Atomic = SC on untimed histories" ~count:200
    (Helpers.arb_history ()) (fun h ->
      Smem_core.Atomic.check h = Smem_core.Sc.check h)

let prop_atomic_subset_sc_timed =
  QCheck.Test.make ~name:"Atomic ⊆ SC on timed histories" ~count:200
    (Helpers.arb_timed_history ()) (fun h ->
      if Smem_core.Atomic.check h then Smem_core.Sc.check h else true)

let prop_sc_reference =
  QCheck.Test.make ~name:"SC checker = brute-force interleavings" ~count:200
    (Helpers.arb_history ()) (fun h -> Smem_core.Sc.check h = sc_reference h)

(* The view-based TSO is equivalent to the operational machine on
   histories without same-location read-back (the divergence is
   store-forwarding; restricting reads to values of other processors'
   writes removes it).  Rather than shaping the generator, we assert the
   one-sided containment here and pin the known counterexample above. *)

(* §2/§7: composing the three parameters reproduces the built-in
   models exactly — the paper's "the parameters can be varied to
   describe the existing memories" as an executable equivalence. *)
let composed_equivalences =
  let module B = Smem_core.Build in
  let composed =
    [
      ( "sc",
        B.make ~key:"c-sc" ~name:"composed SC" ~operations:`All_ops
          ~mutual:`Total_agreement ~orderings:[ `Po ] () );
      ( "tso",
        B.make ~key:"c-tso" ~name:"composed TSO" ~operations:`Writes_of_others
          ~mutual:`Global_write_order ~orderings:[ `Ppo ] () );
      ( "pc",
        B.make ~key:"c-pc" ~name:"composed PC" ~operations:`Writes_of_others
          ~mutual:`Coherence ~orderings:[ `Semi_causal ] () );
      ( "pc-g",
        B.make ~key:"c-pcg" ~name:"composed PC-G" ~operations:`Writes_of_others
          ~mutual:`Coherence ~orderings:[ `Po ] () );
      ( "causal",
        B.make ~key:"c-causal" ~name:"composed causal"
          ~operations:`Writes_of_others ~mutual:`No_agreement
          ~orderings:[ `Causal ] () );
      ( "pram",
        B.make ~key:"c-pram" ~name:"composed PRAM" ~operations:`Writes_of_others
          ~mutual:`No_agreement ~orderings:[ `Po ] () );
      ( "slow",
        B.make ~key:"c-slow" ~name:"composed slow" ~operations:`Writes_of_others
          ~mutual:`No_agreement ~orderings:[ `Own_po; `Po_loc ] () );
      ( "local",
        B.make ~key:"c-local" ~name:"composed local"
          ~operations:`Writes_of_others ~mutual:`No_agreement
          ~orderings:[ `Own_po ] () );
    ]
  in
  List.map
    (fun (builtin_key, composed_model) ->
      QCheck.Test.make
        ~name:(Printf.sprintf "composed %s = built-in %s" builtin_key builtin_key)
        ~count:120 (Helpers.arb_history ()) (fun h ->
          Model.check composed_model h = Model.check (model builtin_key) h))
    composed

let build_validation () =
  let module B = Smem_core.Build in
  Alcotest.check_raises "total agreement needs all ops"
    (Invalid_argument "Build.make: total agreement requires all operations in views")
    (fun () ->
      ignore
        (B.make ~key:"x" ~name:"x" ~operations:`Writes_of_others
           ~mutual:`Total_agreement ~orderings:[ `Po ] ()));
  Alcotest.check_raises "semi-causality needs coherence"
    (Invalid_argument "Build.make: semi-causality needs a coherence witness")
    (fun () ->
      ignore
        (B.make ~key:"x" ~name:"x" ~operations:`Writes_of_others
           ~mutual:`No_agreement ~orderings:[ `Semi_causal ] ()));
  check Alcotest.bool "parsers accept CLI spellings" true
    (B.parse_operations "writes" = Ok `Writes_of_others
    && B.parse_mutual "global-writes" = Ok `Global_write_order
    && B.parse_ordering "semi-causal" = Ok `Semi_causal);
  check Alcotest.bool "parsers reject junk" true
    (Result.is_error (B.parse_ordering "junk"))

(* Generic invariant: every witness any model returns is made of
   value-legal views — a read in a view always returns the most recent
   write's value (or 0).  This holds across both engines and every
   model because engine A places reads inside their writer's coherence
   window and engine B checks legality during construction. *)
let prop_all_witnesses_legal =
  QCheck.Test.make ~name:"every model's witness views are legal" ~count:60
    (Helpers.arb_history ~labeled_allowed:`Mixed ~max_procs:3 ~max_ops:2 ())
    (fun h ->
      List.for_all
        (fun (m : Model.t) ->
          match m.Model.witness h with
          | None -> true
          | Some w ->
              List.for_all
                (fun (_, seq) -> Helpers.legal_sequence h seq)
                w.Smem_core.Witness.views)
        Registry.all)

let () =
  Alcotest.run "models"
    [
      ("corpus expectations", corpus_cases);
      ( "paper specifics",
        [
          tc "TSO witness views share one write order" tso_views_share_write_order;
          tc "PRAM witness is valid" pram_witness_valid;
          tc "causal witness is valid" causal_witness_valid;
          tc "TSO store-forwarding divergence" tso_forwarding_divergence;
          tc "trivial history allowed everywhere" trivial_history_everywhere;
          tc "unwritable value forbidden everywhere" unwritable_value_nowhere;
          tc "single-processor agreement" single_processor_agreement;
          tc "Build validation and parsers" build_validation;
        ] );
      ( "containment properties",
        List.map QCheck_alcotest.to_alcotest
          (containment_props @ family_extremes_props
          @ [
              prop_pram_witness;
              prop_sc_witness;
              prop_sc_reference;
              prop_atomic_is_sc_untimed;
              prop_atomic_subset_sc_timed;
              prop_all_witnesses_legal;
            ]
          @ composed_equivalences)
      );
    ]
