(* The deterministic simulation harness, tested on itself:
   determinism witnesses, the torn-tail store regression the harness
   found, fault survival, bug detection with schedule shrinking, and
   the generic list shrinker underneath it. *)

module Sim = Smem_sim.Sim
module Schedule = Smem_sim.Schedule
module Frames = Smem_serve.Frames
module Store = Smem_serve.Store
module Cache = Smem_cache.Cache
module Shrink = Smem_fuzz.Shrink

let cfg ?(faults = Schedule.default_faults) ?(store = true) () =
  { Sim.default with Sim.faults; store }

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Schedules                                                           *)

let test_schedule_roundtrip () =
  let rng = Random.State.make [| 1; 2 |] in
  for _ = 1 to 25 do
    let evs =
      Schedule.generate rng ~clients:3 ~steps:50 ~faults:Schedule.all_faults
    in
    let s = Schedule.to_string evs in
    match Schedule.of_string s with
    | Error e -> Alcotest.fail e
    | Ok evs' ->
        Alcotest.(check bool) "round trip" true (evs = evs');
        Alcotest.(check string) "stable" s (Schedule.to_string evs')
  done

let test_schedule_rejects_garbage () =
  (match Schedule.of_string "d0:12 bogus s1" with
  | Ok _ -> Alcotest.fail "accepted a bogus token"
  | Error e -> Alcotest.(check bool) "names the token" true (contains e "bogus"));
  match Schedule.faults_of_string "worker-crash,nope" with
  | Ok _ -> Alcotest.fail "accepted an unknown fault"
  | Error e -> Alcotest.(check bool) "names the fault" true (contains e "nope")

(* ------------------------------------------------------------------ *)
(* Determinism: the harness's whole reason to exist                    *)

let cases n = List.init n (fun i -> i + 1)

let test_determinism () =
  let a = Sim.run (cfg ()) ~seed:7 ~cases:(cases 10) in
  let b = Sim.run (cfg ()) ~seed:7 ~cases:(cases 10) in
  Alcotest.(check int) "clean run" 0 (List.length a.Sim.failures);
  List.iter2
    (fun (x : Sim.report) (y : Sim.report) ->
      Alcotest.(check string) "digest identical" x.Sim.digest y.Sim.digest;
      Alcotest.(check string) "event log byte-identical" x.Sim.log y.Sim.log)
    a.Sim.reports b.Sim.reports

let test_determinism_across_jobs () =
  let seq = Sim.run ~jobs:1 (cfg ()) ~seed:13 ~cases:(cases 8) in
  let par = Sim.run ~jobs:4 (cfg ()) ~seed:13 ~cases:(cases 8) in
  List.iter2
    (fun (x : Sim.report) (y : Sim.report) ->
      Alcotest.(check int) "case order preserved" x.Sim.case y.Sim.case;
      Alcotest.(check string) "parallel digest identical" x.Sim.digest
        y.Sim.digest)
    seq.Sim.reports par.Sim.reports

(* ------------------------------------------------------------------ *)
(* Benign faults must be survivable                                    *)

let test_each_fault_clean () =
  List.iter
    (fun fault ->
      let o = Sim.run (cfg ~faults:[ fault ] ()) ~seed:9 ~cases:(cases 5) in
      match o.Sim.failures with
      | [] -> ()
      | f :: _ ->
          Alcotest.failf "fault %s: case %d: %s" (Schedule.fault_name fault)
            f.Sim.case f.Sim.reason)
    Schedule.default_faults

let test_worker_crash_in_position () =
  (* five requests land at once, the worker crashes mid-batch: the
     session answers internal errors in position and keeps going *)
  let schedule =
    [
      Schedule.Deliver { conn = 0; bytes = 10_000 };
      Schedule.Crash_worker;
      Schedule.Step 0;
    ]
  in
  let c = cfg ~faults:[ Schedule.Worker_crash ] () in
  let r = Sim.run_case ~schedule c ~seed:5 ~case:2 in
  (match r.Sim.failure with
  | Some f -> Alcotest.failf "crash not survived: %s" f.Sim.reason
  | None -> ());
  Alcotest.(check bool) "the crash actually fired" true
    (contains r.Sim.log "worker crashed")

let test_kill_mid_append_replay () =
  (* Regression: compute (store appends), kill the store mid-append
     (torn tail), then compute more.  Store.attach used to append the
     next record straight onto the torn bytes, splicing two records
     into garbage — found by this harness, fixed by sealing the tail. *)
  let schedule =
    [
      Schedule.Deliver { conn = 0; bytes = 10_000 };
      Schedule.Step 0;
      Schedule.Kill_store;
      Schedule.Deliver { conn = 1; bytes = 10_000 };
    ]
  in
  for case = 1 to 10 do
    let r = Sim.run_case ~schedule (cfg ()) ~seed:11 ~case in
    match r.Sim.failure with
    | None -> ()
    | Some f -> Alcotest.failf "case %d: %s" case f.Sim.reason
  done

let test_store_heals_torn_tail () =
  (* the same regression, at the Store level *)
  let path = Filename.temp_file "smem-test" ".store" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let c1 = Cache.create ~capacity:8 () in
      let s1 = Store.attach ~path c1 in
      Cache.add c1 ~digest:"aaaa" ~model:"sc" true;
      Store.close s1;
      (* tear the tail mid-append *)
      let content = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub content 0 (String.length content - 3)));
      let c2 = Cache.create ~capacity:8 () in
      let s2 = Store.attach ~path c2 in
      Alcotest.(check int) "torn record skipped" 0 (Store.replayed s2);
      Cache.add c2 ~digest:"bbbb" ~model:"sc" false;
      Store.close s2;
      let c3 = Cache.create ~capacity:8 () in
      let s3 = Store.attach ~path c3 in
      Alcotest.(check int) "record appended after the torn tail survives" 1
        (Store.replayed s3);
      Store.close s3)

(* ------------------------------------------------------------------ *)
(* A deliberate bug must be caught, shrunk, and replayable             *)

let test_bug_caught_and_shrunk () =
  let c = cfg ~faults:[ Schedule.Bug_cache_corrupt ] () in
  let schedule =
    [
      Schedule.Deliver { conn = 0; bytes = 10_000 };
      Schedule.Corrupt_cache;
    ]
  in
  let r = Sim.run_case ~schedule c ~seed:3 ~case:1 in
  match r.Sim.failure with
  | None -> Alcotest.fail "corrupted cache went undetected"
  | Some f ->
      Alcotest.(check bool) "divergence named" true
        (contains f.Sim.reason "diverged");
      Alcotest.(check bool) "schedule minimized, non-empty" true
        (f.Sim.schedule <> [] && List.length f.Sim.schedule <= 2);
      (* the minimized schedule must reproduce the failure verbatim *)
      let r2 = Sim.run_case ~schedule:f.Sim.schedule c ~seed:3 ~case:1 in
      Alcotest.(check bool) "shrunk schedule still fails" true
        (r2.Sim.failure <> None);
      Alcotest.(check bool) "replay command printable" true
        (contains (Sim.replay_command c f) "--schedule")

let test_bug_caught_in_campaign () =
  (* generated schedules with the bug fault enabled must trip it *)
  let c = cfg ~faults:(Schedule.Bug_cache_corrupt :: Schedule.default_faults) () in
  let o = Sim.run c ~seed:42 ~cases:(cases 40) in
  Alcotest.(check bool) "at least one case caught the bug" true
    (o.Sim.failures <> [])

(* ------------------------------------------------------------------ *)
(* The generic list shrinker                                           *)

let test_shrink_list () =
  let r, steps = Shrink.list ~keep:(List.mem 7) (List.init 10 (fun i -> i + 1)) in
  Alcotest.(check (list int)) "single witness survives" [ 7 ] r;
  Alcotest.(check bool) "steps counted" true (steps > 0);
  let r2, s2 = Shrink.list ~keep:(fun _ -> false) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "failing input unchanged" [ 1; 2; 3 ] r2;
  Alcotest.(check int) "no steps on failing input" 0 s2;
  let r3, _ =
    Shrink.list ~keep:(fun l -> List.length l >= 3) (List.init 16 Fun.id)
  in
  Alcotest.(check int) "stops at the floor" 3 (List.length r3);
  let r4, s4 = Shrink.list ~keep:(fun _ -> true) [] in
  Alcotest.(check (list int)) "empty stays empty" [] r4;
  Alcotest.(check int) "no steps on empty" 0 s4

(* ------------------------------------------------------------------ *)
(* The frame reader over an in-memory source                           *)

let test_frames_chunked_source () =
  (* one byte per read: line reassembly must span reads *)
  let data = "alpha\nbeta\ngamma" in
  let pos = ref 0 in
  let source =
    {
      Frames.read =
        (fun b off _len ->
          if !pos >= String.length data then 0
          else begin
            Bytes.set b off data.[!pos];
            incr pos;
            1
          end);
      readable = (fun () -> true);
    }
  in
  let fr = Frames.of_source source in
  Alcotest.(check (option string)) "first" (Some "alpha") (Frames.next fr);
  Alcotest.(check (option string)) "second" (Some "beta") (Frames.next fr);
  Alcotest.(check (option string)) "unterminated tail at EOF" (Some "gamma")
    (Frames.next fr);
  Alcotest.(check (option string)) "end" None (Frames.next fr)

let () =
  Alcotest.run "sim"
    [
      ( "schedule",
        [
          Alcotest.test_case "round trip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_schedule_rejects_garbage;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, identical logs" `Quick
            test_determinism;
          Alcotest.test_case "parallel equals sequential" `Quick
            test_determinism_across_jobs;
        ] );
      ( "faults",
        [
          Alcotest.test_case "each benign fault survivable" `Slow
            test_each_fault_clean;
          Alcotest.test_case "worker crash answered in position" `Quick
            test_worker_crash_in_position;
          Alcotest.test_case "store kill mid-append replays" `Quick
            test_kill_mid_append_replay;
          Alcotest.test_case "store heals a torn tail" `Quick
            test_store_heals_torn_tail;
        ] );
      ( "detection",
        [
          Alcotest.test_case "deliberate bug caught and shrunk" `Quick
            test_bug_caught_and_shrunk;
          Alcotest.test_case "deliberate bug caught in campaign" `Slow
            test_bug_caught_in_campaign;
        ] );
      ( "shrink",
        [ Alcotest.test_case "generic list shrinker" `Quick test_shrink_list ]
      );
      ( "frames",
        [
          Alcotest.test_case "chunked in-memory source" `Quick
            test_frames_chunked_source;
        ] );
    ]
