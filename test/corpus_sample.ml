(* Prints the golden corpus sample: the first 20 tests of the standard
   seed.  The runtest diff against golden/corpus_sample.expected pins
   the generator end to end — sources, exploration order,
   canonicalization, dedup order, naming, and the artifact format. *)

let () =
  print_string
    (Smem_corpus.Corpus.to_string ~seed:42
       (Smem_corpus.Corpus.generate ~seed:42 ~count:20 ()))
