(* Tests of the litmus format: parser, printer, round-trips, error
   reporting, and the runner. *)

module H = Smem_core.History
module Op = Smem_core.Op
module Test = Smem_litmus.Test
module Parse = Smem_litmus.Parse
module Print = Smem_litmus.Print
module Corpus = Smem_litmus.Corpus
module Runner = Smem_litmus.Runner

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let parse_ok source =
  match Parse.test_of_string source with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %a" Parse.pp_error e

let parse_err source =
  match Parse.test_of_string source with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

(* ---------------- parsing ---------------- *)

let parse_basic () =
  let t =
    parse_ok
      "test sb \"store buffering\"\n\
       p0: w x 1 ; r y 0\n\
       p1: w y 1 ; r x 0\n\
       expect sc forbidden\n\
       expect tso allowed\n"
  in
  check Alcotest.string "name" "sb" t.Test.name;
  check Alcotest.string "doc" "store buffering" t.Test.doc;
  let h = t.Test.history in
  check Alcotest.int "procs" 2 (H.nprocs h);
  check Alcotest.int "ops" 4 (H.nops h);
  check Alcotest.int "locs" 2 (H.nlocs h);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.bool))
    "expectations"
    [ ("sc", false); ("tso", true) ]
    (List.map
       (fun (k, v) -> (k, Test.bool_of_verdict v))
       t.Test.expectations)

let parse_labeled () =
  let t = parse_ok "test rc\np0: w* s 1 ; r x 0\np1: r* s 1\n" in
  let h = t.Test.history in
  check Alcotest.bool "release" true (Op.is_release (H.op h 0));
  check Alcotest.bool "ordinary" true (Op.is_ordinary (H.op h 1));
  check Alcotest.bool "acquire" true (Op.is_acquire (H.op h 2))

let parse_comments_and_blanks () =
  let t =
    parse_ok
      "# leading comment\n\ntest c # trailing comment\n\np0: w x 1  # ops\n"
  in
  check Alcotest.string "name" "c" t.Test.name;
  check Alcotest.int "ops" 1 (H.nops t.Test.history)

let parse_multiple () =
  match Parse.tests_of_string "test a\np0: w x 1\ntest b\np0: r x 0\n" with
  | Ok [ a; b ] ->
      check Alcotest.string "first" "a" a.Test.name;
      check Alcotest.string "second" "b" b.Test.name
  | Ok ts -> Alcotest.failf "expected 2 tests, got %d" (List.length ts)
  | Error e -> Alcotest.failf "parse error: %a" Parse.pp_error e

let parse_errors () =
  let e = parse_err "p0: w x 1\n" in
  check Alcotest.int "directive before test header" 1 e.Parse.line;
  let e2 = parse_err "test t\np1: w x 1\n" in
  check Alcotest.int "wrong processor id" 2 e2.Parse.line;
  let e3 = parse_err "test t\np0: q x 1\n" in
  check Alcotest.int "unknown op" 2 e3.Parse.line;
  let e4 = parse_err "test t\np0: w x abc\n" in
  check Alcotest.int "bad value" 2 e4.Parse.line;
  let e5 = parse_err "test t\np0: w x 1\nexpect sc maybe\n" in
  check Alcotest.int "bad verdict" 3 e5.Parse.line

(* ---------------- round-trips ---------------- *)

let histories_equal h1 h2 =
  H.nprocs h1 = H.nprocs h2
  && H.nops h1 = H.nops h2
  && List.for_all
       (fun p ->
         let row1 = H.proc_ops h1 p and row2 = H.proc_ops h2 p in
         Array.length row1 = Array.length row2
         && Array.for_all2
              (fun a b ->
                let oa = H.op h1 a and ob = H.op h2 b in
                oa.Op.kind = ob.Op.kind
                && oa.Op.value = ob.Op.value
                && oa.Op.attr = ob.Op.attr
                && H.loc_name h1 oa.Op.loc = H.loc_name h2 ob.Op.loc)
              row1 row2)
       (List.init (H.nprocs h1) Fun.id)

let roundtrip_corpus () =
  List.iter
    (fun (t : Test.t) ->
      let printed = Print.to_string t in
      let t' = parse_ok printed in
      check Alcotest.string (t.Test.name ^ " name") t.Test.name t'.Test.name;
      check Alcotest.bool
        (t.Test.name ^ " history round-trips")
        true
        (histories_equal t.Test.history t'.Test.history);
      check Alcotest.int
        (t.Test.name ^ " expectations round-trip")
        (List.length t.Test.expectations)
        (List.length t'.Test.expectations))
    Corpus.all

(* Regression: labeled (synchronization) attributes must survive the
   of_history → print → parse chain exactly — a suspected label-drop
   here would silently weaken every RC/WO verdict downstream, so the
   invariant is pinned even though no drop was ever reproduced. *)
let roundtrip_preserves_labels () =
  let h =
    H.make
      [
        [ H.write "x" 1; H.write ~labeled:true "s" 1 ];
        [ H.read ~labeled:true "s" 1; H.read "x" 1; H.write ~labeled:true "s" 2 ];
      ]
  in
  let t =
    Test.of_history ~name:"labels" ~expect:[ ("rc-sc", Test.Allowed) ] h
  in
  let t' = parse_ok (Print.to_string t) in
  check Alcotest.bool "history round-trips" true
    (histories_equal h t'.Test.history);
  let attrs h =
    List.init (H.nops h) (fun id -> (H.op h id).Op.attr)
  in
  check Alcotest.bool "attributes identical op-by-op" true
    (attrs h = attrs t'.Test.history);
  check Alcotest.int "three labeled operations" 3
    (List.length
       (List.filter (fun a -> a = Op.Labeled) (attrs t'.Test.history)))

(* Object operations: the DSL's enq/deq/inc/rdc forms map onto sorted
   locations ("q:" queues, "c:" counters) and survive the print/parse
   chain; ill-typed forms are rejected with positioned errors. *)
let object_ops_parse () =
  let t =
    parse_ok
      "test objects \"queue and counter ops\"\n\
       p0: enq q 1 ; inc c ; rdc c 2\n\
       p1: deq q 1 ; deq q 0 ; inc c\n\
       expect causal-obj allowed\n"
  in
  let h = t.Test.history in
  let names =
    List.init (H.nops h) (fun id -> H.loc_name h (H.op h id).Op.loc)
  in
  check
    Alcotest.(list string)
    "sorted location names"
    [ "q:q"; "c:c"; "c:c"; "q:q"; "q:q"; "c:c" ]
    names;
  let op id = H.op h id in
  check Alcotest.bool "enq is a write of 1" true
    ((op 0).Op.kind = Op.Write && (op 0).Op.value = 1);
  check Alcotest.bool "inc writes 1" true
    ((op 1).Op.kind = Op.Write && (op 1).Op.value = 1);
  check Alcotest.bool "rdc reads the stated value" true
    ((op 2).Op.kind = Op.Read && (op 2).Op.value = 2);
  check Alcotest.bool "deq of 0 is an empty dequeue" true
    ((op 4).Op.kind = Op.Read && (op 4).Op.value = 0)

let object_ops_roundtrip () =
  let h =
    H.make
      [
        [ H.write "q:q" 1; H.write "c:c" 1; H.read "c:c" 2 ];
        [ H.read "q:q" 1; H.read "q:q" 0 ];
      ]
  in
  let t =
    Test.of_history ~name:"objects" ~expect:[ ("causal-obj", Test.Allowed) ] h
  in
  let printed = Print.to_string t in
  let contains needle =
    let nl = String.length needle and pl = String.length printed in
    let rec go i = i + nl <= pl && (String.sub printed i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "prints the object forms" true
    (List.for_all contains
       [ "enq q 1"; "inc c"; "rdc c 2"; "deq q 1"; "deq q 0" ]);
  let t' = parse_ok printed in
  check Alcotest.bool "history round-trips" true
    (histories_equal h t'.Test.history)

let object_ops_rejected () =
  let rejected src =
    match Parse.test_of_string src with
    | Ok _ -> Alcotest.failf "accepted ill-typed %S" src
    | Error _ -> ()
  in
  rejected "test bad \"b\"\np0: enq q 0\n";
  rejected "test bad \"b\"\np0: inc c 2\n";
  rejected "test bad \"b\"\np0: enq q\n"

(* ---------------- corpus sanity ---------------- *)

let corpus_names_unique () =
  let names = List.map (fun (t : Test.t) -> t.Test.name) Corpus.all in
  check Alcotest.int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let corpus_expectation_keys_known () =
  List.iter
    (fun (t : Test.t) ->
      List.iter
        (fun (key, _) ->
          check Alcotest.bool
            (Printf.sprintf "%s expects known model %s" t.Test.name key)
            true
            (Smem_core.Registry.find key <> None))
        t.Test.expectations)
    Corpus.all

let corpus_find () =
  check Alcotest.bool "finds fig1" true (Corpus.find "fig1" <> None);
  check Alcotest.bool "misses junk" true (Corpus.find "nope" = None)

(* ---------------- runner ---------------- *)

(* The shipped .litmus files parse, and their stated expectations hold. *)
let litmus_files_check () =
  (* cwd differs between `dune runtest` (test dir, deps materialized)
     and `dune exec` (project root): probe both. *)
  let dir =
    List.find_opt Sys.file_exists [ "../litmus"; "litmus" ]
    |> Option.value ~default:"../litmus"
  in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".litmus")
    |> List.sort compare
  in
  check Alcotest.bool "found litmus files" true (List.length files >= 5);
  List.iter
    (fun file ->
      let path = Filename.concat dir file in
      let ic = open_in path in
      let source = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Parse.tests_of_string source with
      | Error e -> Alcotest.failf "%s: %a" file Parse.pp_error e
      | Ok tests ->
          List.iter
            (fun (t : Test.t) ->
              let results =
                Runner.run_test ~models:Smem_core.Registry.all t
              in
              List.iter
                (fun r ->
                  check Alcotest.bool
                    (Printf.sprintf "%s/%s agrees" file t.Test.name)
                    true (Runner.agrees r))
                results)
            tests)
    files

let runner_agreement () =
  let t =
    Test.make ~name:"tiny" ~expect:[ ("sc", Test.Allowed) ]
      [ [ Smem_core.History.write "x" 1 ] ]
  in
  let results = Runner.run_test ~models:[ Smem_core.Sc.model ] t in
  check Alcotest.int "one result" 1 (List.length results);
  check Alcotest.bool "agrees" true (List.for_all Runner.agrees results);
  let bad =
    Test.make ~name:"tiny2" ~expect:[ ("sc", Test.Forbidden) ]
      [ [ Smem_core.History.write "x" 1 ] ]
  in
  let results2 = Runner.run_test ~models:[ Smem_core.Sc.model ] bad in
  check Alcotest.int "one mismatch" 1 (List.length (Runner.mismatches results2))

(* Print/parse round-trip on random tests, covering labels, intervals
   and expectations beyond what the corpus happens to use. *)
let gen_random_test =
  let open QCheck.Gen in
  let locs = [| "x"; "y"; "z" |] in
  let event =
    let* loc = oneofa locs in
    let* labeled = bool in
    let* timed = bool in
    let* at =
      if timed then
        let* s = int_range 0 9 in
        let* d = int_range 0 4 in
        return (Some (s, s + d))
      else return None
    in
    let* is_write = bool in
    if is_write then
      let* v = int_range 1 3 in
      return (Smem_core.History.write ~labeled ?at loc v)
    else
      let* v = int_range 0 3 in
      return (Smem_core.History.read ~labeled ?at loc v)
  in
  let* nprocs = int_range 1 3 in
  let* rows = list_repeat nprocs (list_size (int_range 1 4) event) in
  let* expectations =
    list_size (int_bound 3)
      (pair
         (oneofa [| "sc"; "tso"; "causal" |])
         (oneofa [| Test.Allowed; Test.Forbidden |]))
  in
  return
    {
      Test.name = "random";
      doc = "random round-trip test";
      history = Smem_core.History.make rows;
      expectations = List.sort_uniq compare expectations;
    }

let intervals_equal h1 h2 =
  List.for_all
    (fun id -> H.interval h1 id = H.interval h2 id)
    (List.init (H.nops h1) Fun.id)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"print/parse round-trip on random tests" ~count:300
    (QCheck.make ~print:Print.to_string gen_random_test) (fun t ->
      match Parse.test_of_string (Print.to_string t) with
      | Error _ -> false
      | Ok t' ->
          histories_equal t.Test.history t'.Test.history
          && intervals_equal t.Test.history t'.Test.history
          && t.Test.expectations = t'.Test.expectations)

let () =
  Alcotest.run "litmus"
    [
      ( "parse",
        [
          tc "basic test" parse_basic;
          tc "labeled accesses" parse_labeled;
          tc "comments and blank lines" parse_comments_and_blanks;
          tc "multiple tests" parse_multiple;
          tc "errors carry line numbers" parse_errors;
          tc "object operations" object_ops_parse;
          tc "ill-typed object operations rejected" object_ops_rejected;
        ] );
      ( "round-trip",
        [
          tc "whole corpus" roundtrip_corpus;
          tc "labels preserved" roundtrip_preserves_labels;
          tc "object operations" object_ops_roundtrip;
          QCheck_alcotest.to_alcotest prop_roundtrip_random;
        ] );
      ( "corpus",
        [
          tc "names unique" corpus_names_unique;
          tc "expectation keys known" corpus_expectation_keys_known;
          tc "find" corpus_find;
        ] );
      ( "runner",
        [
          tc "agreement and mismatch" runner_agreement;
          tc "shipped litmus files" litmus_files_check;
        ] );
    ]
