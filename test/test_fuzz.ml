(* Tests of the differential fuzzer: generator reproducibility, shrinker
   guarantees, oracle catches (a deliberately flipped containment must be
   found, shrunk, and replayable from its litmus rendering), and
   campaign determinism. *)

module H = Smem_core.History
module Model = Smem_core.Model
module Registry = Smem_core.Registry
module Stats = Smem_core.Stats
module Figure5 = Smem_lattice.Figure5
module Gen = Smem_fuzz.Gen
module Shrink = Smem_fuzz.Shrink
module Oracle = Smem_fuzz.Oracle
module Campaign = Smem_fuzz.Campaign

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let model key =
  match Registry.find key with
  | Some m -> m
  | None -> Alcotest.failf "model %s missing" key

let show_history h = Format.asprintf "%a" H.pp h

(* A small campaign configuration so the suite stays fast. *)
let small = { Gen.default with Gen.count = 40; max_ops = 3 }

(* ---------------- Figure 5 as data ---------------- *)

let figure5_closure () =
  let find s w =
    List.find_opt
      (fun (c : Figure5.containment) -> c.stronger = s && c.weaker = w)
      Figure5.containments
  in
  let assert_pair s w proper =
    match find s w with
    | None -> Alcotest.failf "missing containment %s <= %s" s w
    | Some c ->
        check Alcotest.bool
          (Printf.sprintf "%s <= %s proper-only flag" s w)
          proper c.Figure5.proper_labels_only
  in
  (* transitive closure of the Hasse diagram, with conditionality
     propagated through the SC -> RC_sc edge *)
  assert_pair "sc" "tso" false;
  assert_pair "sc" "pram" false;
  assert_pair "tso" "causal" false;
  assert_pair "rc-sc" "rc-pc" false;
  assert_pair "sc" "rc-sc" true;
  assert_pair "sc" "rc-pc" true;
  check Alcotest.bool "no pc <= causal" true (find "pc" "causal" = None);
  check Alcotest.bool "no tso <= rc-sc" true (find "tso" "rc-sc" = None);
  (* the extended families (PR 10) *)
  assert_pair "sc" "pc-part(blocks=4)" false;
  assert_pair "pc-g" "coh" false;
  assert_pair "pc" "coh" false;
  assert_pair "tso" "session(ryw,mr)" false;
  assert_pair "session(ryw,mr,mw,wfr)" "session(ryw,mr)" false;
  check Alcotest.bool "no causal <= session chain via wfr" true
    (find "causal" "session(ryw,mr,mw,wfr)" = None);
  check Alcotest.bool "no pram <= session(+wfr)" true
    (find "pram" "session(ryw,mr,mw,wfr)" = None);
  check Alcotest.bool "no tso <= pc-g" true (find "tso" "pc-g" = None);
  (* sc reaches all thirteen others (two conditionally); forty pairs
     in total across the fourteen-node lattice *)
  check Alcotest.int "forty containments" 40 (List.length Figure5.containments)

let figure5_properly_labeled () =
  let proper =
    H.make
      [
        [ H.write "x" 1; H.write ~labeled:true "s" 1 ];
        [ H.read ~labeled:true "s" 1; H.read "x" 1 ];
      ]
  in
  let mixed =
    H.make [ [ H.write "x" 1; H.write ~labeled:true "x" 2 ]; [ H.read "x" 2 ] ]
  in
  check Alcotest.bool "disjoint sync locations qualify" true
    (Figure5.properly_labeled proper);
  check Alcotest.bool "mixed location disqualifies" false
    (Figure5.properly_labeled mixed);
  check Alcotest.bool "unlabeled history qualifies trivially" true
    (Figure5.properly_labeled (H.make [ [ H.write "x" 1 ]; [ H.read "x" 0 ] ]));
  (* conditional pairs appear exactly when the history qualifies *)
  let keys h =
    List.map
      (fun ((s : Model.t), (w : Model.t)) -> (s.Model.key, w.Model.key))
      (Figure5.pairs h)
  in
  check Alcotest.bool "sc<=rc-sc asserted on proper history" true
    (List.mem ("sc", "rc-sc") (keys proper));
  check Alcotest.bool "sc<=rc-sc skipped on mixed history" false
    (List.mem ("sc", "rc-sc") (keys mixed));
  check Alcotest.bool "rc-sc<=rc-pc always asserted" true
    (List.mem ("rc-sc", "rc-pc") (keys mixed))

(* ---------------- generator reproducibility ---------------- *)

let gen_reproducible () =
  let histories seed =
    List.init 20 (fun i ->
        show_history (Gen.history small ~rand:(Gen.case_rand small i))
        |> fun s -> (seed, s))
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "same seed, same histories" (histories 0) (histories 0);
  let h1 = Gen.history small ~rand:(Gen.case_rand small 1) in
  let h2 = Gen.history small ~rand:(Gen.case_rand small 2) in
  check Alcotest.bool "different cases differ (seeded independently)" true
    (show_history h1 <> show_history h2)

(* ---------------- shrinker guarantees ---------------- *)

(* Store buffering: allowed by PRAM (and TSO), forbidden by SC — the
   canonical witness for a flipped PRAM <= SC containment. *)
let sb_padded () =
  H.make
    [
      [ H.write "x" 1; H.read "y" 0; H.write "z" 2 ];
      [ H.write "y" 1; H.read "x" 0 ];
      [ H.read "z" 2 ];
    ]

let violates_flipped h = Model.check (model "pram") h && not (Model.check (model "sc") h)

let shrink_preserves_violation () =
  let h = sb_padded () in
  check Alcotest.bool "input violates" true (violates_flipped h);
  let shrunk, steps = Shrink.shrink ~keep:violates_flipped h in
  check Alcotest.bool "shrunk still violates" true (violates_flipped shrunk);
  check Alcotest.bool "no larger than input" true (H.nops shrunk <= H.nops h);
  check Alcotest.bool "took at least one step" true (steps > 0);
  (* the padding (p2 and the z traffic) must be gone: minimal SB is the
     4-operation core on two processors *)
  check Alcotest.int "minimal size" 4 (H.nops shrunk);
  check Alcotest.int "minimal processors" 2 (H.nprocs shrunk)

let shrink_deterministic () =
  let h = sb_padded () in
  let s1, n1 = Shrink.shrink ~keep:violates_flipped h in
  let s2, n2 = Shrink.shrink ~keep:violates_flipped h in
  check Alcotest.string "same result" (show_history s1) (show_history s2);
  check Alcotest.int "same steps" n1 n2

let shrink_rejects_nonviolating () =
  let h = sb_padded () in
  let shrunk, steps = Shrink.shrink ~keep:(fun _ -> false) h in
  check Alcotest.string "input returned unchanged" (show_history h)
    (show_history shrunk);
  check Alcotest.int "zero steps" 0 steps

(* ---------------- oracle catches a broken lattice ---------------- *)

let broken_containment_caught () =
  Stats.reset ();
  (* Flip PRAM <= SC — a deliberately broken model relation; the
     metamorphic oracle must catch it on the canonical SB history and
     shrink the counterexample. *)
  let pairs = [ (model "pram", model "sc") ] in
  let violations = Oracle.lattice ~pairs ~case:0 (sb_padded ()) in
  match violations with
  | [ v ] ->
      (match v.Oracle.kind with
      | Oracle.Containment { stronger = "pram"; weaker = "sc" } -> ()
      | _ -> Alcotest.fail "wrong violation kind");
      check Alcotest.int "shrunk to minimal SB" 4 (H.nops v.Oracle.shrunk);
      check Alcotest.bool "shrunk still violates" true
        (violates_flipped v.Oracle.shrunk);
      check Alcotest.bool "shrink steps recorded" true (v.Oracle.shrink_steps > 0);
      (* replayable: parse the printed litmus text back and the verdict
         mismatch reproduces on the round-tripped history *)
      let text = Smem_litmus.Print.to_string v.Oracle.test in
      (match Smem_litmus.Parse.test_of_string text with
      | Error e ->
          Alcotest.failf "unparseable counterexample: %a"
            (fun ppf -> Smem_litmus.Parse.pp_error ppf)
            e
      | Ok t ->
          let h = t.Smem_litmus.Test.history in
          check Alcotest.bool "replay: pram allows" true
            (Model.check (model "pram") h);
          check Alcotest.bool "replay: sc rejects (the recorded mismatch)"
            false
            (Model.check (model "sc") h));
      (* the failure and its shrink work landed in the stats table *)
      let counters = Stats.fuzz_snapshot () in
      (match List.assoc_opt "pram<=sc" counters with
      | Some f ->
          check Alcotest.int "one failure counted" 1 f.Stats.fail;
          check Alcotest.bool "shrink steps counted" true (f.Stats.shrink_steps > 0)
      | None -> Alcotest.fail "no pram<=sc counter")
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

(* ---------------- campaigns ---------------- *)

let campaign_clean () =
  Stats.reset ();
  let o = Campaign.run small in
  check Alcotest.int "all cases ran" small.Gen.count o.Campaign.cases;
  check Alcotest.bool "histories from all sources" true
    (o.Campaign.histories > small.Gen.count);
  check Alcotest.bool "machines replayed" true (o.Campaign.machine_runs > 0);
  check Alcotest.bool "containments evaluated" true (o.Campaign.lattice_checks > 0);
  check
    (Alcotest.list Alcotest.pass)
    "no violations" [] o.Campaign.violations;
  (* counters: every soundness oracle ran and nothing failed *)
  let counters = Stats.fuzz_snapshot () in
  List.iter
    (fun m ->
      let key = "sound:" ^ Smem_machine.Machines.name m in
      match List.assoc_opt key counters with
      | Some f ->
          check Alcotest.bool (key ^ " ran") true (f.Stats.pass > 0);
          check Alcotest.int (key ^ " clean") 0 f.Stats.fail
      | None -> Alcotest.failf "no %s counter" key)
    Smem_machine.Machines.all;
  (match List.assoc_opt "sc<=tso" counters with
  | Some f -> check Alcotest.int "sc<=tso clean" 0 f.Stats.fail
  | None -> Alcotest.fail "no sc<=tso counter")

let campaign_deterministic () =
  let show o =
    Format.asprintf "%a|%d" Campaign.pp_summary o
      (List.length o.Campaign.violations)
  in
  let o1 = Campaign.run { small with Gen.jobs = 1 } in
  let o2 = Campaign.run { small with Gen.jobs = 4 } in
  check Alcotest.string "jobs do not change the outcome" (show o1) (show o2)

let campaign_mixed_labels_clean () =
  (* Mixed labelings drop the conditional RC containments and the RC
     soundness checks (EXPERIMENTS.md §3) but everything else must
     hold. *)
  let o = Campaign.run { small with Gen.labels = `Mixed; count = 25 } in
  check (Alcotest.list Alcotest.pass) "no violations" [] o.Campaign.violations

(* ---------------- certificates ---------------- *)

module Cert = Smem_cert.Cert
module Kernel = Smem_cert.Kernel

(* Histories of at most 8 operations so the kernel's independent
   enumeration always re-runs forbidden refutations (Kernel.Complete). *)
let gen_small_history =
  let open QCheck.Gen in
  let event =
    let* loc = oneofa [| "x"; "y"; "s" |] in
    let* labeled = bool in
    bool >>= function
    | true -> map (fun v -> H.write ~labeled loc v) (int_range 1 2)
    | false -> map (fun v -> H.read ~labeled loc v) (int_range 0 2)
  in
  let* nprocs = int_range 1 3 in
  let* rows = list_repeat nprocs (list_size (int_range 1 2) event) in
  return (H.make rows)

let small_history_arb = QCheck.make ~print:show_history gen_small_history

(* Every certificate the engine emits — allowed witnesses and forbidden
   frontiers alike — must satisfy the independent kernel, completely. *)
let prop_certificates_accepted =
  QCheck.Test.make ~name:"engine certificates pass the kernel" ~count:120
    small_history_arb (fun h ->
      List.for_all
        (fun (m : Model.t) ->
          match Cert.certify m h with
          | None -> QCheck.Test.fail_reportf "%s not certifiable" m.Model.key
          | Some c -> (
              match Kernel.verify c with
              | Ok a -> a = Kernel.Complete
              | Error e ->
                  QCheck.Test.fail_reportf "%s rejected: %s" m.Model.key e))
        Registry.certifiable)

(* The kernel's from-scratch search must agree with every engine verdict
   on small histories: the two deciders share only the parameter
   triples, so agreement here is a genuine cross-implementation check. *)
let prop_kernel_search_agrees =
  QCheck.Test.make ~name:"kernel search agrees with the engine" ~count:120
    small_history_arb (fun h ->
      List.for_all
        (fun (m : Model.t) ->
          match m.Model.params with
          | None -> true
          | Some p -> Kernel.search p h = Model.check m h)
        Registry.certifiable)

let violation_certificates () =
  (* The flipped-containment violation from above must ship a
     kernel-valid certificate from the model that allowed the history. *)
  let pairs = [ (model "pram", model "sc") ] in
  match Oracle.lattice ~pairs ~case:0 (sb_padded ()) with
  | [ v ] -> (
      match v.Oracle.certificate with
      | None -> Alcotest.fail "violation carries no certificate"
      | Some c -> (
          check Alcotest.string "certified by the allowing model" "pram"
            c.Cert.model;
          check Alcotest.bool "allowed certificate" true
            (c.Cert.verdict = Cert.Allowed);
          match Kernel.verify c with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "kernel rejected the certificate: %s" e))
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let campaign_counts_certificates () =
  let o = Campaign.run small in
  check (Alcotest.list Alcotest.pass) "no violations" [] o.Campaign.violations;
  check Alcotest.int "no certificates without violations" 0 o.Campaign.certified;
  check
    (Alcotest.list Alcotest.string)
    "no kernel rejections" [] o.Campaign.cert_failures

let campaign_validates () =
  Alcotest.check_raises "bad scope rejected"
    (Invalid_argument "Gen: between 1 and 6 locations") (fun () ->
      ignore (Campaign.run { small with Gen.nlocs = 7 }))

let () =
  Alcotest.run "fuzz"
    [
      ( "figure5",
        [
          tc "closure and flags" figure5_closure;
          tc "properly-labeled gating" figure5_properly_labeled;
        ] );
      ("gen", [ tc "seed reproducibility" gen_reproducible ]);
      ( "shrink",
        [
          tc "preserves violation, minimizes" shrink_preserves_violation;
          tc "deterministic" shrink_deterministic;
          tc "non-violating input untouched" shrink_rejects_nonviolating;
        ] );
      ("oracle", [ tc "flipped containment caught" broken_containment_caught ]);
      ( "certificates",
        [
          tc "violations ship kernel-valid certificates" violation_certificates;
          tc "clean campaigns count zero certificates"
            campaign_counts_certificates;
          QCheck_alcotest.to_alcotest prop_certificates_accepted;
          QCheck_alcotest.to_alcotest prop_kernel_search_agrees;
        ] );
      ( "campaign",
        [
          tc "clean at seed 42" campaign_clean;
          tc "deterministic across jobs" campaign_deterministic;
          tc "mixed labels clean" campaign_mixed_labels_clean;
          tc "config validated" campaign_validates;
        ] );
    ]
