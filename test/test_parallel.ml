(* Tests of the parallel work pool and the properties the rest of the
   toolkit relies on it for: order preservation, exception propagation,
   and — the acceptance criterion of the parallel runner — that every
   parallel entry point returns results identical to its serial run.
   Also covers the search-statistics counters and, by qcheck, that the
   pruned/hoisted searches never change a verdict relative to naive
   reference implementations. *)

module Pool = Smem_parallel.Pool
module H = Smem_core.History
module Model = Smem_core.Model
module Registry = Smem_core.Registry
module Stats = Smem_core.Stats
module Rel = Smem_relation.Rel
module Runner = Smem_litmus.Runner
module Corpus = Smem_litmus.Corpus
module Ltest = Smem_litmus.Test
module Classify = Smem_lattice.Classify
module Enumerate = Smem_lattice.Enumerate
module Distinguish = Smem_lattice.Distinguish
module Helpers = Smem_testlib.Helpers

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---------------- the pool itself ---------------- *)

let pool_map_matches_list_map () =
  let input = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  List.iter
    (fun jobs ->
      check
        Alcotest.(list int)
        (Printf.sprintf "jobs=%d" jobs)
        (List.map f input)
        (Pool.map ~jobs f input))
    [ 1; 2; 3; 8 ];
  check Alcotest.(list int) "empty" [] (Pool.map ~jobs:4 f []);
  check Alcotest.(list int) "singleton" [ 2 ] (Pool.map ~jobs:4 f [ 1 ])

let pool_map_preserves_order () =
  (* Uneven per-item work: late items finish first on an unfair
     scheduler, so any ordering bug shows up. *)
  let input = List.init 64 Fun.id in
  let f x =
    let spin = ref 0 in
    for _ = 1 to (64 - x) * 1000 do
      incr spin
    done;
    ignore !spin;
    x
  in
  check Alcotest.(list int) "order kept" input (Pool.map ~jobs:7 f input)

exception Boom

let pool_map_propagates_exceptions () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "raises at jobs=%d" jobs)
        Boom
        (fun () ->
          ignore (Pool.map ~jobs (fun x -> if x = 13 then raise Boom else x)
                    (List.init 40 Fun.id))))
    [ 1; 4 ]

let pool_iter_visits_everything () =
  let hits = Stdlib.Atomic.make 0 in
  let sum = Stdlib.Atomic.make 0 in
  let input = List.init 500 Fun.id in
  Pool.iter ~jobs:6
    (fun x ->
      Stdlib.Atomic.incr hits;
      ignore (Stdlib.Atomic.fetch_and_add sum x))
    input;
  check Alcotest.int "every item visited once" 500 (Stdlib.Atomic.get hits);
  check Alcotest.int "sum of items" (500 * 499 / 2) (Stdlib.Atomic.get sum)

let default_jobs_positive () =
  check Alcotest.bool "default_jobs >= 1" true (Pool.default_jobs () >= 1)

(* ---------------- serial == parallel, per entry point ---------------- *)

let result_key (r : Runner.result) =
  (r.Runner.test.Ltest.name, r.Runner.model.Model.key, r.Runner.got,
   Runner.agrees r)

let runner_identical_across_jobs () =
  let models = Registry.all in
  let serial = Runner.run_all ~jobs:1 ~models Corpus.all in
  List.iter
    (fun jobs ->
      let par = Runner.run_all ~jobs ~models Corpus.all in
      check Alcotest.int
        (Printf.sprintf "same cell count at jobs=%d" jobs)
        (List.length serial) (List.length par);
      check Alcotest.bool
        (Printf.sprintf "identical results and order at jobs=%d" jobs)
        true
        (List.for_all2 (fun a b -> result_key a = result_key b) serial par))
    [ 2; 5 ]

let matrix_renders_without_rechecking () =
  Stats.reset ();
  let results = Runner.run_all ~models:Registry.all Corpus.all in
  let after_run = Stats.snapshot () in
  check Alcotest.int "one check per cell" (List.length results)
    after_run.Stats.checks;
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Runner.pp_matrix ppf results;
  Format.pp_print_flush ppf ();
  let after_pp = Stats.snapshot () in
  check Alcotest.int "pp_matrix runs no checker" after_run.Stats.checks
    after_pp.Stats.checks;
  let rendered = Buffer.contents buf in
  let contains needle =
    let nl = String.length needle and hl = String.length rendered in
    let rec go i = i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "matrix mentions every test" true
    (List.for_all (fun (t : Ltest.t) -> contains t.Ltest.name) Corpus.all)

let classify_identical_across_jobs () =
  let models = Registry.comparable in
  let scope = Enumerate.default in
  let serial = Classify.classify ~jobs:1 ~models scope in
  let witness_strings m =
    Array.map
      (Array.map (function
        | None -> "-"
        | Some h -> Format.asprintf "%a" H.pp h))
      m.Classify.witness
  in
  List.iter
    (fun jobs ->
      let par = Classify.classify ~jobs ~models scope in
      check Alcotest.int
        (Printf.sprintf "total at jobs=%d" jobs)
        serial.Classify.total par.Classify.total;
      check
        Alcotest.(array int)
        (Printf.sprintf "allowed counts at jobs=%d" jobs)
        serial.Classify.allowed_counts par.Classify.allowed_counts;
      check
        Alcotest.(array (array int))
        (Printf.sprintf "only_in at jobs=%d" jobs)
        serial.Classify.only_in par.Classify.only_in;
      check
        Alcotest.(array (array string))
        (Printf.sprintf "witnesses at jobs=%d" jobs)
        (witness_strings serial) (witness_strings par))
    [ 2; 4 ]

let distinguish_identical_across_jobs () =
  let a = List.find (fun (m : Model.t) -> m.Model.key = "sc") Registry.all in
  let b = List.find (fun (m : Model.t) -> m.Model.key = "tso") Registry.all in
  let show v = Format.asprintf "%a" (Distinguish.pp_verdict ~a ~b) v in
  let serial = Distinguish.compare ~jobs:1 ~a ~b [ Enumerate.default ] in
  let par = Distinguish.compare ~jobs:2 ~a ~b [ Enumerate.default ] in
  check Alcotest.string "same verdict and witnesses" (show serial) (show par)

(* ---------------- statistics counters ---------------- *)

let zero (s : Stats.snapshot) =
  s.Stats.checks = 0 && s.Stats.rf_candidates = 0 && s.Stats.co_candidates = 0
  && s.Stats.pruned = 0 && s.Stats.toposorts = 0 && s.Stats.wall_ns = 0

let leq (a : Stats.snapshot) (b : Stats.snapshot) =
  a.Stats.checks <= b.Stats.checks
  && a.Stats.rf_candidates <= b.Stats.rf_candidates
  && a.Stats.co_candidates <= b.Stats.co_candidates
  && a.Stats.pruned <= b.Stats.pruned
  && a.Stats.toposorts <= b.Stats.toposorts
  && a.Stats.wall_ns <= b.Stats.wall_ns

let stats_reset_and_monotone () =
  Stats.reset ();
  check Alcotest.bool "zero after reset" true (zero (Stats.snapshot ()));
  let h = Corpus.fig1_tso.Ltest.history in
  let sc = List.find (fun (m : Model.t) -> m.Model.key = "sc") Registry.all in
  ignore (Model.check sc h);
  let s1 = Stats.snapshot () in
  check Alcotest.bool "one check counted" true (s1.Stats.checks = 1);
  check Alcotest.bool "search enumerated something" true
    (s1.Stats.rf_candidates + s1.Stats.pruned > 0);
  ignore (Model.check sc h);
  let s2 = Stats.snapshot () in
  check Alcotest.bool "counters are monotone" true (leq s1 s2);
  check Alcotest.bool "diff of equal snapshots is zero" true
    (zero (Stats.diff s2 s2));
  let d = Stats.diff s2 s1 in
  check Alcotest.int "diff isolates the second check" 1 d.Stats.checks;
  Stats.reset ();
  check Alcotest.bool "zero after second reset" true (zero (Stats.snapshot ()))

let stats_count_under_parallel_runner () =
  (* Counters are shared atomics: a parallel sweep must account every
     cell exactly once, same as serial. *)
  Stats.reset ();
  let serial = Runner.run_all ~jobs:1 ~models:Registry.all Corpus.all in
  let s = Stats.snapshot () in
  Stats.reset ();
  ignore (Runner.run_all ~jobs:4 ~models:Registry.all Corpus.all);
  let p = Stats.snapshot () in
  check Alcotest.int "checks" (List.length serial) p.Stats.checks;
  check Alcotest.int "rf candidates" s.Stats.rf_candidates p.Stats.rf_candidates;
  check Alcotest.int "co candidates" s.Stats.co_candidates p.Stats.co_candidates;
  check Alcotest.int "pruned" s.Stats.pruned p.Stats.pruned;
  check Alcotest.int "toposorts" s.Stats.toposorts p.Stats.toposorts;
  Stats.reset ()

(* ---------------- pruning never changes verdicts ---------------- *)

(* Naive SC: some legal linear extension of program order over all
   operations — no hoisting, no pruning, no engine. *)
let naive_sc h =
  Rel.linear_extensions (Smem_core.Orders.po h) ~f:(fun seq ->
      Helpers.legal_sequence h (Array.to_list seq))

(* Naive PRAM: per processor, some legal linear extension of program
   order over that processor's operations plus all writes. *)
let naive_pram h =
  let po = Smem_core.Orders.po h in
  List.for_all
    (fun p ->
      Rel.linear_extensions ~universe:(H.view_ops_writes h p) po ~f:(fun seq ->
          Helpers.legal_sequence h (Array.to_list seq)))
    (List.init (H.nprocs h) Fun.id)

let prop_pruned_sc_matches_naive =
  QCheck.Test.make ~count:150 ~name:"pruned SC search == naive reference"
    (Helpers.arb_history ()) (fun h -> Smem_core.Sc.check h = naive_sc h)

let prop_pruned_pram_matches_naive =
  QCheck.Test.make ~count:150 ~name:"pruned PRAM search == naive reference"
    (Helpers.arb_history ()) (fun h -> Smem_core.Pram.check h = naive_pram h)

let prop_parallel_check_matches_serial =
  (* Every registry model, random histories: fanning the checks over a
     pool changes nothing. *)
  QCheck.Test.make ~count:40 ~name:"Pool.map of checks == List.map"
    (QCheck.make
       ~print:(fun hs -> String.concat "\n---\n" (List.map Helpers.print_history hs))
       QCheck.Gen.(list_size (int_range 1 5)
                     (Helpers.gen_history ~labeled_allowed:`Mixed ())))
    (fun hs ->
      List.for_all
        (fun (m : Model.t) ->
          Pool.map ~jobs:3 (Model.check m) hs = List.map (Model.check m) hs)
        Registry.comparable)

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          tc "map matches List.map" pool_map_matches_list_map;
          tc "map preserves order" pool_map_preserves_order;
          tc "map propagates exceptions" pool_map_propagates_exceptions;
          tc "iter visits everything" pool_iter_visits_everything;
          tc "default_jobs positive" default_jobs_positive;
        ] );
      ( "determinism",
        [
          tc "runner identical across jobs" runner_identical_across_jobs;
          tc "matrix renders without rechecking" matrix_renders_without_rechecking;
          tc "classify identical across jobs" classify_identical_across_jobs;
          tc "distinguish identical across jobs" distinguish_identical_across_jobs;
        ] );
      ( "stats",
        [
          tc "reset, monotone, diff" stats_reset_and_monotone;
          tc "parallel sweep counts like serial" stats_count_under_parallel_runner;
        ] );
      ( "pruning",
        qcheck
          [
            prop_pruned_sc_matches_naive;
            prop_pruned_pram_matches_naive;
            prop_parallel_check_matches_serial;
          ] );
    ]
