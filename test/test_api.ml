(* Tests for the typed API layer: verdict semantics and the wire codec
   — round-trip printer/parser for requests, responses, and verdicts in
   both protocol versions, plus smem-api/1 back-compatibility. *)

module Verdict = Smem_api.Verdict
module Request = Smem_api.Request
module Response = Smem_api.Response
module Wire = Smem_api.Wire
module Json = Smem_obs.Json

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---------------- verdict semantics ---------------- *)

let verdict_status_bool () =
  check Alcotest.bool "allowed" true Verdict.(bool_of_status Allowed);
  check Alcotest.bool "forbidden" false Verdict.(bool_of_status Forbidden);
  check Alcotest.bool "roundtrip true" true
    Verdict.(bool_of_status (status_of_bool true));
  check Alcotest.bool "roundtrip false" false
    Verdict.(bool_of_status (status_of_bool false))

let verdict_agrees () =
  let v ?expected status =
    Verdict.v ?expected ~subject:"t" ~authority:"sc" status
  in
  check Alcotest.bool "no expectation" true (Verdict.agrees (v (Some Allowed)));
  check Alcotest.bool "match" true
    (Verdict.agrees (v ~expected:Allowed (Some Allowed)));
  check Alcotest.bool "mismatch" false
    (Verdict.agrees (v ~expected:Forbidden (Some Allowed)));
  check Alcotest.bool "undecided vs expectation" false
    (Verdict.agrees (v ~expected:Allowed None));
  check Alcotest.bool "undecided, no expectation" true (Verdict.agrees (v None))

let verdict_json_roundtrip () =
  let vs =
    [
      Verdict.v ~subject:"fig1" ~authority:"sc" (Some Verdict.Forbidden);
      Verdict.v ~question:"reachability" ~subject:"mp"
        ~authority:"machine:write-buffer" ~cached:true ~states:42
        ~notes:[ "a"; "b" ] ~expected:Verdict.Allowed (Some Verdict.Allowed);
      Verdict.v ~question:"mutual-exclusion" ~subject:"bakery"
        ~authority:"machine:cache" None;
    ]
  in
  List.iter
    (fun v ->
      match Verdict.of_json (Verdict.to_json v) with
      | Error e -> Alcotest.failf "verdict did not parse back: %s" e
      | Ok v' ->
          check Alcotest.bool "verdict roundtrip" true (v = v'))
    vs

(* ---------------- request round-trips ---------------- *)

let all_requests =
  let scope =
    { Request.procs = [ 2; 2 ]; nlocs = 2; max_value = 1; labeled = false }
  in
  let lscope =
    { Request.procs = [ 3 ]; nlocs = 1; max_value = 2; labeled = true }
  in
  [
    Request.Check { test = Named "fig1"; models = [ "sc"; "pc-g" ] };
    Request.Check
      {
        test = Named "mp";
        models = [ "pc-part(blocks=2)"; "session(ryw,mr)"; "causal-obj" ];
      };
    Request.Check { test = Inline "test \"t\"\n"; models = [] };
    Request.Corpus { models = [ "cache" ] };
    Request.Corpus { models = [] };
    Request.Classify { models = []; scopes = [] };
    Request.Classify { models = [ "sc"; "pram" ]; scopes = [ scope; lscope ] };
    Request.Distinguish { a = "sc"; b = "pc-g"; scopes = [ scope ] };
    Request.Distinguish { a = "causal"; b = "session(ryw,mr)"; scopes = [] };
    Request.Certify { test = Named "fig2"; model = "sc"; format = `Sexp };
    Request.Certify { test = Inline "x"; model = "pc-d"; format = `Json };
    Request.Models;
  ]

let proto_t =
  Alcotest.testable
    (fun ppf p -> Format.pp_print_string ppf (Wire.schema_of p))
    ( = )

let request_roundtrip () =
  List.iter
    (fun proto ->
      List.iteri
        (fun i r ->
          (* with an explicit id *)
          (match
             Wire.parse_request_line (Wire.request_line ~proto ~id:(i + 1) r)
           with
          | Error e -> Alcotest.failf "request %d did not parse back: %s" i e
          | Ok (id, proto', r') ->
              check (Alcotest.option Alcotest.int) "id echoed" (Some (i + 1))
                id;
              check proto_t "proto reported" proto proto';
              check Alcotest.bool "request roundtrip" true (r = r'));
          (* and without *)
          match Wire.parse_request_line (Wire.request_line ~proto r) with
          | Error e -> Alcotest.failf "id-less request %d: %s" i e
          | Ok (id, proto', r') ->
              check (Alcotest.option Alcotest.int) "no id" None id;
              check proto_t "proto reported" proto proto';
              check Alcotest.bool "id-less roundtrip" true (r = r'))
        all_requests)
    [ Wire.V1; Wire.V2 ]

let request_schema_checked () =
  (* a wrong schema value is rejected... *)
  (match
     Wire.parse_request_line
       {|{"schema":"smem-api/999","kind":"corpus","models":[]}|}
   with
  | Ok _ -> Alcotest.fail "wrong schema accepted"
  | Error _ -> ());
  (* ...a version field disagreeing with the schema is rejected... *)
  (match
     Wire.parse_request_line
       {|{"schema":"smem-api/2","version":1,"kind":"corpus"}|}
   with
  | Ok _ -> Alcotest.fail "mismatched version accepted"
  | Error _ -> ());
  (* ...but a missing schema field is tolerated and means v1 *)
  match Wire.parse_request_line {|{"kind":"corpus","models":[]}|} with
  | Ok (None, Wire.V1, Request.Corpus { models = [] }) -> ()
  | Ok _ -> Alcotest.fail "schema-less request parsed to the wrong value"
  | Error e -> Alcotest.failf "schema-less request rejected: %s" e

(* Hand-written client lines in both versions parse to the same typed
   request: the v1 plain-string and v2 structured spellings of one
   model reference are interchangeable, and the structured spelling is
   normalized through the Model_ref grammar. *)
let request_versions_agree () =
  let v1 =
    {|{"schema":"smem-api/1","kind":"check","test":{"corpus":"mp"},"models":["session(ryw,mr)","sc"]}|}
  in
  let v2 =
    {|{"schema":"smem-api/2","version":2,"kind":"check","test":{"corpus":"mp"},"models":[{"family":"session","args":[{"name":"ryw"},{"name":"mr"}]},{"family":"sc"}]}|}
  in
  match (Wire.parse_request_line v1, Wire.parse_request_line v2) with
  | Ok (None, Wire.V1, r1), Ok (None, Wire.V2, r2) ->
      check Alcotest.bool "same request" true (r1 = r2);
      check Alcotest.bool "expected shape" true
        (r1
        = Request.Check
            { test = Named "mp"; models = [ "session(ryw,mr)"; "sc" ] })
  | Ok _, Ok _ -> Alcotest.fail "wrong id or proto"
  | Error e, _ -> Alcotest.failf "v1 line rejected: %s" e
  | _, Error e -> Alcotest.failf "v2 line rejected: %s" e

let request_garbage_rejected () =
  List.iter
    (fun line ->
      match Wire.parse_request_line line with
      | Ok _ -> Alcotest.failf "accepted garbage: %s" line
      | Error _ -> ())
    [
      "";
      "not json";
      {|{"schema":"smem-api/1"}|};
      {|{"schema":"smem-api/1","kind":"launder"}|};
      {|{"schema":"smem-api/1","kind":"check"}|};
      {|{"schema":"smem-api/2","kind":"check","test":{"corpus":"mp"},"models":[{"args":[]}]}|};
      {|[1,2,3]|};
    ]

(* ---------------- response round-trips ---------------- *)

let all_responses =
  let verdicts =
    [
      Verdict.v ~subject:"fig1" ~authority:"sc" ~expected:Verdict.Forbidden
        (Some Verdict.Forbidden);
      Verdict.v ~subject:"fig1" ~authority:"pc-g" ~cached:true
        (Some Verdict.Allowed);
    ]
  in
  let base kind payload =
    {
      Response.id = Some 7;
      kind;
      cached = 1;
      computed = 1;
      elapsed_ns = 12345;
      payload;
    }
  in
  [
    base "check" (Response.Verdicts verdicts);
    base "classify"
      (Response.Classification
         {
           total = 81;
           allowed = [ ("sc", 10); ("pram", 30) ];
           relations = [ ("sc", "pram", "stronger"); ("pram", "sc", "weaker") ];
           hasse = [ ("sc", "pram") ];
         });
    base "distinguish"
      (Response.Distinction
         {
           relation = "a-stronger";
           witnesses = [ ("allowed-by-b-only", "test \"w\"\np0: w(x)1\n") ];
         });
    base "certify" (Response.Certificate { format = "sexp"; body = "(cert)" });
    base "models"
      (Response.Catalogue
         {
           models =
             [
               {
                 Response.key = "sc";
                 name = "Sequential Consistency";
                 description = "one total order";
                 params =
                   Some
                     [
                       ("population", "shared-all");
                       ("ordering", "po");
                       ("mutual", "none");
                       ("legality", "value");
                     ];
               };
               {
                 Response.key = "tso-op";
                 name = "TSO (operational)";
                 description = "machine replay";
                 params = None;
               };
             ];
           families =
             [
               {
                 Response.family = "session";
                 doc = "session guarantees";
                 params = [ ("ryw", "flag"); ("mr", "flag") ];
               };
             ];
         });
    Response.error ~id:3 ~code:Response.Unknown_model "no such model: zz";
    Response.error ~code:Response.Bad_request "parse error";
  ]

let response_roundtrip () =
  List.iter
    (fun proto ->
      List.iteri
        (fun i r ->
          match Wire.parse_response_line (Wire.response_line ~proto r) with
          | Error e -> Alcotest.failf "response %d did not parse back: %s" i e
          | Ok r' -> check Alcotest.bool "response roundtrip" true (r = r'))
        all_responses)
    [ Wire.V1; Wire.V2 ]

(* A v1 response line has exactly the smem-api/1 shape: the v1 schema
   tag and no version field.  This is the byte-compatibility seam the
   server relies on when answering v1 clients. *)
let response_v1_shape () =
  let r = List.nth all_responses 0 in
  let j = Wire.response_to_json ~proto:Wire.V1 r in
  check Alcotest.bool "v1 schema tag" true
    (Json.member "schema" j = Some (Json.Str "smem-api/1"));
  check Alcotest.bool "no version field in v1" true
    (Json.member "version" j = None);
  let j2 = Wire.response_to_json ~proto:Wire.V2 r in
  check Alcotest.bool "v2 schema tag" true
    (Json.member "schema" j2 = Some (Json.Str "smem-api/2"));
  check Alcotest.bool "explicit version in v2" true
    (Json.member "version" j2 = Some (Json.Int 2))

let response_ok () =
  check Alcotest.bool "verdicts ok" true
    (Response.ok (List.nth all_responses 0));
  check Alcotest.bool "error not ok" false
    (Response.ok (Response.error ~code:Response.Rejected "kernel said no"))

let error_code_strings () =
  List.iter
    (fun c ->
      match Response.(error_code_of_string (error_code_to_string c)) with
      | Some c' -> check Alcotest.bool "code roundtrip" true (c = c')
      | None -> Alcotest.failf "code %s did not parse back"
                  (Response.error_code_to_string c))
    Response.
      [
        Bad_request; Unknown_model; Unknown_test; Uncertifiable; Rejected;
        Internal;
      ];
  check Alcotest.bool "unknown code" true
    (Response.error_code_of_string "flaky" = None)

let response_lines_are_single_lines () =
  List.iter
    (fun r ->
      let line = Wire.response_line r in
      check Alcotest.bool "newline-terminated" true
        (String.length line > 0 && line.[String.length line - 1] = '\n');
      check Alcotest.bool "no interior newline" false
        (String.contains (String.sub line 0 (String.length line - 1)) '\n'))
    all_responses

let () =
  Alcotest.run "api"
    [
      ( "verdict",
        [
          tc "status/bool" verdict_status_bool;
          tc "agrees" verdict_agrees;
          tc "json roundtrip" verdict_json_roundtrip;
        ] );
      ( "wire",
        [
          tc "request roundtrip" request_roundtrip;
          tc "schema checked" request_schema_checked;
          tc "versions agree" request_versions_agree;
          tc "garbage rejected" request_garbage_rejected;
          tc "response roundtrip" response_roundtrip;
          tc "v1 byte shape" response_v1_shape;
          tc "response ok" response_ok;
          tc "error codes" error_code_strings;
          tc "ndjson framing" response_lines_are_single_lines;
        ] );
    ]
