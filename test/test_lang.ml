(* Tests of the little concurrent language and its explorer: expression
   evaluation, local stepping, layouts, and the mutual-exclusion results
   of §5 (Bakery safe on RC_sc, broken on RC_pc) plus the classical
   TSO failures of Peterson/Dekker. *)

module Ast = Smem_lang.Ast
module Exec = Smem_lang.Exec
module Explore = Smem_lang.Explore
module Programs = Smem_lang.Programs
module Machines = Smem_machine.Machines

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let machine key =
  match Machines.find key with
  | Some m -> m
  | None -> Alcotest.failf "unknown machine %s" key

(* ---------------- expressions and environments ---------------- *)

let env_semantics () =
  let env = Exec.Env.empty in
  check Alcotest.int "unset reads 0" 0 (Exec.Env.get env "r");
  let env = Exec.Env.set env "b" 2 in
  let env = Exec.Env.set env "a" 1 in
  let env = Exec.Env.set env "b" 3 in
  check Alcotest.int "get a" 1 (Exec.Env.get env "a");
  check Alcotest.int "overwrite b" 3 (Exec.Env.get env "b");
  (* canonical representation: insertion order doesn't matter *)
  let env2 = Exec.Env.set (Exec.Env.set Exec.Env.empty "a" 1) "b" 3 in
  check Alcotest.bool "canonical" true
    (Exec.Env.bindings env = Exec.Env.bindings env2)

let eval_expressions () =
  let env = Exec.Env.set Exec.Env.empty "x" 5 in
  let cases =
    [
      (Ast.Int 3, 3);
      (Ast.Reg "x", 5);
      (Ast.Add (Ast.Int 1, Ast.Reg "x"), 6);
      (Ast.Sub (Ast.Reg "x", Ast.Int 2), 3);
      (Ast.Mul (Ast.Int 2, Ast.Int 3), 6);
      (Ast.Eq (Ast.Reg "x", Ast.Int 5), 1);
      (Ast.Ne (Ast.Reg "x", Ast.Int 5), 0);
      (Ast.Lt (Ast.Int 1, Ast.Int 2), 1);
      (Ast.Le (Ast.Int 2, Ast.Int 2), 1);
      (Ast.And (Ast.Int 1, Ast.Int 0), 0);
      (Ast.Or (Ast.Int 1, Ast.Int 0), 1);
      (Ast.Not (Ast.Int 0), 1);
    ]
  in
  List.iteri
    (fun i (e, expected) ->
      check Alcotest.int (Printf.sprintf "case %d" i) expected (Exec.eval env e))
    cases

(* ---------------- layout ---------------- *)

let layout_flattening () =
  let program =
    { Ast.shared = [ ("flag", 2); ("turn", 1) ]; threads = [| [] |] }
  in
  let l = Ast.layout program in
  check Alcotest.int "nlocs" 3 (Ast.nlocs l);
  check Alcotest.int "flag[1]" 1 (Ast.loc_id l "flag" 1);
  check Alcotest.int "turn" 2 (Ast.loc_id l "turn" 0);
  check Alcotest.string "names" "flag[1]" (Ast.loc_names l).(1);
  check Alcotest.string "scalar name" "turn" (Ast.loc_names l).(2);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Ast.loc_id: flag[2] out of bounds") (fun () ->
      ignore (Ast.loc_id l "flag" 2))

(* ---------------- local stepping ---------------- *)

let stepping () =
  let program = { Ast.shared = [ ("x", 1) ]; threads = [| [] |] } in
  let layout = Ast.layout program in
  let cont =
    [
      Ast.Assign ("a", Ast.Int 2);
      Ast.If
        ( Ast.Eq (Ast.Reg "a", Ast.Int 2),
          [ Ast.store (Ast.var "x") (Ast.Reg "a") ],
          [] );
    ]
  in
  match Exec.step_to_action layout ~env:Exec.Env.empty ~cont ~fuel:100 with
  | Exec.At_action (Exec.A_store { loc; value; labeled }, _, rest) ->
      check Alcotest.int "loc" 0 loc;
      check Alcotest.int "value" 2 value;
      check Alcotest.bool "ordinary" false labeled;
      check Alcotest.int "continuation" 0 (List.length rest)
  | _ -> Alcotest.fail "expected a store action"

let stepping_loops () =
  let program = { Ast.shared = [ ("x", 1) ]; threads = [| [] |] } in
  let layout = Ast.layout program in
  (* a for loop that sums 1..3 into r, then terminates *)
  let cont =
    [
      Ast.For
        {
          var = "i";
          from_ = Ast.Int 1;
          to_ = Ast.Int 3;
          body = [ Ast.Assign ("r", Ast.Add (Ast.Reg "r", Ast.Reg "i")) ];
        };
    ]
  in
  (match Exec.step_to_action layout ~env:Exec.Env.empty ~cont ~fuel:100 with
  | Exec.Finished env -> check Alcotest.int "sum" 6 (Exec.Env.get env "r")
  | _ -> Alcotest.fail "expected termination");
  (* fuel exhaustion on a memory-free loop *)
  let spin = [ Ast.While (Ast.Int 1, [ Ast.Assign ("a", Ast.Int 1) ]) ] in
  match Exec.step_to_action layout ~env:Exec.Env.empty ~cont:spin ~fuel:50 with
  | Exec.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

(* ---------------- mutual exclusion ---------------- *)

let is_safe = function Explore.Safe _ -> true | _ -> false
let is_violation = function Explore.Violation _ -> true | _ -> false

let mutex_expect name program machine_key expect_safe () =
  ignore name;
  let verdict = Explore.check_mutex (machine machine_key) program in
  if expect_safe then
    check Alcotest.bool (machine_key ^ " safe") true (is_safe verdict)
  else check Alcotest.bool (machine_key ^ " violated") true (is_violation verdict)

let mutex_cases =
  [
    (* The §5 headline: the Bakery algorithm distinguishes RC_sc from
       RC_pc. *)
    tc "bakery(2) safe on sc" (mutex_expect "bakery" (Programs.bakery ~n:2 ()) "sc" true);
    tc "bakery(2) safe on rc-sc"
      (mutex_expect "bakery" (Programs.bakery ~n:2 ()) "rc-sc" true);
    tc "bakery(2) VIOLATED on rc-pc"
      (mutex_expect "bakery" (Programs.bakery ~n:2 ()) "rc-pc" false);
    tc "bakery(2) violated on tso"
      (mutex_expect "bakery" (Programs.bakery ~n:2 ()) "tso" false);
    tc "bakery(2) violated on pram"
      (mutex_expect "bakery" (Programs.bakery ~n:2 ()) "pram" false);
    tc "peterson safe on sc" (mutex_expect "peterson" (Programs.peterson ()) "sc" true);
    tc "peterson violated on tso"
      (mutex_expect "peterson" (Programs.peterson ()) "tso" false);
    tc "dekker safe on sc" (mutex_expect "dekker" (Programs.dekker ()) "sc" true);
    tc "dekker violated on tso"
      (mutex_expect "dekker" (Programs.dekker ()) "tso" false);
    tc "naive flags violated even on sc"
      (mutex_expect "naive" (Programs.naive_flags ()) "sc" false);
    tc "bakery(3) safe on sc"
      (mutex_expect "bakery" (Programs.bakery ~n:3 ()) "sc" true);
    (* All three read/write-only algorithms survive RC_sc and break on
       RC_pc: the §5 separation is not specific to the Bakery
       algorithm. *)
    tc "peterson safe on rc-sc"
      (mutex_expect "peterson" (Programs.peterson ()) "rc-sc" true);
    tc "peterson violated on rc-pc"
      (mutex_expect "peterson" (Programs.peterson ()) "rc-pc" false);
    tc "dekker safe on rc-sc"
      (mutex_expect "dekker" (Programs.dekker ()) "rc-sc" true);
    tc "dekker violated on rc-pc"
      (mutex_expect "dekker" (Programs.dekker ()) "rc-pc" false);
  ]

(* The converse of the §5 moral: a read-modify-write lock is safe on
   every machine, including the ones where the Bakery algorithm and
   Peterson's break. *)
let spinlock_cases =
  List.map
    (fun key ->
      tc
        (Printf.sprintf "tas spinlock safe on %s" key)
        (mutex_expect "spinlock" (Programs.tas_spinlock ()) key true))
    [ "sc"; "tso"; "pc-g"; "causal"; "pram"; "rc-sc"; "rc-pc" ]

(* ---------------- liveness ---------------- *)

(* §5 recalls that Bakery under SC is free from deadlocks; here that is
   the property that every reachable state can still reach
   termination. *)
let deadlock_freedom () =
  let is_free prog m =
    match Explore.check_deadlock_freedom (machine m) prog with
    | Explore.Deadlock_free _ -> true
    | _ -> false
  in
  check Alcotest.bool "bakery(2) deadlock-free on sc" true
    (is_free (Programs.bakery ~n:2 ()) "sc");
  check Alcotest.bool "bakery(2) deadlock-free on rc-sc" true
    (is_free (Programs.bakery ~n:2 ()) "rc-sc");
  check Alcotest.bool "peterson deadlock-free on sc" true
    (is_free (Programs.peterson ()) "sc");
  check Alcotest.bool "dekker deadlock-free on sc" true
    (is_free (Programs.dekker ()) "sc");
  check Alcotest.bool "spinlock deadlock-free on rc-pc" true
    (is_free (Programs.tas_spinlock ()) "rc-pc");
  (* negative control: a spin on a flag nobody sets *)
  let stuck =
    {
      Ast.shared = [ ("x", 1) ];
      threads =
        [|
          [
            Ast.load "f" (Ast.var "x");
            Ast.While
              (Ast.Eq (Ast.Reg "f", Ast.Int 0), [ Ast.load "f" (Ast.var "x") ]);
          ];
        |];
    }
  in
  match Explore.check_deadlock_freedom (machine "sc") stuck with
  | Explore.Stuck n -> check Alcotest.bool "dead states found" true (n > 0)
  | _ -> Alcotest.fail "expected stuck states"

(* ---------------- concrete syntax ---------------- *)

let parse_ok src =
  match Smem_lang.Parse_prog.program_of_string src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %a" Smem_lang.Parse_prog.pp_error e

let parse_err src =
  match Smem_lang.Parse_prog.program_of_string src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

let prog_parse_basics () =
  let p =
    parse_ok
      "shared x
shared a[3]
thread 0 {
  r := 1 + 2 * 3
  store* x := r
         load v <- a[r - 6]
  enter
  exit
}
"
  in
  check Alcotest.int "one thread" 1 (Array.length p.Ast.threads);
  check Alcotest.int "two arrays" 2 (List.length p.Ast.shared);
  (match p.Ast.threads.(0) with
  | [ Ast.Assign ("r", e); Ast.Store { labeled = true; _ };
      Ast.Load { labeled = false; _ }; Ast.Cs_enter; Ast.Cs_exit ] ->
      check Alcotest.int "precedence" 7 (Exec.eval Exec.Env.empty e)
  | _ -> Alcotest.fail "unexpected statement shape");
  (* structured statements *)
  let p2 =
    parse_ok
      "shared x
thread 0 {
  if a == 0 { b := 1 } else { b := 2 }
  while        b != 0 { b := b - 1 }
  for i = 0 to 3 { c := c + i }
}
"
  in
  check Alcotest.int "three statements" 3 (List.length p2.Ast.threads.(0))

let prog_parse_errors () =
  let e = parse_err "thread 1 {
}
" in
  check Alcotest.int "thread numbering" 1 e.Smem_lang.Parse_prog.line;
  let e2 = parse_err "shared x
shared x
thread 0 {}
" in
  check Alcotest.int "duplicate shared" 2 e2.Smem_lang.Parse_prog.line;
  let e3 = parse_err "shared x
thread 0 {
  store x 1
}
" in
  check Alcotest.int "missing :=" 3 e3.Smem_lang.Parse_prog.line;
  let e4 = parse_err "" in
  check Alcotest.bool "empty input rejected" true (e4.Smem_lang.Parse_prog.line >= 1)

(* Printing then reparsing the whole program library preserves the AST
   and, more importantly, the behaviour. *)
let prog_roundtrip () =
  List.iter
    (fun (name, p) ->
      let printed = Smem_lang.Print_prog.to_string p in
      let p' = parse_ok printed in
      check Alcotest.bool (name ^ " AST round-trips") true (p = p'))
    [
      ("bakery", Programs.bakery ~n:2 ());
      ("bakery3", Programs.bakery ~n:3 ());
      ("peterson", Programs.peterson ());
      ("dekker", Programs.dekker ());
      ("naive", Programs.naive_flags ());
      ("spinlock", Programs.tas_spinlock ());
    ]

(* ---------------- races and the properly-labeled condition ---------------- *)

let race_verdicts () =
  let is_free p =
    match Smem_lang.Races.find_race p with
    | Smem_lang.Races.Race_free _ -> true
    | _ -> false
  in
  check Alcotest.bool "bakery labeled is properly labeled" true
    (is_free (Programs.bakery ~n:2 ()));
  check Alcotest.bool "bakery unlabeled races" false
    (is_free (Programs.bakery ~labeled:false ~n:2 ()));
  check Alcotest.bool "peterson labeled is properly labeled" true
    (is_free (Programs.peterson ()));
  check Alcotest.bool "peterson unlabeled races" false
    (is_free (Programs.peterson ~labeled:false ()));
  check Alcotest.bool "dekker labeled is properly labeled" true
    (is_free (Programs.dekker ()));
  check Alcotest.bool "tas spinlock is race-free" true
    (is_free (Programs.tas_spinlock ()));
  (* properly labeled does not mean correct: the naive protocol is
     race-free when labeled yet violates mutual exclusion even on SC. *)
  check Alcotest.bool "naive labeled is race-free" true
    (is_free (Programs.naive_flags ()));
  match Smem_lang.Races.find_race (Programs.peterson ~labeled:false ()) with
  | Smem_lang.Races.Race (a, b) ->
      check Alcotest.bool "race is conflicting" true
        (a.Smem_lang.Races.loc = b.Smem_lang.Races.loc);
      check Alcotest.bool "race has an ordinary participant" true
        ((not a.Smem_lang.Races.labeled) || not b.Smem_lang.Races.labeled)
  | _ -> Alcotest.fail "expected a race"

(* The DRF guarantee of §1 (Gibbons-Merritt-Gharachorloo, for RC_sc):
   properly labeled programs behave as on SC.  Checked here on the
   mutual-exclusion verdicts of every properly labeled program in the
   library, on the RC_sc machine. *)
let drf_guarantee () =
  let sc_verdict p = Explore.check_mutex (machine "sc") p in
  let rcsc_verdict p = Explore.check_mutex (machine "rc-sc") p in
  let same p =
    match (sc_verdict p, rcsc_verdict p) with
    | Explore.Safe _, Explore.Safe _ -> true
    | Explore.Violation _, Explore.Violation _ -> true
    | _ -> false
  in
  List.iter
    (fun (name, p) ->
      check Alcotest.bool
        (name ^ ": properly labeled implies same verdict on rc-sc")
        true
        (Smem_lang.Races.properly_labeled p && same p))
    [
      ("bakery", Programs.bakery ~n:2 ());
      ("peterson", Programs.peterson ());
      ("dekker", Programs.dekker ());
      ("naive", Programs.naive_flags ());
      ("spinlock", Programs.tas_spinlock ());
    ]

let string_contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let violation_trace_structure () =
  match Explore.check_mutex (machine "tso") (Programs.peterson ()) with
  | Explore.Violation trace ->
      let enters =
        List.filter (fun s -> string_contains s "enter critical") trace
      in
      check Alcotest.bool "two entries" true (List.length enters >= 2)
  | _ -> Alcotest.fail "expected a violation"

(* ---------------- DPOR vs. naive enumeration ---------------- *)

(* The two differential oracles for the reduced explorer.  fold_traces
   must emit the same *set* of (history class, final registers) pairs
   as the naive full-interleaving enumeration — the reduction may only
   drop duplicates within a Mazurkiewicz trace class.  check_mutex
   must return the same verdict as the unreduced enumerator on every
   (program, machine) cell. *)

let trace_set ~reduced m p =
  let key (h, envs) =
    ( Smem_core.Canon.digest h,
      Array.to_list (Array.map Exec.Env.bindings envs) )
  in
  match
    Smem_lang.Dpor.fold_traces ~reduced ~max_transitions:100_000 m p
      ~init:[]
      ~f:(fun acc t -> key t :: acc)
  with
  | Ok l -> Some (List.sort_uniq compare l)
  | Error _ -> None

(* Shrinking happens on the scalar parameters (seed, size, machine
   index): QCheck walks them toward the range floors, so a failure
   reports the smallest program shape that still disagrees. *)
let dpor_traces_agree =
  QCheck.Test.make ~name:"fold_traces: reduced = naive (set of outcomes)"
    ~count:40
    QCheck.(
      quad (0 -- 10_000) (1 -- 2) (2 -- 3)
        (0 -- (List.length Machines.all - 1)))
    (fun (seed, len, nprocs, mi) ->
      let rand = Random.State.make [| 2026; seed |] in
      let labels = [| `No; `Mixed; `Separated |].(seed mod 3) in
      let p = Programs.random ~rand ~nprocs ~nlocs:2 ~len ~labels () in
      let m = List.nth Machines.all mi in
      match trace_set ~reduced:false m p with
      (* a case too big for the naive side is discarded, not failed:
         the comparison needs both enumerations to finish *)
      | None -> QCheck.assume_fail ()
      | Some naive ->
          (* the reduced run does strictly less work, so its budget
             cannot be the one that fails *)
          trace_set ~reduced:true m p = Some naive)

let same_verdict a b =
  match (a, b) with
  | Explore.Safe _, Explore.Safe _ -> true
  | Explore.Violation _, Explore.Violation _ -> true
  | Explore.State_limit, Explore.State_limit -> true
  | _ -> false

let dpor_mutex_matrix () =
  List.iter
    (fun (name, p) ->
      List.iter
        (fun m ->
          let naive, _ = Explore.check_mutex_naive m p in
          let reduced = Explore.check_mutex m p in
          check Alcotest.bool
            (Printf.sprintf "%s on %s: DPOR verdict = naive" name
               (Machines.name m))
            true
            (same_verdict naive reduced))
        Machines.all)
    [
      ("bakery2", Programs.bakery ~n:2 ());
      ("peterson", Programs.peterson ());
      ("dekker", Programs.dekker ());
      ("naive-flags", Programs.naive_flags ());
      ("seqlock", Programs.seqlock ());
      ("spinlock", Programs.tas_spinlock ());
    ]

(* The headline acceptance number: on a weak machine the reduced
   exploration of bakery(2) does at least 10x fewer transitions than
   the naive enumeration. *)
let dpor_reduction_ratio () =
  let m = machine "local" in
  let p = Programs.bakery ~n:2 () in
  let _, naive_tr = Explore.check_mutex_naive m p in
  let _, stats = Explore.check_mutex_stats m p in
  let reduced_tr = max 1 stats.Smem_lang.Dpor.transitions in
  check Alcotest.bool
    (Printf.sprintf "bakery2/local: %d naive vs %d reduced transitions"
       naive_tr reduced_tr)
    true
    (naive_tr >= 10 * reduced_tr)

(* Exact explored-state counts for the two classic loop-free shapes,
   pinned per machine: any change to stepping, machine transitions, or
   the transition-accounting fix shows up as a diff here.  The DPOR
   side prunes at the root (no critical sections anywhere), so its
   pinned count is 1 state, 0 transitions. *)
let pinned_counts () =
  let expect_naive =
    [
      ( "mp",
        Programs.mp (),
        [
          ("sc", 13, 27); ("tso", 23, 57); ("pc-g", 23, 57); ("causal", 23, 57);
          ("pram", 23, 57); ("slow", 29, 77); ("local", 29, 77);
          ("rc-sc", 16, 36); ("rc-pc", 23, 57);
        ] );
      ( "sb",
        Programs.sb (),
        [
          ("sc", 13, 27); ("tso", 34, 93); ("pc-g", 34, 93); ("causal", 42, 117);
          ("pram", 34, 93); ("slow", 34, 93); ("local", 34, 93);
          ("rc-sc", 34, 93); ("rc-pc", 34, 93);
        ] );
    ]
  in
  List.iter
    (fun (name, p, cells) ->
      List.iter
        (fun (key, states, transitions) ->
          let verdict, tr = Explore.check_mutex_naive (machine key) p in
          (match verdict with
          | Explore.Safe n ->
              check Alcotest.int
                (Printf.sprintf "%s/%s naive states" name key)
                states n
          | _ -> Alcotest.failf "%s/%s: expected Safe" name key);
          check Alcotest.int
            (Printf.sprintf "%s/%s naive transitions" name key)
            transitions tr;
          let reduced, stats = Explore.check_mutex_stats (machine key) p in
          (match reduced with
          | Explore.Safe n ->
              check Alcotest.int
                (Printf.sprintf "%s/%s reduced states" name key)
                1 n
          | _ -> Alcotest.failf "%s/%s: expected Safe (reduced)" name key);
          check Alcotest.int
            (Printf.sprintf "%s/%s reduced transitions" name key)
            0
            stats.Smem_lang.Dpor.transitions)
        cells)
    expect_naive

let random_runs_record_histories () =
  let rand = Random.State.make [| 42 |] in
  let h, violated = Explore.run_random (machine "sc") (Programs.peterson ()) ~rand in
  check Alcotest.bool "no violation on sc" false violated;
  check Alcotest.int "two processors" 2 (Smem_core.History.nprocs h);
  check Alcotest.bool "ops recorded" true (Smem_core.History.nops h > 0);
  (* the recorded history is labeled throughout (peterson ~labeled:true) *)
  check Alcotest.bool "labels recorded" true (Smem_core.History.has_labeled h)

let () =
  Alcotest.run "lang"
    [
      ( "exec",
        [
          tc "environments" env_semantics;
          tc "expressions" eval_expressions;
          tc "layout" layout_flattening;
          tc "stepping to actions" stepping;
          tc "loops and fuel" stepping_loops;
        ] );
      ("mutual exclusion", mutex_cases @ spinlock_cases);
      ( "explorer",
        [
          tc "violation traces" violation_trace_structure;
          tc "random runs record histories" random_runs_record_histories;
        ] );
      ( "dpor",
        [
          QCheck_alcotest.to_alcotest dpor_traces_agree;
          tc "mutex verdict matrix = naive" dpor_mutex_matrix;
          tc "bakery2 reduction >= 10x" dpor_reduction_ratio;
          tc "pinned mp/sb counts" pinned_counts;
        ] );
      ("liveness", [ tc "deadlock freedom" deadlock_freedom ]);
      ( "races",
        [
          tc "verdicts" race_verdicts;
          tc "DRF guarantee on rc-sc" drf_guarantee;
        ] );
      ( "syntax",
        [
          tc "parsing" prog_parse_basics;
          tc "parse errors" prog_parse_errors;
          tc "program library round-trips" prog_roundtrip;
        ] );
    ]
