(* Tests of the constraint-propagation witness engine (lib/solve):

   - verdict equivalence with each model's own rf × co enumeration,
     over the built-in litmus corpus, a 500-test generated
     smem-corpus/1 load, and qcheck random histories (shrunk on
     failure) — the engine replicates every model's leaf predicate
     exactly, and these suites pin that down;
   - the co-pump family the bench section measures: forbidden under SC
     for every k >= 2, allowed at k = 1;
   - witness reusability: a solver witness re-checks under the
     enumeration engine's kernel, and certificates emitted while the
     solve engine is selected still verify;
   - incremental mode: rechecking a history extended one operation at
     a time agrees with solving each prefix from scratch, and actually
     reuses the nogood store along the chain. *)

module H = Smem_core.History
module Op = Smem_core.Op
module Model = Smem_core.Model
module Registry = Smem_core.Registry
module Witness = Smem_core.Witness
module Test = Smem_litmus.Test
module Corpus = Smem_litmus.Corpus
module Cert = Smem_cert.Cert
module Kernel = Smem_cert.Kernel
module Solve = Smem_solve.Solve
module Helpers = Smem_testlib.Helpers

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let model key =
  match Registry.find key with
  | Some m -> m
  | None -> Alcotest.failf "unknown model %s" key

(* The engines under comparison: the model's own enumeration on one
   side, the propagation engine on the other. *)
let enum_allows (m : Model.t) h = Option.is_some (m.Model.witness h)
let solve_allows (m : Model.t) h = Solve.check m h

let agree_everywhere ~what h =
  List.iter
    (fun (m : Model.t) ->
      let enum = enum_allows m h and solve = solve_allows m h in
      if enum <> solve then
        Alcotest.failf "%s: %s disagrees (enum %b, solve %b) on:\n%s" what
          m.Model.key enum solve
          (Format.asprintf "%a" H.pp h))
    Registry.certifiable

(* ---------------- corpus differentials ---------------- *)

let builtin_corpus_cases =
  List.map
    (fun (t : Test.t) ->
      tc t.Test.name (fun () ->
          agree_everywhere ~what:t.Test.name t.Test.history))
    Corpus.all

(* The standard load: 500 deduplicated machine-execution tests, every
   certifiable model, both engines (the same differential `smem fuzz
   --engines --corpus` runs in CI). *)
let generated_corpus_differential () =
  let tests = Smem_corpus.Corpus.generate ~seed:42 ~count:500 ~max_ops:8 () in
  check Alcotest.int "load size" 500 (List.length tests);
  List.iter
    (fun (t : Test.t) -> agree_everywhere ~what:t.Test.name t.Test.history)
    tests

(* ---------------- random differentials ---------------- *)

let prop_random_histories =
  QCheck.Test.make ~name:"solver = enumerator on random histories"
    ~count:300
    (Helpers.arb_history ~labeled_allowed:`Mixed ())
    (fun h ->
      agree_everywhere ~what:"random" h;
      true)

let prop_random_separated =
  (* The separated discipline exercises the labeled models' sync phase
     (Labeled_sc / Labeled_total availability and prefix legality). *)
  QCheck.Test.make ~name:"solver = enumerator under separated labels"
    ~count:200
    (Helpers.arb_history ~labeled_allowed:`Separated ())
    (fun h ->
      agree_everywhere ~what:"separated" h;
      true)

(* ---------------- the co-pump family ---------------- *)

let co_pump k =
  H.make
    [
      List.init k (fun i -> H.write "x" (i + 1));
      List.init k (fun i -> H.write "x" (k + i + 1));
      [ H.read "x" 2; H.read "x" 1 ];
    ]

let co_pump_family () =
  check Alcotest.bool "k=1 allowed under sc" true
    (solve_allows (model "sc") (co_pump 1));
  for k = 2 to 5 do
    check Alcotest.bool
      (Printf.sprintf "k=%d forbidden under sc" k)
      false
      (solve_allows (model "sc") (co_pump k));
    agree_everywhere ~what:(Printf.sprintf "co-pump(%d)" k) (co_pump k)
  done

(* ---------------- witnesses and certificates ---------------- *)

(* A witness found by the solver is evidence, not just a verdict: the
   certificate kernel must accept a certificate built from it.  Run
   with the solve engine selected process-wide, then restore. *)
let solver_certificates_verify () =
  Solve.install ();
  Model.set_engine Model.Solve;
  Fun.protect
    ~finally:(fun () -> Model.set_engine Model.Enum)
    (fun () ->
      let n = ref 0 in
      List.iter
        (fun (t : Test.t) ->
          List.iter
            (fun (m : Model.t) ->
              match Cert.certify m t.Test.history with
              | None -> ()
              | Some c -> (
                  incr n;
                  match Kernel.verify c with
                  | Ok _ -> ()
                  | Error e ->
                      Alcotest.failf "%s/%s: kernel rejected: %s" t.Test.name
                        m.Model.key e))
            Registry.certifiable)
        Corpus.all;
      check Alcotest.bool "matrix is non-trivial" true (!n > 100))

(* ---------------- incremental mode ---------------- *)

(* Rebuild the event of an operation (loc names survive re-interning;
   arb histories are untimed, as Inc requires). *)
let event_of h (o : Op.t) =
  let labeled = Op.is_labeled o in
  let loc = H.loc_name h o.Op.loc in
  match o.Op.kind with
  | Op.Read -> H.read ~labeled loc o.Op.value
  | Op.Write -> H.write ~labeled loc o.Op.value

(* The extension chain of a history: first processor's first operation,
   then one more operation per step (finishing a processor before
   starting the next), ending at the full history.  Every step appends
   to the last row or adds a row, so ids stay stable — exactly the
   shape [Inc.extends] accepts. *)
let prefix_chain h =
  let rows =
    List.init (H.nprocs h) (fun p ->
        Array.to_list (H.proc_ops h p) |> List.map (fun id -> event_of h (H.op h id)))
  in
  let chain = ref [] in
  let done_rows = ref [] in
  List.iter
    (fun row ->
      let partial = ref [] in
      List.iter
        (fun ev ->
          partial := !partial @ [ ev ];
          chain := (List.rev !done_rows @ [ !partial ]) :: !chain)
        row;
      done_rows := !partial :: !done_rows)
    rows;
  List.rev_map H.make !chain

let prop_incremental =
  QCheck.Test.make ~name:"incremental recheck = from-scratch" ~count:60
    (Helpers.arb_history ~labeled_allowed:`Mixed ~max_procs:3 ~max_ops:3 ())
    (fun h ->
      List.iter
        (fun (m : Model.t) ->
          let inc = Solve.Inc.create m in
          let steps = ref 0 in
          List.iter
            (fun prefix ->
              incr steps;
              let inc_v = Solve.Inc.check inc prefix in
              let scratch = Solve.check m prefix in
              let enum = enum_allows m prefix in
              if inc_v <> scratch || scratch <> enum then
                Alcotest.failf
                  "%s: step %d disagrees (inc %b, scratch %b, enum %b) on:\n%s"
                  m.Model.key !steps inc_v scratch enum
                  (Format.asprintf "%a" H.pp prefix))
            (prefix_chain h);
          (* Every step after the first extends its predecessor. *)
          check Alcotest.int
            (m.Model.key ^ " store reuses")
            (!steps - 1) (Solve.Inc.reuses inc))
        [ model "sc"; model "tso"; model "pc"; model "causal"; model "rc-sc" ];
      true)

let inc_restarts_on_unrelated_history () =
  let inc = Solve.Inc.create (model "sc") in
  let h1 = H.make [ [ H.write "x" 1 ]; [ H.read "x" 1 ] ] in
  let h2 = H.make [ [ H.write "y" 2; H.write "y" 3 ]; [ H.read "y" 9 ] ] in
  check Alcotest.bool "h1" true (Solve.Inc.check inc h1);
  (* h2 does not extend h1 (op 0 differs), so the store must reset and
     the verdict must still be the from-scratch one. *)
  check Alcotest.bool "h2" (Solve.check (model "sc") h2)
    (Solve.Inc.check inc h2);
  check Alcotest.int "no reuse across unrelated histories" 0
    (Solve.Inc.reuses inc)

let () =
  Alcotest.run "solve"
    [
      ("builtin corpus: solver = enumerator", builtin_corpus_cases);
      ( "generated corpus",
        [ tc "500-test smem-corpus/1 load" generated_corpus_differential ] );
      ( "random histories",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_histories; prop_random_separated ] );
      ( "co-pump",
        [ tc "forbidden for k >= 2, allowed at k = 1" co_pump_family ] );
      ( "certificates",
        [ tc "solver-engine certificates verify" solver_certificates_verify ]
      );
      ( "incremental",
        tc "unrelated history resets the store" inc_restarts_on_unrelated_history
        :: List.map QCheck_alcotest.to_alcotest [ prop_incremental ] );
    ]
