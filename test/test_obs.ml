(* Tests of the observability layer: the monotonic clock, the metrics
   registry (including aggregation from pool workers on other domains),
   span recording and its Chrome trace-event JSON sink (parsed back via
   Smem_cert.Json — deliberately through the re-export, which pins the
   type equality), the pool's exception-propagation contract, and the
   machine-readable bench output.  The bench artifacts are produced by
   dune rules in this directory: bench_quick.json from a clean --quick
   run, forced_mismatch.json from a --force-mismatch run that the rule
   requires to exit 1 (the regression test for the bench gate). *)

module Clock = Smem_obs.Clock
module Metrics = Smem_obs.Metrics
module Trace = Smem_obs.Trace
module Json = Smem_cert.Json
module Pool = Smem_parallel.Pool

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* Enough work for a span to outlast the 1 us trace-format tick. *)
let spin () =
  let acc = ref 0 in
  for i = 1 to 200_000 do
    acc := !acc + Sys.opaque_identity i
  done;
  ignore (Sys.opaque_identity !acc)

(* ---------------- clock ---------------- *)

let clock_monotonic () =
  let prev = ref (Clock.now ()) in
  for _ = 1 to 1000 do
    let t = Clock.now () in
    if t < !prev then Alcotest.failf "clock went backwards: %d -> %d" !prev t;
    prev := t
  done

let clock_measures_work () =
  let t0 = Clock.now () in
  spin ();
  let dt = Clock.elapsed_ns t0 in
  check bool "positive" true (dt > 0);
  (* A 200k-iteration spin finishing in under 100ns would mean the
     clock is not actually ticking. *)
  check bool "plausible magnitude" true (dt > 100)

(* ---------------- metrics registry ---------------- *)

let metrics_counter_and_gauge () =
  let c = Metrics.counter "test.obs.counter" in
  let base = Metrics.value c in
  Metrics.incr c;
  Metrics.add c 41;
  check int "counter" (base + 42) (Metrics.value c);
  let g = Metrics.gauge "test.obs.gauge" in
  Metrics.set g 7;
  Metrics.set_max g 3;
  check int "set_max keeps higher" 7 (Metrics.read g);
  Metrics.set_max g 11;
  check int "set_max raises" 11 (Metrics.read g);
  check (Alcotest.option int) "find" (Some 11) (Metrics.find "test.obs.gauge");
  check (Alcotest.option int) "find missing" None (Metrics.find "test.obs.absent")

let metrics_registration_idempotent () =
  let a = Metrics.counter "test.obs.same" in
  let b = Metrics.counter "test.obs.same" in
  let base = Metrics.value a in
  Metrics.incr a;
  Metrics.incr b;
  check int "one cell behind both handles" (base + 2) (Metrics.value a)

let metrics_snapshot_sorted () =
  ignore (Metrics.counter "test.obs.zz");
  ignore (Metrics.counter "test.obs.aa");
  let names = List.map fst (Metrics.snapshot ()) in
  check (Alcotest.list Alcotest.string) "sorted" (List.sort compare names) names

let metrics_aggregate_across_domains () =
  (* The registry's whole point: workers on other domains bump the same
     cell and nothing is lost.  100 tasks x (1 incr + add 2) = 300. *)
  let c = Metrics.counter "test.obs.pool_agg" in
  let base = Metrics.value c in
  let results =
    Pool.map ~jobs:4
      (fun x ->
        Metrics.incr c;
        Metrics.add c 2;
        x)
      (List.init 100 Fun.id)
  in
  check int "all increments landed" (base + 300) (Metrics.value c);
  check (Alcotest.list Alcotest.int) "results intact" (List.init 100 Fun.id)
    results

let metrics_reset_keeps_cells () =
  let c = Metrics.counter "test.obs.reset_me" in
  Metrics.add c 5;
  Metrics.reset ();
  check int "zeroed" 0 (Metrics.value c);
  Metrics.incr c;
  check int "handle still live" 1 (Metrics.value c)

(* ---------------- pool exception contract ---------------- *)

exception Boom of int

let pool_propagates_failure () =
  let saw = Atomic.make 0 in
  let run () =
    Pool.map ~jobs:4
      (fun x ->
        Atomic.incr saw;
        if x = 5 then raise (Boom x);
        x)
      (List.init 32 Fun.id)
  in
  (match run () with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom 5 -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
  (* Documented drain semantics: a failure does not cancel the batch,
     every task still runs before the join re-raises. *)
  check int "all tasks ran" 32 (Atomic.get saw)

let pool_serial_propagates_failure () =
  match Pool.map ~jobs:1 (fun x -> if x = 2 then raise (Boom x) else x) [ 1; 2; 3 ] with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom 2 -> ()

(* ---------------- trace sink ---------------- *)

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s in %s" name (Json.to_string j)

let int_field name j =
  match member name j with
  | Json.Int n -> n
  | j -> Alcotest.failf "field %s not an int: %s" name (Json.to_string j)

let str_field name j =
  match member name j with
  | Json.Str s -> s
  | j -> Alcotest.failf "field %s not a string: %s" name (Json.to_string j)

let record_trace () =
  let file = Filename.temp_file "smem_obs_test" ".json" in
  Trace.start ~file ();
  check bool "armed" true (Trace.active ());
  Trace.span "outer" (fun () ->
      spin ();
      Trace.span ~cat:"t" ~args:[ ("k", Json.Int 7) ] "inner" (fun () -> spin ());
      Trace.instant "marker";
      spin ());
  (try Trace.span "raises" (fun () -> spin (); raise Exit) with Exit -> ());
  Trace.stop ();
  check bool "disarmed" false (Trace.active ());
  let contents = In_channel.with_open_text file In_channel.input_all in
  Sys.remove file;
  match Json.of_string contents with
  | Error e -> Alcotest.failf "trace is not valid JSON: %s" e
  | Ok doc -> doc

let trace_roundtrip () =
  let doc = record_trace () in
  let events =
    match member "traceEvents" doc with
    | Json.Arr evs -> evs
    | j -> Alcotest.failf "traceEvents not an array: %s" (Json.to_string j)
  in
  check bool "display unit" true
    (match Json.member "displayTimeUnit" doc with Some (Json.Str _) -> true | _ -> false);
  (* Every event is well-formed: a name, a phase, integer microsecond
     timestamps, and the recording domain as tid. *)
  List.iter
    (fun e ->
      ignore (str_field "name" e);
      ignore (int_field "ts" e);
      ignore (int_field "tid" e);
      ignore (int_field "pid" e);
      match str_field "ph" e with
      | "X" -> ignore (int_field "dur" e)
      | "i" -> ()
      | ph -> Alcotest.failf "unexpected phase %s" ph)
    events;
  (* stop() sorts the buffer: timestamps are non-decreasing. *)
  ignore
    (List.fold_left
       (fun prev e ->
         let ts = int_field "ts" e in
         check bool "sorted by ts" true (ts >= prev);
         ts)
       min_int events);
  let find name =
    match List.find_opt (fun e -> str_field "name" e = name) events with
    | Some e -> e
    | None -> Alcotest.failf "no event named %s" name
  in
  let outer = find "outer" and inner = find "inner" in
  let start e = int_field "ts" e
  and stop e = int_field "ts" e + int_field "dur" e in
  check bool "inner starts after outer" true (start inner >= start outer);
  (* +1 absorbs the floor-to-microsecond rounding of ts and dur. *)
  check bool "inner ends within outer" true (stop inner <= stop outer + 1);
  (match member "args" inner with
  | Json.Obj fields ->
      check bool "span args survive" true (List.mem_assoc "k" fields);
      check bool "exact ns duration recorded" true
        (List.mem_assoc "dur_ns" fields)
  | j -> Alcotest.failf "inner args: %s" (Json.to_string j));
  check string "instant is a point marker" "i" (str_field "ph" (find "marker"));
  (* The span body raised — the event must still be there. *)
  ignore (find "raises")

let trace_disarmed_is_free () =
  check bool "inactive" false (Trace.active ());
  (* No sink: span must still run the body and return its value. *)
  check int "passthrough" 42 (Trace.span "ghost" (fun () -> 42));
  Trace.instant "ghost";
  (* stop with nothing armed is a no-op. *)
  Trace.stop ()

(* ---------------- bench harness output ---------------- *)

let load_bench file =
  let contents = In_channel.with_open_text file In_channel.input_all in
  match Json.of_string contents with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "%s is not valid JSON: %s" file e

let bench_quick_schema () =
  let doc = load_bench "bench_quick.json" in
  check string "schema" "smem-bench/1" (str_field "schema" doc);
  check bool "jobs recorded" true (int_field "jobs" doc >= 1);
  check int "clean run has no mismatches" 0 (int_field "mismatches" doc);
  let figures =
    match member "figures" doc with
    | Json.Arr rows -> rows
    | j -> Alcotest.failf "figures: %s" (Json.to_string j)
  in
  check int "figures 1-4, two claims each" 8 (List.length figures);
  List.iter
    (fun row ->
      check bool "claim holds" true (member "ok" row = Json.Bool true);
      check bool "wall time measured" true (int_field "wall_ns" row >= 0);
      (* Not >= 1: models without a global coherence order (pram,
         causal) legitimately skip the rf/co enumerations. *)
      check bool "candidate counts present" true
        (int_field "rf_candidates" row >= 0 && int_field "co_candidates" row >= 0))
    figures

let bench_forced_mismatch_detected () =
  (* The file exists at all only because the dune rule accepted exit
     code 1 from --force-mismatch — a bench that stopped failing on
     mismatches breaks the build before this test even runs.  Here we
     check the report agrees with the exit code. *)
  let doc = load_bench "forced_mismatch.json" in
  check bool "flagged as forced" true (member "forced_mismatch" doc = Json.Bool true);
  check bool "mismatches counted" true (int_field "mismatches" doc > 0)

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [ tc "monotonic" clock_monotonic; tc "measures work" clock_measures_work ]
      );
      ( "metrics",
        [
          tc "counter and gauge" metrics_counter_and_gauge;
          tc "registration idempotent" metrics_registration_idempotent;
          tc "snapshot sorted" metrics_snapshot_sorted;
          tc "aggregates across domains" metrics_aggregate_across_domains;
          tc "reset keeps cells" metrics_reset_keeps_cells;
        ] );
      ( "pool",
        [
          tc "propagates failure after drain" pool_propagates_failure;
          tc "serial path propagates failure" pool_serial_propagates_failure;
        ] );
      ( "trace",
        [
          tc "chrome trace roundtrip" trace_roundtrip;
          tc "disarmed is free" trace_disarmed_is_free;
        ] );
      ( "bench",
        [
          tc "quick run schema" bench_quick_schema;
          tc "forced mismatch detected" bench_forced_mismatch_detected;
        ] );
    ]
