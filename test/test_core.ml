(* Unit tests for the core framework: operations, histories, derived
   orders, reads-from and coherence enumeration, and the two checking
   engines. *)

module H = Smem_core.History
module Op = Smem_core.Op
module Orders = Smem_core.Orders
module Rf = Smem_core.Reads_from
module Co = Smem_core.Coherence
module View = Smem_core.View
module Engine = Smem_core.Engine
module Rel = Smem_relation.Rel
module Bitset = Smem_relation.Bitset
module Helpers = Smem_testlib.Helpers

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* Figure 1 history: p0: w(x)1 r(y)0 | p1: w(y)1 r(x)0 *)
let fig1 () =
  H.make [ [ H.write "x" 1; H.read "y" 0 ]; [ H.write "y" 1; H.read "x" 0 ] ]

(* ---------------- History ---------------- *)

let history_structure () =
  let h = fig1 () in
  check Alcotest.int "nops" 4 (H.nops h);
  check Alcotest.int "nprocs" 2 (H.nprocs h);
  check Alcotest.int "nlocs" 2 (H.nlocs h);
  check Alcotest.string "loc 0" "x" (H.loc_name h 0);
  check Alcotest.string "loc 1" "y" (H.loc_name h 1);
  check (Alcotest.option Alcotest.int) "loc_of_name" (Some 1) (H.loc_of_name h "y");
  check (Alcotest.option Alcotest.int) "unknown loc" None (H.loc_of_name h "zz");
  check (Alcotest.list Alcotest.int) "reads" [ 1; 3 ] (H.reads h);
  check (Alcotest.list Alcotest.int) "writes" [ 0; 2 ] (H.writes h);
  check (Alcotest.list Alcotest.int) "writes to x" [ 0 ] (H.writes_to h 0);
  check Alcotest.bool "no labeled" false (H.has_labeled h);
  let op0 = H.op h 0 in
  check Alcotest.int "op proc" 0 op0.Op.proc;
  check Alcotest.int "op index" 0 op0.Op.index;
  check Alcotest.bool "op is write" true (Op.is_write op0)

let history_views_population () =
  let h = fig1 () in
  (* p0's view: its own ops (0, 1) plus p1's write (2). *)
  let v = H.view_ops_writes h 0 in
  check (Alcotest.list Alcotest.int) "view of p0" [ 0; 1; 2 ] (Bitset.elements v);
  let v1 = H.view_ops_writes h 1 in
  check (Alcotest.list Alcotest.int) "view of p1" [ 0; 2; 3 ] (Bitset.elements v1)

let history_labeled () =
  let h =
    H.make
      [
        [ H.write ~labeled:true "s" 1; H.read "x" 0 ];
        [ H.read ~labeled:true "s" 1 ];
      ]
  in
  check (Alcotest.list Alcotest.int) "labeled ids" [ 0; 2 ] (H.labeled h);
  check Alcotest.bool "acquire" true (Op.is_acquire (H.op h 2));
  check Alcotest.bool "release" true (Op.is_release (H.op h 0));
  check Alcotest.bool "ordinary read not acquire" false (Op.is_acquire (H.op h 1))

let history_of_ops_validation () =
  Alcotest.check_raises "non-dense ids"
    (Invalid_argument "History.of_ops: ids must be dense") (fun () ->
      ignore
        (H.of_ops ~nprocs:1 ~loc_names:[| "x" |]
           [
             {
               Op.id = 1;
               proc = 0;
               index = 0;
               kind = Op.Write;
               loc = 0;
               value = 1;
               attr = Op.Ordinary;
             };
           ]))

let history_empty_rejected () =
  Alcotest.check_raises "no processors"
    (Invalid_argument "History.make: no processors") (fun () -> ignore (H.make []))

(* ---------------- Orders ---------------- *)

let orders_po () =
  let h = fig1 () in
  let po = Orders.po h in
  check Alcotest.bool "p0 po" true (Rel.mem po 0 1);
  check Alcotest.bool "p1 po" true (Rel.mem po 2 3);
  check Alcotest.bool "cross-proc unordered" false (Rel.mem po 0 2);
  check Alcotest.bool "no reverse" false (Rel.mem po 1 0)

let orders_ppo () =
  let h = fig1 () in
  let ppo = Orders.ppo h in
  (* w(x)1 -> r(y)0 is a write before a read of a different location:
     dropped from ppo. *)
  check Alcotest.bool "W->R other loc dropped" false (Rel.mem ppo 0 1);
  check Alcotest.bool "same for p1" false (Rel.mem ppo 2 3);
  (* Same-location W->R is kept. *)
  let h2 = H.make [ [ H.write "x" 1; H.read "x" 1 ] ] in
  check Alcotest.bool "W->R same loc kept" true (Rel.mem (Orders.ppo h2) 0 1);
  (* R->W, R->R, W->W all kept. *)
  let h3 =
    H.make [ [ H.read "x" 0; H.write "y" 1; H.write "x" 2; H.read "y" 1 ] ]
  in
  let p = Orders.ppo h3 in
  check Alcotest.bool "R->W" true (Rel.mem p 0 1);
  check Alcotest.bool "W->W" true (Rel.mem p 1 2);
  check Alcotest.bool "R->R" true (Rel.mem p 0 3);
  check Alcotest.bool "chained W->R" true (Rel.mem p 1 3)

let orders_ppo_chain_through_intermediate () =
  (* w(x)1 ; w(y)1 ; r(z)0 — no path survives (both W->R links cross
     locations). *)
  let h = H.make [ [ H.write "x" 1; H.write "y" 1; H.read "z" 0 ] ] in
  let p = Orders.ppo h in
  check Alcotest.bool "w(x)->w(y)" true (Rel.mem p 0 1);
  check Alcotest.bool "w(y)->r(z) dropped" false (Rel.mem p 1 2);
  check Alcotest.bool "w(x)->r(z) dropped" false (Rel.mem p 0 2);
  (* With an interposed same-location read, the chain re-forms. *)
  let h2 = H.make [ [ H.write "x" 1; H.read "x" 1; H.read "z" 0 ] ] in
  let p2 = Orders.ppo h2 in
  check Alcotest.bool "w(x)->r(x)->r(z)" true (Rel.mem p2 0 2)

let orders_po_loc () =
  let h = H.make [ [ H.write "x" 1; H.write "y" 1; H.read "x" 1 ] ] in
  let pl = Orders.po_loc h in
  check Alcotest.bool "same loc" true (Rel.mem pl 0 2);
  check Alcotest.bool "diff loc" false (Rel.mem pl 0 1)

let orders_causal () =
  (* p0: w(x)1 | p1: r(x)1 w(y)1 — causality carries w(x)1 before
     w(y)1 through the read. *)
  let h = H.make [ [ H.write "x" 1 ]; [ H.read "x" 1; H.write "y" 1 ] ] in
  ignore
    (Rf.iter h ~f:(fun rf ->
         let co = Orders.causal h ~rf in
         check Alcotest.bool "wb in causal" true (Rel.mem co 0 1);
         check Alcotest.bool "transitive" true (Rel.mem co 0 2);
         true))

let orders_sem () =
  (* rwb: p0: w(x)1 w(y)1 | p1: r(y)1 — w(x)1 must come before the read
     of w(y)1 in any view containing both. *)
  let h = H.make [ [ H.write "x" 1; H.write "y" 1 ]; [ H.read "y" 1 ] ] in
  ignore
    (Rf.iter h ~f:(fun rf ->
         ignore
           (Co.iter h ~f:(fun co ->
                let rwb = Orders.rwb h ~rf in
                check Alcotest.bool "rwb edge" true (Rel.mem rwb 0 2);
                let sem = Orders.sem h ~rf ~co in
                check Alcotest.bool "sem contains rwb" true (Rel.mem sem 0 2);
                check Alcotest.bool "sem contains ppo" true (Rel.mem sem 0 1);
                true));
         true))

let orders_rrb () =
  (* p0: r(x)0 ; p1: w(x)1 w(y)1 — with w(x)1 coherence-after init, the
     read of 0 precedes p1's later write in the semi-causality. *)
  let h = H.make [ [ H.read "x" 0 ]; [ H.write "x" 1; H.write "y" 1 ] ] in
  ignore
    (Rf.iter h ~f:(fun rf ->
         ignore
           (Co.iter h ~f:(fun co ->
                let rrb = Orders.rrb h ~rf ~co in
                check Alcotest.bool "rrb edge to later write" true (Rel.mem rrb 0 2);
                true));
         true))

let orders_sem_within () =
  (* Only the members' subhistory counts: chaining through a non-member
     must not appear. *)
  let h =
    H.make
      [
        [
          H.write ~labeled:true "x" 1;
          H.read "x" 1;
          H.read ~labeled:true "z" 0;
        ];
      ]
  in
  let members = Bitset.of_list 3 [ 0; 2 ] in
  ignore
    (Rf.iter h ~f:(fun rf ->
         ignore
           (Co.iter h ~f:(fun co ->
                let sem = Orders.sem_within h ~members ~rf ~co in
                (* w*(x) -> r*(z): within the subhistory this is W->R of
                   different locations — unordered. *)
                check Alcotest.bool "not ordered within members" false
                  (Rel.mem sem 0 2);
                (* whereas over the full history the chain through the
                   ordinary read orders them *)
                let sem_full = Orders.sem h ~rf ~co in
                check Alcotest.bool "ordered via non-member" true
                  (Rel.mem sem_full 0 2);
                true));
         true))

let orders_real_time () =
  let h =
    H.make
      [ [ H.write ~at:(0, 1) "x" 1 ]; [ H.read ~at:(2, 3) "x" 0; H.read "x" 0 ] ]
  in
  let rt = Orders.real_time h in
  check Alcotest.bool "response before invocation" true (Rel.mem rt 0 1);
  check Alcotest.bool "not reversed" false (Rel.mem rt 1 0);
  check Alcotest.bool "untimed op unordered" false (Rel.mem rt 0 2);
  check Alcotest.bool "history has timing" true (H.has_timing h);
  let h2 = H.make [ [ H.write "x" 1 ] ] in
  check Alcotest.bool "no timing" false (H.has_timing h2);
  Alcotest.check_raises "bad interval"
    (Invalid_argument "History: interval start after finish") (fun () ->
      ignore (H.read ~at:(5, 2) "x" 0))

(* ---------------- Reads_from ---------------- *)

let rf_candidates () =
  let h =
    H.make
      [
        [ H.write "x" 1; H.write "x" 2 ];
        [ H.read "x" 1; H.read "x" 0; H.read "x" 3 ];
      ]
  in
  check (Alcotest.list Alcotest.int) "value 1 candidates" [ 0 ] (Rf.candidates h 2);
  check (Alcotest.list Alcotest.int) "value 0 -> init" [ H.init ] (Rf.candidates h 3);
  check (Alcotest.list Alcotest.int) "value 3 impossible" [] (Rf.candidates h 4)

let rf_iter_counts () =
  let h = H.make [ [ H.write "x" 1; H.write "x" 1 ]; [ H.read "x" 1 ] ] in
  let n = ref 0 in
  ignore (Rf.iter h ~f:(fun _ -> incr n; false));
  check Alcotest.int "two rf maps" 2 !n;
  let h2 = H.make [ [ H.read "x" 7 ] ] in
  let n2 = ref 0 in
  let any = Rf.iter h2 ~f:(fun _ -> incr n2; true) in
  check Alcotest.bool "no candidate" false any;
  check Alcotest.int "never called" 0 !n2

let rf_wb () =
  let h = H.make [ [ H.write "x" 1 ]; [ H.read "x" 1; H.read "x" 0 ] ] in
  ignore
    (Rf.iter h ~f:(fun rf ->
         check Alcotest.int "writer" 0 (Rf.writer rf 1);
         check Alcotest.bool "init" true (Rf.reads_from_init rf 2);
         let wb = Rf.wb h rf in
         check Alcotest.bool "wb edge" true (Rel.mem wb 0 1);
         check Alcotest.int "one wb edge" 1 (Rel.cardinal wb);
         true))

(* ---------------- Coherence ---------------- *)

let co_enumeration () =
  let h = H.make [ [ H.write "x" 1; H.write "x" 2 ] ] in
  let n = ref 0 in
  ignore (Co.iter h ~f:(fun _ -> incr n; false));
  check Alcotest.int "same-proc: 1 order" 1 !n;
  let h2 = H.make [ [ H.write "x" 1 ]; [ H.write "x" 2 ] ] in
  n := 0;
  ignore (Co.iter h2 ~f:(fun _ -> incr n; false));
  check Alcotest.int "two procs: 2 orders" 2 !n;
  let h3 =
    H.make [ [ H.write "x" 1; H.write "y" 1 ]; [ H.write "x" 2; H.write "y" 2 ] ]
  in
  n := 0;
  ignore (Co.iter h3 ~f:(fun _ -> incr n; false));
  check Alcotest.int "product over locations" 4 !n

let co_structure () =
  let h = H.make [ [ H.write "x" 1; H.write "x" 2; H.write "y" 3 ] ] in
  ignore
    (Co.iter h ~f:(fun co ->
         check Alcotest.bool "precedes" true (Co.precedes co 0 1);
         check Alcotest.bool "not reverse" false (Co.precedes co 1 0);
         check Alcotest.bool "diff loc" false (Co.precedes co 0 2);
         check Alcotest.int "position" 1 (Co.position co 1);
         check (Alcotest.list Alcotest.int) "successors" [ 1 ]
           (Co.successors_from co 0);
         let rel = Co.to_rel co in
         check Alcotest.int "one pair" 1 (Rel.cardinal rel);
         true))

let co_of_write_order () =
  let h = H.make [ [ H.write "x" 1 ]; [ H.write "x" 2; H.write "y" 1 ] ] in
  let co = Co.of_write_order h [| 1; 0; 2 |] in
  check Alcotest.bool "w1 before w0" true (Co.precedes co 1 0);
  check Alcotest.bool "y singleton" false (Co.precedes co 2 2)

(* ---------------- View (engine B) ---------------- *)

let view_simple () =
  let h = H.make [ [ H.write "x" 1; H.read "x" 1 ] ] in
  let ops = H.all_ops_set h in
  (match View.exists h ~ops ~order:(Orders.po h) ~legality:View.By_value with
  | Some seq -> check (Alcotest.list Alcotest.int) "sequence" [ 0; 1 ] seq
  | None -> Alcotest.fail "expected a view");
  let h2 = H.make [ [ H.read "x" 1; H.write "x" 1 ] ] in
  check Alcotest.bool "read before write illegal" true
    (View.exists h2 ~ops:(H.all_ops_set h2) ~order:(Orders.po h2)
       ~legality:View.By_value
    = None)

let position seq v = Option.get (List.find_index (Int.equal v) seq)

let view_respects_order () =
  let h = H.make [ [ H.write "x" 1 ]; [ H.write "x" 2 ]; [ H.read "x" 1 ] ] in
  let ops = H.all_ops_set h in
  let order = Rel.of_pairs 3 [ (0, 1) ] in
  match View.exists h ~ops ~order ~legality:View.By_value with
  | None -> Alcotest.fail "expected a view"
  | Some seq ->
      check Alcotest.bool "w0 before w1" true (position seq 0 < position seq 1);
      check Alcotest.bool "read after w0" true (position seq 0 < position seq 2);
      check Alcotest.bool "read before w1" true (position seq 2 < position seq 1)

let view_by_writer () =
  let h = H.make [ [ H.write "x" 1 ]; [ H.write "x" 1 ]; [ H.read "x" 1 ] ] in
  let ops = H.all_ops_set h in
  ignore
    (Rf.iter h ~f:(fun rf ->
         if Rf.writer rf 2 = 0 then begin
           match
             View.exists h ~ops ~order:(Rel.create 3)
               ~legality:(View.By_writer rf)
           with
           | None -> Alcotest.fail "expected a view"
           | Some seq ->
               check Alcotest.bool "writer before read" true
                 (position seq 0 < position seq 2);
               check Alcotest.bool "other write not between" false
                 (position seq 0 < position seq 1 && position seq 1 < position seq 2)
         end;
         false))

(* ---------------- Engine (engine A) ---------------- *)

let engine_fr_edges () =
  let h =
    H.make [ [ H.write "x" 1; H.write "x" 2 ]; [ H.read "x" 0; H.read "x" 1 ] ]
  in
  ignore
    (Rf.iter h ~f:(fun rf ->
         ignore
           (Co.iter h ~f:(fun co ->
                let fr = Engine.fr_edges h ~rf ~co in
                check Alcotest.bool "init fr to w0" true (Rel.mem fr 2 0);
                check Alcotest.bool "init fr to w1" true (Rel.mem fr 2 1);
                check Alcotest.bool "fr to co-successor" true (Rel.mem fr 3 1);
                check Alcotest.bool "no fr to own writer" false (Rel.mem fr 3 0);
                true));
         true))

let engine_detects_cycle () =
  (* The MP pattern within a single shared view must fail: the SC check
     in miniature. *)
  let h =
    H.make [ [ H.write "x" 1; H.write "y" 1 ]; [ H.read "y" 1; H.read "x" 0 ] ]
  in
  let ok = ref false in
  ignore
    (Rf.iter h ~f:(fun rf ->
         Co.iter h ~f:(fun co ->
             match
               Engine.check h ~rf ~co ~extra:(Rel.create 4)
                 ~views:
                   [
                     { Engine.proc = -1; ops = H.all_ops_set h; order = Orders.po h };
                   ]
             with
             | Some _ ->
                 ok := true;
                 true
             | None -> false)));
  check Alcotest.bool "MP forbidden under a single po view" false !ok

let engine_witness_legal () =
  (* Any witness the engine returns must be value-legal; replay it. *)
  let h = fig1 () in
  ignore
    (Rf.iter h ~f:(fun rf ->
         Co.iter h ~f:(fun co ->
             match
               Engine.check h ~rf ~co ~extra:(Rel.create 4)
                 ~views:
                   (List.init 2 (fun p ->
                        {
                          Engine.proc = p;
                          ops = H.view_ops_writes h p;
                          order = Orders.ppo h;
                        }))
             with
             | None -> false
             | Some w ->
                 List.iter
                   (fun (_, seq) ->
                     check Alcotest.bool "witness legal" true
                       (Smem_testlib.Helpers.legal_sequence h seq))
                   w.Smem_core.Witness.views;
                 true)));
  ()

(* ---------------- Diagnose ---------------- *)

let diagnose_candidate_space () =
  let h = H.make [ [ H.write "x" 1; H.write "x" 1 ]; [ H.read "x" 1 ] ] in
  let rf, co = Smem_core.Diagnose.candidate_space h in
  check Alcotest.int "rf candidates" 2 rf;
  check Alcotest.int "co candidates" 1 co

let diagnose_sc_cycle () =
  (* SB: the refutation cycle is po;fr;po;fr. *)
  let h = fig1 () in
  (match Smem_core.Diagnose.sc_cycle h with
  | None -> Alcotest.fail "expected a cycle"
  | Some cycle ->
      check Alcotest.int "four edges" 4
        (List.length cycle.Smem_core.Diagnose.edges);
      let kinds =
        List.map (fun (_, k, _) -> k) cycle.Smem_core.Diagnose.edges
        |> List.sort compare
      in
      check Alcotest.int "two po + two fr" 2
        (List.length
           (List.filter (( = ) Smem_core.Diagnose.Program_order) kinds)));
  (* an SC-allowed history has no cycle under its first candidate only
     if that candidate works; roundtrip-style history is SC: *)
  let ok = H.make [ [ H.write "x" 1; H.read "x" 1 ] ] in
  check Alcotest.bool "no cycle when SC" true
    (Smem_core.Diagnose.sc_cycle ok = None)

(* ---------------- robustness ---------------- *)

let oversized_history_rejected () =
  (* Engine B encodes the placed set in one machine word; a history at
     the limit must be rejected loudly, not silently mis-handled. *)
  let row = List.init 70 (fun i -> H.write "x" (i + 1)) in
  let h = H.make [ row ] in
  Alcotest.check_raises "View.exists guards its encoding"
    (Smem_core.View.Too_large { nops = 70; limit = Sys.int_size - 1 })
    (fun () ->
      ignore
        (View.exists h ~ops:(H.all_ops_set h) ~order:(Orders.po h)
           ~legality:View.By_value))

let engine_size_mismatch_rejected () =
  let h = fig1 () in
  Alcotest.check_raises "relation size mismatch" (Invalid_argument "Rel: size mismatch")
    (fun () ->
      ignore
        (Rf.iter h ~f:(fun rf ->
             Co.iter h ~f:(fun co ->
                 Engine.check h ~rf ~co
                   ~extra:(Rel.create 2) (* wrong universe size *)
                   ~views:
                     [
                       { Engine.proc = -1; ops = H.all_ops_set h; order = Orders.po h };
                     ]
                 <> None))))

(* ---------------- canonicalization ---------------- *)

module Canon = Smem_core.Canon

(* Rebuild [h] event by event, optionally permuting processors,
   renaming locations, and remapping nonzero values per location —
   exactly the symmetries [Canon] claims to quotient by. *)
let rebuild ?(perm = Fun.id) ?(rename_loc = Fun.id) ?(rename_val = fun _ v -> v)
    h =
  let rows =
    List.init (H.nprocs h) (fun p ->
        H.proc_ops h (perm p) |> Array.to_list
        |> List.map (fun id ->
               let op = H.op h id in
               let loc = rename_loc (H.loc_name h op.Op.loc) in
               let v =
                 if op.Op.value = 0 then 0 else rename_val op.Op.loc op.Op.value
               in
               let labeled = Op.is_labeled op in
               match (op.Op.kind, H.interval h id) with
               | Op.Read, None -> H.read ~labeled loc v
               | Op.Read, Some at -> H.read ~labeled ~at loc v
               | Op.Write, None -> H.write ~labeled loc v
               | Op.Write, Some at -> H.write ~labeled ~at loc v))
  in
  H.make rows

let arb_mixed =
  Helpers.arb_history ~labeled_allowed:`Mixed ~max_procs:4 ~nlocs:3 ()

let canon_idempotent =
  QCheck.Test.make ~name:"canonicalize is idempotent" ~count:300 arb_mixed
    (fun h ->
      let c = Canon.canonicalize h in
      Canon.encode c = Canon.encode h
      && Canon.encode (Canon.canonicalize c) = Canon.encode c)

let canon_row_permutation_invariant =
  QCheck.Test.make ~name:"digest invariant under processor permutation"
    ~count:300 arb_mixed (fun h ->
      let n = H.nprocs h in
      let reversed = rebuild ~perm:(fun p -> n - 1 - p) h in
      let rotated = rebuild ~perm:(fun p -> (p + 1) mod n) h in
      Canon.digest reversed = Canon.digest h
      && Canon.digest rotated = Canon.digest h)

let canon_renaming_invariant =
  QCheck.Test.make
    ~name:"digest invariant under location/value renaming" ~count:300
    arb_mixed (fun h ->
      let renamed =
        rebuild
          ~rename_loc:(fun s -> "loc_" ^ s)
          ~rename_val:(fun loc v -> v + (2 * loc) + 3)
          h
      in
      Canon.digest renamed = Canon.digest h)

let canon_timing_preserved =
  QCheck.Test.make ~name:"canonicalize preserves timing intervals" ~count:300
    (Helpers.arb_timed_history ()) (fun h ->
      let intervals h =
        List.init (H.nops h) (H.interval h) |> List.sort compare
      in
      let c = Canon.canonicalize h in
      H.nops c = H.nops h && intervals c = intervals h)

let canon_distinguishes () =
  (* Equivalence must not over-collapse: changing an outcome value in a
     way no renaming can undo yields a different digest. *)
  let a = fig1 () in
  let b =
    H.make [ [ H.write "x" 1; H.read "y" 1 ]; [ H.write "y" 1; H.read "x" 0 ] ]
  in
  check Alcotest.bool "fig1 vs variant" false (Canon.equivalent a b);
  check Alcotest.bool "digest differs" true (Canon.digest a <> Canon.digest b)

let canon_collapses_known_orbit () =
  (* The store-buffering shape written two ways — swapped processors,
     different location names, scaled values — is one cache key. *)
  let a = fig1 () in
  let b =
    H.make [ [ H.write "b" 7; H.read "a" 0 ]; [ H.write "a" 7; H.read "b" 0 ] ]
  in
  check Alcotest.bool "same orbit, same digest" true (Canon.equivalent a b);
  check Alcotest.bool "exact below limit" true (Canon.is_exact a)

(* The signature-sort fallback, on histories with distinct rows: seven
   processors is past [exact_limit], so canonicalization orders rows by
   signature instead of trying all 7! permutations — the digest must
   still collapse the same orbits (permutations, renamings) and keep
   distinct outcomes apart. *)
let canon_fallback_seven_procs () =
  let row i =
    [
      H.write "x" (i + 1);
      H.read "y" (i mod 3);
      H.write ~labeled:(i mod 2 = 0) "z" (i + 1);
    ]
  in
  let h = H.make (List.init 7 row) in
  check Alcotest.bool "fallback path taken" false (Canon.is_exact h);
  check Alcotest.string "idempotent" (Canon.encode h)
    (Canon.encode (Canon.canonicalize h));
  let reversed = rebuild ~perm:(fun p -> 6 - p) h in
  let rotated = rebuild ~perm:(fun p -> (p + 3) mod 7) h in
  check Alcotest.string "reverse permutation" (Canon.digest h)
    (Canon.digest reversed);
  check Alcotest.string "rotation" (Canon.digest h) (Canon.digest rotated);
  let renamed =
    rebuild ~rename_loc:(fun s -> "q_" ^ s) ~rename_val:(fun _ v -> (2 * v) + 1) h
  in
  check Alcotest.string "renaming" (Canon.digest h) (Canon.digest renamed);
  (* no over-collapsing: turning one read of the initial value into a
     read of a written value is not a renaming *)
  let other =
    H.make
      (List.init 7 (fun i ->
           if i = 3 then
             [ H.write "x" 4; H.read "y" 2; H.write ~labeled:false "z" 4 ]
           else row i))
  in
  check Alcotest.bool "distinct outcomes stay apart" true
    (Canon.digest h <> Canon.digest other)

(* Above [exact_limit] the orbit is *not* guaranteed to collapse (two
   rows with equal signatures tie-break on their original index), so
   the random property asserts exactly what the fallback promises:
   idempotence and renaming invariance.  Permutation invariance on a
   distinct-signature history is covered deterministically above. *)
let canon_fallback_qcheck =
  QCheck.Test.make
    ~name:"fallback (>= 7 procs): idempotent and renaming-invariant"
    ~count:200
    (Helpers.arb_history ~labeled_allowed:`Mixed ~max_procs:9 ())
    (fun h ->
      QCheck.assume (H.nprocs h >= 7);
      let c = Canon.canonicalize h in
      let renamed =
        rebuild
          ~rename_loc:(fun s -> s ^ "'")
          ~rename_val:(fun loc v -> v + loc + 2)
          h
      in
      Canon.encode (Canon.canonicalize c) = Canon.encode c
      && Canon.digest renamed = Canon.digest h)

let canon_large_heuristic () =
  (* Above [exact_limit] the heuristic must still be idempotent and
     invariant under renamings (the sort key is renaming-invariant). *)
  let row i = [ H.write "x" (i + 1); H.read "y" 0 ] in
  let h = H.make (List.init (Canon.exact_limit + 2) row) in
  check Alcotest.bool "not exact" false (Canon.is_exact h);
  check Alcotest.string "idempotent" (Canon.encode h)
    (Canon.encode (Canon.canonicalize h));
  let renamed = rebuild ~rename_loc:(fun s -> s ^ "'") h in
  check Alcotest.string "renaming-invariant" (Canon.digest h)
    (Canon.digest renamed)

let () =
  Alcotest.run "core"
    [
      ( "history",
        [
          tc "structure" history_structure;
          tc "view population" history_views_population;
          tc "labels" history_labeled;
          tc "of_ops validation" history_of_ops_validation;
          tc "empty rejected" history_empty_rejected;
        ] );
      ( "orders",
        [
          tc "program order" orders_po;
          tc "partial program order" orders_ppo;
          tc "ppo chaining" orders_ppo_chain_through_intermediate;
          tc "per-location po" orders_po_loc;
          tc "causal order" orders_causal;
          tc "semi-causality (rwb)" orders_sem;
          tc "semi-causality (rrb)" orders_rrb;
          tc "sem within a subhistory" orders_sem_within;
          tc "real-time precedence" orders_real_time;
        ] );
      ( "reads-from",
        [
          tc "candidates" rf_candidates;
          tc "enumeration counts" rf_iter_counts;
          tc "writes-before" rf_wb;
        ] );
      ( "coherence",
        [
          tc "enumeration counts" co_enumeration;
          tc "structure" co_structure;
          tc "of_write_order" co_of_write_order;
        ] );
      ( "view",
        [
          tc "legal sequence" view_simple;
          tc "respects order" view_respects_order;
          tc "by-writer legality" view_by_writer;
        ] );
      ( "engine",
        [
          tc "from-read edges" engine_fr_edges;
          tc "cycle detection" engine_detects_cycle;
          tc "witness legality" engine_witness_legal;
        ] );
      ( "diagnose",
        [
          tc "candidate space" diagnose_candidate_space;
          tc "sc refutation cycle" diagnose_sc_cycle;
        ] );
      ( "robustness",
        [
          tc "oversized history rejected" oversized_history_rejected;
          tc "engine size mismatch rejected" engine_size_mismatch_rejected;
        ] );
      ( "canon",
        tc "distinguishes non-equivalent" canon_distinguishes
        :: tc "collapses a known orbit" canon_collapses_known_orbit
        :: tc "heuristic above exact limit" canon_large_heuristic
        :: tc "signature-sort fallback at 7 procs" canon_fallback_seven_procs
        :: List.map QCheck_alcotest.to_alcotest
             [
               canon_idempotent;
               canon_row_permutation_invariant;
               canon_renaming_invariant;
               canon_timing_preserved;
               canon_fallback_qcheck;
             ] );
    ]
