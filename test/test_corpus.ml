(* Tests of the corpus pipeline: deterministic generation, digest
   deduplication, the versioned artifact format, and its round-trip
   through the litmus parser.  The golden 20-test sample lives in
   golden/corpus_sample.expected (see the corpus_sample rule in dune);
   this file checks the properties the sample can't. *)

module Corpus = Smem_corpus.Corpus
module Canon = Smem_core.Canon
module Test = Smem_litmus.Test

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let deterministic () =
  let a = Corpus.generate ~seed:42 ~count:120 () in
  let b = Corpus.generate ~seed:42 ~count:120 () in
  check Alcotest.int "count honoured" 120 (List.length a);
  check Alcotest.string "byte-identical artifacts"
    (Corpus.to_string ~seed:42 a)
    (Corpus.to_string ~seed:42 b);
  let c = Corpus.generate ~seed:7 ~count:120 () in
  check Alcotest.bool "another seed, another corpus" false
    (String.equal (Corpus.to_string ~seed:42 a) (Corpus.to_string ~seed:7 c))

let deduplicated () =
  let tests = Corpus.generate ~seed:42 ~count:300 () in
  check Alcotest.int "count honoured" 300 (List.length tests);
  let digests =
    List.map (fun (t : Test.t) -> Canon.digest t.Test.history) tests
  in
  check Alcotest.int "all canonical digests distinct"
    (List.length digests)
    (List.length (List.sort_uniq compare digests));
  (* generated tests are stored canonicalized: re-canonicalizing is the
     identity on every one of them *)
  List.iter
    (fun (t : Test.t) ->
      check Alcotest.string (t.Test.name ^ " canonical")
        (Canon.encode t.Test.history)
        (Canon.encode (Canon.canonicalize t.Test.history)))
    tests

let round_trip () =
  let tests = Corpus.generate ~seed:42 ~count:150 () in
  let s = Corpus.to_string ~seed:42 tests in
  match Corpus.parse s with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok back ->
      check Alcotest.int "same count" (List.length tests) (List.length back);
      List.iter2
        (fun (a : Test.t) (b : Test.t) ->
          check Alcotest.string "name" a.Test.name b.Test.name;
          check Alcotest.string "history survives printing"
            (Canon.digest a.Test.history)
            (Canon.digest (Canon.canonicalize b.Test.history)))
        tests back

let expectations_embedded () =
  let sc =
    match Smem_core.Registry.find "sc" with
    | Some m -> m
    | None -> Alcotest.fail "no sc model"
  in
  let tests = Corpus.generate ~seed:42 ~count:40 ~expect:[ sc ] () in
  List.iter
    (fun (t : Test.t) ->
      match List.assoc_opt "sc" t.Test.expectations with
      | Some verdict ->
          let expected =
            match sc.Smem_core.Model.witness t.Test.history with
            | Some _ -> Test.Allowed
            | None -> Test.Forbidden
          in
          check Alcotest.bool (t.Test.name ^ " sc expectation") true
            (verdict = expected)
      | None -> Alcotest.failf "%s carries no sc expectation" t.Test.name)
    tests;
  (* the expectation lines survive the artifact round-trip *)
  let s = Corpus.to_string ~seed:42 tests in
  match Corpus.parse s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok back ->
      List.iter2
        (fun (a : Test.t) (b : Test.t) ->
          check Alcotest.bool (a.Test.name ^ " expectations round-trip") true
            (a.Test.expectations = b.Test.expectations))
        tests back

let header_checked () =
  (match Corpus.parse "test t0 \"x\"\np0: w x 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "headerless text accepted");
  match Corpus.parse "# smem-corpus/999 seed=1 count=0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong version accepted"

let () =
  Alcotest.run "corpus"
    [
      ( "pipeline",
        [
          tc "deterministic at a fixed seed" deterministic;
          tc "digest-deduplicated" deduplicated;
          tc "artifact round-trips through the parser" round_trip;
          tc "model expectations embedded" expectations_embedded;
          tc "artifact header validated" header_checked;
        ] );
    ]
