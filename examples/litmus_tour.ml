(* A tour of the litmus corpus: the axiomatic verdict matrix side by
   side with operational reachability on the machines.

   Run with: dune exec examples/litmus_tour.exe *)

module Test = Smem_litmus.Test
module Driver = Smem_machine.Driver
module Machines = Smem_machine.Machines

let () =
  let models = Smem_core.Registry.all in
  Format.printf "== Axiomatic verdicts (checker per model) ==@.";
  Smem_litmus.Runner.run_all ~models Smem_litmus.Corpus.all
  |> Smem_litmus.Runner.pp_matrix Format.std_formatter;

  Format.printf "@.== Operational reachability (machine replay) ==@.";
  let machines = Machines.all in
  Format.printf "%-16s" "test";
  List.iter (fun m -> Format.printf " %-8s" (Machines.name m)) machines;
  Format.printf "@.";
  List.iter
    (fun (test : Test.t) ->
      let h = test.Test.history in
      let program = Driver.program_of_history h in
      Format.printf "%-16s" test.Test.name;
      List.iter
        (fun m ->
          Format.printf " %-8s"
            (if Driver.reachable m program h then "yes" else "no"))
        machines;
      Format.printf "@.")
    Smem_litmus.Corpus.all;
  Format.printf
    "@.Every machine 'yes' must be an axiomatic 'yes' for the machine's \
     model — the soundness the property tests check at scale.@."
