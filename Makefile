# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples clean

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/bakery_demo.exe
	dune exec examples/lattice_explore.exe
	dune exec examples/litmus_tour.exe
	dune exec examples/compose_models.exe

clean:
	dune clean
