# Convenience targets; everything is plain dune underneath.

EXAMPLES := quickstart bakery_demo lattice_explore litmus_tour compose_models

.PHONY: all build test bench bench-figures examples fuzz-smoke certs serve-smoke serve-load sim-smoke corpus solver family-smoke fmt fmt-check ci clean

all: build

build:
	dune build @all

test:
	dune runtest --force

# Both bench targets write BENCH_smem.json and exit nonzero if any
# regenerated figure claim mismatches the paper.
bench:
	dune exec bench/main.exe

bench-figures:
	dune exec bench/main.exe -- --figures-only

# Fail fast: one shell, set -e, so the first broken example stops the
# run with its exit code instead of letting later examples mask it.
examples: build
	@set -e; for ex in $(EXAMPLES); do \
	  echo "== $$ex =="; \
	  dune exec examples/$$ex.exe; \
	done

# The CI smoke campaign: small, seeded, must report zero violations.
fuzz-smoke: build
	dune exec bin/smem.exe -- fuzz --seed 42 --count 200 --stats

# Emit the full corpus certificate set (kernel-checked on emission)
# and audit every file offline with the independent kernel.
certs: build
	dune exec bin/smem.exe -- corpus --certify _build/certs
	dune exec bin/smem.exe -- cert verify _build/certs/*.cert

# The serving daemon smoke test: pipe the corpus through one `smem
# serve` process twice; the second pass must be answered entirely from
# the verdict cache and reproduce the golden conformance suite.
serve-smoke: build
	dune exec bin/smem.exe -- api corpus-requests > _build/reqs.ndjson
	cat _build/reqs.ndjson _build/reqs.ndjson \
	  | dune exec bin/smem.exe -- serve --metrics \
	    > _build/responses.ndjson 2> _build/serve-metrics.txt
	python3 scripts/serve_smoke.py _build/reqs.ndjson \
	  _build/responses.ndjson test/golden/verdicts.expected

# Load-test the TCP daemon: concurrent clients replaying corpus
# traffic, then a kill-and-restart pass answered from the persistent
# verdict store.  Records p50/p99/throughput under "serve" in
# BENCH_smem.json; fails below the throughput floor or on a warm miss.
serve-load: build
	python3 scripts/serve_load.py --exe _build/default/bin/smem.exe

# The standard test load: generate a deterministic 500-test corpus
# (twice — the artifacts must be byte-identical), replay it through
# the TCP daemon (throughput + warm-restart gates), and ride it along
# a fuzz campaign through the lattice oracle.
corpus: build
	dune exec bin/smem.exe -- corpus generate --seed 42 --count 500 -o _build/corpus-500.txt
	dune exec bin/smem.exe -- corpus generate --seed 42 --count 500 -o _build/corpus-500.again.txt
	cmp _build/corpus-500.txt _build/corpus-500.again.txt
	python3 scripts/serve_load.py --exe _build/default/bin/smem.exe \
	  --clients 2 --repeat 2 --corpus _build/corpus-500.txt
	dune exec bin/smem.exe -- fuzz --seed 42 --count 100 --corpus _build/corpus-500.txt

# The constraint-propagation engine gates: the 500-case solver ≡
# enumerator differential over a generated corpus, the full corpus
# matrix under --engine solve, and the bench crossover section (fails
# if the engines disagree or the solver never overtakes enumeration).
solver: build
	dune exec bin/smem.exe -- corpus generate --seed 42 --count 500 -o _build/corpus-solver.txt
	dune exec bin/smem.exe -- fuzz --seed 42 --count 500 --engines --no-machines \
	  --corpus _build/corpus-solver.txt
	dune exec bin/smem.exe -- corpus --engine solve --stats
	dune exec bench/main.exe -- --solver-only --out _build/BENCH_solver.json

# The extended-family gates: the corpus (including the queue/counter
# and partition/session tests) against the family models with
# expectations enforced, kernel-verified certificates for on-demand
# grammar instances, and the recomputed containment lattice exercised
# through the fuzz oracle's metamorphic checks over every Figure-5
# arrow (40 pairs; zero violations expected).
family-smoke: build
	dune exec bin/smem.exe -- corpus \
	  -m pc-g -m 'pc-part(blocks=2)' -m 'pc-part(blocks=4)' -m coh \
	  -m pram -m 'session(ryw,mr)' -m 'session(ryw,mr,mw,wfr)' \
	  -m causal -m causal-obj
	dune exec bin/smem.exe -- check mp \
	  -m 'pc-part(blocks=2)' -m 'pc-part(blocks=3)' -m 'session(ryw,mr)' \
	  --certify _build/family-certs
	dune exec bin/smem.exe -- cert verify _build/family-certs/*.cert
	dune exec bin/smem.exe -- fuzz --seed 42 --count 200 --no-machines --stats

# Deterministic simulation of the serving stack: seeded schedules,
# every benign fault enabled, zero invariant violations expected.
# Failing schedules are shrunk and printed as replayable commands.
sim-smoke: build
	dune exec bin/smem.exe -- sim --seed 42 --count 200 --stats

# Formatting needs ocamlformat (version pinned in .ocamlformat).
fmt:
	dune fmt

fmt-check:
	dune build @fmt

# What the CI workflow runs, minus the format job (ocamlformat may not
# be installed locally).
ci: build test examples fuzz-smoke certs serve-smoke serve-load corpus solver family-smoke sim-smoke bench-figures

clean:
	dune clean
