examples/compose_models.mli:
