examples/lattice_explore.ml: Format List Smem_core Smem_lattice String
