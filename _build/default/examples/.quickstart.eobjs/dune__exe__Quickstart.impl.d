examples/quickstart.ml: Format List Smem_core Smem_litmus
