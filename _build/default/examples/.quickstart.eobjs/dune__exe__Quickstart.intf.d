examples/quickstart.mli:
