examples/bakery_demo.mli:
