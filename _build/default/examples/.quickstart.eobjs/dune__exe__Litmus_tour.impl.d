examples/litmus_tour.ml: Format List Smem_core Smem_litmus Smem_machine
