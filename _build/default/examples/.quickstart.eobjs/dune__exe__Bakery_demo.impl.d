examples/bakery_demo.ml: Format List Smem_core Smem_lang Smem_litmus Smem_machine
