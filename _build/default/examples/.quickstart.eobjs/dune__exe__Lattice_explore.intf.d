examples/lattice_explore.mli:
