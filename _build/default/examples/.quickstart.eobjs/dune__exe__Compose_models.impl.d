examples/compose_models.ml: Format List Smem_core Smem_lattice
