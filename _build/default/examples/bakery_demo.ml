(* The paper's §5 result, three ways:

   1. axiomatically — the §5 subhistories are allowed by the RC_pc
      checker and forbidden by the RC_sc checker;
   2. operationally — the same history is reachable on the RC_pc
      machine and unreachable on the RC_sc machine;
   3. at the program level — exhaustive exploration of the actual
      Bakery algorithm finds a mutual-exclusion violation on the RC_pc
      machine and proves safety on the RC_sc machine.

   Run with: dune exec examples/bakery_demo.exe *)

module H = Smem_core.History
module Model = Smem_core.Model
module Test = Smem_litmus.Test
module Driver = Smem_machine.Driver

let model key =
  match Smem_core.Registry.find key with Some m -> m | None -> assert false

let machine key =
  match Smem_machine.Machines.find key with Some m -> m | None -> assert false

let () =
  let test = Smem_litmus.Corpus.bakery_rcpc_violation in
  let h = test.Test.history in
  Format.printf "== 1. The §5 history ==@.%a@.@." H.pp h;

  let axiomatic key =
    Format.printf "  %-6s checker: %s@." key
      (if Model.check (model key) h then "ALLOWED" else "forbidden")
  in
  axiomatic "rc-sc";
  axiomatic "rc-pc";

  Format.printf "@.== 2. Machine reachability ==@.";
  let operational key =
    let m = machine key in
    let ok = Driver.reachable m (Driver.program_of_history h) h in
    Format.printf "  %-6s machine: %s@." key
      (if ok then "REACHABLE" else "unreachable")
  in
  operational "rc-sc";
  operational "rc-pc";

  Format.printf "@.== 3. Running the Bakery algorithm itself (n = 2) ==@.";
  let program = Smem_lang.Programs.bakery ~n:2 () in
  let explore key =
    match Smem_lang.Explore.check_mutex (machine key) program with
    | Smem_lang.Explore.Safe states ->
        Format.printf "  %-6s machine: mutual exclusion HOLDS (%d states)@." key
          states
    | Smem_lang.Explore.Violation trace ->
        Format.printf "  %-6s machine: VIOLATION after schedule:@." key;
        List.iter (fun line -> Format.printf "      %s@." line) trace
    | Smem_lang.Explore.State_limit ->
        Format.printf "  %-6s machine: state limit hit@." key
  in
  explore "rc-sc";
  explore "rc-pc";

  (* TSO breaks it too — the Bakery algorithm genuinely needs SC-strength
     synchronization operations. *)
  Format.printf "@.== Bonus: other machines ==@.";
  explore "sc";
  explore "tso";

  (* The converse lesson, via footnote 4 of the paper: read-modify-write
     synchronization is immune to the weakness — a test-and-set spinlock
     is safe even where the Bakery algorithm breaks. *)
  Format.printf "@.== Contrast: a test-and-set spinlock (paper footnote 4) ==@.";
  let spinlock = Smem_lang.Programs.tas_spinlock () in
  List.iter
    (fun key ->
      match Smem_lang.Explore.check_mutex (machine key) spinlock with
      | Smem_lang.Explore.Safe states ->
          Format.printf "  %-6s machine: spinlock SAFE (%d states)@." key states
      | Smem_lang.Explore.Violation _ ->
          Format.printf "  %-6s machine: spinlock VIOLATED (unexpected!)@." key
      | Smem_lang.Explore.State_limit ->
          Format.printf "  %-6s machine: state limit@." key)
    [ "tso"; "rc-pc"; "pram" ];

  Format.printf
    "@.Conclusion (paper §5): the Bakery algorithm is correct under RC_sc \
     but fails under RC_pc — the two DASH consistency levels differ for \
     programs that coordinate with reads and writes.  Atomic \
     read-modify-write operations (footnote 4) sidestep the difference.@."
