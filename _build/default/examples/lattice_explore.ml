(* Recompute the paper's Figure 5 from first principles: enumerate every
   history in a sweep of small scopes, classify each under every model,
   and derive the containment lattice with separating witnesses.

   Run with: dune exec examples/lattice_explore.exe *)

module Classify = Smem_lattice.Classify
module Enumerate = Smem_lattice.Enumerate

let () =
  let scopes = Classify.standard_scopes in
  Format.printf "scopes:@.";
  List.iter
    (fun (c : Enumerate.config) ->
      Format.printf "  procs=%s nlocs=%d max_value=%d  -> %d histories@."
        (String.concat "," (List.map string_of_int c.Enumerate.procs))
        c.Enumerate.nlocs c.Enumerate.max_value (Enumerate.count c))
    scopes;
  let m =
    Classify.classify_scopes ~models:Smem_core.Registry.comparable scopes
  in
  Format.printf "@.%a@." Classify.pp_summary m;
  Format.printf "@.Graphviz (paper Figure 5):@.%s" (Classify.to_dot m);

  (* The same machinery scales to the extended model family. *)
  let extended =
    List.filter_map Smem_core.Registry.find
      [ "sc"; "tso"; "pc"; "pc-g"; "causal"; "causal-coh"; "coh"; "pram"; "slow"; "local" ]
  in
  Format.printf
    "@.Extended family over the Figure-1 scope (2x2 ops, 2 locations):@.";
  let m2 = Classify.classify ~models:extended Enumerate.default in
  Format.printf "%a@." Classify.pp_summary m2
