(* Quickstart: build a history with the public API, ask the models about
   it, and inspect witness views.

   Run with: dune exec examples/quickstart.exe *)

module H = Smem_core.History
module Model = Smem_core.Model
module Registry = Smem_core.Registry
module Witness = Smem_core.Witness

let () =
  (* The store-buffering history of the paper's Figure 1: each processor
     writes its own location, then reads the other's and sees 0. *)
  let h =
    H.make
      [
        [ H.write "x" 1; H.read "y" 0 ];
        [ H.write "y" 1; H.read "x" 0 ];
      ]
  in
  Format.printf "history:@.%a@.@." H.pp h;

  (* Which memories allow it? *)
  List.iter
    (fun (m : Model.t) ->
      Format.printf "%-12s %s@." m.Model.key
        (if Model.check m h then "allowed" else "forbidden"))
    Registry.all;

  (* A witness explains *why* a weak memory allows it: each processor's
     view orders the other's write after its own read. *)
  (match Smem_core.Tso.witness h with
  | Some w -> Format.printf "@.TSO witness views:@.%a@." (Witness.pp h) w
  | None -> assert false);

  (* The same machinery runs on any history; here are the paper's other
     figures. *)
  Format.printf "@.paper figures vs. the models they were designed to split:@.";
  let figures =
    [
      (Smem_litmus.Corpus.fig1_tso, "tso", "sc");
      (Smem_litmus.Corpus.fig2_pc_not_tso, "pc", "tso");
      (Smem_litmus.Corpus.fig3_pram_not_tso, "pram", "tso");
      (Smem_litmus.Corpus.fig4_causal_not_tso, "causal", "tso");
    ]
  in
  List.iter
    (fun ((test : Smem_litmus.Test.t), allower, forbidder) ->
      let check key =
        match Registry.find key with
        | Some m -> Model.check m test.Smem_litmus.Test.history
        | None -> assert false
      in
      Format.printf "%-6s allowed by %-7s %b;  forbidden by %-5s %b@."
        test.Smem_litmus.Test.name allower (check allower) forbidder
        (not (check forbidder)))
    figures
