(* The paper's concluding remarks (§7): "the model also helps us in
   identifying new memories.  For example, a mutual consistency
   condition that requires coherence can be added to causal memory."

   This example does exactly that with the Build module: compose the
   suggested memory from the three parameters, verify it against the
   built-in implementation, place it in the lattice relative to its
   neighbours, and exhibit separating histories.

   Run with: dune exec examples/compose_models.exe *)

module B = Smem_core.Build
module Model = Smem_core.Model
module Registry = Smem_core.Registry
module Distinguish = Smem_lattice.Distinguish
module Classify = Smem_lattice.Classify

let builtin key =
  match Registry.find key with Some m -> m | None -> assert false

let () =
  (* §7's new memory: causal + coherence, by composition. *)
  let coherent_causal =
    B.make ~key:"cc" ~name:"Coherent Causal (composed)"
      ~operations:`Writes_of_others ~mutual:`Coherence ~orderings:[ `Causal ]
      ()
  in
  Format.printf "composed: %s@.@." coherent_causal.Model.description;

  (* It agrees with the hand-written Causal_coherent model across the
     standard scopes. *)
  let scopes = Classify.standard_scopes in
  (match
     Distinguish.compare ~a:coherent_causal ~b:(builtin "causal-coh") scopes
   with
  | Distinguish.Equal ->
      Format.printf
        "composed model = built-in causal-coh over %d enumerated histories@."
        (List.fold_left
           (fun acc c -> acc + Smem_lattice.Enumerate.count c)
           0 scopes)
  | _ -> Format.printf "composed model DIFFERS from built-in causal-coh!@.");

  (* Where does it sit?  Strictly between SC and causal memory, and
     incomparable with nothing it shouldn't be. *)
  Format.printf "@.position in the lattice:@.";
  List.iter
    (fun other ->
      let verdict =
        Distinguish.compare ~a:coherent_causal ~b:(builtin other) scopes
      in
      Format.printf "  vs %-7s %a@." other
        (Distinguish.pp_verdict ~a:coherent_causal ~b:(builtin other))
        verdict)
    [ "sc"; "causal"; "pc"; "pram" ];

  (* The same machinery invents further memories on demand: PRAM plus
     per-location program order of everyone (slow-for-others), say. *)
  Format.printf "@.an ad-hoc variation (PRAM + po-loc):@.";
  let variant =
    B.make ~key:"v" ~name:"PRAM + po-loc" ~operations:`Writes_of_others
      ~mutual:`No_agreement ~orderings:[ `Po; `Po_loc ] ()
  in
  match Distinguish.compare ~a:variant ~b:(builtin "pram") scopes with
  | Distinguish.Equal ->
      Format.printf
        "  equivalent to PRAM over the scopes (po already implies po-loc \
         within a view) — composition also *relates* memories, not just \
         invents them.@."
  | v ->
      Format.printf "  %a@." (Distinguish.pp_verdict ~a:variant ~b:(builtin "pram")) v
