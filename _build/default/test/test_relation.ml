(* Unit and property tests for the relation-algebra substrate. *)

module Bitset = Smem_relation.Bitset
module Rel = Smem_relation.Rel
module Perm = Smem_relation.Perm

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---------------- Bitset ---------------- *)

let bitset_basics () =
  let s = Bitset.create 100 in
  check Alcotest.bool "fresh empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  check Alcotest.int "cardinal" 4 (Bitset.cardinal s);
  check Alcotest.bool "mem 63" true (Bitset.mem s 63);
  check Alcotest.bool "mem 64" true (Bitset.mem s 64);
  check Alcotest.bool "mem 65" false (Bitset.mem s 65);
  Bitset.remove s 63;
  check Alcotest.bool "removed" false (Bitset.mem s 63);
  check (Alcotest.list Alcotest.int) "elements sorted" [ 0; 64; 99 ]
    (Bitset.elements s)

let bitset_set_ops () =
  let a = Bitset.of_list 10 [ 1; 2; 3 ] in
  let b = Bitset.of_list 10 [ 3; 4 ] in
  check (Alcotest.list Alcotest.int) "union" [ 1; 2; 3; 4 ]
    (Bitset.elements (Bitset.union a b));
  check (Alcotest.list Alcotest.int) "inter" [ 3 ]
    (Bitset.elements (Bitset.inter a b));
  check (Alcotest.list Alcotest.int) "diff" [ 1; 2 ]
    (Bitset.elements (Bitset.diff a b));
  check Alcotest.bool "subset yes" true
    (Bitset.subset (Bitset.of_list 10 [ 1; 3 ]) a);
  check Alcotest.bool "subset no" false (Bitset.subset b a);
  let c = Bitset.copy a in
  Bitset.union_into ~into:c b;
  check Alcotest.bool "union_into" true (Bitset.equal c (Bitset.union a b))

let bitset_bounds () =
  let s = Bitset.create 5 in
  Alcotest.check_raises "add out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s 5);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Bitset.create: negative capacity") (fun () ->
      ignore (Bitset.create (-1)))

(* ---------------- Rel ---------------- *)

let rel_basics () =
  let r = Rel.of_pairs 4 [ (0, 1); (1, 2) ] in
  check Alcotest.bool "mem" true (Rel.mem r 0 1);
  check Alcotest.bool "not mem" false (Rel.mem r 0 2);
  check Alcotest.int "cardinal" 2 (Rel.cardinal r);
  let tc_ = Rel.transitive_closure r in
  check Alcotest.bool "closure adds" true (Rel.mem tc_ 0 2);
  check Alcotest.int "closure size" 3 (Rel.cardinal tc_);
  check Alcotest.bool "closure transitive" true (Rel.is_transitive tc_);
  check Alcotest.bool "subrel" true (Rel.subrel r tc_);
  check Alcotest.bool "not subrel" false (Rel.subrel tc_ r)

let rel_algebra () =
  let r = Rel.of_pairs 3 [ (0, 1) ] in
  let s = Rel.of_pairs 3 [ (1, 2) ] in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "compose" [ (0, 2) ]
    (Rel.pairs (Rel.compose r s));
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "transpose" [ (1, 0) ]
    (Rel.pairs (Rel.transpose r));
  let u = Rel.union r s in
  check Alcotest.int "union" 2 (Rel.cardinal u);
  check Alcotest.int "diff" 1 (Rel.cardinal (Rel.diff u r));
  check Alcotest.int "inter" 1 (Rel.cardinal (Rel.inter u r))

let rel_restrict () =
  let r = Rel.of_pairs 4 [ (0, 1); (1, 2); (2, 3) ] in
  let keep = Bitset.of_list 4 [ 0; 1; 2 ] in
  let r' = Rel.restrict r keep in
  check Alcotest.int "restricted" 2 (Rel.cardinal r');
  check Alcotest.bool "kept" true (Rel.mem r' 0 1);
  check Alcotest.bool "dropped" false (Rel.mem r' 2 3)

let rel_acyclic () =
  let acyclic = Rel.of_pairs 4 [ (0, 1); (1, 2); (0, 2) ] in
  check Alcotest.bool "acyclic" true (Rel.acyclic acyclic);
  check Alcotest.bool "cycle found none" true (Rel.find_cycle acyclic = None);
  let cyclic = Rel.of_pairs 4 [ (0, 1); (1, 2); (2, 0) ] in
  check Alcotest.bool "cyclic" false (Rel.acyclic cyclic);
  (match Rel.find_cycle cyclic with
  | None -> Alcotest.fail "expected a cycle"
  | Some cyc ->
      check Alcotest.int "cycle length" 3 (List.length cyc);
      (* every consecutive pair (and the wrap-around) is an edge *)
      let arr = Array.of_list cyc in
      Array.iteri
        (fun i a ->
          let b = arr.((i + 1) mod Array.length arr) in
          check Alcotest.bool "cycle edge" true (Rel.mem cyclic a b))
        arr);
  let self = Rel.of_pairs 2 [ (1, 1) ] in
  check Alcotest.bool "self loop cyclic" false (Rel.acyclic self);
  check Alcotest.bool "irreflexive" false (Rel.irreflexive self)

let rel_topo () =
  let r = Rel.of_pairs 4 [ (2, 1); (1, 0); (3, 0) ] in
  (match Rel.topological_sort r with
  | None -> Alcotest.fail "expected a sort"
  | Some order ->
      let pos = Array.make 4 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      Rel.iter_pairs
        (fun a b -> check Alcotest.bool "order respected" true (pos.(a) < pos.(b)))
        r);
  let cyclic = Rel.of_pairs 2 [ (0, 1); (1, 0) ] in
  check Alcotest.bool "no sort of cycle" true (Rel.topological_sort cyclic = None)

let rel_linear_extensions () =
  (* An antichain of 3 elements has 3! = 6 linear extensions. *)
  let empty = Rel.create 3 in
  let count = ref 0 in
  let all _ = incr count; false in
  ignore (Rel.linear_extensions empty ~f:all);
  check Alcotest.int "3! extensions" 6 !count;
  (* A chain has exactly one. *)
  let chain = Rel.of_pairs 3 [ (0, 1); (1, 2) ] in
  count := 0;
  ignore (Rel.linear_extensions chain ~f:all);
  check Alcotest.int "chain has 1" 1 !count;
  (* Early exit works. *)
  count := 0;
  let stop _ = incr count; true in
  check Alcotest.bool "early exit true" true (Rel.linear_extensions empty ~f:stop);
  check Alcotest.int "stopped after 1" 1 !count;
  (* Restricted universe. *)
  count := 0;
  let universe = Bitset.of_list 3 [ 0; 2 ] in
  ignore (Rel.linear_extensions ~universe empty ~f:all);
  check Alcotest.int "2 elements -> 2" 2 !count

let rel_scc () =
  (* two 2-cycles and a singleton: 0<->1, 2<->3, 4; edge 1 -> 2. *)
  let r = Rel.of_pairs 5 [ (0, 1); (1, 0); (2, 3); (3, 2); (1, 2) ] in
  let component, count = Rel.strongly_connected_components r in
  check Alcotest.int "three components" 3 count;
  check Alcotest.bool "0 and 1 together" true (component.(0) = component.(1));
  check Alcotest.bool "2 and 3 together" true (component.(2) = component.(3));
  check Alcotest.bool "4 alone" true
    (component.(4) <> component.(0) && component.(4) <> component.(2));
  (* reverse topological: the component of {0,1} comes after {2,3} *)
  check Alcotest.bool "reverse topological order" true
    (component.(0) > component.(2));
  (* a DAG has one component per node *)
  let dag = Rel.of_pairs 3 [ (0, 1); (1, 2) ] in
  let _, c = Rel.strongly_connected_components dag in
  check Alcotest.int "dag components" 3 c

(* ---------------- Perm ---------------- *)

let perm_counts () =
  let count = ref 0 in
  ignore (Perm.iter_permutations [| 1; 2; 3; 4 |] ~f:(fun _ -> incr count; false));
  check Alcotest.int "4! permutations" 24 !count;
  count := 0;
  ignore
    (Perm.iter_constrained [| 0; 1; 2 |]
       ~precedes:(fun a b -> a = 0 && b = 2)
       ~f:(fun _ -> incr count; false));
  check Alcotest.int "constrained" 3 !count;
  (* all permutations of a 2-chain plus free element: 0 before 1: 3 *)
  count := 0;
  ignore
    (Perm.iter_constrained [| 0; 1; 2 |]
       ~precedes:(fun a b -> a < b)
       ~f:(fun _ -> incr count; false));
  check Alcotest.int "total order -> 1" 1 !count

let perm_product () =
  let seen = ref [] in
  ignore
    (Perm.product [ [ 1; 2 ]; [ 3 ] ] ~f:(fun sel -> seen := sel :: !seen; false));
  check Alcotest.int "product size" 2 (List.length !seen);
  check Alcotest.bool "has [1;3]" true (List.mem [ 1; 3 ] !seen);
  check Alcotest.bool "has [2;3]" true (List.mem [ 2; 3 ] !seen)

(* ---------------- properties ---------------- *)

let gen_rel =
  QCheck.make
    ~print:(fun pairs ->
      String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) pairs))
    QCheck.Gen.(
      let* n = int_range 0 12 in
      list_size (int_bound 20) (pair (int_bound 5) (int_bound 5)) >|= fun ps ->
      ignore n;
      ps)

let rel_of_pairs ps = Rel.of_pairs 6 ps

let prop_closure_idempotent =
  QCheck.Test.make ~name:"transitive closure is idempotent" ~count:500 gen_rel
    (fun ps ->
      let r = rel_of_pairs ps in
      let c = Rel.transitive_closure r in
      Rel.equal c (Rel.transitive_closure c))

let prop_closure_extensive =
  QCheck.Test.make ~name:"closure contains the relation" ~count:500 gen_rel
    (fun ps ->
      let r = rel_of_pairs ps in
      Rel.subrel r (Rel.transitive_closure r))

let prop_acyclic_iff_topo =
  QCheck.Test.make ~name:"acyclic iff topological sort exists" ~count:500 gen_rel
    (fun ps ->
      let r = rel_of_pairs ps in
      Rel.acyclic r = (Rel.topological_sort r <> None))

let prop_acyclic_iff_irreflexive_closure =
  QCheck.Test.make ~name:"acyclic iff closure is irreflexive" ~count:500 gen_rel
    (fun ps ->
      let r = rel_of_pairs ps in
      Rel.acyclic r = Rel.irreflexive (Rel.transitive_closure r))

let prop_find_cycle_consistent =
  QCheck.Test.make ~name:"find_cycle agrees with acyclic" ~count:500 gen_rel
    (fun ps ->
      let r = rel_of_pairs ps in
      (Rel.find_cycle r = None) = Rel.acyclic r)

let prop_scc_vs_acyclic =
  QCheck.Test.make ~name:"acyclic iff all SCCs trivial and no self-loops"
    ~count:500 gen_rel (fun ps ->
      let r = rel_of_pairs ps in
      let component, count = Rel.strongly_connected_components r in
      let trivial =
        count = Rel.size r
        && Array.for_all Fun.id
             (Array.init (Rel.size r) (fun v -> not (Rel.mem r v v)))
      in
      ignore component;
      Rel.acyclic r = trivial)

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose is an involution" ~count:500 gen_rel
    (fun ps ->
      let r = rel_of_pairs ps in
      Rel.equal r (Rel.transpose (Rel.transpose r)))

let prop_extensions_respect_order =
  QCheck.Test.make ~name:"linear extensions respect the relation" ~count:200
    gen_rel (fun ps ->
      let r = rel_of_pairs ps in
      if not (Rel.acyclic r) then true
      else begin
        let ok = ref true in
        let checked = ref 0 in
        ignore
          (Rel.linear_extensions r ~f:(fun order ->
               incr checked;
               let pos = Array.make 6 0 in
               Array.iteri (fun i v -> pos.(v) <- i) order;
               Rel.iter_pairs
                 (fun a b -> if pos.(a) >= pos.(b) then ok := false)
                 r;
               !checked > 50));
        !ok
      end)

let () =
  Alcotest.run "relation"
    [
      ( "bitset",
        [
          tc "basics" bitset_basics;
          tc "set operations" bitset_set_ops;
          tc "bounds checking" bitset_bounds;
        ] );
      ( "rel",
        [
          tc "basics and closure" rel_basics;
          tc "algebra" rel_algebra;
          tc "restrict" rel_restrict;
          tc "acyclicity and cycles" rel_acyclic;
          tc "topological sort" rel_topo;
          tc "linear extensions" rel_linear_extensions;
          tc "strongly connected components" rel_scc;
        ] );
      ("perm", [ tc "counts" perm_counts; tc "product" perm_product ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_closure_idempotent;
            prop_closure_extensive;
            prop_acyclic_iff_topo;
            prop_acyclic_iff_irreflexive_closure;
            prop_find_cycle_consistent;
            prop_transpose_involution;
            prop_scc_vs_acyclic;
            prop_extensions_respect_order;
          ] );
    ]
