(* Tests of the lattice reconstruction — the paper's §4 and Figure 5 as
   executable assertions. *)

module Enumerate = Smem_lattice.Enumerate
module Classify = Smem_lattice.Classify
module Registry = Smem_core.Registry
module Model = Smem_core.Model

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let enumerate_counts () =
  (* 1 proc, 1 op, 1 loc, values <= 1: w(x)1, r(x)0, r(x)1 -> 3. *)
  let c = { Enumerate.procs = [ 1 ]; nlocs = 1; max_value = 1; labeled = false } in
  check Alcotest.int "3 single-op histories" 3 (Enumerate.count c);
  let n = ref 0 in
  Enumerate.iter c ~f:(fun _ -> incr n);
  check Alcotest.int "iter matches count" 3 !n;
  (* labels double the choices *)
  let cl = { c with Enumerate.labeled = true } in
  check Alcotest.int "labels double" 6 (Enumerate.count cl);
  (* default scope *)
  check Alcotest.int "default scope size" 1296 (Enumerate.count Enumerate.default)

let enumerate_shapes () =
  let c = { Enumerate.procs = [ 2; 1 ]; nlocs = 1; max_value = 1; labeled = false } in
  Enumerate.iter c ~f:(fun h ->
      check Alcotest.int "procs" 2 (Smem_core.History.nprocs h);
      check Alcotest.int "p0 ops" 2
        (Array.length (Smem_core.History.proc_ops h 0));
      check Alcotest.int "p1 ops" 1
        (Array.length (Smem_core.History.proc_ops h 1)))

(* The headline: the classification over the standard scopes reproduces
   Figure 5 exactly. *)
let figure5 () =
  let m =
    Classify.classify_scopes ~models:Registry.comparable Classify.standard_scopes
  in
  let index key =
    let rec go i = function
      | [] -> Alcotest.failf "model %s missing" key
      | (mo : Model.t) :: rest -> if mo.Model.key = key then i else go (i + 1) rest
    in
    go 0 m.Classify.models
  in
  let rel a b = Classify.relation m (index a) (index b) in
  check Alcotest.bool "SC < TSO" true (rel "sc" "tso" = Classify.Stronger);
  check Alcotest.bool "TSO < PC" true (rel "tso" "pc" = Classify.Stronger);
  check Alcotest.bool "TSO < Causal" true (rel "tso" "causal" = Classify.Stronger);
  check Alcotest.bool "PC || Causal" true (rel "pc" "causal" = Classify.Incomparable);
  check Alcotest.bool "PC < PRAM" true (rel "pc" "pram" = Classify.Stronger);
  check Alcotest.bool "Causal < PRAM" true (rel "causal" "pram" = Classify.Stronger);
  (* Hasse diagram: exactly the edges of Figure 5. *)
  let edges =
    List.map
      (fun (i, j) ->
        ( (List.nth m.Classify.models i).Model.key,
          (List.nth m.Classify.models j).Model.key ))
      (Classify.hasse_edges m)
    |> List.sort compare
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "Figure 5 Hasse edges"
    [
      ("causal", "pram");
      ("pc", "pram");
      ("sc", "tso");
      ("tso", "causal");
      ("tso", "pc");
    ]
    edges;
  (* Witnesses exist for each strict separation and are real: allowed by
     the weaker, forbidden by the stronger. *)
  let witness_ok weaker stronger =
    match m.Classify.witness.(index weaker).(index stronger) with
    | None -> Alcotest.failf "no witness for %s \\ %s" weaker stronger
    | Some h ->
        let get key =
          match Registry.find key with Some mo -> mo | None -> assert false
        in
        check Alcotest.bool (weaker ^ " allows witness") true
          (Model.check (get weaker) h);
        check Alcotest.bool (stronger ^ " forbids witness") false
          (Model.check (get stronger) h)
  in
  witness_ok "tso" "sc";
  witness_ok "pc" "tso";
  witness_ok "causal" "tso";
  witness_ok "pram" "pc";
  witness_ok "pram" "causal";
  witness_ok "pc" "causal";
  witness_ok "causal" "pc"

(* Extended-family relations over the Figure-1 scope.  Only facts that
   hold both in-scope and in general are asserted. *)
let extended_family () =
  let get key =
    match Registry.find key with Some m -> m | None -> assert false
  in
  let models =
    List.map get [ "causal-coh"; "causal"; "coh"; "pram"; "slow"; "local" ]
  in
  let m = Classify.classify ~models Enumerate.default in
  let index key =
    let rec go i = function
      | [] -> Alcotest.failf "model %s missing" key
      | (mo : Model.t) :: rest -> if mo.Model.key = key then i else go (i + 1) rest
    in
    go 0 m.Classify.models
  in
  let rel a b = Classify.relation m (index a) (index b) in
  check Alcotest.bool "causal-coh ⊆ causal" true
    (match rel "causal-coh" "causal" with
    | Classify.Stronger | Classify.Equal -> true
    | _ -> false);
  check Alcotest.bool "causal-coh ⊆ coh" true
    (match rel "causal-coh" "coh" with
    | Classify.Stronger | Classify.Equal -> true
    | _ -> false);
  check Alcotest.bool "causal ⊆ pram" true
    (match rel "causal" "pram" with
    | Classify.Stronger | Classify.Equal -> true
    | _ -> false);
  check Alcotest.bool "pram ⊆ slow" true
    (match rel "pram" "slow" with
    | Classify.Stronger | Classify.Equal -> true
    | _ -> false);
  check Alcotest.bool "coh || pram" true (rel "coh" "pram" = Classify.Incomparable)

let merge_is_sane () =
  let c1 = { Enumerate.procs = [ 1 ]; nlocs = 1; max_value = 1; labeled = false } in
  let models = [ Smem_core.Sc.model; Smem_core.Pram.model ] in
  let m1 = Classify.classify ~models c1 in
  let merged = Classify.merge m1 m1 in
  check Alcotest.int "totals add" (2 * m1.Classify.total) merged.Classify.total;
  check Alcotest.int "counts add"
    (2 * m1.Classify.allowed_counts.(0))
    merged.Classify.allowed_counts.(0);
  Alcotest.check_raises "model mismatch rejected"
    (Invalid_argument "Classify.merge: model lists differ") (fun () ->
      ignore (Classify.merge m1 (Classify.classify ~models:[ Smem_core.Sc.model ] c1)))

let dot_output () =
  let c = { Enumerate.procs = [ 1 ]; nlocs = 1; max_value = 1; labeled = false } in
  let m = Classify.classify ~models:[ Smem_core.Sc.model; Smem_core.Pram.model ] c in
  let dot = Classify.to_dot m in
  check Alcotest.bool "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph")

let distinguish_verdicts () =
  let get key =
    match Registry.find key with Some m -> m | None -> assert false
  in
  let scopes = Classify.standard_scopes in
  (match Smem_lattice.Distinguish.compare ~a:(get "sc") ~b:(get "tso") scopes with
  | Smem_lattice.Distinguish.A_stronger w ->
      check Alcotest.bool "witness allowed by tso" true
        (Model.check (get "tso") w);
      check Alcotest.bool "witness forbidden by sc" false
        (Model.check (get "sc") w)
  | _ -> Alcotest.fail "expected SC strictly stronger than TSO");
  (match Smem_lattice.Distinguish.compare ~a:(get "pc") ~b:(get "causal") scopes with
  | Smem_lattice.Distinguish.Incomparable (wa, wb) ->
      check Alcotest.bool "pc-only witness" true
        (Model.check (get "pc") wa && not (Model.check (get "causal") wa));
      check Alcotest.bool "causal-only witness" true
        (Model.check (get "causal") wb && not (Model.check (get "pc") wb))
  | _ -> Alcotest.fail "expected PC and causal incomparable");
  let tiny =
    [ { Enumerate.procs = [ 1 ]; nlocs = 1; max_value = 1; labeled = false } ]
  in
  match Smem_lattice.Distinguish.compare ~a:(get "sc") ~b:(get "pram") tiny with
  | Smem_lattice.Distinguish.Equal -> ()
  | _ -> Alcotest.fail "single-op histories cannot separate SC from PRAM"

let () =
  Alcotest.run "lattice"
    [
      ( "enumerate",
        [ tc "counts" enumerate_counts; tc "shapes" enumerate_shapes ] );
      ("figure 5", [ tc "relations, edges and witnesses" figure5 ]);
      ("extended family", [ tc "known containments hold in scope" extended_family ]);
      ("classify", [ tc "merge" merge_is_sane; tc "dot" dot_output ]);
      ("distinguish", [ tc "verdicts and witnesses" distinguish_verdicts ]);
    ]
