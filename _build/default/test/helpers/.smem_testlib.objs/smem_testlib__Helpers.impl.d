test/helpers/helpers.ml: Array Format Hashtbl List Printf QCheck Smem_core Smem_machine Smem_relation String
