(* Shared test infrastructure: QCheck generators for histories and
   machine programs, and validators that check witnesses independently
   of the engines that produced them. *)

module H = Smem_core.History
module Op = Smem_core.Op
module Rel = Smem_relation.Rel

(* ---------------- generators ---------------- *)

let loc_names = [| "x"; "y"; "z" |]

(* A random event: location in [0, nlocs), write values in [1, maxv],
   read values in [0, maxv] (0 = possibly the initial value).

   [labeled_allowed = `No] generates only ordinary accesses; [`Mixed]
   draws the attribute independently per access; [`Separated] dedicates
   the last location to synchronization (all its accesses labeled,
   everything else ordinary) — the "properly labeled" discipline the
   paper assumes in §5. *)
let gen_event ~nlocs ~maxv ~labeled_allowed =
  let open QCheck.Gen in
  let* loc = int_range 0 (nlocs - 1) in
  let* labeled =
    match labeled_allowed with
    | `No -> return false
    | `Mixed -> bool
    | `Separated -> return (loc = nlocs - 1)
  in
  let* is_write = bool in
  if is_write then
    let* v = int_range 1 maxv in
    return (H.write ~labeled loc_names.(loc) v)
  else
    let* v = int_range 0 maxv in
    return (H.read ~labeled loc_names.(loc) v)

let gen_history ?(labeled_allowed = `No) ?(max_procs = 3) ?(max_ops = 3)
    ?(nlocs = 2) ?(maxv = 2) () =
  let open QCheck.Gen in
  let* nprocs = int_range 2 max_procs in
  let* rows =
    list_repeat nprocs
      (let* n = int_range 1 max_ops in
       list_repeat n (gen_event ~nlocs ~maxv ~labeled_allowed))
  in
  return (H.make rows)

(* Histories with random real-time intervals on some operations, for
   the atomic-memory model. *)
let gen_timed_history ?(max_procs = 3) ?(max_ops = 3) ?(nlocs = 2) ?(maxv = 2)
    () =
  let open QCheck.Gen in
  let* nprocs = int_range 2 max_procs in
  let timed_event =
    let* e = gen_event ~nlocs ~maxv ~labeled_allowed:`No in
    let* timed = bool in
    if not timed then return e
    else
      let* s = int_range 0 6 in
      let* d = int_range 0 3 in
      (* rebuild the event with an interval; gen_event yields opaque
         events, so draw the fields again instead *)
      ignore e;
      let* loc = int_range 0 (nlocs - 1) in
      let* is_write = bool in
      if is_write then
        let* v = int_range 1 maxv in
        return (H.write ~at:(s, s + d) loc_names.(loc) v)
      else
        let* v = int_range 0 maxv in
        return (H.read ~at:(s, s + d) loc_names.(loc) v)
  in
  let* rows =
    list_repeat nprocs
      (let* n = int_range 1 max_ops in
       list_repeat n timed_event)
  in
  return (H.make rows)

let arb_timed_history ?max_procs ?max_ops ?nlocs ?maxv () =
  QCheck.make
    ~print:(fun h -> Format.asprintf "%a" H.pp h)
    (gen_timed_history ?max_procs ?max_ops ?nlocs ?maxv ())

let print_history h = Format.asprintf "%a" H.pp h

let arb_history ?labeled_allowed ?max_procs ?max_ops ?nlocs ?maxv () =
  QCheck.make ~print:print_history
    (gen_history ?labeled_allowed ?max_procs ?max_ops ?nlocs ?maxv ())

(* Random machine programs: write values are distinct per processor so
   traces stay informative. *)
let gen_program ?(labeled_allowed = `No) ?(max_procs = 3) ?(max_ops = 3)
    ?(nlocs = 2) () =
  let open QCheck.Gen in
  let module D = Smem_machine.Driver in
  let* nprocs = int_range 2 max_procs in
  let counter = ref 0 in
  let* code =
    list_repeat nprocs
      (let* n = int_range 1 max_ops in
       list_repeat n
         (let* loc = int_range 0 (nlocs - 1) in
          let* labeled =
            match labeled_allowed with
            | `No -> return false
            | `Mixed -> bool
            | `Separated -> return (loc = nlocs - 1)
          in
          let* is_write = bool in
          if is_write then begin
            incr counter;
            return
              { D.kind = Op.Write; loc; value = !counter; labeled }
          end
          else return { D.kind = Op.Read; loc; value = 0; labeled }))
  in
  return
    {
      D.nprocs;
      nlocs;
      loc_names = Array.sub loc_names 0 nlocs;
      code = Array.of_list code;
    }

let print_program (p : Smem_machine.Driver.program) =
  let event (i : Smem_machine.Driver.instr) =
    Printf.sprintf "%s%s %s %d"
      (match i.Smem_machine.Driver.kind with Op.Read -> "r" | Op.Write -> "w")
      (if i.labeled then "*" else "")
      p.loc_names.(i.loc) i.value
  in
  Array.to_list p.code
  |> List.mapi (fun i row ->
         Printf.sprintf "p%d: %s" i (String.concat " ; " (List.map event row)))
  |> String.concat "\n"

let arb_program ?labeled_allowed ?max_procs ?max_ops ?nlocs () =
  QCheck.make ~print:print_program
    (gen_program ?labeled_allowed ?max_procs ?max_ops ?nlocs ())

(* ---------------- independent validators ---------------- *)

(* Value-legality of a sequence: every read returns the most recent
   write to its location (or 0).  This re-implements legality naively,
   independently of View/Engine. *)
let legal_sequence h ids =
  let mem = Hashtbl.create 7 in
  List.for_all
    (fun id ->
      let op = H.op h id in
      if Op.is_write op then begin
        Hashtbl.replace mem op.Op.loc op.Op.value;
        true
      end
      else
        let current =
          match Hashtbl.find_opt mem op.Op.loc with Some v -> v | None -> 0
        in
        current = op.Op.value)
    ids

(* Does a sequence respect a relation (restricted to the ids present)? *)
let respects h rel ids =
  ignore h;
  let position = Hashtbl.create 16 in
  List.iteri (fun i id -> Hashtbl.replace position id i) ids;
  let ok = ref true in
  Rel.iter_pairs
    (fun a b ->
      match (Hashtbl.find_opt position a, Hashtbl.find_opt position b) with
      | Some pa, Some pb -> if pa >= pb then ok := false
      | _ -> ())
    rel;
  !ok

(* A view of processor p must contain exactly p's ops plus others'
   writes. *)
let correct_view_population h p ids =
  let expected = H.view_ops_writes h p in
  let got = Smem_relation.Bitset.of_list (H.nops h) ids in
  Smem_relation.Bitset.equal expected got

