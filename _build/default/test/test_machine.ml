(* Tests of the operational machines: unit behaviour of each machine,
   the driver (replay, reachability, outcome enumeration), and the
   soundness property pairing every machine with its memory model:
   whatever a machine can do, the model's checker must allow. *)

module H = Smem_core.History
module Op = Smem_core.Op
module Model = Smem_core.Model
module Registry = Smem_core.Registry
module Machines = Smem_machine.Machines
module Driver = Smem_machine.Driver
module Corpus = Smem_litmus.Corpus
module Test = Smem_litmus.Test
module Helpers = Smem_testlib.Helpers

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let machine key =
  match Machines.find key with
  | Some m -> m
  | None -> Alcotest.failf "unknown machine %s" key

(* ---------------- unit behaviour ---------------- *)

let sc_machine_is_memory () =
  let (module M : Smem_machine.Machine_sig.MACHINE) = machine "sc" in
  let m = M.create ~nprocs:2 ~nlocs:2 in
  let v, m = M.read m ~proc:0 ~loc:0 ~labeled:false in
  check Alcotest.int "initial 0" 0 v;
  let m = M.write m ~proc:0 ~loc:0 ~value:7 ~labeled:false in
  let v, m = M.read m ~proc:1 ~loc:0 ~labeled:false in
  check Alcotest.int "immediately visible" 7 v;
  check Alcotest.bool "quiescent" true (M.quiescent m);
  check Alcotest.int "no internal steps" 0 (List.length (M.internal m))

let tso_machine_buffers () =
  let (module M : Smem_machine.Machine_sig.MACHINE) = machine "tso" in
  let m = M.create ~nprocs:2 ~nlocs:1 in
  let m = M.write m ~proc:0 ~loc:0 ~value:1 ~labeled:false in
  (* The writer sees its own buffered value... *)
  let v, m = M.read m ~proc:0 ~loc:0 ~labeled:false in
  check Alcotest.int "store forwarding" 1 v;
  (* ...but the other processor still reads memory. *)
  let v1, m = M.read m ~proc:1 ~loc:0 ~labeled:false in
  check Alcotest.int "not yet visible" 0 v1;
  check Alcotest.bool "buffer pending" false (M.quiescent m);
  (* One flush makes it visible. *)
  (match M.internal m with
  | [ m' ] ->
      let v2, _ = M.read m' ~proc:1 ~loc:0 ~labeled:false in
      check Alcotest.int "visible after flush" 1 v2;
      check Alcotest.bool "now quiescent" true (M.quiescent m')
  | other -> Alcotest.failf "expected 1 internal step, got %d" (List.length other))

let pram_machine_fifo () =
  let (module M : Smem_machine.Machine_sig.MACHINE) = machine "pram" in
  let m = M.create ~nprocs:2 ~nlocs:2 in
  let m = M.write m ~proc:0 ~loc:0 ~value:1 ~labeled:false in
  let m = M.write m ~proc:0 ~loc:1 ~value:2 ~labeled:false in
  (* Writer sees both at once; the peer sees them only in order. *)
  let v, m = M.read m ~proc:0 ~loc:1 ~labeled:false in
  check Alcotest.int "local" 2 v;
  (match M.internal m with
  | [ m' ] ->
      (* only the head of the single nonempty channel is deliverable *)
      let v0, m' = M.read m' ~proc:1 ~loc:0 ~labeled:false in
      let v1, _ = M.read m' ~proc:1 ~loc:1 ~labeled:false in
      check Alcotest.int "first update applied" 1 v0;
      check Alcotest.int "second still pending" 0 v1
  | other -> Alcotest.failf "expected 1 delivery, got %d" (List.length other))

let causal_machine_dependencies () =
  let (module M : Smem_machine.Machine_sig.MACHINE) = machine "causal" in
  let m = M.create ~nprocs:3 ~nlocs:2 in
  (* p0 writes x; p1 reads it (after delivery) and writes y; p2 must
     not apply y before x. *)
  let m = M.write m ~proc:0 ~loc:0 ~value:1 ~labeled:false in
  (* deliver p0's write to p1 only *)
  let deliveries = M.internal m in
  let to_p1 =
    List.find
      (fun m' -> fst (M.read m' ~proc:1 ~loc:0 ~labeled:false) = 1)
      deliveries
  in
  let v, m = M.read to_p1 ~proc:1 ~loc:0 ~labeled:false in
  check Alcotest.int "p1 sees x" 1 v;
  let m = M.write m ~proc:1 ~loc:1 ~value:2 ~labeled:false in
  (* p2 has two pending messages; only p0's x-write is deliverable. *)
  let deliverable_at_p2 =
    List.filter
      (fun m' ->
        fst (M.read m' ~proc:2 ~loc:0 ~labeled:false) = 1
        || fst (M.read m' ~proc:2 ~loc:1 ~labeled:false) = 2)
      (M.internal m)
  in
  List.iter
    (fun m' ->
      let y, _ = M.read m' ~proc:2 ~loc:1 ~labeled:false in
      if y = 2 then
        (* y arrived: x must have arrived first *)
        check Alcotest.int "dependency enforced" 1
          (fst (M.read m' ~proc:2 ~loc:0 ~labeled:false)))
    deliverable_at_p2

let rc_machines_differ_on_release () =
  (* After a release, the Sc flavor has made the labeled write globally
     visible; the Pc flavor has not. *)
  let run (module M : Smem_machine.Machine_sig.MACHINE) =
    let m = M.create ~nprocs:2 ~nlocs:1 in
    let m = M.write m ~proc:0 ~loc:0 ~value:1 ~labeled:true in
    fst (M.read m ~proc:1 ~loc:0 ~labeled:false)
  in
  check Alcotest.int "rc-sc: release is global" 1 (run (machine "rc-sc"));
  check Alcotest.int "rc-pc: release propagates lazily" 0 (run (machine "rc-pc"))

let rc_sc_release_flushes_ordinary () =
  let (module M : Smem_machine.Machine_sig.MACHINE) = machine "rc-sc" in
  let m = M.create ~nprocs:2 ~nlocs:2 in
  let m = M.write m ~proc:0 ~loc:0 ~value:1 ~labeled:false in
  (* ordinary write still in flight *)
  let v, m = M.read m ~proc:1 ~loc:0 ~labeled:false in
  check Alcotest.int "in flight" 0 v;
  let m = M.write m ~proc:0 ~loc:1 ~value:1 ~labeled:true in
  (* the release forced the prior ordinary write everywhere *)
  let v, _ = M.read m ~proc:1 ~loc:0 ~labeled:false in
  check Alcotest.int "flushed by release" 1 v

let machine_names_unique () =
  let names = List.map Machines.name Machines.all in
  check Alcotest.int "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

(* ---------------- driver ---------------- *)

let driver_program_of_history () =
  let h = Corpus.fig1_tso.Test.history in
  let p = Driver.program_of_history h in
  check Alcotest.int "procs" 2 p.Driver.nprocs;
  check Alcotest.int "locs" 2 p.Driver.nlocs;
  check Alcotest.int "ops p0" 2 (List.length p.Driver.code.(0))

let driver_outcomes_sc_sb () =
  (* On the SC machine, store buffering can produce (0,1), (1,0), (1,1)
     for the two reads — but never (0,0). *)
  let h = Corpus.fig1_tso.Test.history in
  let p = Driver.program_of_history h in
  let outcomes = Driver.outcomes (machine "sc") p in
  check Alcotest.bool "has 0,1" true (List.mem [ 0; 1 ] outcomes);
  check Alcotest.bool "has 1,0" true (List.mem [ 1; 0 ] outcomes);
  check Alcotest.bool "has 1,1" true (List.mem [ 1; 1 ] outcomes);
  check Alcotest.bool "no 0,0" false (List.mem [ 0; 0 ] outcomes);
  let tso_outcomes = Driver.outcomes (machine "tso") p in
  check Alcotest.bool "tso adds 0,0" true (List.mem [ 0; 0 ] tso_outcomes)

let driver_reachability_matches_corpus () =
  (* Spot checks duplicated from the corpus (full sweep lives in the
     integration example). *)
  let reach test_name machine_name =
    match Corpus.find test_name with
    | None -> Alcotest.failf "missing corpus test %s" test_name
    | Some t ->
        let h = t.Test.history in
        Driver.reachable (machine machine_name) (Driver.program_of_history h) h
  in
  check Alcotest.bool "fig1 not on sc" false (reach "fig1" "sc");
  check Alcotest.bool "fig1 on tso" true (reach "fig1" "tso");
  check Alcotest.bool "bakery-sec5 not on rc-sc" false (reach "bakery-sec5" "rc-sc");
  check Alcotest.bool "bakery-sec5 on rc-pc" true (reach "bakery-sec5" "rc-pc")

(* ---------------- soundness properties ---------------- *)

(* Machine soundness: a random schedule of a random program on machine M
   yields a history that model(M) allows. *)
let soundness_prop (m : Smem_machine.Machine_sig.machine) =
  let key = Machines.model_key m in
  let model =
    match Registry.find key with
    | Some model -> model
    | None -> failwith ("no model " ^ key)
  in
  let labeled_allowed =
    match Machines.name m with "rc-sc" | "rc-pc" -> `Separated | _ -> `No
  in
  let arb =
    QCheck.pair
      (Helpers.arb_program ~labeled_allowed ~max_procs:3 ~max_ops:3 ~nlocs:2 ())
      (QCheck.make QCheck.Gen.int)
  in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s machine traces ⊆ %s model" (Machines.name m) key)
    ~count:100 arb
    (fun (program, seed) ->
      let rand = Random.State.make [| seed |] in
      let h = Driver.run_random m program ~rand in
      Model.check model h)

let soundness_props = List.map soundness_prop Machines.all

(* Reachability is sound too: if the machine can replay a random
   history exactly, its model allows that history. *)
let reachability_soundness (m : Smem_machine.Machine_sig.machine) =
  let key = Machines.model_key m in
  let model =
    match Registry.find key with
    | Some model -> model
    | None -> failwith ("no model " ^ key)
  in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s reachable histories ⊆ %s model" (Machines.name m) key)
    ~count:80
    (Helpers.arb_history ~max_procs:2 ~max_ops:2 ())
    (fun h ->
      let p = Driver.program_of_history h in
      if Driver.reachable m p h then Model.check model h else true)

let reachability_props = List.map reachability_soundness Machines.all

(* For the machines that are the *canonical* implementations of their
   models — SC (atomic interleaving), PRAM and causal memory (the
   operational definitions of §3.5 / [3]) and the TSO store buffer vs.
   the operational-TSO replay — reachability and the checker coincide
   exactly.  This is a completeness test: the checkers accept nothing
   the machine cannot do, and vice versa. *)
let equality_prop machine_key model_key =
  let m = machine machine_key in
  let model =
    match Registry.find model_key with
    | Some model -> model
    | None -> failwith ("no model " ^ model_key)
  in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s machine reachability = %s model" machine_key model_key)
    ~count:120
    (Helpers.arb_history ~max_procs:3 ~max_ops:2 ())
    (fun h ->
      let p = Driver.program_of_history h in
      Driver.reachable m p h = Model.check model h)

(* Whole-outcome-set agreement on the corpus skeletons: the set of
   read-value vectors a machine can produce equals the set of vectors
   whose induced history the model allows.  Stronger than per-history
   spot checks: it sweeps the entire outcome space of each test. *)
let history_with_outcome (program : Driver.program) outcome =
  let values = ref outcome in
  let next () =
    match !values with
    | [] -> assert false
    | v :: rest ->
        values := rest;
        v
  in
  let ops = ref [] in
  let id = ref 0 in
  Array.iteri
    (fun proc code ->
      List.iteri
        (fun index (instr : Driver.instr) ->
          let value =
            match instr.Driver.kind with
            | Op.Read -> next ()
            | Op.Write -> instr.Driver.value
          in
          ops :=
            {
              Op.id = !id;
              proc;
              index;
              kind = instr.Driver.kind;
              loc = instr.Driver.loc;
              value;
              attr = (if instr.Driver.labeled then Op.Labeled else Op.Ordinary);
            }
            :: !ops;
          incr id)
        code)
    program.Driver.code;
  H.of_ops ~nprocs:program.Driver.nprocs ~loc_names:program.Driver.loc_names
    (List.rev !ops)

let model_outcomes model (program : Driver.program) =
  let values =
    0
    :: (Array.to_list program.Driver.code
       |> List.concat_map
            (List.filter_map (fun (i : Driver.instr) ->
                 if i.Driver.kind = Op.Write then Some i.Driver.value else None)))
    |> List.sort_uniq compare
  in
  let nreads =
    Array.to_list program.Driver.code
    |> List.concat_map (List.filter (fun (i : Driver.instr) -> i.Driver.kind = Op.Read))
    |> List.length
  in
  let results = ref [] in
  let rec go acc k =
    if k = 0 then begin
      let outcome = List.rev acc in
      if Model.check model (history_with_outcome program outcome) then
        results := outcome :: !results
    end
    else List.iter (fun v -> go (v :: acc) (k - 1)) values
  in
  go [] nreads;
  List.sort compare !results

let outcome_equivalence machine_key model_key test_name () =
  let m = machine machine_key in
  let model =
    match Registry.find model_key with Some m -> m | None -> assert false
  in
  let test =
    match Corpus.find test_name with
    | Some t -> t
    | None -> Alcotest.failf "missing corpus test %s" test_name
  in
  let program = Driver.program_of_history test.Test.history in
  let machine_set = List.sort compare (Driver.outcomes m program) in
  let model_set = model_outcomes model program in
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    (Printf.sprintf "%s outcomes on %s" test_name machine_key)
    model_set machine_set

let outcome_cases =
  [
    Alcotest.test_case "sc outcomes = SC model (fig1)" `Quick
      (outcome_equivalence "sc" "sc" "fig1");
    Alcotest.test_case "sc outcomes = SC model (mp)" `Quick
      (outcome_equivalence "sc" "sc" "mp");
    Alcotest.test_case "sc outcomes = SC model (lb)" `Quick
      (outcome_equivalence "sc" "sc" "lb");
    Alcotest.test_case "tso outcomes = operational TSO (fig1)" `Quick
      (outcome_equivalence "tso" "tso-op" "fig1");
    Alcotest.test_case "tso outcomes = operational TSO (sb+rfi)" `Quick
      (outcome_equivalence "tso" "tso-op" "sb+rfi");
    Alcotest.test_case "pram outcomes = PRAM model (fig3)" `Quick
      (outcome_equivalence "pram" "pram" "fig3");
    Alcotest.test_case "pram outcomes = PRAM model (mp)" `Quick
      (outcome_equivalence "pram" "pram" "mp");
    Alcotest.test_case "causal outcomes = causal model (fig4)" `Quick
      (outcome_equivalence "causal" "causal" "fig4");
    Alcotest.test_case "causal outcomes = causal model (lb)" `Quick
      (outcome_equivalence "causal" "causal" "lb");
  ]

let equality_props =
  [
    equality_prop "sc" "sc";
    equality_prop "pram" "pram";
    equality_prop "causal" "causal";
    equality_prop "tso" "tso-op";
  ]

let () =
  Alcotest.run "machine"
    [
      ( "units",
        [
          tc "sc is a flat memory" sc_machine_is_memory;
          tc "tso store buffer" tso_machine_buffers;
          tc "pram fifo channels" pram_machine_fifo;
          tc "causal delivery dependencies" causal_machine_dependencies;
          tc "rc release visibility differs" rc_machines_differ_on_release;
          tc "rc-sc release flushes ordinary writes" rc_sc_release_flushes_ordinary;
          tc "names unique" machine_names_unique;
        ] );
      ( "driver",
        [
          tc "program_of_history" driver_program_of_history;
          tc "outcome enumeration (SB)" driver_outcomes_sc_sb;
          tc "reachability spot checks" driver_reachability_matches_corpus;
        ] );
      ( "soundness",
        List.map QCheck_alcotest.to_alcotest
          (soundness_props @ reachability_props @ equality_props)
      );
      ("outcome sets", outcome_cases);
    ]
