let set a i v =
  let a' = Array.copy a in
  a'.(i) <- v;
  a'

let set_row m i row =
  let m' = Array.copy m in
  m'.(i) <- row;
  m'

let set2 m i j v = set_row m i (set m.(i) j v)

let make2 rows cols v = Array.init rows (fun _ -> Array.make cols v)
