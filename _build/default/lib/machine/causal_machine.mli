(** See the implementation header for the machine's semantics; the
    interface is exactly {!Machine_sig.MACHINE}. *)

include Machine_sig.MACHINE
