lib/machine/tso_machine.mli: Machine_sig
