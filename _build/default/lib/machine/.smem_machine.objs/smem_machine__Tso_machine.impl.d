lib/machine/tso_machine.ml: Array Fun Funarray List
