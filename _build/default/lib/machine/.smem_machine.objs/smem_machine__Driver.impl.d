lib/machine/driver.ml: Array Fun Funarray Hashtbl List Machine_sig Random Smem_core
