lib/machine/machines.mli: Machine_sig
