lib/machine/slow_machine.ml: Array Funarray List
