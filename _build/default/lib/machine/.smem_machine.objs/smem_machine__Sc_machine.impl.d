lib/machine/sc_machine.ml: Array Funarray
