lib/machine/driver.mli: Machine_sig Random Smem_core
