lib/machine/rc_machine.ml: Array Fun Funarray List
