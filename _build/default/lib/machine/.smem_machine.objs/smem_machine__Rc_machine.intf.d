lib/machine/rc_machine.mli: Machine_sig
