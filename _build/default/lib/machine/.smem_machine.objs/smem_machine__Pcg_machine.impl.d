lib/machine/pcg_machine.ml: Array Fun Funarray List
