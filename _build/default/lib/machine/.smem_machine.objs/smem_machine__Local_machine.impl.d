lib/machine/local_machine.ml: Array Fun Funarray List
