lib/machine/causal_machine.ml: Array Fun Funarray List
