lib/machine/machines.ml: Causal_machine List Local_machine Machine_sig Pcg_machine Pram_machine Rc_machine Sc_machine Slow_machine Tso_machine
