lib/machine/pram_machine.ml: Array Fun Funarray List
