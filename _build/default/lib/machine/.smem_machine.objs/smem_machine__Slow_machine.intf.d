lib/machine/slow_machine.mli: Machine_sig
