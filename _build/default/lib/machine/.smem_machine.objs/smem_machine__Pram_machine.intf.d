lib/machine/pram_machine.mli: Machine_sig
