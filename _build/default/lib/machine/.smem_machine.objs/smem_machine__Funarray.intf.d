lib/machine/funarray.mli:
