lib/machine/causal_machine.mli: Machine_sig
