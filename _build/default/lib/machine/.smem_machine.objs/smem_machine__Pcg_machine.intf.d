lib/machine/pcg_machine.mli: Machine_sig
