lib/machine/sc_machine.mli: Machine_sig
