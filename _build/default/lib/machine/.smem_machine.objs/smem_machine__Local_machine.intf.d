lib/machine/local_machine.mli: Machine_sig
