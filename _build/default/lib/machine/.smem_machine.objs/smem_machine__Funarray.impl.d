lib/machine/funarray.ml: Array
