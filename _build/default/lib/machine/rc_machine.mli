(** DASH-like release-consistency machines, one per §3.4 flavor; see
    the implementation header for the operational semantics. *)

type flavor = Sc | Pc

module Sc_flavor : Machine_sig.MACHINE
(** Releases flush the releaser's pending updates and apply globally
    atomically: labeled operations are sequentially consistent. *)

module Pc_flavor : Machine_sig.MACHINE
(** Releases propagate like ordinary writes (per-sender FIFO +
    coherence): labeled operations are only processor consistent — the
    machine on which the Bakery algorithm breaks. *)
