(** Persistent-update helpers over immutable [int array] values: every
    "update" copies.  The machine simulators keep their state in these
    so that exploration can branch without interference; the arrays are
    tiny (processors × locations), so copying is cheap. *)

val set : int array -> int -> int -> int array
(** [set a i v] is a copy of [a] with [a.(i) = v]. *)

val set2 : int array array -> int -> int -> int -> int array array
(** [set2 m i j v] is a copy of [m] with [m.(i).(j) = v]; only row [i]
    is copied. *)

val set_row : 'a array -> int -> 'a -> 'a array
(** [set_row m i row] is a copy of [m] with row [i] replaced. *)

val make2 : int -> int -> int -> int array array
(** [make2 rows cols v] — fresh matrix filled with [v]. *)
