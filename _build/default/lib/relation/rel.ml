type t = { size : int; rows : Bitset.t array }

let create size =
  if size < 0 then invalid_arg "Rel.create: negative size";
  { size; rows = Array.init size (fun _ -> Bitset.create size) }

let size t = t.size

let check t i =
  if i < 0 || i >= t.size then invalid_arg "Rel: element out of range"

let mem t a b =
  check t a;
  Bitset.mem t.rows.(a) b

let add t a b =
  check t a;
  Bitset.add t.rows.(a) b

let remove t a b =
  check t a;
  Bitset.remove t.rows.(a) b

let copy t = { t with rows = Array.map Bitset.copy t.rows }

let of_pairs size pairs =
  let t = create size in
  List.iter (fun (a, b) -> add t a b) pairs;
  t

let iter_pairs f t =
  Array.iteri (fun a row -> Bitset.iter (fun b -> f a b) row) t.rows

let pairs t =
  let acc = ref [] in
  iter_pairs (fun a b -> acc := (a, b) :: !acc) t;
  List.rev !acc

let cardinal t = Array.fold_left (fun acc row -> acc + Bitset.cardinal row) 0 t.rows

let is_empty t = Array.for_all Bitset.is_empty t.rows

let same_size a b = if a.size <> b.size then invalid_arg "Rel: size mismatch"

let equal a b =
  same_size a b;
  Array.for_all2 Bitset.equal a.rows b.rows

let subrel a b =
  same_size a b;
  Array.for_all2 Bitset.subset a.rows b.rows

let union a b =
  same_size a b;
  { size = a.size; rows = Array.map2 Bitset.union a.rows b.rows }

let union_into ~into s =
  same_size into s;
  Array.iteri (fun a row -> Bitset.union_into ~into:into.rows.(a) row) s.rows

let inter a b =
  same_size a b;
  { size = a.size; rows = Array.map2 Bitset.inter a.rows b.rows }

let diff a b =
  same_size a b;
  { size = a.size; rows = Array.map2 Bitset.diff a.rows b.rows }

let compose r s =
  same_size r s;
  let out = create r.size in
  Array.iteri
    (fun a row ->
      Bitset.iter (fun b -> Bitset.union_into ~into:out.rows.(a) s.rows.(b)) row)
    r.rows;
  out

let transpose t =
  let out = create t.size in
  iter_pairs (fun a b -> add out b a) t;
  out

let successors t a =
  check t a;
  t.rows.(a)

let restrict t keep =
  if Bitset.capacity keep <> t.size then invalid_arg "Rel.restrict: capacity mismatch";
  let out = create t.size in
  Array.iteri
    (fun a row ->
      if Bitset.mem keep a then out.rows.(a) <- Bitset.inter row keep)
    t.rows;
  out

(* Warshall on rows: whenever [a -> k], fold row [k] into row [a].
   Processing pivots [k] in the outer loop gives the usual O(n^3 / w). *)
let transitive_closure t =
  let out = copy t in
  for k = 0 to out.size - 1 do
    let row_k = out.rows.(k) in
    for a = 0 to out.size - 1 do
      if a <> k && Bitset.mem out.rows.(a) k then
        Bitset.union_into ~into:out.rows.(a) row_k
    done
  done;
  out

let reflexive_transitive_closure t =
  let out = transitive_closure t in
  for a = 0 to out.size - 1 do
    Bitset.add out.rows.(a) a
  done;
  out

let is_transitive t = equal (transitive_closure t) t

let irreflexive t =
  let ok = ref true in
  for a = 0 to t.size - 1 do
    if Bitset.mem t.rows.(a) a then ok := false
  done;
  !ok

(* Kahn's algorithm with a smallest-first frontier for determinism. *)
let topological_sort t =
  let indeg = Array.make t.size 0 in
  iter_pairs (fun _ b -> indeg.(b) <- indeg.(b) + 1) t;
  let frontier = ref [] in
  for a = t.size - 1 downto 0 do
    if indeg.(a) = 0 then frontier := a :: !frontier
  done;
  let order = ref [] in
  let placed = ref 0 in
  let rec drain () =
    match !frontier with
    | [] -> ()
    | a :: rest ->
        frontier := rest;
        order := a :: !order;
        incr placed;
        let unlocked = ref [] in
        Bitset.iter
          (fun b ->
            indeg.(b) <- indeg.(b) - 1;
            if indeg.(b) = 0 then unlocked := b :: !unlocked)
          t.rows.(a);
        frontier := List.merge compare (List.rev !unlocked) !frontier;
        drain ()
  in
  drain ();
  if !placed = t.size then Some (List.rev !order) else None

let acyclic t =
  (* DFS with colors: O(V + E) rather than closing the relation. *)
  let color = Array.make t.size 0 in
  (* 0 = white, 1 = on stack, 2 = done *)
  let rec visit a =
    if color.(a) = 1 then false
    else if color.(a) = 2 then true
    else begin
      color.(a) <- 1;
      let ok = Bitset.fold (fun b acc -> acc && visit b) t.rows.(a) true in
      color.(a) <- 2;
      ok
    end
  in
  let ok = ref true in
  for a = 0 to t.size - 1 do
    if !ok && color.(a) = 0 then ok := visit a
  done;
  !ok

exception Found_cycle of int list

let find_cycle t =
  let color = Array.make t.size 0 in
  let parent = Array.make t.size (-1) in
  let rec visit a =
    color.(a) <- 1;
    Bitset.iter
      (fun b ->
        if color.(b) = 1 then begin
          (* Walk parents from [a] back to [b] to recover the cycle. *)
          let rec collect v acc = if v = b then b :: acc else collect parent.(v) (v :: acc) in
          raise (Found_cycle (collect a []))
        end
        else if color.(b) = 0 then begin
          parent.(b) <- a;
          visit b
        end)
      t.rows.(a);
    color.(a) <- 2
  in
  try
    for a = 0 to t.size - 1 do
      if color.(a) = 0 then visit a
    done;
    None
  with Found_cycle c -> Some c

(* Tarjan, iteratively indexed but recursively implemented: fine for
   the small universes of this library. *)
let strongly_connected_components t =
  let n = t.size in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let component = Array.make n (-1) in
  let count = ref 0 in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    Bitset.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      t.rows.(v);
    if lowlink.(v) = index.(v) then begin
      let id = !count in
      incr count;
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            component.(w) <- id;
            if w <> v then pop ()
      in
      pop ()
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (* Tarjan emits components in reverse topological order already. *)
  (component, !count)

let linear_extensions ?universe t ~f =
  let universe =
    match universe with
    | Some u ->
        if Bitset.capacity u <> t.size then
          invalid_arg "Rel.linear_extensions: capacity mismatch";
        u
    | None -> Bitset.of_list t.size (List.init t.size Fun.id)
  in
  let n = Bitset.cardinal universe in
  let indeg = Array.make t.size 0 in
  iter_pairs
    (fun a b -> if Bitset.mem universe a && Bitset.mem universe b then indeg.(b) <- indeg.(b) + 1)
    t;
  let out = Array.make n (-1) in
  let placed = Bitset.create t.size in
  (* Backtracking over the ready frontier.  Membership in the frontier is
     recomputed from [indeg] and [placed]: simple and fast enough for the
     operation counts of litmus-scale histories. *)
  let rec go depth =
    if depth = n then f out
    else begin
      let accepted = ref false in
      Bitset.iter
        (fun a ->
          if (not !accepted) && (not (Bitset.mem placed a)) && indeg.(a) = 0 then begin
            out.(depth) <- a;
            Bitset.add placed a;
            Bitset.iter
              (fun b -> if Bitset.mem universe b then indeg.(b) <- indeg.(b) - 1)
              t.rows.(a);
            if go (depth + 1) then accepted := true;
            Bitset.iter
              (fun b -> if Bitset.mem universe b then indeg.(b) <- indeg.(b) + 1)
              t.rows.(a);
            Bitset.remove placed a
          end)
        universe;
      !accepted
    end
  in
  go 0

let pp ppf t =
  Format.fprintf ppf "@[<hov 1>{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf (a, b) -> Format.fprintf ppf "(%d,%d)" a b))
    (pairs t)
