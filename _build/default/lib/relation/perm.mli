(** Enumeration of permutations, optionally constrained by a precedence
    relation.  Used to enumerate coherence orders (per-location write
    serializations) and global write serializations in the memory-model
    checkers. *)

val iter_permutations : 'a array -> f:('a array -> bool) -> bool
(** [iter_permutations items ~f] calls [f] on every permutation of
    [items].  Stops early — returning [true] — when [f] returns [true];
    returns [false] otherwise.  The array given to [f] is reused. *)

val iter_constrained :
  int array -> precedes:(int -> int -> bool) -> f:(int array -> bool) -> bool
(** [iter_constrained items ~precedes ~f] enumerates permutations of
    [items] (which must be distinct) in which [a] appears before [b]
    whenever [precedes a b].  Pruning happens during construction, so
    heavily constrained inputs enumerate far fewer than [n!] candidates.
    Early-exit protocol as in {!iter_permutations}. *)

val product : 'a list list -> f:('a list -> bool) -> bool
(** [product choice_lists ~f] enumerates the cartesian product of the
    choice lists, calling [f] on each selection (one element per list,
    in order).  Early-exit protocol as in {!iter_permutations}. *)
