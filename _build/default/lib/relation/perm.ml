let iter_permutations items ~f =
  let n = Array.length items in
  let work = Array.copy items in
  let swap i j =
    let tmp = work.(i) in
    work.(i) <- work.(j);
    work.(j) <- tmp
  in
  (* Heap-style recursive generation with in-place swaps. *)
  let rec go depth =
    if depth = n then f work
    else begin
      let accepted = ref false in
      let i = ref depth in
      while (not !accepted) && !i < n do
        swap depth !i;
        if go (depth + 1) then accepted := true;
        swap depth !i;
        incr i
      done;
      !accepted
    end
  in
  go 0

let iter_constrained items ~precedes ~f =
  let n = Array.length items in
  let out = Array.make n (-1) in
  let used = Array.make n false in
  (* [a] is ready at a step when every mandatory predecessor among the
     remaining items is already placed. *)
  let ready i =
    let ok = ref true in
    for j = 0 to n - 1 do
      if (not used.(j)) && j <> i && precedes items.(j) items.(i) then ok := false
    done;
    !ok
  in
  let rec go depth =
    if depth = n then f out
    else begin
      let accepted = ref false in
      let i = ref 0 in
      while (not !accepted) && !i < n do
        if (not used.(!i)) && ready !i then begin
          used.(!i) <- true;
          out.(depth) <- items.(!i);
          if go (depth + 1) then accepted := true;
          used.(!i) <- false
        end;
        incr i
      done;
      !accepted
    end
  in
  go 0

let product choice_lists ~f =
  let rec go acc = function
    | [] -> f (List.rev acc)
    | choices :: rest -> List.exists (fun c -> go (c :: acc) rest) choices
  in
  go [] choice_lists
