(** Minimal Graphviz DOT rendering for relations and abstract digraphs,
    used by the CLI ([smem lattice --dot]) and the lattice module. *)

val of_rel :
  ?name:string -> label:(int -> string) -> Rel.t -> string
(** Render a relation as a directed graph; [label] names each node. *)

val of_edges :
  ?name:string ->
  nodes:(string * string) list ->
  edges:(string * string) list ->
  unit ->
  string
(** [of_edges ~nodes ~edges ()] renders a digraph from explicit
    (id, label) nodes and (src, dst) edges. *)
