(** Dense binary relations over the universe [0 .. size - 1].

    A relation is represented as one successor {!Bitset.t} per element,
    giving O(size^2 / word_size) space and fast closure/union kernels.
    This is the workhorse representation for the ordering relations of
    the memory-model framework (program order, causal order,
    semi-causality, ...), whose universes are operation identifiers of a
    single execution history and therefore small and dense. *)

type t

val create : int -> t
(** [create size] is the empty relation over [0 .. size - 1]. *)

val size : t -> int

val mem : t -> int -> int -> bool
(** [mem r a b] is [true] iff [(a, b)] is in [r]. *)

val add : t -> int -> int -> unit

val remove : t -> int -> int -> unit

val copy : t -> t

val of_pairs : int -> (int * int) list -> t

val pairs : t -> (int * int) list
(** All pairs in lexicographic order. *)

val cardinal : t -> int
(** Number of pairs. *)

val is_empty : t -> bool

val equal : t -> t -> bool

val subrel : t -> t -> bool
(** [subrel a b] holds when every pair of [a] is a pair of [b]. *)

val union : t -> t -> t
(** Fresh relation; arguments unchanged. *)

val union_into : into:t -> t -> unit

val inter : t -> t -> t

val diff : t -> t -> t

val compose : t -> t -> t
(** [compose r s] relates [a] to [c] when [r] relates [a] to some [b]
    and [s] relates [b] to [c]. *)

val transpose : t -> t

val successors : t -> int -> Bitset.t
(** The successor set of an element.  The returned set is the internal
    row: treat it as read-only. *)

val iter_pairs : (int -> int -> unit) -> t -> unit

val restrict : t -> Bitset.t -> t
(** [restrict r keep] removes every pair having an endpoint outside
    [keep]; the universe size is unchanged. *)

val transitive_closure : t -> t
(** Warshall's algorithm on bitset rows. *)

val reflexive_transitive_closure : t -> t

val is_transitive : t -> bool

val irreflexive : t -> bool

val acyclic : t -> bool
(** [acyclic r] is [true] when [r] has no directed cycle (equivalently,
    the transitive closure of [r] is irreflexive). *)

val topological_sort : t -> int list option
(** A linear extension of [r] over the whole universe, or [None] when
    [r] is cyclic.  Ties are broken by smallest element first, making
    the output deterministic. *)

val find_cycle : t -> int list option
(** Some directed cycle [v0; v1; ...; vk] with an edge from each element
    to the next and from [vk] back to [v0], or [None] if acyclic. *)

val strongly_connected_components : t -> int array * int
(** Tarjan's algorithm: returns [(component, count)] where
    [component.(v)] is the id of [v]'s strongly connected component,
    numbered in reverse topological order ([0] has no edges into later
    components). *)

val linear_extensions :
  ?universe:Bitset.t -> t -> f:(int array -> bool) -> bool
(** [linear_extensions r ~f] enumerates the linear extensions of [r]
    restricted to [universe] (default: the whole universe), calling [f]
    on each.  Enumeration stops — and the call returns [true] — as soon
    as [f] returns [true]; returns [false] when all extensions are
    exhausted without [f] accepting.  The array passed to [f] is reused
    across calls: copy it to retain it. *)

val pp : Format.formatter -> t -> unit
