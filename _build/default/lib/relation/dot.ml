let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let of_rel ?(name = "g") ~label rel =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  for a = 0 to Rel.size rel - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" a (escape (label a)))
  done;
  Rel.iter_pairs
    (fun a b -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" a b))
    rel;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_edges ?(name = "g") ~nodes ~edges () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  List.iter
    (fun (id, label) ->
      Buffer.add_string buf (Printf.sprintf "  %s [label=\"%s\"];\n" id (escape label)))
    nodes;
  List.iter
    (fun (src, dst) -> Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" src dst))
    edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
