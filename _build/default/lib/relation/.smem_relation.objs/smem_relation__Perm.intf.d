lib/relation/perm.mli:
