lib/relation/dot.mli: Rel
