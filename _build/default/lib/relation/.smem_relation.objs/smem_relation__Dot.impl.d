lib/relation/dot.ml: Buffer List Printf Rel String
