lib/relation/perm.ml: Array List
