lib/relation/rel.ml: Array Bitset Format Fun List
