lib/lang/exec.ml: Ast List
