lib/lang/ast.mli:
