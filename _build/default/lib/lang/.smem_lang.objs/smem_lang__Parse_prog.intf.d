lib/lang/parse_prog.mli: Ast Format
