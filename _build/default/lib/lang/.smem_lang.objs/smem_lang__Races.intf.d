lib/lang/races.mli: Ast Format
