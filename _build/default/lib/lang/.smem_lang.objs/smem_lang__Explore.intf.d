lib/lang/explore.mli: Ast Random Smem_core Smem_machine
