lib/lang/exec.mli: Ast
