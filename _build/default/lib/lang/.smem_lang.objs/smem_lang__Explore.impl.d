lib/lang/explore.ml: Array Ast Exec Fun Hashtbl List Printf Queue Random Smem_core Smem_machine
