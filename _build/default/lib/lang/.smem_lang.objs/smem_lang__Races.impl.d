lib/lang/races.ml: Array Ast Exec Format Fun Hashtbl List Smem_machine
