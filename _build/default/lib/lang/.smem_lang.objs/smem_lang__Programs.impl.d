lib/lang/programs.ml: Array Ast
