lib/lang/print_prog.ml: Array Ast Buffer Format List Printf String
