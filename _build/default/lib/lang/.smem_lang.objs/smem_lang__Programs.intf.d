lib/lang/programs.mli: Ast
