lib/lang/parse_prog.ml: Array Ast Format List String
