lib/lang/print_prog.mli: Ast Format
