lib/lang/ast.ml: Array List Printf
