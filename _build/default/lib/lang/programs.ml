open Ast

let reg r = Ast.Reg r

(* Lamport's Bakery algorithm, one entry per processor (Figure 6 of the
   paper).  The entry/exit protocol accesses only choosing[] and
   number[], which are the labeled (synchronization) variables. *)
let bakery ?(labeled = true) ~n () =
  let thread i =
    let choosing k = elt "choosing" k in
    let number k = elt "number" k in
    [
      store ~labeled (choosing (Int i)) (Int 1);
      Assign ("mine", Int 0);
      For
        {
          var = "j";
          from_ = Int 0;
          to_ = Int (n - 1);
          body =
            [
              load ~labeled "tmp" (number (reg "j"));
              If (Lt (reg "mine", reg "tmp"), [ Assign ("mine", reg "tmp") ], []);
            ];
        };
      Assign ("mine", Add (reg "mine", Int 1));
      store ~labeled (number (Int i)) (reg "mine");
      store ~labeled (choosing (Int i)) (Int 0);
      For
        {
          var = "j";
          from_ = Int 0;
          to_ = Int (n - 1);
          body =
            [
              If
                ( Ne (reg "j", Int i),
                  [
                    load ~labeled "c" (choosing (reg "j"));
                    While
                      ( Ne (reg "c", Int 0),
                        [ load ~labeled "c" (choosing (reg "j")) ] );
                    load ~labeled "other" (number (reg "j"));
                    While
                      ( And
                          ( Ne (reg "other", Int 0),
                            Or
                              ( Lt (reg "other", reg "mine"),
                                And
                                  ( Eq (reg "other", reg "mine"),
                                    Lt (reg "j", Int i) ) ) ),
                        [ load ~labeled "other" (number (reg "j")) ] );
                  ],
                  [] );
            ];
        };
      Cs_enter;
      Cs_exit;
      store ~labeled (number (Int i)) (Int 0);
    ]
  in
  {
    shared = [ ("choosing", n); ("number", n) ];
    threads = Array.init n thread;
  }

let peterson ?(labeled = true) () =
  let thread i =
    let j = 1 - i in
    [
      store ~labeled (elt "flag" (Int i)) (Int 1);
      store ~labeled (var "turn") (Int j);
      load ~labeled "f" (elt "flag" (Int j));
      load ~labeled "t" (var "turn");
      While
        ( And (Eq (reg "f", Int 1), Eq (reg "t", Int j)),
          [
            load ~labeled "f" (elt "flag" (Int j));
            load ~labeled "t" (var "turn");
          ] );
      Cs_enter;
      Cs_exit;
      store ~labeled (elt "flag" (Int i)) (Int 0);
    ]
  in
  { shared = [ ("flag", 2); ("turn", 1) ]; threads = Array.init 2 thread }

let dekker ?(labeled = true) () =
  let thread i =
    let j = 1 - i in
    [
      store ~labeled (elt "flag" (Int i)) (Int 1);
      load ~labeled "f" (elt "flag" (Int j));
      While
        ( Eq (reg "f", Int 1),
          [
            load ~labeled "t" (var "turn");
            If
              ( Ne (reg "t", Int i),
                [
                  store ~labeled (elt "flag" (Int i)) (Int 0);
                  load ~labeled "t" (var "turn");
                  While
                    ( Ne (reg "t", Int i),
                      [ load ~labeled "t" (var "turn") ] );
                  store ~labeled (elt "flag" (Int i)) (Int 1);
                ],
                [] );
            load ~labeled "f" (elt "flag" (Int j));
          ] );
      Cs_enter;
      Cs_exit;
      store ~labeled (var "turn") (Int j);
      store ~labeled (elt "flag" (Int i)) (Int 0);
    ]
  in
  { shared = [ ("flag", 2); ("turn", 1) ]; threads = Array.init 2 thread }

let tas_spinlock () =
  let thread _ =
    [
      Tas { reg = "got"; dst = var "lock" };
      While (Ne (reg "got", Int 0), [ Tas { reg = "got"; dst = var "lock" } ]);
      Cs_enter;
      Cs_exit;
      store ~labeled:true (var "lock") (Int 0);
    ]
  in
  { shared = [ ("lock", 1) ]; threads = Array.init 2 thread }

let naive_flags ?(labeled = true) () =
  let thread i =
    let j = 1 - i in
    [
      load ~labeled "f" (elt "flag" (Int j));
      While (Eq (reg "f", Int 1), [ load ~labeled "f" (elt "flag" (Int j)) ]);
      store ~labeled (elt "flag" (Int i)) (Int 1);
      Cs_enter;
      Cs_exit;
      store ~labeled (elt "flag" (Int i)) (Int 0);
    ]
  in
  { shared = [ ("flag", 2) ]; threads = Array.init 2 thread }
