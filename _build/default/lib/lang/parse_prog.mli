(** Parser for the concrete syntax of the concurrent language.

    {v
    # two-processor spinlock
    shared lock

    thread 0 {
      tas got <- lock
      while got != 0 { tas got <- lock }
      enter
      exit
      store* lock := 0
    }

    thread 1 {
      tas got <- lock
      while got != 0 { tas got <- lock }
      enter
      exit
      store* lock := 0
    }
    v}

    Declarations: [shared name] (a scalar) or [shared name[n]] (an
    array).  Threads must be numbered densely from 0.  Statements:

    - [reg := expr] — register assignment;
    - [load reg <- shared] / [load* reg <- shared] — ordinary/labeled
      (acquire) read of [name] or [name[expr]];
    - [store shared := expr] / [store* shared := expr] —
      ordinary/labeled (release) write;
    - [tas reg <- shared] — atomic test-and-set;
    - [if expr { ... } else { ... }] (else optional), [while expr { ... }],
      [for reg = expr to expr { ... }];
    - [enter] / [exit] — critical-section markers for the
      mutual-exclusion monitor.

    Expressions: integers, registers, [+ - *], comparisons
    [== != < <= > >=], [&& || !], parentheses.  [#] starts a comment. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val program_of_string : string -> (Ast.program, error) result
