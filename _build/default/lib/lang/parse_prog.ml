type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Parse_error of error

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Int of int
  | Sym of string  (* one of the fixed operator/punctuation spellings *)

type located = { tok : token; line : int }

let symbols =
  (* longest first, so ":=", "<=", "==" win over their prefixes *)
  [ ":="; "<-"; "=="; "!="; "<="; ">="; "&&"; "||";
    "{"; "}"; "["; "]"; "("; ")"; "+"; "-"; "*"; "<"; ">"; "="; "!" ]

let lex source =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length source in
  let i = ref 0 in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < n do
    let c = source.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && source.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit source.[!i] do
        incr i
      done;
      tokens :=
        { tok = Int (int_of_string (String.sub source start (!i - start))); line = !line }
        :: !tokens
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char source.[!i] do
        incr i
      done;
      tokens :=
        { tok = Ident (String.sub source start (!i - start)); line = !line } :: !tokens
    end
    else begin
      let matched =
        List.find_opt
          (fun sym ->
            let l = String.length sym in
            !i + l <= n && String.sub source !i l = sym)
          symbols
      in
      match matched with
      | Some sym ->
          tokens := { tok = Sym sym; line = !line } :: !tokens;
          i := !i + String.length sym
      | None -> fail !line "unexpected character %C" c
    end
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over a mutable token stream               *)
(* ------------------------------------------------------------------ *)

type stream = { mutable rest : located list; mutable last_line : int }

let peek s = match s.rest with [] -> None | t :: _ -> Some t

let advance s =
  match s.rest with
  | [] -> fail s.last_line "unexpected end of input"
  | t :: rest ->
      s.rest <- rest;
      s.last_line <- t.line;
      t

let expect_sym s sym =
  let t = advance s in
  match t.tok with
  | Sym got when got = sym -> ()
  | _ -> fail t.line "expected %S" sym

let expect_ident s =
  let t = advance s in
  match t.tok with
  | Ident name -> (name, t.line)
  | _ -> fail t.line "expected an identifier"

let expect_int s =
  let t = advance s in
  match t.tok with Int v -> v | _ -> fail t.line "expected an integer"

let accept_sym s sym =
  match peek s with
  | Some { tok = Sym got; _ } when got = sym ->
      ignore (advance s);
      true
  | _ -> false

let accept_ident s name =
  match peek s with
  | Some { tok = Ident got; _ } when got = name ->
      ignore (advance s);
      true
  | _ -> false

(* Expressions, by precedence climbing: || < && < comparison < additive
   < multiplicative < unary < atoms. *)
let rec parse_or s =
  let lhs = parse_and s in
  if accept_sym s "||" then Ast.Or (lhs, parse_or s) else lhs

and parse_and s =
  let lhs = parse_cmp s in
  if accept_sym s "&&" then Ast.And (lhs, parse_and s) else lhs

and parse_cmp s =
  let lhs = parse_add s in
  if accept_sym s "==" then Ast.Eq (lhs, parse_add s)
  else if accept_sym s "!=" then Ast.Ne (lhs, parse_add s)
  else if accept_sym s "<=" then Ast.Le (lhs, parse_add s)
  else if accept_sym s ">=" then Ast.Le (parse_add s, lhs)
  else if accept_sym s "<" then Ast.Lt (lhs, parse_add s)
  else if accept_sym s ">" then Ast.Lt (parse_add s, lhs)
  else lhs

and parse_add s =
  let lhs = parse_mul s in
  if accept_sym s "+" then Ast.Add (lhs, parse_add s)
  else if accept_sym s "-" then Ast.Sub (lhs, parse_add s)
  else lhs

and parse_mul s =
  let lhs = parse_unary s in
  if accept_sym s "*" then Ast.Mul (lhs, parse_mul s) else lhs

and parse_unary s =
  if accept_sym s "!" then Ast.Not (parse_unary s) else parse_atom s

and parse_atom s =
  let t = advance s in
  match t.tok with
  | Int v -> Ast.Int v
  | Ident r -> Ast.Reg r
  | Sym "(" ->
      let e = parse_or s in
      expect_sym s ")";
      e
  | Sym "-" -> (
      (* negative literal *)
      match (advance s).tok with
      | Int v -> Ast.Int (-v)
      | _ -> fail t.line "expected an integer after unary '-'")
  | _ -> fail t.line "expected an expression"

let parse_shared_ref s =
  let name, _ = expect_ident s in
  if accept_sym s "[" then begin
    let index = parse_or s in
    expect_sym s "]";
    { Ast.array = name; index }
  end
  else Ast.var name

let rec parse_block s =
  expect_sym s "{";
  let rec go acc =
    if accept_sym s "}" then List.rev acc else go (parse_stmt s :: acc)
  in
  go []

and parse_stmt s =
  let t = advance s in
  match t.tok with
  | Ident "load" ->
      let labeled = accept_sym s "*" in
      let reg, _ = expect_ident s in
      expect_sym s "<-";
      Ast.Load { reg; src = parse_shared_ref s; labeled }
  | Ident "store" ->
      let labeled = accept_sym s "*" in
      let dst = parse_shared_ref s in
      expect_sym s ":=";
      Ast.Store { dst; value = parse_or s; labeled }
  | Ident "tas" ->
      let reg, _ = expect_ident s in
      expect_sym s "<-";
      Ast.Tas { reg; dst = parse_shared_ref s }
  | Ident "if" ->
      let cond = parse_or s in
      let then_ = parse_block s in
      let else_ = if accept_ident s "else" then parse_block s else [] in
      Ast.If (cond, then_, else_)
  | Ident "while" ->
      let cond = parse_or s in
      Ast.While (cond, parse_block s)
  | Ident "for" ->
      let var, _ = expect_ident s in
      expect_sym s "=";
      let from_ = parse_or s in
      if not (accept_ident s "to") then fail t.line "expected 'to' in for loop";
      let to_ = parse_or s in
      Ast.For { var; from_; to_; body = parse_block s }
  | Ident "enter" -> Ast.Cs_enter
  | Ident "exit" -> Ast.Cs_exit
  | Ident reg ->
      expect_sym s ":=";
      Ast.Assign (reg, parse_or s)
  | _ -> fail t.line "expected a statement"

let program_of_string source =
  try
    let s = { rest = lex source; last_line = 1 } in
    let shared = ref [] in
    let threads = ref [] in
    let rec go () =
      match peek s with
      | None -> ()
      | Some t -> (
          match t.tok with
          | Ident "shared" ->
              ignore (advance s);
              let name, line = expect_ident s in
              let size =
                if accept_sym s "[" then begin
                  let n = expect_int s in
                  expect_sym s "]";
                  n
                end
                else 1
              in
              if List.mem_assoc name !shared then
                fail line "shared array %S declared twice" name;
              shared := (name, size) :: !shared;
              go ()
          | Ident "thread" ->
              ignore (advance s);
              let id = expect_int s in
              let expected = List.length !threads in
              if id <> expected then
                fail t.line "expected thread %d, got %d" expected id;
              threads := parse_block s :: !threads;
              go ()
          | _ -> fail t.line "expected 'shared' or 'thread'")
    in
    go ();
    if !threads = [] then fail s.last_line "no threads declared";
    Ok
      {
        Ast.shared = List.rev !shared;
        threads = Array.of_list (List.rev !threads);
      }
  with Parse_error e -> Error e
