(** Printer for the concurrent language — inverse of {!Parse_prog}:
    [Parse_prog.program_of_string (to_string p)] reproduces [p]. *)

val to_string : Ast.program -> string
val pp : Format.formatter -> Ast.program -> unit
val expr_to_string : Ast.expr -> string
