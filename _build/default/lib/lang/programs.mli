(** Classic mutual-exclusion algorithms expressed in the language.

    [~labeled:true] marks every synchronization access (the accesses to
    the algorithms' own variables) as labeled — the "properly labeled"
    reading used in §5 of the paper for release consistency.  Critical
    and remainder sections contain no shared accesses, matching the
    paper's assumptions. *)

val bakery : ?labeled:bool -> n:int -> unit -> Ast.program
(** Lamport's Bakery algorithm (Figure 6 of the paper) for [n]
    processors, one critical-section entry per processor. *)

val peterson : ?labeled:bool -> unit -> Ast.program
(** Peterson's two-process algorithm. *)

val dekker : ?labeled:bool -> unit -> Ast.program
(** Dekker's two-process algorithm. *)

val tas_spinlock : unit -> Ast.program
(** A test-and-set spinlock: spin on [tas(lock)] until it returns 0,
    enter, release by writing 0.  Read-modify-write operations are
    atomic at the global serialization point (paper footnote 4), so
    unlike the Bakery algorithm this lock is correct on every machine —
    including TSO and RC_pc, where read/write-only mutual exclusion
    fails. *)

val naive_flags : ?labeled:bool -> unit -> Ast.program
(** The broken "set my flag, check yours" protocol — a negative control
    that violates mutual exclusion even on sequentially consistent
    memory. *)
