(** A small concurrent language over shared memory.

    Programs declare shared arrays (scalars are arrays of size 1) and
    one statement list per thread.  Expressions are pure and read only
    thread-local registers; shared memory is accessed exclusively
    through {!constructor:Load} and {!constructor:Store} statements, so
    every memory operation of an execution is explicit and can be
    labeled (synchronization) or ordinary — exactly the operation
    vocabulary of the paper.  [Cs_enter]/[Cs_exit] bracket critical
    sections for the mutual-exclusion monitor. *)

type expr =
  | Int of int
  | Reg of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Eq of expr * expr
  | Ne of expr * expr
  | Lt of expr * expr
  | Le of expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type shared = { array : string; index : expr }

type stmt =
  | Assign of string * expr
  | Load of { reg : string; src : shared; labeled : bool }
  | Store of { dst : shared; value : expr; labeled : bool }
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of { var : string; from_ : expr; to_ : expr; body : stmt list }
      (** inclusive bounds; the loop variable is a register *)
  | Tas of { reg : string; dst : shared }
      (** atomic test-and-set: [reg] receives the old value, the
          location is set to 1 at the machine's global serialization
          point (paper footnote 4) *)
  | Cs_enter
  | Cs_exit

type program = {
  shared : (string * int) list;  (** array name and size *)
  threads : stmt list array;
}

(** {1 Shared-location layout} *)

type layout

val layout : program -> layout
(** Flatten the shared arrays into dense location identifiers.
    @raise Invalid_argument on duplicate array names or non-positive
    sizes. *)

val nlocs : layout -> int
val loc_names : layout -> string array
val loc_id : layout -> string -> int -> int
(** [loc_id l array index] — the flat location of [array[index]].
    @raise Invalid_argument when out of bounds or unknown. *)

(** {1 Convenience constructors} *)

val var : string -> shared
(** Scalar shared variable: [{array; index = Int 0}]. *)

val elt : string -> expr -> shared

val load : ?labeled:bool -> string -> shared -> stmt
val store : ?labeled:bool -> shared -> expr -> stmt
