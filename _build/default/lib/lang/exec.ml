module Env = struct
  type t = (string * int) list  (* sorted by register name *)

  let empty = []

  let get t reg = match List.assoc_opt reg t with Some v -> v | None -> 0

  let rec set t reg value =
    match t with
    | [] -> [ (reg, value) ]
    | (r, _) :: rest when r = reg -> (reg, value) :: rest
    | (r, v) :: rest when r > reg -> (reg, value) :: (r, v) :: rest
    | binding :: rest -> binding :: set rest reg value

  let bindings t = t
end

let bool_int b = if b then 1 else 0

let rec eval env : Ast.expr -> int = function
  | Ast.Int n -> n
  | Ast.Reg r -> Env.get env r
  | Ast.Add (a, b) -> eval env a + eval env b
  | Ast.Sub (a, b) -> eval env a - eval env b
  | Ast.Mul (a, b) -> eval env a * eval env b
  | Ast.Eq (a, b) -> bool_int (eval env a = eval env b)
  | Ast.Ne (a, b) -> bool_int (eval env a <> eval env b)
  | Ast.Lt (a, b) -> bool_int (eval env a < eval env b)
  | Ast.Le (a, b) -> bool_int (eval env a <= eval env b)
  | Ast.And (a, b) -> bool_int (eval env a <> 0 && eval env b <> 0)
  | Ast.Or (a, b) -> bool_int (eval env a <> 0 || eval env b <> 0)
  | Ast.Not a -> bool_int (eval env a = 0)

type action =
  | A_load of { reg : string; loc : int; labeled : bool }
  | A_store of { loc : int; value : int; labeled : bool }
  | A_tas of { reg : string; loc : int }
  | A_enter
  | A_exit

type status =
  | At_action of action * Env.t * Ast.stmt list
  | Finished of Env.t
  | Out_of_fuel

let resolve layout env (s : Ast.shared) =
  Ast.loc_id layout s.Ast.array (eval env s.Ast.index)

let step_to_action layout ~env ~cont ~fuel =
  let rec go env cont fuel =
    if fuel <= 0 then Out_of_fuel
    else
      match cont with
      | [] -> Finished env
      | stmt :: rest -> (
          match stmt with
          | Ast.Assign (reg, e) -> go (Env.set env reg (eval env e)) rest (fuel - 1)
          | Ast.Load { reg; src; labeled } ->
              At_action (A_load { reg; loc = resolve layout env src; labeled }, env, rest)
          | Ast.Store { dst; value; labeled } ->
              At_action
                ( A_store
                    { loc = resolve layout env dst; value = eval env value; labeled },
                  env,
                  rest )
          | Ast.If (c, then_, else_) ->
              let branch = if eval env c <> 0 then then_ else else_ in
              go env (branch @ rest) (fuel - 1)
          | Ast.While (c, body) ->
              if eval env c <> 0 then go env (body @ (stmt :: rest)) (fuel - 1)
              else go env rest (fuel - 1)
          | Ast.For { var; from_; to_; body } ->
              let lo = eval env from_ and hi = eval env to_ in
              if lo > hi then go env rest (fuel - 1)
              else
                let continue =
                  Ast.For { var; from_ = Ast.Int (lo + 1); to_ = Ast.Int hi; body }
                in
                go (Env.set env var lo) (body @ (continue :: rest)) (fuel - 1)
          | Ast.Tas { reg; dst } ->
              At_action (A_tas { reg; loc = resolve layout env dst }, env, rest)
          | Ast.Cs_enter -> At_action (A_enter, env, rest)
          | Ast.Cs_exit -> At_action (A_exit, env, rest))
  in
  go env cont fuel
