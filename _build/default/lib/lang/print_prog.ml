(* Precedence levels mirror the parser: 0 = ||, 1 = &&, 2 = comparison,
   3 = additive, 4 = multiplicative, 5 = unary/atom.  Parenthesize when
   a subexpression's level is below its context. *)
let rec expr level e =
  let wrap l s = if l < level then "(" ^ s ^ ")" else s in
  match (e : Ast.expr) with
  | Ast.Int n -> if n < 0 then Printf.sprintf "(-%d)" (-n) else string_of_int n
  | Ast.Reg r -> r
  | Ast.Or (a, b) -> wrap 0 (expr 1 a ^ " || " ^ expr 0 b)
  | Ast.And (a, b) -> wrap 1 (expr 2 a ^ " && " ^ expr 1 b)
  | Ast.Eq (a, b) -> wrap 2 (expr 3 a ^ " == " ^ expr 3 b)
  | Ast.Ne (a, b) -> wrap 2 (expr 3 a ^ " != " ^ expr 3 b)
  | Ast.Lt (a, b) -> wrap 2 (expr 3 a ^ " < " ^ expr 3 b)
  | Ast.Le (a, b) -> wrap 2 (expr 3 a ^ " <= " ^ expr 3 b)
  | Ast.Add (a, b) -> wrap 3 (expr 4 a ^ " + " ^ expr 3 b)
  | Ast.Sub (a, b) -> wrap 3 (expr 4 a ^ " - " ^ expr 3 b)
  | Ast.Mul (a, b) -> wrap 4 (expr 5 a ^ " * " ^ expr 4 b)
  | Ast.Not a -> wrap 5 ("!" ^ expr 5 a)

let expr_to_string e = expr 0 e

let shared_ref (s : Ast.shared) =
  match s.Ast.index with
  | Ast.Int 0 -> s.Ast.array
  | index -> Printf.sprintf "%s[%s]" s.Ast.array (expr_to_string index)

let star labeled = if labeled then "*" else ""

let rec stmt buf indent st =
  let pad = String.make indent ' ' in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (pad ^ s ^ "\n")) fmt in
  match (st : Ast.stmt) with
  | Ast.Assign (r, e) -> line "%s := %s" r (expr_to_string e)
  | Ast.Load { reg; src; labeled } ->
      line "load%s %s <- %s" (star labeled) reg (shared_ref src)
  | Ast.Store { dst; value; labeled } ->
      line "store%s %s := %s" (star labeled) (shared_ref dst) (expr_to_string value)
  | Ast.Tas { reg; dst } -> line "tas %s <- %s" reg (shared_ref dst)
  | Ast.If (c, then_, []) ->
      line "if %s {" (expr_to_string c);
      List.iter (stmt buf (indent + 2)) then_;
      line "}"
  | Ast.If (c, then_, else_) ->
      line "if %s {" (expr_to_string c);
      List.iter (stmt buf (indent + 2)) then_;
      line "} else {";
      List.iter (stmt buf (indent + 2)) else_;
      line "}"
  | Ast.While (c, body) ->
      line "while %s {" (expr_to_string c);
      List.iter (stmt buf (indent + 2)) body;
      line "}"
  | Ast.For { var; from_; to_; body } ->
      line "for %s = %s to %s {" var (expr_to_string from_) (expr_to_string to_);
      List.iter (stmt buf (indent + 2)) body;
      line "}"
  | Ast.Cs_enter -> line "enter"
  | Ast.Cs_exit -> line "exit"

let to_string (p : Ast.program) =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, size) ->
      if size = 1 then Buffer.add_string buf (Printf.sprintf "shared %s\n" name)
      else Buffer.add_string buf (Printf.sprintf "shared %s[%d]\n" name size))
    p.Ast.shared;
  Array.iteri
    (fun i body ->
      Buffer.add_string buf (Printf.sprintf "\nthread %d {\n" i);
      List.iter (stmt buf 2) body;
      Buffer.add_string buf "}\n")
    p.Ast.threads;
  Buffer.contents buf

let pp ppf p = Format.pp_print_string ppf (to_string p)
