(** Thread-local execution: expression evaluation and deterministic
    small-step reduction of a thread up to its next {e visible} action
    (a shared-memory access, a critical-section marker, or
    termination).  Local computation is collapsed because only memory
    operations interact with the machine — the standard reduction for
    exploring concurrent programs. *)

module Env : sig
  (** Thread-local registers.  Unset registers read as [0].  The
      representation is canonical (sorted), so structural equality on
      environments is semantic equality — required by the explorer's
      memoization. *)

  type t

  val empty : t
  val get : t -> string -> int
  val set : t -> string -> int -> t
  val bindings : t -> (string * int) list
end

val eval : Env.t -> Ast.expr -> int
(** Booleans are [0]/[1]. *)

type action =
  | A_load of { reg : string; loc : int; labeled : bool }
  | A_store of { loc : int; value : int; labeled : bool }
  | A_tas of { reg : string; loc : int }
  | A_enter
  | A_exit

type status =
  | At_action of action * Env.t * Ast.stmt list
      (** The thread is about to perform [action]; the environment and
          continuation are the state {e after} local reduction but
          {e before} the action (for a load, bind the observed value to
          the action's register afterwards). *)
  | Finished of Env.t
  | Out_of_fuel

val step_to_action :
  Ast.layout -> env:Env.t -> cont:Ast.stmt list -> fuel:int -> status
(** Reduce local steps (assignments, branches, loop unfoldings) until a
    visible action or termination; [fuel] bounds local steps to guard
    against memory-free divergence. *)
