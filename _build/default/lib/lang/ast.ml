type expr =
  | Int of int
  | Reg of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Eq of expr * expr
  | Ne of expr * expr
  | Lt of expr * expr
  | Le of expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type shared = { array : string; index : expr }

type stmt =
  | Assign of string * expr
  | Load of { reg : string; src : shared; labeled : bool }
  | Store of { dst : shared; value : expr; labeled : bool }
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of { var : string; from_ : expr; to_ : expr; body : stmt list }
  | Tas of { reg : string; dst : shared }
  | Cs_enter
  | Cs_exit

type program = { shared : (string * int) list; threads : stmt list array }

type layout = {
  offsets : (string * (int * int)) list;  (* array -> (offset, size) *)
  total : int;
  names : string array;
}

let layout program =
  let offsets = ref [] in
  let names = ref [] in
  let total = ref 0 in
  List.iter
    (fun (name, size) ->
      if size <= 0 then invalid_arg "Ast.layout: non-positive array size";
      if List.mem_assoc name !offsets then
        invalid_arg "Ast.layout: duplicate shared array";
      offsets := (name, (!total, size)) :: !offsets;
      for i = 0 to size - 1 do
        let label = if size = 1 then name else Printf.sprintf "%s[%d]" name i in
        names := label :: !names
      done;
      total := !total + size)
    program.shared;
  { offsets = List.rev !offsets; total = !total; names = Array.of_list (List.rev !names) }

let nlocs l = l.total
let loc_names l = l.names

let loc_id l array index =
  match List.assoc_opt array l.offsets with
  | None -> invalid_arg ("Ast.loc_id: unknown shared array " ^ array)
  | Some (offset, size) ->
      if index < 0 || index >= size then
        invalid_arg (Printf.sprintf "Ast.loc_id: %s[%d] out of bounds" array index);
      offset + index

let var array = { array; index = Int 0 }
let elt array index = { array; index }

let load ?(labeled = false) reg src = Load { reg; src; labeled }
let store ?(labeled = false) dst value = Store { dst; value; labeled }
