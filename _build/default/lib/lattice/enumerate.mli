(** Exhaustive enumeration of small histories.

    A memory model {e is} its set of histories (§4), so the containment
    lattice of Figure 5 can be recomputed by classifying every history
    up to a size bound.  All of the paper's separating examples live
    within tiny bounds (Figures 1–3 fit in two or three processors, two
    locations, two values), so small scopes are decisive in practice.

    Write values range over [1 .. max_value] (writing the initial value
    0 only duplicates weaker histories); read values over
    [0 .. max_value]. *)

type config = {
  procs : int list;  (** operations per processor, e.g. [[2; 2]] *)
  nlocs : int;
  max_value : int;
  labeled : bool;  (** also enumerate the labeled/ordinary attribute *)
}

val default : config
(** [{procs = [2; 2]; nlocs = 2; max_value = 1; labeled = false}] *)

val count : config -> int
(** Number of histories the configuration generates. *)

val iter : config -> f:(Smem_core.History.t -> unit) -> unit

val loc_names : int -> string array
(** The location names used by the generator ([x], [y], [z], [l3]...). *)
