module H = Smem_core.History
module Op = Smem_core.Op

type config = { procs : int list; nlocs : int; max_value : int; labeled : bool }

let default = { procs = [ 2; 2 ]; nlocs = 2; max_value = 1; labeled = false }

let loc_names nlocs =
  Array.init nlocs (fun i ->
      match i with 0 -> "x" | 1 -> "y" | 2 -> "z" | n -> Printf.sprintf "l%d" n)

(* Event choices for one operation slot. *)
let slot_choices config =
  let choices = ref [] in
  let attrs = if config.labeled then [ false; true ] else [ false ] in
  let names = loc_names config.nlocs in
  for loc = 0 to config.nlocs - 1 do
    List.iter
      (fun labeled ->
        for v = 1 to config.max_value do
          choices := H.write ~labeled names.(loc) v :: !choices
        done;
        for v = 0 to config.max_value do
          choices := H.read ~labeled names.(loc) v :: !choices
        done)
      attrs
  done;
  List.rev !choices

let count config =
  let per_slot = List.length (slot_choices config) in
  let total_slots = List.fold_left ( + ) 0 config.procs in
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  pow per_slot total_slots

let iter config ~f =
  let choices = slot_choices config in
  (* Build per-processor rows slot by slot, processor-major. *)
  let rec fill_proc remaining_slots row rows_rev procs_rest =
    match (remaining_slots, procs_rest) with
    | 0, [] -> f (H.make (List.rev (List.rev row :: rows_rev)))
    | 0, n :: rest -> fill_proc n [] (List.rev row :: rows_rev) rest
    | n, _ ->
        List.iter
          (fun event -> fill_proc (n - 1) (event :: row) rows_rev procs_rest)
          choices
  in
  match config.procs with
  | [] -> ()
  | n :: rest -> fill_proc n [] [] rest
