lib/lattice/enumerate.ml: Array List Printf Smem_core
