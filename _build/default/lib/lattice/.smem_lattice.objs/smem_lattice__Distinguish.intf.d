lib/lattice/distinguish.mli: Enumerate Format Smem_core
