lib/lattice/distinguish.ml: Enumerate Format List Smem_core
