lib/lattice/classify.mli: Enumerate Format Smem_core
