lib/lattice/classify.ml: Array Enumerate Format List Printf Smem_core Smem_relation String
