lib/lattice/enumerate.mli: Smem_core
