module H = Smem_core.History
module Op = Smem_core.Op

let event_to_string h (op : Op.t) =
  let k = match op.Op.kind with Op.Read -> "r" | Op.Write -> "w" in
  let star = match op.Op.attr with Op.Ordinary -> "" | Op.Labeled -> "*" in
  let timing =
    match H.interval h op.Op.id with
    | Some (s, f) -> Printf.sprintf " @ %d %d" s f
    | None -> ""
  in
  Printf.sprintf "%s%s %s %d%s" k star (H.loc_name h op.Op.loc) op.Op.value timing

let to_string (t : Test.t) =
  let h = t.Test.history in
  let buf = Buffer.create 256 in
  if t.Test.doc = "" then Buffer.add_string buf (Printf.sprintf "test %s\n" t.Test.name)
  else
    Buffer.add_string buf
      (Printf.sprintf "test %s \"%s\"\n" t.Test.name t.Test.doc);
  for p = 0 to H.nprocs h - 1 do
    let events =
      H.proc_ops h p |> Array.to_list
      |> List.map (fun id -> event_to_string h (H.op h id))
    in
    Buffer.add_string buf (Printf.sprintf "p%d: %s\n" p (String.concat " ; " events))
  done;
  List.iter
    (fun (key, v) ->
      Buffer.add_string buf
        (Printf.sprintf "expect %s %s\n" key
           (match v with Test.Allowed -> "allowed" | Test.Forbidden -> "forbidden")))
    t.Test.expectations;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)
