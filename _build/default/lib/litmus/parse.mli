(** Parser for the [smem] litmus format.

    {v
    # store buffering, paper Figure 1
    test sb "store buffering"
    p0: w x 1 ; r y 0
    p1: w y 1 ; r x 0
    expect sc forbidden
    expect tso allowed
    v}

    One test per [test] header.  Processor lines are [p<i>:] followed by
    [;]-separated events; an event is [r <loc> <value>] or
    [w <loc> <value>], with [r*]/[w*] for labeled (acquire/release)
    accesses; an optional [@ <start> <finish>] suffix records a
    real-time interval for the atomic-memory model.  [expect <model-key> allowed|forbidden] lines attach
    expectations.  [#] starts a comment; blank lines separate nothing.
    Processors must be declared in order [p0, p1, ...]. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val tests_of_string : string -> (Test.t list, error) result

val test_of_string : string -> (Test.t, error) result
(** Expects exactly one test. *)
