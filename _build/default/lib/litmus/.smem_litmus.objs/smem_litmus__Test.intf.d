lib/litmus/test.mli: Format Smem_core
