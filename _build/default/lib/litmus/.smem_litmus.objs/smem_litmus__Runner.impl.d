lib/litmus/runner.ml: Format List Smem_core Test
