lib/litmus/print.ml: Array Buffer Format List Printf Smem_core String Test
