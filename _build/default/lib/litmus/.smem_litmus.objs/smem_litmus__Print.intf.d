lib/litmus/print.mli: Format Test
