lib/litmus/runner.mli: Format Smem_core Test
