lib/litmus/corpus.mli: Test
