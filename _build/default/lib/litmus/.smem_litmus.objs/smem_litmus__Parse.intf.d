lib/litmus/parse.mli: Format Test
