lib/litmus/corpus.ml: List Smem_core Test
