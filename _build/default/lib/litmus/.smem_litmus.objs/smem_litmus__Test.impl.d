lib/litmus/test.ml: Format List Smem_core
