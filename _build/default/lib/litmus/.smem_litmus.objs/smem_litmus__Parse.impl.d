lib/litmus/parse.ml: Format List Printf Smem_core String Test
