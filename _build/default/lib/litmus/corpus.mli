(** The litmus corpus: the paper's Figures 1–4, the §5 Bakery
    subhistories, and the classic tests of the memory-model literature,
    each with expected verdicts per model.

    Expected verdicts are ground truth from the paper where it states
    them (Figures 1–4, §5) and from the standard literature otherwise;
    the test suite checks every checker against every stated
    expectation. *)

val fig1_tso : Test.t
(** Figure 1: the store-buffering history allowed by TSO, forbidden by
    SC. *)

val fig2_pc_not_tso : Test.t
(** Figure 2: allowed by PC, forbidden by TSO. *)

val fig3_pram_not_tso : Test.t
(** Figure 3: allowed by PRAM (and causal memory), forbidden by TSO and
    by any coherent memory. *)

val fig4_causal_not_tso : Test.t
(** Figure 4: allowed by causal memory, forbidden by TSO. *)

val bakery_rcpc_violation : Test.t
(** §5: the two-processor Bakery entry-section subhistories in which
    both processors pass their checks and enter the critical section —
    allowed by RC_pc, forbidden by RC_sc. *)

val all : Test.t list
(** Every corpus test, paper figures first. *)

val find : string -> Test.t option
