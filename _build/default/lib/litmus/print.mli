(** Printer for the [smem] litmus format — the inverse of {!Parse}. *)

val to_string : Test.t -> string
(** Render a test in the format accepted by {!Parse.test_of_string};
    [Parse.test_of_string (to_string t)] reproduces [t] up to location
    interning order. *)

val pp : Format.formatter -> Test.t -> unit
