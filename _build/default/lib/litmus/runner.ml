module Model = Smem_core.Model

type result = {
  test : Test.t;
  model : Model.t;
  got : Test.verdict;
  expected : Test.verdict option;
}

let agrees r = match r.expected with None -> true | Some e -> e = r.got

let run_test ~models test =
  List.map
    (fun model ->
      {
        test;
        model;
        got = Test.verdict_of_bool (Model.check model test.Test.history);
        expected = Test.expected test model.Model.key;
      })
    models

let run_all ~models tests = List.concat_map (run_test ~models) tests

let mismatches results = List.filter (fun r -> not (agrees r)) results

let pp_result ppf r =
  Format.fprintf ppf "%-16s %-10s %a%s" r.test.Test.name r.model.Model.key
    Test.pp_verdict r.got
    (match r.expected with
    | Some e when e <> r.got ->
        Format.asprintf "  (MISMATCH: expected %a)" Test.pp_verdict e
    | _ -> "")

let pp_matrix ~models ppf tests =
  let cell test (model : Model.t) =
    let got = Test.verdict_of_bool (Model.check model test.Test.history) in
    let mark =
      match Test.expected test model.Model.key with
      | Some e when e <> got -> "!"
      | Some _ -> ""
      | None -> " "
    in
    (match got with Test.Allowed -> "yes" | Test.Forbidden -> "no") ^ mark
  in
  Format.fprintf ppf "%-16s" "test";
  List.iter (fun (m : Model.t) -> Format.fprintf ppf " %-10s" m.Model.key) models;
  Format.fprintf ppf "@.";
  List.iter
    (fun test ->
      Format.fprintf ppf "%-16s" test.Test.name;
      List.iter (fun m -> Format.fprintf ppf " %-10s" (cell test m)) models;
      Format.fprintf ppf "@.")
    tests
