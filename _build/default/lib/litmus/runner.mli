(** Running litmus tests against models and tabulating verdicts. *)

type result = {
  test : Test.t;
  model : Smem_core.Model.t;
  got : Test.verdict;  (** what the checker decided *)
  expected : Test.verdict option;  (** the test's stated expectation *)
}

val agrees : result -> bool
(** [true] when there is no stated expectation or the checker agrees
    with it. *)

val run_test : models:Smem_core.Model.t list -> Test.t -> result list
(** Check one test against each model (in the given order). *)

val run_all :
  models:Smem_core.Model.t list -> Test.t list -> result list

val mismatches : result list -> result list

val pp_result : Format.formatter -> result -> unit

val pp_matrix :
  models:Smem_core.Model.t list ->
  Format.formatter ->
  Test.t list ->
  unit
(** A test × model verdict table, marking disagreements with the stated
    expectations. *)
