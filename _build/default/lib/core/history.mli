(** System execution histories.

    A history [H = {H_p | p ∈ P}] is a finite set of per-processor
    sequences of read and write operations (§2 of the paper).  This
    module provides a builder ({!read}, {!write}, {!make}), structural
    accessors, and the operation-set queries the checkers need.

    All locations implicitly hold the initial value [0] (footnote 1 of
    the paper); the pseudo-writer of that value is represented by the
    identifier {!init} in reads-from maps. *)

type t

(** {1 Construction} *)

type event
(** An operation before identifiers are assigned: building block for
    {!make}. *)

val read : ?labeled:bool -> ?at:int * int -> string -> int -> event
(** [read loc v] — a read of [loc] returning [v].  [~labeled:true]
    makes it an acquire.  [~at:(s, f)] records the real-time interval
    during which the operation was pending (invocation [s], response
    [f]), used by the atomic-memory model; most models ignore it.
    @raise Invalid_argument if [s > f]. *)

val write : ?labeled:bool -> ?at:int * int -> string -> int -> event
(** [write loc v] — a write of [v] to [loc].  [~labeled:true] makes it
    a release.  [~at] as in {!read}. *)

val make : event list list -> t
(** [make rows] builds a history with one processor per row.  Locations
    are interned in first-appearance order.
    @raise Invalid_argument on an empty processor list. *)

val of_ops : nprocs:int -> loc_names:string array -> Op.t list -> t
(** Rebuild a history from explicit operations (used by the machine
    simulators, which record traces with identifiers already assigned).
    Operations must have dense ids [0 .. n-1], procs in range, and
    per-processor indices dense in program order.
    @raise Invalid_argument otherwise. *)

(** {1 Accessors} *)

val init : int
(** Identifier standing for the implicit initial write of value [0]
    (it is [-1], never a real operation id). *)

val nops : t -> int
val nprocs : t -> int
val nlocs : t -> int

val op : t -> int -> Op.t
(** Operation by identifier. *)

val ops : t -> Op.t array
(** All operations, indexed by id.  Treat as read-only. *)

val interval : t -> int -> (int * int) option
(** The real-time interval of an operation, when the history carries
    timing information (histories built by {!of_ops} never do). *)

val has_timing : t -> bool

val loc_name : t -> int -> string
val loc_of_name : t -> string -> int option

val proc_ops : t -> int -> int array
(** Identifiers of a processor's operations in program order. *)

val reads : t -> int list
(** Identifiers of all read operations, ascending. *)

val writes : t -> int list
(** Identifiers of all write operations, ascending. *)

val writes_to : t -> int -> int list
(** Identifiers of the writes to a location, ascending. *)

val labeled : t -> int list
(** Identifiers of labeled operations, ascending. *)

val has_labeled : t -> bool

(** {1 Operation-set parameters (§2, parameter 1)} *)

val all_ops_set : t -> Smem_relation.Bitset.t
(** The universe: every operation. *)

val view_ops_writes : t -> int -> Smem_relation.Bitset.t
(** [δ_p = w]: processor [p]'s own operations plus the write operations
    of other processors — the standard view population of TSO, PC, RC,
    PRAM and causal memory. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Paper-style layout: one line per processor. *)

val pp_ops : t -> Format.formatter -> int list -> unit
(** Print a sequence of operation ids as a view. *)
