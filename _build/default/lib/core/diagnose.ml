module Rel = Smem_relation.Rel

type edge_kind = Program_order | Reads_from | From_read | Coherence_order

let pp_edge_kind ppf = function
  | Program_order -> Format.pp_print_string ppf "po"
  | Reads_from -> Format.pp_print_string ppf "rf"
  | From_read -> Format.pp_print_string ppf "fr"
  | Coherence_order -> Format.pp_print_string ppf "co"

type cycle = { ops : int list; edges : (int * edge_kind * int) list }

let candidate_space h =
  let rf_count =
    List.fold_left
      (fun acc r -> acc * List.length (Reads_from.candidates h r))
      1 (History.reads h)
  in
  let co_count = ref 0 in
  ignore (Coherence.iter h ~f:(fun _ -> incr co_count; false));
  (rf_count, !co_count)

let first_candidate h =
  let result = ref None in
  ignore
    (Reads_from.iter h ~f:(fun rf ->
         Coherence.iter h ~f:(fun co ->
             result := Some (rf, co);
             true)));
  !result

let sc_cycle h =
  match first_candidate h with
  | None -> None
  | Some (rf, co) -> (
      let po = Orders.po h in
      let rf_rel = Engine.rf_edges h ~rf in
      let fr_rel = Engine.fr_edges h ~rf ~co in
      let co_rel = Coherence.to_rel co in
      let graph = Rel.union (Rel.union po rf_rel) (Rel.union fr_rel co_rel) in
      match Rel.find_cycle graph with
      | None -> None
      | Some ops ->
          let arr = Array.of_list ops in
          let n = Array.length arr in
          let kind_of a b =
            if Rel.mem po a b then Program_order
            else if Rel.mem rf_rel a b then Reads_from
            else if Rel.mem fr_rel a b then From_read
            else Coherence_order
          in
          let edges =
            List.init n (fun i ->
                let a = arr.(i) and b = arr.((i + 1) mod n) in
                (a, kind_of a b, b))
          in
          Some { ops; edges })

let pp_cycle h ppf { ops = _; edges } =
  let loc_name l = History.loc_name h l in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (a, kind, b) ->
      Format.fprintf ppf "%a --%a--> %a@."
        (Op.pp ~loc_name) (History.op h a)
        pp_edge_kind kind
        (Op.pp ~loc_name) (History.op h b))
    edges;
  Format.fprintf ppf "@]"
