(** Sequential consistency (Lamport [13]).

    The strongest model of the paper: a single legal sequence containing
    {e all} operations of {e all} processors, respecting full program
    order, serves as every processor's view ([δ_p = a], mutual
    consistency is total agreement, ordering is [po]). *)

val witness : History.t -> Witness.t option
val check : History.t -> bool
val model : Model.t
