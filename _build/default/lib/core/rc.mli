(** Release consistency (Gharachorloo et al. [6]), §3.4 of the paper.

    Operations are split into {e ordinary} and {e labeled}
    (synchronization) accesses; a labeled read is an acquire, a labeled
    write a release.  Views contain the processor's operations plus all
    writes of others (labeled reads of other processors appear in no
    view but their owner's).  The requirements:

    - mutual consistency: coherence (shared per-location write order);
    - the view owner's operations respect its partial program order;
    - the labeled subhistory is sequentially consistent ([RC_sc]) or
      processor consistent ([RC_pc]) — an additional mutual-consistency
      requirement across views;
    - bracketing: an ordinary operation that program-order-follows an
      acquire follows, in every view, the write the acquire read; an
      ordinary operation that program-order-precedes a release precedes
      it in every view.

    Note: the paper's statement of the release condition says the
    ordinary operation "follows" the release; release semantics (and the
    paper's own motivating sentence, "RC ensures that an ordinary
    operation completes before the following release is performed")
    require "precedes", which is what we implement.  See DESIGN.md.

    Scope note: an acquire whose writer is an {e ordinary} write to a
    location that also has labeled writes is rejected (the labeled
    subhistory could not be legal); properly-labeled programs never do
    this. *)

type flavor = Rc_sc | Rc_pc

val witness : flavor -> History.t -> Witness.t option
val check : flavor -> History.t -> bool

val rc_sc : Model.t
val rc_pc : Model.t
