(** An independent, operational decision procedure for TSO, following
    the implementation description quoted in §3.2: per-processor FIFO
    store buffers in front of a single-ported shared memory.  A history
    is accepted iff some interleaving of issue and buffer-flush steps
    replays it — reads returning the newest buffered value for their
    location, or the memory value when none is buffered.

    This module exists to cross-validate {!Tso}: the paper argues its
    view-based characterization captures the operational/axiomatic TSO,
    and the test suite checks the two accept exactly the same
    histories. *)

val check : History.t -> bool
val model : Model.t
