(** Coherence (cache consistency): every location is sequentially
    consistent in isolation.  This is the mutual-consistency requirement
    of PC and RC taken alone (§2, parameter 2), and a useful baseline in
    the lattice. *)

val witness : History.t -> Witness.t option
val check : History.t -> bool
val model : Model.t
