type kind = Read | Write

type attr = Ordinary | Labeled

type t = {
  id : int;
  proc : int;
  index : int;
  kind : kind;
  loc : int;
  value : int;
  attr : attr;
}

let is_read t = t.kind = Read
let is_write t = t.kind = Write
let is_labeled t = t.attr = Labeled
let is_ordinary t = t.attr = Ordinary
let is_acquire t = t.kind = Read && t.attr = Labeled
let is_release t = t.kind = Write && t.attr = Labeled

let same_proc a b = a.proc = b.proc
let same_loc a b = a.loc = b.loc

let pp ~loc_name ppf t =
  let k = match t.kind with Read -> "r" | Write -> "w" in
  let star = match t.attr with Ordinary -> "" | Labeled -> "*" in
  Format.fprintf ppf "%s%s_p%d(%s)%d" k star t.proc (loc_name t.loc) t.value

let to_string ~loc_name t = Format.asprintf "%a" (pp ~loc_name) t
