lib/core/reads_from.ml: Array Format History List Op Smem_relation
