lib/core/pc.mli: History Model Witness
