lib/core/build.mli: Model
