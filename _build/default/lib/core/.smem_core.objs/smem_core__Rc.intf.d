lib/core/rc.mli: History Model Witness
