lib/core/reads_from.mli: Format History Smem_relation
