lib/core/registry.mli: Model
