lib/core/orders.ml: Array Coherence History List Op Reads_from Smem_relation
