lib/core/pc_goodman.mli: History Model Witness
