lib/core/history.mli: Format Op Smem_relation
