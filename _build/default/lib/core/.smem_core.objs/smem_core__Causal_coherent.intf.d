lib/core/causal_coherent.mli: History Model Witness
