lib/core/local.mli: History Model Witness
