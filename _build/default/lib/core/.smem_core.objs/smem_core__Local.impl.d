lib/core/local.ml: History List Model Option Orders View Witness
