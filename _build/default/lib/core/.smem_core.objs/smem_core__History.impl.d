lib/core/history.ml: Array Format Fun Hashtbl List Op Option Smem_relation
