lib/core/coherence_only.ml: Array Coherence Engine History List Model Op Option Orders Reads_from Smem_relation Witness
