lib/core/weak_ordering.ml: Array Format History List Model Op Option Orders Smem_relation View Witness
