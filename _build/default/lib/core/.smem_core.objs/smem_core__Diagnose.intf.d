lib/core/diagnose.mli: Format History
