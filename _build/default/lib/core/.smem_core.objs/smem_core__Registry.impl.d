lib/core/registry.ml: Atomic Causal Causal_coherent Coherence_only List Local Model Pc Pc_goodman Pram Rc Sc Slow Tso Tso_operational Weak_ordering
