lib/core/slow.ml: History List Model Option Orders Smem_relation View Witness
