lib/core/tso_operational.mli: History Model
