lib/core/model.ml: History Option Witness
