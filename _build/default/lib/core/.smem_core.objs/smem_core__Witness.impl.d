lib/core/witness.ml: Format History List
