lib/core/slow.mli: History Model Witness
