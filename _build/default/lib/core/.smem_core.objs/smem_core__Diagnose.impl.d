lib/core/diagnose.ml: Array Coherence Engine Format History List Op Orders Reads_from Smem_relation
