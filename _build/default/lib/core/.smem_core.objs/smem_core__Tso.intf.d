lib/core/tso.mli: History Model Witness
