lib/core/engine.ml: Coherence Format History List Op Reads_from Smem_relation String Witness
