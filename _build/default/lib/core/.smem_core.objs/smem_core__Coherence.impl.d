lib/core/coherence.ml: Array Format History List Op Smem_relation
