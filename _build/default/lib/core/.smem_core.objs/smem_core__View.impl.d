lib/core/view.ml: Array Hashtbl History Op Option Reads_from Smem_relation Sys
