lib/core/tso_operational.ml: Array Fun Hashtbl History List Model Op Witness
