lib/core/view.mli: History Reads_from Smem_relation
