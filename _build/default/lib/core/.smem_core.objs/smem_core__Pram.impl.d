lib/core/pram.ml: History List Model Option Orders View Witness
