lib/core/weak_ordering.mli: History Model Witness
