lib/core/witness.mli: Format History
