lib/core/build.ml: Array Coherence Engine History List Model Op Option Orders Printf Reads_from Smem_relation String View Witness
