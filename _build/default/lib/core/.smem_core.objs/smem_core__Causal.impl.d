lib/core/causal.ml: Format History List Model Option Orders Reads_from Smem_relation View Witness
