lib/core/engine.mli: Coherence History Reads_from Smem_relation Witness
