lib/core/sc.mli: History Model Witness
