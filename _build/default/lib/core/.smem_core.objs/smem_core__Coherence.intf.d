lib/core/coherence.mli: Format History Smem_relation
