lib/core/pram.mli: History Model Witness
