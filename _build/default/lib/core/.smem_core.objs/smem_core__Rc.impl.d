lib/core/rc.ml: Array Coherence Engine Format History List Model Op Option Orders Reads_from Smem_relation Witness
