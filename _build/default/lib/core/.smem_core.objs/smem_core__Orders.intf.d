lib/core/orders.mli: Coherence History Reads_from Smem_relation
