lib/core/model.mli: History Witness
