lib/core/causal_coherent.ml: Coherence History List Model Option Orders Reads_from Smem_relation View Witness
