lib/core/pc_goodman.ml: Coherence History List Model Option Orders Smem_relation View Witness
