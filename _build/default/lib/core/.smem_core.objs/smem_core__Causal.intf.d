lib/core/causal.mli: History Model Witness
