lib/core/sc.ml: Coherence Engine History Model Option Orders Reads_from Smem_relation
