lib/core/coherence_only.mli: History Model Witness
