lib/core/pc.ml: Coherence Engine History List Model Option Orders Reads_from Smem_relation
