lib/core/atomic.mli: History Model Witness
