(** Pipelined RAM (Lipton and Sandberg [15]), §3.5 of the paper.

    Views contain the processor's operations plus all writes of others;
    there is {e no} mutual-consistency requirement; the ordering
    requirement is program order.  Operationally: replicated memory with
    reliable, per-sender FIFO update broadcast. *)

val witness : History.t -> Witness.t option
val check : History.t -> bool
val model : Model.t
