(** Coherent causal memory — the "new memory" sketched in the paper's
    concluding remarks (§7): causal memory augmented with coherence as a
    mutual-consistency requirement.  Views respect the causal order
    {e and} a per-location write serialization shared by all
    processors. *)

val witness : History.t -> Witness.t option
val check : History.t -> bool
val model : Model.t
