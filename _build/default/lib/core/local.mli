(** Local consistency: the weakest memory expressible with [δ_p = w] in
    the framework — each processor's view respects only that
    processor's own program order; other processors' writes may appear
    in any order whatsoever.  A floor for the lattice. *)

val witness : History.t -> Witness.t option
val check : History.t -> bool
val model : Model.t
