(** Total Store Ordering (Sindhu, Frailong, Cekleov [17]), §3.2 of the
    paper.

    Views contain the processor's operations plus all writes of other
    processors ([δ_p = w]); mutual consistency is a single global total
    order on {e all} writes shared by every view; the ordering
    requirement is the partial program order [ppo] (a read may bypass a
    program-order-earlier write to a different location). *)

val witness : History.t -> Witness.t option
val check : History.t -> bool
val model : Model.t
