(** Causal memory (Ahamad, Burns, Hutto, Neiger [3]), §3.5 of the
    paper.

    Like PRAM, views contain own operations plus all writes and there is
    no mutual-consistency requirement, but views must respect the causal
    order [→co = (→po ∪ →wb)+] for some writes-before assignment.  The
    checker existentially quantifies over reads-from maps: for each, the
    induced causal order must be a partial order and every processor
    must admit a legal view respecting it. *)

val witness : History.t -> Witness.t option
val check : History.t -> bool
val model : Model.t
