module Rel = Smem_relation.Rel

(* writer.(id) is the writer of read [id]; a sentinel -2 marks non-read slots. *)
type t = { writer : int array }

let no_writer = -2

let writer t r =
  let w = t.writer.(r) in
  if w = no_writer then invalid_arg "Reads_from.writer: not a read";
  w

let reads_from_init t r = writer t r = History.init

let candidates h r =
  let op = History.op h r in
  if not (Op.is_read op) then invalid_arg "Reads_from.candidates: not a read";
  let writes =
    History.writes_to h op.Op.loc
    |> List.filter (fun w -> (History.op h w).Op.value = op.Op.value)
  in
  if op.Op.value = 0 then History.init :: writes else writes

let iter h ~f =
  let reads = History.reads h in
  let writer = Array.make (History.nops h) no_writer in
  let rec go = function
    | [] -> f { writer = Array.copy writer }
    | r :: rest ->
        List.exists
          (fun w ->
            writer.(r) <- w;
            let accepted = go rest in
            writer.(r) <- no_writer;
            accepted)
          (candidates h r)
  in
  go reads

let wb h t =
  let rel = Rel.create (History.nops h) in
  List.iter
    (fun r ->
      let w = writer t r in
      if w <> History.init then Rel.add rel w r)
    (History.reads h);
  rel

let pp h ppf t =
  let loc_name l = History.loc_name h l in
  Format.fprintf ppf "@[<hov>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf r ->
         let w = writer t r in
         if w = History.init then
           Format.fprintf ppf "%a<-init" (Op.pp ~loc_name) (History.op h r)
         else
           Format.fprintf ppf "%a<-%a" (Op.pp ~loc_name) (History.op h r)
             (Op.pp ~loc_name) (History.op h w)))
    (History.reads h)
