(** Atomic memory (Misra [16], Herlihy–Wing linearizability [10]) —
    the memory the paper's §6 notes is {e stronger than} sequential
    consistency.

    Histories may carry real-time intervals per operation
    ({!History.read}'s [?at]); atomic memory is sequential consistency
    plus respect for real-time precedence: the single shared view must
    also order [a] before [b] whenever [a]'s response precedes [b]'s
    invocation.  On histories without timing information the model
    coincides with SC exactly (a property the test suite checks). *)

val witness : History.t -> Witness.t option
val check : History.t -> bool
val model : Model.t
