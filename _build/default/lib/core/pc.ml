module Rel = Smem_relation.Rel

let witness h =
  let nops = History.nops h in
  let empty = Rel.create nops in
  let found = ref None in
  let _ : bool =
    Reads_from.iter h ~f:(fun rf ->
        Coherence.iter h ~f:(fun co ->
            let sem = Orders.sem h ~rf ~co in
            let views =
              List.init (History.nprocs h) (fun p ->
                  { Engine.proc = p; ops = History.view_ops_writes h p; order = sem })
            in
            match Engine.check h ~rf ~co ~extra:empty ~views with
            | Some w ->
                found := Some w;
                true
            | None -> false))
  in
  !found

let check h = Option.is_some (witness h)

let model =
  Model.make ~key:"pc" ~name:"Processor Consistency (DASH)"
    ~description:
      "Per-processor views of own operations plus all writes; coherence as \
       mutual consistency; semi-causality (ppo + remote writes-before + \
       remote reads-before) as the ordering requirement."
    witness
