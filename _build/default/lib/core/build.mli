(** Composing memory models from the paper's three parameters.

    §2 characterizes a memory by (1) the set of operations in each
    processor's view, (2) the mutual-consistency requirement across
    views, and (3) the ordering each view must respect — and §7 points
    out that varying the parameters {e identifies new memories}.  This
    module is that claim as a function: pick a value for each parameter
    and get a {!Model.t} with the same decision machinery as the
    built-in models.

    Every unlabeled built-in model is reproducible by composition (a
    property the test suite checks):

    - SC        = [make ~operations:`All_ops ~mutual:`Total_agreement ~orderings:[`Po]]
    - TSO       = [make ~operations:`Writes_of_others ~mutual:`Global_write_order ~orderings:[`Ppo]]
    - PC        = [make ~operations:`Writes_of_others ~mutual:`Coherence ~orderings:[`Semi_causal]]
    - PC-G      = [make ~operations:`Writes_of_others ~mutual:`Coherence ~orderings:[`Po]]
    - Causal    = [make ~operations:`Writes_of_others ~mutual:`No_agreement ~orderings:[`Causal]]
    - PRAM      = [make ~operations:`Writes_of_others ~mutual:`No_agreement ~orderings:[`Po]]
    - Slow      = [make ~operations:`Writes_of_others ~mutual:`No_agreement ~orderings:[`Own_po; `Po_loc]]
    - Local     = [make ~operations:`Writes_of_others ~mutual:`No_agreement ~orderings:[`Own_po]] *)

type operations =
  [ `All_ops  (** [δ_p = a]: every operation of every processor *)
  | `Writes_of_others  (** [δ_p = w]: own operations plus others' writes *) ]

type mutual =
  [ `No_agreement
  | `Coherence  (** shared per-location write order *)
  | `Global_write_order  (** shared total order on all writes (TSO) *)
  | `Total_agreement
    (** one shared view of all operations; requires [`All_ops] *) ]

type ordering =
  [ `Po  (** program order of every processor *)
  | `Ppo  (** partial program order (reads bypass earlier writes) *)
  | `Po_loc  (** per-location program order *)
  | `Own_po  (** the view owner's program order only *)
  | `Causal  (** [(po ∪ wb)+] for the enumerated reads-from map *)
  | `Semi_causal  (** PC's [(ppo ∪ rwb ∪ rrb)+]; requires a coherence witness *) ]

val make :
  key:string ->
  name:string ->
  ?description:string ->
  operations:operations ->
  mutual:mutual ->
  orderings:ordering list ->
  unit ->
  Model.t
(** Compose a model.  The view ordering requirement is the union of
    [orderings].
    @raise Invalid_argument when [`Total_agreement] is combined with
    [`Writes_of_others], or [`Semi_causal] with [`No_agreement] (the
    remote reads-before order needs a coherence witness). *)

val parse_operations : string -> (operations, string) result
val parse_mutual : string -> (mutual, string) result
val parse_ordering : string -> (ordering, string) result
(** Parsers for the CLI spellings ([all]/[writes]; [none]/[coherence]/
    [global-writes]/[total]; [po]/[ppo]/[po-loc]/[own-po]/[causal]/
    [semi-causal]). *)
