(** Memory operations — the events of the paper's framework.

    An operation is a read or a write by a processor, on a location,
    with a value.  Operations carry an {e attribute} distinguishing
    ordinary accesses from the {e labeled} (synchronization) accesses of
    release consistency: a labeled read is an {e acquire}, a labeled
    write a {e release}.  Every operation of a history has a dense
    identifier [id] (its index in the history's operation array) and an
    [index] giving its position in its processor's program. *)

type kind = Read | Write

type attr = Ordinary | Labeled

type t = {
  id : int;  (** dense identifier within the enclosing history *)
  proc : int;  (** issuing processor, [0 ..] *)
  index : int;  (** position in the processor's program order, [0 ..] *)
  kind : kind;
  loc : int;  (** interned location *)
  value : int;
  attr : attr;
}

val is_read : t -> bool
val is_write : t -> bool
val is_labeled : t -> bool
val is_ordinary : t -> bool

val is_acquire : t -> bool
(** A labeled read. *)

val is_release : t -> bool
(** A labeled write. *)

val same_proc : t -> t -> bool
val same_loc : t -> t -> bool

val pp : loc_name:(int -> string) -> Format.formatter -> t -> unit
(** Print in the paper's notation, e.g. [w_p0(x)1] or [r_p2(y)0]; labeled
    operations are starred: [w*_p0(s)1]. *)

val to_string : loc_name:(int -> string) -> t -> string
