(** Coherence orders: per-location total orders on writes.

    Coherence is the paper's canonical mutual-consistency requirement
    (§2, parameter 2): all writes to a given location appear in the same
    order in every processor view.  The checkers existentially quantify
    over coherence orders; this module enumerates them, pruned by any
    relation the order must already respect (by default each processor's
    program order on its own writes to the location — any coherence
    order violating it would make every view cyclic, since views also
    respect at least that much of program order). *)

type t

val position : t -> int -> int
(** [position co w] is [w]'s rank in the coherence order of its
    location (0-based).  [w] must be a write. *)

val precedes : t -> int -> int -> bool
(** [precedes co w1 w2] — both writes, same location, [w1] strictly
    before [w2]. *)

val writes_in_order : t -> int -> int array
(** [writes_in_order co loc] — the writes to [loc] in coherence order. *)

val to_rel : t -> Smem_relation.Rel.t
(** All [(w1, w2)] pairs with [w1] coherence-before [w2]. *)

val successors_from : t -> int -> int list
(** [successors_from co w] — the writes strictly after [w] in its
    location's coherence order. *)

val of_write_order : History.t -> int array -> t
(** [of_write_order h ws] builds the coherence order induced by a total
    order [ws] on {e all} writes of the history (used by the TSO
    checker, whose mutual-consistency witness is a single global write
    serialization). *)

val iter :
  ?respect:(int -> int -> bool) -> History.t -> f:(t -> bool) -> bool
(** Enumerate coherence orders as the product of per-location
    constrained permutations.  [respect w1 w2] forces [w1] before [w2]
    (default: same-processor program order per location).  Early-exit
    protocol: returns [true] as soon as [f] accepts. *)

val pp : History.t -> Format.formatter -> t -> unit
