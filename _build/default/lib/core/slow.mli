(** Slow memory (Hutto and Ahamad): per-processor views of own
    operations plus all writes, required to respect only the view
    owner's program order and each processor's per-location write
    order.  Weaker than PRAM; included as a lattice extension (§7 of the
    paper invites identifying further memories in the framework). *)

val witness : History.t -> Witness.t option
val check : History.t -> bool
val model : Model.t
