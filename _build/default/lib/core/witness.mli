(** Witnesses: the per-processor views demonstrating that a history is
    allowed by a model.  A witness is what the paper exhibits when
    arguing an execution is possible (e.g. the [S_{p+w}] sequences given
    for Figures 1–4). *)

type t = {
  views : (int * int list) list;
      (** (processor, operation ids in view order), one entry per view;
          a single entry with processor [-1] denotes the shared view of
          sequential consistency. *)
  notes : string list;  (** human-readable facts about the witness *)
}

val shared : int list -> notes:string list -> t
(** A single shared view (sequential consistency). *)

val per_proc : (int * int list) list -> notes:string list -> t

val pp : History.t -> Format.formatter -> t -> unit
