(** Processor consistency as defined by Gharachorloo et al. for DASH,
    §3.3 of the paper.

    Views contain the processor's operations plus all writes of others
    ([δ_p = w]); mutual consistency is {e coherence} (a per-location
    total write order shared by all views); the ordering requirement is
    the {e semi-causality} relation [→sem = (ppo ∪ rwb ∪ rrb)+]. *)

val witness : History.t -> Witness.t option
val check : History.t -> bool
val model : Model.t
