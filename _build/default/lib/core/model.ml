type t = {
  key : string;
  name : string;
  description : string;
  witness : History.t -> Witness.t option;
}

let make ~key ~name ~description witness = { key; name; description; witness }

let check t h = Option.is_some (t.witness h)
