module Bitset = Smem_relation.Bitset

type t = {
  ops : Op.t array;
  nprocs : int;
  nlocs : int;
  loc_names : string array;
  by_proc : int array array;
  timing : (int * int) option array;  (* indexed by op id *)
}

type event = {
  e_kind : Op.kind;
  e_loc : string;
  e_value : int;
  e_attr : Op.attr;
  e_at : (int * int) option;
}

let attr_of_labeled labeled = if labeled then Op.Labeled else Op.Ordinary

let check_interval = function
  | Some (s, f) when s > f -> invalid_arg "History: interval start after finish"
  | at -> at

let read ?(labeled = false) ?at loc value =
  {
    e_kind = Op.Read;
    e_loc = loc;
    e_value = value;
    e_attr = attr_of_labeled labeled;
    e_at = check_interval at;
  }

let write ?(labeled = false) ?at loc value =
  {
    e_kind = Op.Write;
    e_loc = loc;
    e_value = value;
    e_attr = attr_of_labeled labeled;
    e_at = check_interval at;
  }

let make rows =
  if rows = [] then invalid_arg "History.make: no processors";
  let interned = Hashtbl.create 8 in
  let names = ref [] in
  let nlocs = ref 0 in
  let intern name =
    match Hashtbl.find_opt interned name with
    | Some i -> i
    | None ->
        let i = !nlocs in
        Hashtbl.add interned name i;
        names := name :: !names;
        incr nlocs;
        i
  in
  let ops = ref [] in
  let timing = ref [] in
  let next_id = ref 0 in
  let by_proc =
    List.mapi
      (fun proc row ->
        List.mapi
          (fun index e ->
            let id = !next_id in
            incr next_id;
            let op =
              {
                Op.id;
                proc;
                index;
                kind = e.e_kind;
                loc = intern e.e_loc;
                value = e.e_value;
                attr = e.e_attr;
              }
            in
            ops := op :: !ops;
            timing := e.e_at :: !timing;
            id)
          row)
      rows
  in
  {
    ops = Array.of_list (List.rev !ops);
    nprocs = List.length rows;
    nlocs = !nlocs;
    loc_names = Array.of_list (List.rev !names);
    by_proc = Array.of_list (List.map Array.of_list by_proc);
    timing = Array.of_list (List.rev !timing);
  }

let of_ops ~nprocs ~loc_names ops =
  let ops = Array.of_list ops in
  Array.iteri
    (fun i (op : Op.t) ->
      if op.Op.id <> i then invalid_arg "History.of_ops: ids must be dense";
      if op.Op.proc < 0 || op.Op.proc >= nprocs then
        invalid_arg "History.of_ops: processor out of range";
      if op.Op.loc < 0 || op.Op.loc >= Array.length loc_names then
        invalid_arg "History.of_ops: location out of range")
    ops;
  let by_proc =
    Array.init nprocs (fun p ->
        let mine =
          Array.to_list ops
          |> List.filter (fun (o : Op.t) -> o.Op.proc = p)
          |> List.sort (fun (a : Op.t) b -> compare a.Op.index b.Op.index)
        in
        List.iteri
          (fun i (o : Op.t) ->
            if o.Op.index <> i then
              invalid_arg "History.of_ops: per-processor indices must be dense")
          mine;
        Array.of_list (List.map (fun (o : Op.t) -> o.Op.id) mine))
  in
  {
    ops;
    nprocs;
    nlocs = Array.length loc_names;
    loc_names;
    by_proc;
    timing = Array.make (Array.length ops) None;
  }

let init = -1

let interval t id = t.timing.(id)

let has_timing t = Array.exists Option.is_some t.timing

let nops t = Array.length t.ops
let nprocs t = t.nprocs
let nlocs t = t.nlocs
let op t id = t.ops.(id)
let ops t = t.ops
let loc_name t l = t.loc_names.(l)

let loc_of_name t name =
  let found = ref None in
  Array.iteri (fun i n -> if n = name then found := Some i) t.loc_names;
  !found

let proc_ops t p = t.by_proc.(p)

let select t pred =
  Array.to_list t.ops |> List.filter pred |> List.map (fun (o : Op.t) -> o.Op.id)

let reads t = select t Op.is_read
let writes t = select t Op.is_write
let writes_to t loc = select t (fun o -> Op.is_write o && o.Op.loc = loc)
let labeled t = select t Op.is_labeled
let has_labeled t = labeled t <> []

let all_ops_set t = Bitset.of_list (nops t) (List.init (nops t) Fun.id)

let view_ops_writes t p =
  let set = Bitset.create (nops t) in
  Array.iter
    (fun (o : Op.t) ->
      if o.Op.proc = p || Op.is_write o then Bitset.add set o.Op.id)
    t.ops;
  set

let pp ppf t =
  let loc_name l = t.loc_names.(l) in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun p row ->
      Format.fprintf ppf "p%d:" p;
      Array.iter (fun id -> Format.fprintf ppf " %a" (Op.pp ~loc_name) t.ops.(id)) row;
      if p < t.nprocs - 1 then Format.fprintf ppf "@,")
    t.by_proc;
  Format.fprintf ppf "@]"

let pp_ops t ppf ids =
  let loc_name l = t.loc_names.(l) in
  Format.fprintf ppf "@[<hov>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
       (fun ppf id -> Op.pp ~loc_name ppf t.ops.(id)))
    ids
