type t = { views : (int * int list) list; notes : string list }

let shared seq ~notes = { views = [ (-1, seq) ]; notes }

let per_proc views ~notes = { views; notes }

let pp h ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (p, seq) ->
      if p < 0 then Format.fprintf ppf "S (shared): %a@," (History.pp_ops h) seq
      else Format.fprintf ppf "S_p%d: %a@," p (History.pp_ops h) seq)
    t.views;
  List.iter (fun note -> Format.fprintf ppf "note: %s@," note) t.notes;
  Format.fprintf ppf "@]"
