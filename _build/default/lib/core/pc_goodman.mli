(** Processor consistency in Goodman's sense [9], as formalized by
    Ahamad et al. [2]: PRAM plus coherence.  §3.3 of the paper notes
    that this definition and the DASH definition are distinct and
    incomparable; we provide both so the lattice module can verify
    that. *)

val witness : History.t -> Witness.t option
val check : History.t -> bool
val model : Model.t
