module Bitset = Smem_relation.Bitset
module Rel = Smem_relation.Rel
module Perm = Smem_relation.Perm

type operations = [ `All_ops | `Writes_of_others ]

type mutual =
  [ `No_agreement | `Coherence | `Global_write_order | `Total_agreement ]

type ordering = [ `Po | `Ppo | `Po_loc | `Own_po | `Causal | `Semi_causal ]

let needs_rf orderings =
  List.exists (fun o -> o = `Causal || o = `Semi_causal) orderings

(* Resolve the ordering union for one processor's view, given the
   enumeration witnesses in scope. *)
let resolve_order h ~orderings ~proc ~rf ~co =
  let nops = History.nops h in
  let acc = Rel.create nops in
  List.iter
    (fun o ->
      let rel =
        match o with
        | `Po -> Orders.po h
        | `Ppo -> Orders.ppo h
        | `Po_loc -> Orders.po_loc h
        | `Own_po -> Orders.po_of_proc h proc
        | `Causal -> Orders.causal h ~rf:(Option.get rf)
        | `Semi_causal -> Orders.sem h ~rf:(Option.get rf) ~co:(Option.get co)
      in
      Rel.union_into ~into:acc rel)
    orderings;
  acc

let view_ops h operations proc =
  match operations with
  | `All_ops -> History.all_ops_set h
  | `Writes_of_others -> History.view_ops_writes h proc

let write_po h w1 w2 =
  let o1 = History.op h w1 and o2 = History.op h w2 in
  Op.same_proc o1 o2 && o1.Op.index < o2.Op.index

let chain_rel nops order =
  let rel = Rel.create nops in
  for i = 0 to Array.length order - 2 do
    Rel.add rel order.(i) order.(i + 1)
  done;
  rel

let witness ~operations ~mutual ~orderings h =
  let nops = History.nops h in
  let nprocs = History.nprocs h in
  let found = ref None in
  let engine_a ~rf ~co ~extra =
    let views =
      match mutual with
      | `Total_agreement ->
          [
            {
              Engine.proc = -1;
              ops = History.all_ops_set h;
              order = resolve_order h ~orderings ~proc:(-1) ~rf:(Some rf) ~co:(Some co);
            };
          ]
      | _ ->
          List.init nprocs (fun p ->
              {
                Engine.proc = p;
                ops = view_ops h operations p;
                order =
                  resolve_order h ~orderings ~proc:p ~rf:(Some rf) ~co:(Some co);
              })
    in
    match Engine.check h ~rf ~co ~extra ~views with
    | Some w ->
        found := Some w;
        true
    | None -> false
  in
  let _ : bool =
    match mutual with
    | `No_agreement ->
        (* Independent views: engine B, with reads-from enumeration only
           when an ordering needs it. *)
        let attempt rf =
          let rec go p acc =
            if p = nprocs then begin
              found := Some (Witness.per_proc (List.rev acc) ~notes:[]);
              true
            end
            else
              let order = resolve_order h ~orderings ~proc:p ~rf ~co:None in
              if not (Rel.acyclic order) then false
              else
                match
                  View.exists h ~ops:(view_ops h operations p) ~order
                    ~legality:View.By_value
                with
                | None -> false
                | Some seq -> go (p + 1) ((p, seq) :: acc)
          in
          go 0 []
        in
        if needs_rf orderings then Reads_from.iter h ~f:(fun rf -> attempt (Some rf))
        else attempt None
    | `Coherence | `Total_agreement ->
        Reads_from.iter h ~f:(fun rf ->
            Coherence.iter h ~f:(fun co ->
                engine_a ~rf ~co ~extra:(Rel.create nops)))
    | `Global_write_order ->
        let writes = Array.of_list (History.writes h) in
        Reads_from.iter h ~f:(fun rf ->
            Perm.iter_constrained writes ~precedes:(write_po h) ~f:(fun worder ->
                let co = Coherence.of_write_order h worder in
                engine_a ~rf ~co ~extra:(chain_rel nops worder)))
  in
  !found

let make ~key ~name ?description ~operations ~mutual ~orderings () =
  if mutual = `Total_agreement && operations <> `All_ops then
    invalid_arg "Build.make: total agreement requires all operations in views";
  if List.mem `Semi_causal orderings && mutual = `No_agreement then
    invalid_arg "Build.make: semi-causality needs a coherence witness";
  let description =
    match description with
    | Some d -> d
    | None ->
        Printf.sprintf "composed model: operations=%s, mutual=%s, ordering=%s"
          (match operations with `All_ops -> "all" | `Writes_of_others -> "writes")
          (match mutual with
          | `No_agreement -> "none"
          | `Coherence -> "coherence"
          | `Global_write_order -> "global-writes"
          | `Total_agreement -> "total")
          (String.concat "+"
             (List.map
                (function
                  | `Po -> "po"
                  | `Ppo -> "ppo"
                  | `Po_loc -> "po-loc"
                  | `Own_po -> "own-po"
                  | `Causal -> "causal"
                  | `Semi_causal -> "semi-causal")
                orderings))
  in
  Model.make ~key ~name ~description (witness ~operations ~mutual ~orderings)

let parse_operations = function
  | "all" -> Ok `All_ops
  | "writes" -> Ok `Writes_of_others
  | s -> Error (Printf.sprintf "unknown operation set %S (all | writes)" s)

let parse_mutual = function
  | "none" -> Ok `No_agreement
  | "coherence" -> Ok `Coherence
  | "global-writes" -> Ok `Global_write_order
  | "total" -> Ok `Total_agreement
  | s ->
      Error
        (Printf.sprintf
           "unknown mutual consistency %S (none | coherence | global-writes | total)"
           s)

let parse_ordering = function
  | "po" -> Ok `Po
  | "ppo" -> Ok `Ppo
  | "po-loc" -> Ok `Po_loc
  | "own-po" -> Ok `Own_po
  | "causal" -> Ok `Causal
  | "semi-causal" -> Ok `Semi_causal
  | s ->
      Error
        (Printf.sprintf
           "unknown ordering %S (po | ppo | po-loc | own-po | causal | semi-causal)"
           s)
