(* Incremental transitive closure, maintained under edge insertion.

   The solver's propagators ask "does u already reach v?" once per
   candidate edge, so reachability must be O(1); and backtracking search
   undoes whole blocks of insertions at once, so state capture must be a
   plain copy rather than an operation log.  Rows are bitsets: inserting
   (u, v) unions v's successor row into every predecessor of u — the
   classical Italiano scheme restricted to insertions, O(n^2/w) per
   effective edge. *)

type t = {
  n : int;
  fwd : Bitset.t array;  (* fwd.(u): all v with u ->+ v (strict) *)
  bwd : Bitset.t array;  (* bwd.(v): all u with u ->+ v *)
}

type snapshot = { s_fwd : Bitset.t array; s_bwd : Bitset.t array }

let create n =
  {
    n;
    fwd = Array.init (max 1 n) (fun _ -> Bitset.create n);
    bwd = Array.init (max 1 n) (fun _ -> Bitset.create n);
  }

let size t = t.n

let reaches t u v = Bitset.mem t.fwd.(u) v

let add t u v =
  if u = v || reaches t u v then ()
  else begin
    (* Everything reaching u (plus u) now reaches everything v reaches
       (plus v).  Iterate predecessors with the watched-index scan. *)
    let patch p =
      Bitset.union_into ~into:t.fwd.(p) t.fwd.(v);
      Bitset.add t.fwd.(p) v
    in
    patch u;
    Bitset.iter_from patch t.bwd.(u) 0;
    let patch_back s =
      Bitset.union_into ~into:t.bwd.(s) t.bwd.(u);
      Bitset.add t.bwd.(s) u
    in
    patch_back v;
    Bitset.iter_from patch_back t.fwd.(v) 0
  end

let of_rel r =
  let n = Rel.size r in
  let t = create n in
  let closed = Rel.transitive_closure r in
  Rel.iter_pairs
    (fun a b ->
      if a <> b then begin
        Bitset.add t.fwd.(a) b;
        Bitset.add t.bwd.(b) a
      end)
    closed;
  t

let succ t u = t.fwd.(u)
let pred t v = t.bwd.(v)

let snapshot t =
  { s_fwd = Array.map Bitset.copy t.fwd; s_bwd = Array.map Bitset.copy t.bwd }

let restore t s =
  Array.iteri
    (fun i row ->
      Bitset.clear t.fwd.(i);
      Bitset.union_into ~into:t.fwd.(i) row)
    s.s_fwd;
  Array.iteri
    (fun i row ->
      Bitset.clear t.bwd.(i);
      Bitset.union_into ~into:t.bwd.(i) row)
    s.s_bwd
