(** Incrementally maintained transitive closure.

    The constraint-propagation engine ({!Smem_solve}) decides one rf or
    co variable at a time and needs, after every decision, constant-time
    answers to "does [u] already reach [v]?" over the growing view
    graphs — that is what detects cycles (conflicts) and filters
    candidate domains.  This structure keeps, for every node, the bitset
    of its strict descendants and ancestors, updated on edge insertion
    by the insertions-only Italiano scheme: O(n²/w) per edge that
    actually adds reachability, O(1) when the edge was already implied.

    Deletion is not supported; backtracking search undoes insertions by
    {!snapshot}/{!restore}, a plain row copy. *)

type t

type snapshot

val create : int -> t
(** [create n] — the empty (edge-free) closure over nodes [0 .. n-1]. *)

val of_rel : Rel.t -> t
(** Closure of an existing relation (self-loops are dropped: the
    structure tracks {e strict} reachability; cycle detection is the
    caller asking {!reaches}[ t v u] before inserting [(u, v)]). *)

val size : t -> int

val reaches : t -> int -> int -> bool
(** [reaches t u v] — is there a nonempty path from [u] to [v]? *)

val add : t -> int -> int -> unit
(** [add t u v] inserts edge [(u, v)] and restores closure.  Inserting
    an edge with [reaches t v u] true creates a cycle the structure
    cannot represent — callers must test first. *)

val succ : t -> int -> Bitset.t
(** The strict-descendant row of a node.  Exposed read-only for the
    watched-index scans ({!Bitset.next}); mutating it corrupts the
    closure. *)

val pred : t -> int -> Bitset.t

val snapshot : t -> snapshot
(** Capture the current reachability state (a deep row copy). *)

val restore : t -> snapshot -> unit
(** Rewind to a captured state, discarding every insertion since. *)
