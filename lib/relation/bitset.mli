(** Fixed-capacity sets of small integers backed by a packed [int] array.

    A [Bitset.t] holds elements drawn from [0 .. capacity - 1].  All
    operations besides {!copy}, {!union}, {!inter} and {!diff} mutate the
    set in place; the latter allocate a fresh set.  Capacity is fixed at
    creation time and operations over two sets require equal capacities. *)

type t

val create : int -> t
(** [create capacity] is the empty set over [0 .. capacity - 1].
    @raise Invalid_argument if [capacity < 0]. *)

val capacity : t -> int
(** Number of distinct elements the set can hold. *)

val mem : t -> int -> bool
(** [mem s i] tests membership.  [i] must be within capacity. *)

val add : t -> int -> unit
(** [add s i] inserts [i]. *)

val remove : t -> int -> unit
(** [remove s i] deletes [i]; no-op when absent. *)

val clear : t -> unit
(** Remove every element. *)

val is_empty : t -> bool

val cardinal : t -> int
(** Number of elements currently in the set. *)

val copy : t -> t

val union : t -> t -> t
(** [union a b] is a fresh set; [a] and [b] are unchanged. *)

val inter : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is the set of elements of [a] not in [b]. *)

val union_into : into:t -> t -> unit
(** [union_into ~into s] adds every element of [s] to [into]. *)

val subset : t -> t -> bool
(** [subset a b] is [true] when every element of [a] is in [b]. *)

val equal : t -> t -> bool

val iter : (int -> unit) -> t -> unit
(** Iterate elements in increasing order. *)

val next : t -> int -> int
(** [next s i] is the smallest member [>= i], or [-1] when there is
    none.  The watched-index primitive: callers that remember where the
    previous scan stopped resume from it instead of rescanning the
    whole set (constraint propagation in [Smem_solve] iterates
    successor rows this way). *)

val iter_from : (int -> unit) -> t -> int -> unit
(** [iter_from f s i] applies [f] to every member [>= i] in increasing
    order, via {!next}. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list
(** Elements in increasing order. *)

val of_list : int -> int list -> t
(** [of_list capacity xs] builds a set containing [xs]. *)

val pp : Format.formatter -> t -> unit
