type t = { capacity : int; words : int array }

let bits_per_word = Sys.int_size

let words_for capacity = (capacity + bits_per_word - 1) / bits_per_word

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity; words = Array.make (max 1 (words_for capacity)) 0 }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

(* Kernighan popcount: adequate for the small universes used here. *)
let popcount word =
  let rec loop acc w = if w = 0 then acc else loop (acc + 1) (w land (w - 1)) in
  loop 0 word

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let copy t = { t with words = Array.copy t.words }

let same_capacity a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

let map2 f a b =
  same_capacity a b;
  { capacity = a.capacity; words = Array.map2 f a.words b.words }

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let union_into ~into s =
  same_capacity into s;
  Array.iteri (fun i w -> into.words.(i) <- into.words.(i) lor w) s.words

let subset a b =
  same_capacity a b;
  let ok = ref true in
  Array.iteri (fun i w -> if w land lnot b.words.(i) <> 0 then ok := false) a.words;
  !ok

let equal a b =
  same_capacity a b;
  Array.for_all2 ( = ) a.words b.words

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

(* Watched-index iteration: find the first member at or after a given
   index without rescanning the words below it.  The solver's
   propagation loops keep a per-row watch and resume from it, so a scan
   over a sparse row costs O(words after the watch) instead of
   O(capacity). *)
let next t i =
  if i >= t.capacity then -1
  else begin
    let i = max 0 i in
    let w = ref (i / bits_per_word) in
    let nwords = Array.length t.words in
    (* Mask off the bits below [i] in its word, then skip empty words. *)
    let word = ref (t.words.(!w) land lnot ((1 lsl (i mod bits_per_word)) - 1)) in
    while !word = 0 && !w < nwords - 1 do
      incr w;
      word := t.words.(!w)
    done;
    if !word = 0 then -1
    else begin
      (* Lowest set bit of the word. *)
      let bit = !word land - !word in
      let b = ref 0 in
      while bit lsr !b <> 1 do
        incr b
      done;
      let r = (!w * bits_per_word) + !b in
      if r >= t.capacity then -1 else r
    end
  end

let iter_from f t i =
  let j = ref (next t i) in
  while !j >= 0 do
    f !j;
    j := next t (!j + 1)
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity xs =
  let t = create capacity in
  List.iter (add t) xs;
  t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (elements t)
