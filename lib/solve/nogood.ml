(* Learned nogoods over reads-from assignments.

   A nogood is a set of (read, writer) pairs that cannot all hold
   together: some conflict cycle was built from exactly the edges those
   assignments induce (plus static order, which always holds).  The
   store is indexed by pair so that the only question the search ever
   asks — "would assigning this pair complete a nogood whose other
   pairs are already assigned?" — costs a scan of the nogoods
   containing that pair, not of the whole store. *)

type t = {
  index : (int * int, (int * int) array list ref) Hashtbl.t;
  seen : ((int * int) array, unit) Hashtbl.t;
  mutable count : int;
}

let create () = { index = Hashtbl.create 64; seen = Hashtbl.create 64; count = 0 }

let clear t =
  Hashtbl.reset t.index;
  Hashtbl.reset t.seen;
  t.count <- 0

let size t = t.count

let learn t pairs =
  let ng = Array.of_list (List.sort_uniq compare pairs) in
  if Array.length ng = 0 || Hashtbl.mem t.seen ng then false
  else begin
    Hashtbl.add t.seen ng ();
    t.count <- t.count + 1;
    Array.iter
      (fun p ->
        match Hashtbl.find_opt t.index p with
        | Some l -> l := ng :: !l
        | None -> Hashtbl.add t.index p (ref [ ng ]))
      ng;
    true
  end

let blocks t ~assigned ((r, w) as p) =
  match Hashtbl.find_opt t.index p with
  | None -> false
  | Some l ->
      List.exists
        (fun ng ->
          Array.for_all
            (fun (r', w') -> (r' = r && w' = w) || assigned r' w')
            ng)
        !l
