(** The constraint-propagation witness engine.

    A drop-in alternative to the models' own enumeration of complete
    reads-from × coherence candidates: legality is decided by a
    backtracking search over {e individual} variables — one writer per
    read, one position per write, one slot per labeled operation — with
    each decision propagated into incrementally maintained transitive
    closures ({!Smem_relation.Closure}) of the per-view ordering
    obligations.  A cycle closed during propagation refutes every
    completion of the current partial assignment at once; cycles found
    while deciding reads-from variables are additionally distilled into
    {!Nogood}s that keep pruning for the rest of the search (and, via
    {!Inc}, across re-checks of an extended history).

    Verdicts are equivalent to the enumerator's by construction:
    propagation only prunes candidates the model's own per-candidate
    check would reject, and every fully assigned candidate is validated
    by that same check (the leaf shares the enumerators' code —
    {!Smem_core.Engine.check}, {!Smem_core.View.exists}, the helpers
    exposed by the model modules).  Witnesses are built by the same
    constructors, so certificates extracted from solver runs remain
    kernel-checkable.  The differential fuzz oracle
    ([Smem_fuzz.Oracle.engines]) tests the equivalence continuously. *)

val witness : Smem_core.Model.t -> Smem_core.History.t -> Smem_core.Witness.t option
(** The solver's witness search.  Falls back to the model's own witness
    function when the model declares no parameter triple (or a triple
    no registered model carries). *)

val check : Smem_core.Model.t -> Smem_core.History.t -> bool

val install : unit -> unit
(** Register {!witness} as the [Solve] engine
    ({!Smem_core.Model.register_solver}); after
    [Smem_core.Model.set_engine Solve], every
    {!Smem_core.Model.check}/[witness_of] call routes through it. *)

(** Incremental re-checking: a session that re-checks a history after
    each appended operation keeps one [Inc.t] per model and reuses the
    learned nogoods whenever the new history is an extension of the
    previous one (same operations, ids preserved — which
    {!Smem_core.History.make}'s row-major id assignment guarantees for
    appends).  Nogoods mention only static program-order structure and
    reads-from assignments over existing operations, so they stay valid
    under extension; anything else resets the store. *)
module Inc : sig
  type t

  val create : Smem_core.Model.t -> t

  val witness : t -> Smem_core.History.t -> Smem_core.Witness.t option
  val check : t -> Smem_core.History.t -> bool

  val nogoods : t -> int
  (** Nogoods currently stored. *)

  val reuses : t -> int
  (** How many calls reused the store (the history extended the
      previous one). *)
end
