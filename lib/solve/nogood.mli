(** A store of learned nogoods: sets of (read, writer) reads-from
    assignments that are jointly infeasible.

    Nogoods are extracted from conflict cycles during the rf phase of
    the constraint search.  Because every edge of such a cycle is either
    static program-order structure (which persists when a history is
    extended by appended operations) or induced by one of the named
    assignments, a learned nogood stays valid both for the rest of the
    current search {e and} for any extension of the history that leaves
    the existing operations unchanged — which is what makes the
    incremental mode's store reuse sound. *)

type t

val create : unit -> t

val clear : t -> unit
(** Drop every nogood (used when an incremental store's history is
    replaced rather than extended). *)

val size : t -> int

val learn : t -> (int * int) list -> bool
(** Record a nogood; returns [true] when it was new (duplicates are
    dropped).  The empty list is ignored. *)

val blocks : t -> assigned:(int -> int -> bool) -> int * int -> bool
(** [blocks t ~assigned (r, w)] — would assigning writer [w] to read
    [r] complete some stored nogood, given that [assigned r' w'] tells
    whether the pair [(r', w')] is currently assigned? *)
