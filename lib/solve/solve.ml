(* The constraint-propagation witness engine.

   The enumerator answers "is there a legal view?" by walking the full
   cartesian product of reads-from maps and coherence orders and running
   the acyclicity/legality check on every complete candidate.  This
   engine searches the same candidate space one variable at a time —
   first a writer per read, then (where the model requires them) a
   synchronization order and per-location/global write orders — and
   after every decision propagates its consequences into incrementally
   closed view graphs (Smem_relation.Closure).  A cycle in a view graph
   refutes the whole subtree under the current partial assignment, so
   conflicts prune exponentially many complete candidates at once;
   conflicts found during the rf phase are additionally distilled into
   nogoods (Nogood) reused across the rest of the search and, in the
   incremental mode, across appended-history re-checks.

   Correctness strategy: propagation only ever *prunes* — every edge it
   inserts is implied, for every completion of the current partial
   assignment, by the model's own candidate check (or by a sibling
   candidate's rejection, see the forced-coherence argument below) — and
   each fully assigned candidate is validated by a leaf check that is
   the model's own per-candidate code, sharing its definitions
   (Engine.check, View.exists, Rc.bracket_edges, ...).  Sound pruning
   over the same exhaustively searched space, with the same acceptance
   test at the leaves, gives verdict equivalence with the enumerator by
   construction; the differential fuzz oracle then tests what the
   argument claims. *)

module Bitset = Smem_relation.Bitset
module Rel = Smem_relation.Rel
module Closure = Smem_relation.Closure
module Perm = Smem_relation.Perm
module H = Smem_core.History
module Op = Smem_core.Op
module Model = Smem_core.Model
module Orders = Smem_core.Orders
module Engine = Smem_core.Engine
module View = Smem_core.View
module Witness = Smem_core.Witness
module Reads_from = Smem_core.Reads_from
module Coherence = Smem_core.Coherence
module Stats = Smem_core.Stats

exception Unsupported
(* A parameter triple no registered model carries; the caller falls
   back to the model's own witness function. *)

(* ------------------------------------------------------------------ *)
(* What the parameter triple implies about the variable space          *)

type co_mode = Co_none | Co_per_loc | Co_global

let rf_needed (p : Model.params) =
  p.Model.legality = Model.Writer_legal
  || p.Model.ordering = Model.Causal_order
  || p.Model.ordering = Model.Causal_plus_coherence

let sync_needed (p : Model.params) =
  match p.Model.mutual with
  | Model.Labeled_sc | Model.Labeled_total -> true
  | _ -> false

let co_mode (p : Model.params) =
  match p.Model.mutual with
  | Model.Global_write_order -> Co_global
  | _ -> (
      match p.Model.ordering with
      | Model.Session _ ->
          (* Session views need not agree on any write order — two views
             may serialize the same writes oppositely.  Enumerating a
             shared order and propagating its chain into every view
             graph would refute exactly those legitimate disagreements,
             so the coherence phase is skipped outright (the leaf check
             never consults it). *)
          Co_none
      | _ ->
          if
            p.Model.legality = Model.Writer_legal
            || p.Model.mutual = Model.Coherence_agreement
          then Co_per_loc
          else Co_none)

(* Models whose candidate filter is a *global* acyclicity/irreflexivity
   condition (causal, coherent causal, PC-Goodman) propagate into one
   shared graph; all others into one graph per view, because only a
   cycle *within a view's operations* refutes a candidate there. *)
let global_scope (p : Model.params) =
  match p.Model.ordering with
  | Model.Causal_order | Model.Causal_plus_coherence -> true
  | Model.Program_order ->
      (* PC-G's global acyclic(po ∪ co) check; partition consistency
         (Per_proc_block) deliberately has no such global condition. *)
      p.Model.population = Model.Own_plus_writes
      && p.Model.mutual = Model.Coherence_agreement
      && p.Model.legality = Model.Value_legal
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Static structure                                                    *)

(* The static (release) half of the RC bracket edges: ordinary
   operations program-order-before a release precede it.  The acquire
   half depends on the reads-from map and is propagated per decision. *)
let release_brackets h =
  let rel = Rel.create (H.nops h) in
  for q = 0 to H.nprocs h - 1 do
    let row = H.proc_ops h q in
    Array.iteri
      (fun i id ->
        if Op.is_release (H.op h id) then
          for j = 0 to i - 1 do
            if Op.is_ordinary (H.op h row.(j)) then Rel.add rel row.(j) id
          done)
      row
  done;
  rel

(* The rf-independent part of each view's required order — an
   under-approximation of the leaf order wherever the full order
   depends on the candidate (sem, causal, brackets), which is exactly
   what sound pruning needs. *)
let static_order h (p : Model.params) ~proc =
  match p.Model.ordering with
  | Model.Program_order -> Orders.po h
  | Model.Po_plus_real_time -> Rel.union (Orders.po h) (Orders.real_time h)
  | Model.Partial_program_order -> Orders.ppo h
  | Model.Own_program_order -> Orders.po_of_proc h proc
  | Model.Own_po_plus_po_loc ->
      Rel.union (Orders.po_of_proc h proc) (Orders.po_loc h)
  | Model.Semi_causal -> Orders.ppo h
  | Model.Own_ppo_bracketed ->
      Rel.union (Orders.ppo_of_proc h proc) (release_brackets h)
  | Model.Sync_fences ->
      Rel.union (Smem_core.Weak_ordering.fence_edges h) (Orders.po_loc h)
  | Model.Causal_order | Model.Causal_plus_coherence -> Orders.po h
  | Model.Session { ryw; mr; mw; wfr } ->
      (* The wfr half depends on the reads-from map; dropping it keeps
         this an under-approximation of the leaf order, which is all
         sound pruning needs. *)
      Smem_core.Session.edges h
        { Smem_core.Session.ryw; mr; mw; wfr }
        ~rf:None

type gview = {
  vproc : int;
  vops : Bitset.t;
  base : Rel.t; (* static ∪ propagated edges, un-closed *)
  cl : Closure.t; (* transitive closure of [base] *)
}

let make_gview h p ~proc ~ops =
  let base = Rel.restrict (static_order h p ~proc) ops in
  { vproc = proc; vops = ops; base; cl = Closure.of_rel base }

let prop_views h (p : Model.params) =
  let nops = H.nops h in
  if global_scope p then
    [| make_gview h p ~proc:(-1) ~ops:(H.all_ops_set h) |]
  else
    match p.Model.population with
    | Model.Shared_all ->
        [| make_gview h p ~proc:(-1) ~ops:(H.all_ops_set h) |]
    | Model.Per_location ->
        Array.init (H.nlocs h) (fun l ->
            let ops = Bitset.create nops in
            Array.iter
              (fun (o : Op.t) -> if o.Op.loc = l then Bitset.add ops o.Op.id)
              (H.ops h);
            make_gview h p ~proc:(-1) ~ops)
    | Model.Own_plus_writes ->
        Array.init (H.nprocs h) (fun q ->
            make_gview h p ~proc:q ~ops:(H.view_ops_writes h q))
    | Model.Per_proc_block { blocks } ->
        let views = ref [] in
        for q = H.nprocs h - 1 downto 0 do
          for b = blocks - 1 downto 0 do
            let ops =
              Smem_core.Pc_part.view_ops h
                ~in_block:(fun l -> l mod blocks = b)
                q
            in
            if not (Bitset.is_empty ops) then
              views := make_gview h p ~proc:q ~ops :: !views
          done
        done;
        Array.of_list !views
    | Model.Own_plus_updates ->
        (* Only object-legal models use this population, and those are
           rejected upfront ({!witness_params}). *)
        raise Unsupported

(* ------------------------------------------------------------------ *)
(* Search state                                                        *)

let unassigned = min_int

type frame = {
  snaps : Closure.snapshot array;
  mutable added : (int * int * int) list; (* (view, u, v) inserted *)
  mutable sups : (int * int * int) list; (* support entries recorded *)
}

type ctx = {
  h : H.t;
  params : Model.params;
  views : gview array;
  support : (int * int * int, int * int) Hashtbl.t;
  store : Nogood.t;
  writer : int array; (* read id -> writer id, [unassigned] otherwise *)
  forced0 : Rel.t; (* rf-independent forced coherence pairs *)
  mutable frames : frame list;
  mutable found : Witness.t option;
}

let push ctx =
  let fr =
    {
      snaps = Array.map (fun v -> Closure.snapshot v.cl) ctx.views;
      added = [];
      sups = [];
    }
  in
  ctx.frames <- fr :: ctx.frames;
  fr

let pop ctx =
  match ctx.frames with
  | [] -> invalid_arg "Solve: pop on empty trail"
  | fr :: rest ->
      ctx.frames <- rest;
      Array.iteri (fun i v -> Closure.restore v.cl fr.snaps.(i)) ctx.views;
      List.iter (fun (i, u, v) -> Rel.remove ctx.views.(i).base u v) fr.added;
      List.iter (fun key -> Hashtbl.remove ctx.support key) fr.sups

(* The conflict reason: walk one base-graph path closing the cycle and
   collect the (read, writer) supports of its propagated edges.  Static
   edges have no support and contribute nothing — they hold in every
   candidate — so the collected set alone is jointly infeasible. *)
let reason ctx i u v sup =
  let g = ctx.views.(i).base in
  let n = Rel.size g in
  let parent = Array.make (max 1 n) (-1) in
  parent.(v) <- v;
  let q = Queue.create () in
  Queue.add v q;
  while (not (Queue.is_empty q)) && parent.(u) < 0 do
    let a = Queue.pop q in
    Bitset.iter_from
      (fun b ->
        if parent.(b) < 0 then begin
          parent.(b) <- a;
          Queue.add b q
        end)
      (Rel.successors g a) 0
  done;
  let pairs = ref (match sup with Some p -> [ p ] | None -> []) in
  if parent.(u) >= 0 then begin
    let b = ref u in
    while !b <> v do
      let a = parent.(!b) in
      (match Hashtbl.find_opt ctx.support (i, a, !b) with
      | Some p -> pairs := p :: !pairs
      | None -> ());
      b := a
    done
  end;
  !pairs

(* Insert an edge into every view graph containing both endpoints.
   Returns [Some reason] when some insertion closes a cycle. *)
let add_edge ctx fr ?sup u v =
  let conflict = ref None in
  Array.iteri
    (fun i gv ->
      if
        !conflict = None && u <> v
        && Bitset.mem gv.vops u
        && Bitset.mem gv.vops v
        && not (Rel.mem gv.base u v)
      then
        if Closure.reaches gv.cl v u then
          conflict := Some (reason ctx i u v sup)
        else begin
          Rel.add gv.base u v;
          Closure.add gv.cl u v;
          Stats.add_solve_propagations 1;
          fr.added <- (i, u, v) :: fr.added;
          match sup with
          | Some p when not (Hashtbl.mem ctx.support (i, u, v)) ->
              Hashtbl.add ctx.support (i, u, v) p;
              fr.sups <- (i, u, v) :: fr.sups
          | _ -> ()
        end)
    ctx.views;
  !conflict

let reaches_any ctx a b =
  Array.exists
    (fun gv ->
      Bitset.mem gv.vops a && Bitset.mem gv.vops b && Closure.reaches gv.cl a b)
    ctx.views

(* Forced coherence pairs knowable before any decision: a write that
   statically reaches a same-location (or, under a global write order,
   any) write in some view must precede it in every coherence order we
   enumerate — an order violating the pair would cycle that view at the
   leaf, so restricting enumeration to respecting orders skips only
   rejected candidates.  Crucially this is computed from static order
   alone: from-read edges derived from it are supported by a single rf
   pair, keeping conflict reasons (nogoods) honest. *)
let forced_static h (p : Model.params) views =
  let rel = Rel.create (H.nops h) in
  let writes = Array.of_list (H.writes h) in
  let relevant w1 w2 =
    match co_mode p with
    | Co_global -> true
    | _ -> Op.same_loc (H.op h w1) (H.op h w2)
  in
  Array.iter
    (fun w1 ->
      Array.iter
        (fun w2 ->
          if w1 <> w2 && relevant w1 w2 then
            let o1 = H.op h w1 and o2 = H.op h w2 in
            if
              (Op.same_proc o1 o2 && o1.Op.index < o2.Op.index)
              || Array.exists
                   (fun gv ->
                     Bitset.mem gv.vops w1 && Bitset.mem gv.vops w2
                     && Closure.reaches gv.cl w1 w2)
                   views
            then Rel.add rel w1 w2)
        writes)
    writes;
  rel

(* ------------------------------------------------------------------ *)
(* Leaf checks: the models' own per-candidate code                     *)

type co_choice = No_co | Per_loc of int array array | Global of int array

let coherence_of h = function
  | No_co -> invalid_arg "Solve: coherence required"
  | Per_loc rows -> Coherence.of_write_order h (Array.concat (Array.to_list rows))
  | Global worder -> Coherence.of_write_order h worder

let by_value_views h ~order =
  let rec go q acc =
    if q = H.nprocs h then Some (List.rev acc)
    else
      match
        View.exists h ~ops:(H.view_ops_writes h q) ~order
          ~legality:View.By_value
      with
      | None -> None
      | Some seq -> go (q + 1) ((q, seq) :: acc)
  in
  go 0 []

let leaf_check h (p : Model.params) ~rf ~sync ~co =
  Stats.count_solve_leaf ();
  let nops = H.nops h in
  let empty = Rel.create nops in
  let get_rf () =
    match rf with Some rf -> rf | None -> invalid_arg "Solve: rf required"
  in
  let own_views ~order =
    List.init (H.nprocs h) (fun q ->
        { Engine.proc = q; ops = H.view_ops_writes h q; order })
  in
  match
    ( p.Model.population,
      p.Model.ordering,
      p.Model.mutual,
      p.Model.legality )
  with
  | Model.Shared_all, Model.Program_order, Model.No_mutual, Model.Writer_legal
    ->
      (* sc *)
      Engine.check h ~rf:(get_rf ()) ~co:(coherence_of h co) ~extra:empty
        ~views:
          [ { Engine.proc = -1; ops = H.all_ops_set h; order = Orders.po h } ]
  | ( Model.Shared_all,
      Model.Po_plus_real_time,
      Model.No_mutual,
      Model.Writer_legal ) ->
      (* atomic *)
      let order = Rel.union (Orders.po h) (Orders.real_time h) in
      Engine.check h ~rf:(get_rf ()) ~co:(coherence_of h co) ~extra:empty
        ~views:[ { Engine.proc = -1; ops = H.all_ops_set h; order } ]
  | Model.Per_location, Model.Program_order, Model.No_mutual, Model.Writer_legal
    ->
      (* coh *)
      let po = Orders.po h in
      let loc_views =
        List.init (H.nlocs h) (fun l ->
            let ops = Bitset.create nops in
            Array.iter
              (fun (o : Op.t) -> if o.Op.loc = l then Bitset.add ops o.Op.id)
              (H.ops h);
            { Engine.proc = -1; ops; order = po })
      in
      Option.map
        (fun w ->
          {
            w with
            Witness.notes = "one serialization per location" :: w.Witness.notes;
          })
        (Engine.check h ~rf:(get_rf ()) ~co:(coherence_of h co) ~extra:empty
           ~views:loc_views)
  | ( Model.Own_plus_writes,
      Model.Partial_program_order,
      Model.Global_write_order,
      Model.Writer_legal ) ->
      (* tso *)
      let worder =
        match co with Global w -> w | _ -> invalid_arg "Solve: tso co"
      in
      let extra = Smem_core.Tso.chain_rel nops worder in
      Option.map
        (fun w ->
          let note =
            Format.asprintf "write order: %a" (H.pp_ops h)
              (Array.to_list worder)
          in
          { w with Witness.notes = note :: w.Witness.notes })
        (Engine.check h ~rf:(get_rf ()) ~co:(coherence_of h co) ~extra
           ~views:(own_views ~order:(Orders.ppo h)))
  | ( Model.Own_plus_writes,
      Model.Semi_causal,
      Model.Coherence_agreement,
      Model.Writer_legal ) ->
      (* pc *)
      let rf = get_rf () in
      let co = coherence_of h co in
      let sem = Orders.sem_with h ~ppo:(Orders.ppo h) ~rf ~co in
      Engine.check h ~rf ~co ~extra:empty ~views:(own_views ~order:sem)
  | ( Model.Own_plus_writes,
      Model.Own_ppo_bracketed,
      (Model.Labeled_sc | Model.Labeled_pc),
      Model.Writer_legal ) ->
      (* rc-sc / rc-pc *)
      let rf = get_rf () in
      let co = coherence_of h co in
      let bracket = Smem_core.Rc.bracket_edges h ~rf in
      let views = Smem_core.Rc.base_views h in
      let extra, sync, notes =
        match p.Model.mutual with
        | Model.Labeled_sc ->
            let t_seq =
              match sync with
              | Some s -> s
              | None -> invalid_arg "Solve: rc-sc sync"
            in
            let note =
              Format.asprintf "labeled order: %a" (H.pp_ops h)
                (Array.to_list t_seq)
            in
            ( Rel.union (Smem_core.Rc.total_order_rel nops t_seq) bracket,
              Some (Array.to_list t_seq),
              [ note ] )
        | _ ->
            let labeled_set = Bitset.of_list nops (H.labeled h) in
            let sem_l = Orders.sem_within h ~members:labeled_set ~rf ~co in
            (Rel.union sem_l bracket, None, [])
      in
      Option.map
        (fun w -> { w with Witness.sync; notes = notes @ w.Witness.notes })
        (Engine.check h ~rf ~co ~extra ~views)
  | ( Model.Own_plus_writes,
      Model.Sync_fences,
      Model.Labeled_total,
      Model.Value_legal ) ->
      (* wo *)
      let t_seq =
        match sync with Some s -> s | None -> invalid_arg "Solve: wo sync"
      in
      let fence =
        Rel.union (Smem_core.Weak_ordering.fence_edges h) (Orders.po_loc h)
      in
      let order =
        Rel.union fence (Smem_core.Weak_ordering.total_order_rel nops t_seq)
      in
      Option.map
        (fun views ->
          let note =
            Format.asprintf "synchronization order: %a" (H.pp_ops h)
              (Array.to_list t_seq)
          in
          Witness.per_proc ~sync:(Array.to_list t_seq) views ~notes:[ note ])
        (by_value_views h ~order)
  | ( Model.Own_plus_writes,
      Model.Program_order,
      Model.Coherence_agreement,
      Model.Value_legal ) ->
      (* pc-g *)
      let order = Rel.union (Orders.po h) (Coherence.to_rel (coherence_of h co)) in
      if not (Rel.acyclic order) then None
      else
        Option.map
          (fun views -> Witness.per_proc views ~notes:[])
          (by_value_views h ~order)
  | Model.Own_plus_writes, Model.Causal_order, Model.No_mutual, Model.Value_legal
    ->
      (* causal *)
      let rf = get_rf () in
      let causal = Orders.causal_with h ~po:(Orders.po h) ~rf in
      if not (Rel.irreflexive causal) then None
      else
        Option.map
          (fun views ->
            let note =
              Format.asprintf "writes-before: %a" (Reads_from.pp h) rf
            in
            Witness.per_proc ~rf:(Reads_from.pairs h rf) views ~notes:[ note ])
          (Smem_core.Causal.views_for h ~order:causal)
  | ( Model.Own_plus_writes,
      Model.Causal_plus_coherence,
      Model.Coherence_agreement,
      Model.Value_legal ) ->
      (* causal-coh *)
      let rf = get_rf () in
      let causal = Orders.causal h ~rf in
      if not (Rel.irreflexive causal) then None
      else
        let order =
          Rel.transitive_closure
            (Rel.union causal (Coherence.to_rel (coherence_of h co)))
        in
        if not (Rel.irreflexive order) then None
        else
          Option.map
            (fun views ->
              Witness.per_proc ~rf:(Reads_from.pairs h rf) views ~notes:[])
            (by_value_views h ~order)
  | Model.Own_plus_writes, Model.Program_order, Model.No_mutual, Model.Value_legal
    ->
      (* pram *)
      Option.map
        (fun views -> Witness.per_proc views ~notes:[])
        (by_value_views h ~order:(Orders.po h))
  | ( Model.Own_plus_writes,
      Model.Own_po_plus_po_loc,
      Model.No_mutual,
      Model.Value_legal ) ->
      (* slow *)
      let po_loc = Orders.po_loc h in
      let rec go q acc =
        if q = H.nprocs h then
          Some (Witness.per_proc (List.rev acc) ~notes:[])
        else
          let order = Rel.union (Orders.po_of_proc h q) po_loc in
          match
            View.exists h ~ops:(H.view_ops_writes h q) ~order
              ~legality:View.By_value
          with
          | None -> None
          | Some seq -> go (q + 1) ((q, seq) :: acc)
      in
      go 0 []
  | ( Model.Per_proc_block { blocks },
      Model.Program_order,
      Model.Coherence_agreement,
      Model.Value_legal ) ->
      (* pc-part(blocks=k); deliberately no global acyclicity check,
         mirroring Pc_part.witness_with *)
      let order =
        Rel.union (Orders.po h) (Coherence.to_rel (coherence_of h co))
      in
      let rec go q b acc =
        if q = H.nprocs h then
          Some
            (Witness.per_proc (List.rev acc)
               ~notes:[ "one view per processor per block" ])
        else if b = blocks then go (q + 1) 0 acc
        else
          let ops =
            Smem_core.Pc_part.view_ops h
              ~in_block:(fun l -> l mod blocks = b)
              q
          in
          if Smem_relation.Bitset.is_empty ops then go q (b + 1) acc
          else
            match View.exists h ~ops ~order ~legality:View.By_value with
            | None -> None
            | Some seq -> go q (b + 1) ((q, seq) :: acc)
      in
      go 0 0 []
  | ( Model.Own_plus_writes,
      Model.Session { ryw; mr; mw; wfr },
      Model.No_mutual,
      legality )
    when legality = (if wfr then Model.Writer_legal else Model.Value_legal) ->
      (* session(...) *)
      let flags = { Smem_core.Session.ryw; mr; mw; wfr } in
      if wfr then begin
        let rf = get_rf () in
        let order = Smem_core.Session.edges h flags ~rf:(Some rf) in
        if not (Rel.irreflexive order) then None
        else
          let rec go q acc =
            if q = H.nprocs h then Some (List.rev acc)
            else
              match
                View.exists h ~ops:(H.view_ops_writes h q) ~order
                  ~legality:(View.By_writer rf)
              with
              | None -> None
              | Some seq -> go (q + 1) ((q, seq) :: acc)
          in
          Option.map
            (fun views ->
              Witness.per_proc
                ~rf:(Reads_from.pairs h rf)
                views
                ~notes:[ "session guarantees incl. writes-follow-reads" ])
            (go 0 [])
      end
      else
        let order = Smem_core.Session.edges h flags ~rf:None in
        Option.map
          (fun views -> Witness.per_proc views ~notes:[])
          (by_value_views h ~order)
  | ( Model.Own_plus_writes,
      Model.Own_program_order,
      Model.No_mutual,
      Model.Value_legal ) ->
      (* local *)
      let rec go q acc =
        if q = H.nprocs h then
          Some (Witness.per_proc (List.rev acc) ~notes:[])
        else
          match
            View.exists h ~ops:(H.view_ops_writes h q)
              ~order:(Orders.po_of_proc h q) ~legality:View.By_value
          with
          | None -> None
          | Some seq -> go (q + 1) ((q, seq) :: acc)
      in
      go 0 []
  | _ -> raise Unsupported

(* ------------------------------------------------------------------ *)
(* The search                                                          *)

let run ctx =
  let h = ctx.h in
  let p = ctx.params in
  let nops = H.nops h in
  let writer_legal = p.Model.legality = Model.Writer_legal in
  let assigned r w = ctx.writer.(r) = w in
  let accept w =
    ctx.found <- Some w;
    true
  in
  let leaf ~sync ~co =
    let rf =
      if rf_needed p then
        Some (Reads_from.make h ~writer:(fun r -> ctx.writer.(r)))
      else None
    in
    match leaf_check h p ~rf ~sync ~co with
    | Some w -> accept w
    | None -> false
  in
  (* -------- coherence phase -------- *)
  let reads_of_loc l =
    List.filter (fun r -> (H.op h r).Op.loc = l) (H.reads h)
  in
  let add_chain fr order =
    let conflict = ref None in
    for i = 0 to Array.length order - 2 do
      if !conflict = None then
        conflict := add_edge ctx fr order.(i) order.(i + 1)
    done;
    !conflict
  in
  (* From-read edges implied by a just-chosen write order: each read
     precedes the first same-location write after its writer (init
     readers precede the first same-location write outright); the
     order's chain edges carry the rest transitively, because every
     write belongs to every view that contains the read. *)
  let add_fr fr loc order =
    let conflict = ref None in
    if writer_legal then
      List.iter
        (fun r ->
          if !conflict = None then begin
            let w = ctx.writer.(r) in
            let n = Array.length order in
            let rec first_at_loc i =
              if i >= n then None
              else if (H.op h order.(i)).Op.loc = loc then Some order.(i)
              else first_at_loc (i + 1)
            in
            let next =
              if w = H.init then first_at_loc 0
              else
                let rec after i =
                  if i >= n then None
                  else if order.(i) = w then first_at_loc (i + 1)
                  else after (i + 1)
                in
                after 0
            in
            match next with
            | Some w' -> conflict := add_edge ctx fr ~sup:(r, w) r w'
            | None -> ()
          end)
        (reads_of_loc loc);
    !conflict
  in
  let co_precedes a b =
    Smem_core.Tso.write_po h a b
    || Rel.mem ctx.forced0 a b
    || reaches_any ctx a b
  in
  let co_phase ~sync =
    match co_mode p with
    | Co_none -> leaf ~sync ~co:No_co
    | Co_global ->
        let writes = Array.of_list (H.writes h) in
        Perm.iter_constrained writes ~precedes:co_precedes ~f:(fun worder ->
            Stats.count_solve_decision ();
            let fr = push ctx in
            let conflict =
              match add_chain fr worder with
              | Some _ as c -> c
              | None ->
                  let c = ref None in
                  for l = 0 to H.nlocs h - 1 do
                    if !c = None then c := add_fr fr l worder
                  done;
                  !c
            in
            match conflict with
            | Some _ ->
                Stats.count_solve_conflict ();
                pop ctx;
                false
            | None ->
                let ok = leaf ~sync ~co:(Global (Array.copy worder)) in
                if not ok then pop ctx;
                ok)
    | Co_per_loc ->
        let nlocs = H.nlocs h in
        let per_loc =
          Array.init nlocs (fun l -> Array.of_list (H.writes_to h l))
        in
        let chosen = Array.make (max 1 nlocs) [||] in
        let rec go l =
          if l = nlocs then leaf ~sync ~co:(Per_loc chosen)
          else
            Perm.iter_constrained per_loc.(l) ~precedes:co_precedes
              ~f:(fun ord ->
                Stats.count_solve_decision ();
                let fr = push ctx in
                let conflict =
                  match add_chain fr ord with
                  | Some _ as c -> c
                  | None -> add_fr fr l ord
                in
                match conflict with
                | Some _ ->
                    Stats.count_solve_conflict ();
                    pop ctx;
                    false
                | None ->
                    chosen.(l) <- Array.copy ord;
                    let ok = go (l + 1) in
                    if not ok then pop ctx;
                    ok)
        in
        go 0
  in
  (* -------- synchronization phase -------- *)
  let sync_phase () =
    if not (sync_needed p) then co_phase ~sync:None
    else begin
      let labeled = Array.of_list (H.labeled h) in
      let m = Array.length labeled in
      let po = Orders.po h in
      let used = Array.make (max 1 nops) false in
      let seq = Array.make (max 1 m) (-1) in
      let last = Array.make (max 1 (H.nlocs h)) H.init in
      (* Prefix legality of the labeled order under Labeled_sc —
         exactly Rc.labeled_seq_legal, checked as the sequence grows. *)
      let prefix_ok l =
        p.Model.mutual <> Model.Labeled_sc
        ||
        let op = H.op h l in
        Op.is_write op
        ||
        let w = ctx.writer.(l) in
        if w = H.init then last.(op.Op.loc) = H.init
        else if Op.is_labeled (H.op h w) then last.(op.Op.loc) = w
        else true
      in
      let rec go depth =
        if depth = m then co_phase ~sync:(Some (Array.sub seq 0 m))
        else begin
          let ok = ref false in
          Array.iter
            (fun l ->
              if (not !ok) && not used.(l) then begin
                let available =
                  Array.for_all
                    (fun l' ->
                      used.(l') || l' = l
                      || not (Rel.mem po l' l || reaches_any ctx l' l))
                    labeled
                in
                if available && prefix_ok l then begin
                  Stats.count_solve_decision ();
                  let fr = push ctx in
                  used.(l) <- true;
                  seq.(depth) <- l;
                  let lop = H.op h l in
                  let saved = last.(lop.Op.loc) in
                  if Op.is_write lop then last.(lop.Op.loc) <- l;
                  let conflict = ref None in
                  for i = 0 to depth - 1 do
                    if !conflict = None then
                      conflict := add_edge ctx fr seq.(i) l
                  done;
                  (match !conflict with
                  | Some _ -> Stats.count_solve_conflict ()
                  | None -> if go (depth + 1) then ok := true);
                  if not !ok then begin
                    used.(l) <- false;
                    last.(lop.Op.loc) <- saved;
                    pop ctx
                  end
                end
              end)
            labeled;
          !ok
        end
      in
      go 0
    end
  in
  (* -------- reads-from phase -------- *)
  if not (rf_needed p) then sync_phase ()
  else begin
    let reads = Array.of_list (H.reads h) in
    let cands =
      Array.map (fun r -> Array.of_list (Reads_from.candidates h r)) reads
    in
    if Array.exists (fun c -> Array.length c = 0) cands then begin
      (* Some read returns a value nobody wrote: same short-circuit as
         the enumerator. *)
      Stats.add_pruned 1;
      false
    end
    else begin
      (* Fail-first: decide the most constrained reads first.  Nogoods
         are assignment-sets, so variable order is free. *)
      let order = Array.init (Array.length reads) Fun.id in
      Array.sort
        (fun i j -> compare (Array.length cands.(i)) (Array.length cands.(j)))
        order;
      let bracketed = p.Model.ordering = Model.Own_ppo_bracketed in
      let acquire_ok r w =
        (not bracketed)
        || (not (Op.is_acquire (H.op h r)))
        || w = H.init
        || Op.is_labeled (H.op h w)
        || List.for_all
             (fun w' -> Op.is_ordinary (H.op h w'))
             (H.writes_to h (H.op h r).Op.loc)
      in
      let propagate_rf fr r w =
        let sup = (r, w) in
        let conflict = ref None in
        let add u v = if !conflict = None then conflict := add_edge ctx fr ~sup u v in
        if w <> H.init then add w r;
        if writer_legal then begin
          let loc = (H.op h r).Op.loc in
          if w = H.init then
            (* fr: an init reader precedes every write to the location. *)
            List.iter (fun w' -> if w' <> r then add r w') (H.writes_to h loc)
          else
            (* fr through coherence pairs already forced statically. *)
            List.iter
              (fun w' -> if Rel.mem ctx.forced0 w w' then add r w')
              (H.writes_to h loc);
          if bracketed && Op.is_acquire (H.op h r) && w <> H.init then begin
            (* The acquire half of the RC brackets. *)
            let row = H.proc_ops h (H.op h r).Op.proc in
            let idx = (H.op h r).Op.index in
            Array.iteri
              (fun i o ->
                if i > idx && Op.is_ordinary (H.op h o) then add w o)
              row
          end
        end;
        !conflict
      in
      let rec assign k =
        if k = Array.length order then sync_phase ()
        else begin
          let r = reads.(order.(k)) in
          let cs = cands.(order.(k)) in
          let ok = ref false in
          let j = ref 0 in
          while (not !ok) && !j < Array.length cs do
            let w = cs.(!j) in
            incr j;
            if acquire_ok r w then
              if Nogood.blocks ctx.store ~assigned (r, w) then
                Stats.count_solve_nogood_hit ()
              else begin
                Stats.count_solve_decision ();
                let fr = push ctx in
                ctx.writer.(r) <- w;
                (match propagate_rf fr r w with
                | Some why ->
                    Stats.count_solve_conflict ();
                    if Nogood.learn ctx.store why then
                      Stats.count_solve_nogood ()
                | None -> if assign (k + 1) then ok := true);
                if not !ok then begin
                  ctx.writer.(r) <- unassigned;
                  pop ctx
                end
              end
          done;
          !ok
        end
      in
      assign 0
    end
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let witness_params ?(store : Nogood.t option) (p : Model.params) h =
  (* Object legality replays sequential object specifications; the
     propagation graphs and from-read rules here are register-minded
     (a queue dequeue consumes state, so value-match pruning does not
     transfer).  Punt to the model's own witness search. *)
  if p.Model.legality = Model.Object_legal then raise Unsupported;
  let store = match store with Some s -> s | None -> Nogood.create () in
  let views = prop_views h p in
  let ctx =
    {
      h;
      params = p;
      views;
      support = Hashtbl.create 64;
      store;
      writer = Array.make (max 1 (H.nops h)) unassigned;
      forced0 =
        (match co_mode p with
        | Co_none -> Rel.create (H.nops h)
        | _ -> forced_static h p views);
      frames = [];
      found = None;
    }
  in
  let (_ : bool) = run ctx in
  ctx.found

let witness_with ?store (m : Model.t) h =
  match m.Model.params with
  | None -> m.Model.witness h
  | Some p -> (
      Smem_obs.Trace.span ~cat:"solve"
        ~args:
          [
            ("model", Smem_obs.Json.Str m.Model.key);
            ("nops", Smem_obs.Json.Int (H.nops h));
          ]
        ("solve/" ^ m.Model.key)
      @@ fun () ->
      try witness_params ?store p h with Unsupported -> m.Model.witness h)

let witness m h = witness_with m h
let check m h = Option.is_some (witness m h)
let install () = Model.register_solver witness

(* ------------------------------------------------------------------ *)
(* Incremental re-checking                                             *)

module Inc = struct
  type t = {
    model : Model.t;
    store : Nogood.t;
    mutable prev : H.t option;
    mutable reused : int;
  }

  let create model = { model; store = Nogood.create (); prev = None; reused = 0 }

  (* [h] extends [prev] when every existing operation is unchanged —
     same processor, index, kind, value, attribute, and location name.
     History.make numbers operations row-major, so appending operations
     to the last processor or adding processors preserves existing ids,
     which is what keeps stored nogoods meaningful.  Timing is excluded:
     real-time edges between old operations could change. *)
  let extends ~prev h =
    H.nops h >= H.nops prev
    && H.nprocs h >= H.nprocs prev
    && (not (H.has_timing prev))
    && (not (H.has_timing h))
    &&
    try
      for id = 0 to H.nops prev - 1 do
        let a = H.op prev id and b = H.op h id in
        if
          not
            (a.Op.proc = b.Op.proc && a.Op.index = b.Op.index
           && a.Op.kind = b.Op.kind && a.Op.value = b.Op.value
           && a.Op.attr = b.Op.attr
            && String.equal (H.loc_name prev a.Op.loc) (H.loc_name h b.Op.loc))
        then raise Exit
      done;
      true
    with Exit -> false

  let witness t h =
    (match t.prev with
    | Some prev when extends ~prev h -> t.reused <- t.reused + 1
    | _ -> Nogood.clear t.store);
    t.prev <- Some h;
    witness_with ~store:t.store t.model h

  let check t h = Option.is_some (witness t h)
  let nogoods t = Nogood.size t.store
  let reuses t = t.reused
end
