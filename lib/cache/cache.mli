(** Sharded, bounded verdict cache.

    Maps [(canonical history digest, model key)] to the model's boolean
    verdict.  Because {!Smem_core.Canon.digest} is invariant under
    processor permutation and location/value renaming, structurally
    distinct but equivalent histories share one entry.

    The table is split into shards, each guarded by its own mutex
    (OCaml 5 [Stdlib.Mutex] is domain-safe), so domains of a
    {!Smem_parallel.Pool} contend only when they touch the same shard.
    Sharding hashes the {e full} [(digest, model)] key — the ~14
    verdicts of one hot history spread across shards instead of
    serializing on one mutex.
    Each shard is bounded and evicts in insertion (FIFO) order once
    full — verdicts are tiny, so capacity is a count of entries, not
    bytes.

    Instances keep their own hit/miss/evict statistics; the process-wide
    totals are also registered in {!Smem_obs.Metrics} under
    [cache.hits], [cache.misses], [cache.evictions] and [cache.stores],
    so [--stats] output and the bench harness see cache behavior without
    plumbing. *)

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** current resident entries across all shards *)
  capacity : int;
}

val create : ?shards:int -> capacity:int -> unit -> t
(** [create ~capacity ()] — a cache holding at most [capacity] verdicts
    (at least one per shard).  [shards] (default [8]) is rounded up to
    a power of two.
    @raise Invalid_argument if [capacity <= 0] or [shards <= 0]. *)

val find : t -> digest:string -> model:string -> bool option
(** Cached verdict, if present.  Counts a hit or a miss. *)

val add : ?notify:bool -> t -> digest:string -> model:string -> bool -> unit
(** Insert (last write wins), evicting the oldest entry of the shard if
    it is full.  The {!on_store} hook fires unless [notify] is [false]
    (replaying a persistent store back into the cache must not
    re-append every entry). *)

val on_store : t -> (digest:string -> model:string -> bool -> unit) -> unit
(** Install the persistence hook: called after every store (fresh or
    replacement) with the key and verdict, outside the shard lock.  The
    callback may run concurrently from several domains and must be
    thread-safe.  Last installation wins; {!Smem_serve.Store} is the
    intended (sole) subscriber. *)

val shard_index : t -> digest:string -> model:string -> int
(** Which shard a key lives in — exposed so tests can assert the
    distribution (one hot digest across many models must not collapse
    into one shard). *)

val find_or_add :
  t -> digest:string -> model:string -> (unit -> bool) -> bool * bool
(** [find_or_add t ~digest ~model compute] returns [(verdict, cached)]
    where [cached] says the verdict came from the cache.  [compute]
    runs outside the shard lock, so two domains may race to compute the
    same cell — both get the right answer and one insertion wins. *)

val stats : t -> stats
val clear : t -> unit
(** Drop every entry.  Statistics keep accumulating. *)

val pp_stats : Format.formatter -> stats -> unit
