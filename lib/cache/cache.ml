module Metrics = Smem_obs.Metrics

let m_hits = Metrics.counter "cache.hits"
let m_misses = Metrics.counter "cache.misses"
let m_evictions = Metrics.counter "cache.evictions"
let m_stores = Metrics.counter "cache.stores"

type shard = {
  lock : Mutex.t;
  table : (string * string, bool) Hashtbl.t;
  order : (string * string) Queue.t;  (* insertion order, oldest first *)
  cap : int;
}

type t = {
  shards : shard array;
  mask : int;
  capacity : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  (* Persistence hook: called after every store with the key and
     verdict, outside the shard lock.  One writer (the on-disk verdict
     store) is plenty; [None] costs nothing on the hot path. *)
  mutable on_store : (digest:string -> model:string -> bool -> unit) option;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(shards = 8) ~capacity () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  if shards <= 0 then invalid_arg "Cache.create: shards must be positive";
  let nshards = min (next_pow2 shards) (next_pow2 capacity) in
  let cap = (capacity + nshards - 1) / nshards in
  {
    shards =
      Array.init nshards (fun _ ->
          {
            lock = Mutex.create ();
            table = Hashtbl.create (min cap 64);
            order = Queue.create ();
            cap;
          });
    mask = nshards - 1;
    capacity;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    on_store = None;
  }

(* Entries are keyed [(digest, model)], so the shard must hash the full
   key: hashing the digest alone piles every model's verdict for a hot
   history into one shard and serializes them on its mutex. *)
let shard_index t ~digest ~model = Hashtbl.hash (digest, model) land t.mask
let shard_of t ~digest ~model = t.shards.(shard_index t ~digest ~model)
let on_store t f = t.on_store <- Some f

let locked s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let find t ~digest ~model =
  let s = shard_of t ~digest ~model in
  let r = locked s (fun () -> Hashtbl.find_opt s.table (digest, model)) in
  (match r with
  | Some _ ->
      Atomic.incr t.hits;
      Metrics.incr m_hits
  | None ->
      Atomic.incr t.misses;
      Metrics.incr m_misses);
  r

let add ?(notify = true) t ~digest ~model verdict =
  let s = shard_of t ~digest ~model in
  let evicted =
    locked s (fun () ->
        let key = (digest, model) in
        let fresh = not (Hashtbl.mem s.table key) in
        let evicted =
          if fresh && Hashtbl.length s.table >= s.cap then begin
            let oldest = Queue.pop s.order in
            Hashtbl.remove s.table oldest;
            1
          end
          else 0
        in
        Hashtbl.replace s.table key verdict;
        if fresh then Queue.push key s.order;
        evicted)
  in
  Metrics.incr m_stores;
  if evicted > 0 then begin
    Atomic.fetch_and_add t.evictions evicted |> ignore;
    Metrics.add m_evictions evicted
  end;
  match t.on_store with
  | Some f when notify -> f ~digest ~model verdict
  | _ -> ()

let find_or_add t ~digest ~model compute =
  match find t ~digest ~model with
  | Some v -> (v, true)
  | None ->
      let v = compute () in
      add t ~digest ~model v;
      (v, false)

let stats t =
  let entries =
    Array.fold_left
      (fun acc s -> acc + locked s (fun () -> Hashtbl.length s.table))
      0 t.shards
  in
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    entries;
    capacity = t.capacity;
  }

let clear t =
  Array.iter
    (fun s ->
      locked s (fun () ->
          Hashtbl.reset s.table;
          Queue.clear s.order))
    t.shards

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "%d/%d entries, %d hit(s), %d miss(es), %d eviction(s)"
    s.entries s.capacity s.hits s.misses s.evictions
