(** Buffered NDJSON line framing over a raw file descriptor.

    The server reads request lines through this instead of
    [In_channel.input_line] because batching needs one question a
    channel cannot answer: {e is another line available right now,
    without blocking?}  [next] blocks for the first line of a batch;
    [drain] then takes only what is already there ([Unix.select] with
    a zero timeout guards every further [read]), so a client that
    sends one request and waits gets its answer immediately while a
    pipelining client still fills whole batches.

    Lines are split on ['\n'] (a trailing ['\r'] is dropped); an
    unterminated final line is delivered at EOF.  [EINTR] is retried
    and a peer reset ([ECONNRESET]/[EPIPE]) reads as EOF. *)

type t

val of_fd : Unix.file_descr -> t

val of_in_channel : in_channel -> t
(** Reads the descriptor underneath the channel.  The channel's own
    buffer must be untouched (hand the channel over before reading
    from it) — the reader consumes the descriptor directly. *)

val next : t -> string option
(** The next line, blocking until one arrives; [None] at end of
    input. *)

val drain : t -> max:int -> string list
(** Up to [max] further lines obtainable {e without blocking}.  On a
    regular file this reads ahead to the limit or EOF; on a socket or
    pipe it stops as soon as another [read] would block (bytes of an
    incomplete line stay buffered for the next call). *)
