(** Buffered NDJSON line framing over an abstract byte source.

    The server reads request lines through this instead of
    [In_channel.input_line] because batching needs one question a
    channel cannot answer: {e is another line available right now,
    without blocking?}  [next] blocks for the first line of a batch;
    [drain] then takes only what is already there (the source's
    [readable] probe guards every further [read]), so a client that
    sends one request and waits gets its answer immediately while a
    pipelining client still fills whole batches.

    The byte source is abstract: {!of_fd} wraps a real descriptor
    ([Unix.read] guarded by a zero-timeout [Unix.select]), while the
    deterministic simulation harness supplies an in-memory source via
    {!of_source} — same framing code, no descriptor, no wall time.

    Lines are split on ['\n'] (a trailing ['\r'] is dropped); an
    unterminated final line is delivered at EOF.  For the fd-backed
    source, [EINTR] is retried and a peer reset
    ([ECONNRESET]/[EPIPE]) reads as EOF. *)

type source = {
  read : Bytes.t -> int -> int -> int;
      (** [read buf pos len] — the [Unix.read] contract: block until at
          least one byte is available, return the count, [0] at EOF. *)
  readable : unit -> bool;
      (** Would [read] return immediately (bytes buffered, or EOF
          pending)?  Polled between batch lines; must not block. *)
}

type t

val of_source : source -> t

val source_of_fd : Unix.file_descr -> source
(** The descriptor-backed source: [Unix.read] with [EINTR] retried and
    peer resets mapped to EOF; [readable] is a zero-timeout
    [Unix.select]. *)

val of_fd : Unix.file_descr -> t
(** [of_source (source_of_fd fd)]. *)

val of_in_channel : in_channel -> t
(** Reads the descriptor underneath the channel.  The channel's own
    buffer must be untouched (hand the channel over before reading
    from it) — the reader consumes the descriptor directly. *)

val next : t -> string option
(** The next line, blocking until one arrives; [None] at end of
    input. *)

val drain : t -> max:int -> string list
(** Up to [max] further lines obtainable {e without blocking}.  On a
    regular file this reads ahead to the limit or EOF; on a socket or
    pipe it stops as soon as another [read] would block (bytes of an
    incomplete line stay buffered for the next call). *)
