(* The daemon's shared execution engine: a fixed set of worker domains
   pulling request tasks from one bounded FIFO queue.

   Every client connection submits its current batch here and waits,
   so parallelism is pooled across clients instead of multiplied by
   them (N clients x Pool.map would spawn N*jobs domains).  Fairness
   falls out of the protocol shape: a connection never has more than
   one batch in flight (it waits for the batch's responses before
   reading more), so no client can occupy more than [batch] queue
   slots, and FIFO order interleaves concurrent clients' batches.

   Backpressure is the queue bound: [map] blocks while the queue is
   full, which stops the submitting connection thread from reading its
   socket, which fills the kernel buffer, which stalls the client —
   load shedding by TCP, with a hard cap on queued work in the server.

   Mutex/Condition are domain-safe in OCaml 5, so systhread submitters
   and domain workers synchronize on the same primitives.

   A second, deterministic backend ({!inline}) exists for the
   simulation harness: no domains, no queue — tasks of a batch run on
   the submitting thread, in an order chosen by an injectable hook,
   with a pre-task hook that can raise to model a worker crashing
   mid-batch.  Both backends keep the same [map] contract: results in
   input order, first task exception re-raised at the submitter. *)

module Metrics = Smem_obs.Metrics

let m_tasks = Metrics.counter "sched.tasks"
let m_queue_high = Metrics.gauge "sched.queue_high"

exception Worker_crashed of string
(* Raised by a simulated worker-domain crash (the [inline] backend's
   [on_task] hook); carries the crash site for the error message. *)

type pool = {
  mutex : Mutex.t;
  nonempty : Condition.t;  (* workers: queue has a task, or stopping *)
  nonfull : Condition.t;  (* submitters: a slot freed up *)
  queue : (unit -> unit) Queue.t;
  cap : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

type inline = {
  order : batch:int -> size:int -> int list;
  on_task : batch:int -> index:int -> unit;
  mutable batches : int;  (* map calls so far; the hooks' [batch] id *)
}

type t = Pool of pool | Inline of inline

let create ?(queue = 256) ~jobs () =
  if jobs < 1 then invalid_arg "Sched.create: jobs must be positive";
  if queue < 1 then invalid_arg "Sched.create: queue must be positive";
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      queue = Queue.create ();
      cap = queue;
      stopping = false;
      workers = [];
    }
  in
  let worker () =
    let rec loop () =
      Mutex.lock t.mutex;
      while Queue.is_empty t.queue && not t.stopping do
        Condition.wait t.nonempty t.mutex
      done;
      if Queue.is_empty t.queue then begin
        (* stopping and drained *)
        Mutex.unlock t.mutex;
        ()
      end
      else begin
        let task = Queue.pop t.queue in
        Condition.signal t.nonfull;
        Mutex.unlock t.mutex;
        Metrics.incr m_tasks;
        task ();
        loop ()
      end
    in
    loop ()
  in
  t.workers <- List.init jobs (fun _ -> Domain.spawn worker);
  Pool t

let identity_order ~batch:_ ~size = List.init size Fun.id

let inline ?(order = identity_order) ?(on_task = fun ~batch:_ ~index:_ -> ())
    () =
  Inline { order; on_task; batches = 0 }

(* Enqueue one thunk, blocking while the queue is full.  After
   [shutdown] has begun the queue is closed; late tasks (a connection
   draining its final batch) run inline on the caller instead. *)
let enqueue t task =
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    task ()
  end
  else begin
    while Queue.length t.queue >= t.cap && not t.stopping do
      Condition.wait t.nonfull t.mutex
    done;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      task ()
    end
    else begin
      Queue.push task t.queue;
      Metrics.set_max m_queue_high (Queue.length t.queue);
      Condition.signal t.nonempty;
      Mutex.unlock t.mutex
    end
  end

let pool_map t thunks =
  let n = List.length thunks in
  let results = Array.make n None in
  let done_mutex = Mutex.create () in
  let done_cond = Condition.create () in
  let remaining = ref n in
  List.iteri
    (fun i thunk ->
      enqueue t (fun () ->
          let r = try Ok (thunk ()) with e -> Error e in
          Mutex.lock done_mutex;
          results.(i) <- Some r;
          decr remaining;
          if !remaining = 0 then Condition.signal done_cond;
          Mutex.unlock done_mutex))
    thunks;
  Mutex.lock done_mutex;
  while !remaining > 0 do
    Condition.wait done_cond done_mutex
  done;
  Mutex.unlock done_mutex;
  Array.to_list results
  |> List.map (function
       | Some (Ok y) -> y
       | Some (Error e) -> raise e
       | None -> assert false)

(* The deterministic backend: every task runs on the caller, in the
   order the hook dictates, results still in input order.  A bad
   permutation is an error in the schedule, not undefined behavior. *)
let inline_map t thunks =
  let n = List.length thunks in
  let batch = t.batches in
  t.batches <- batch + 1;
  let order = t.order ~batch ~size:n in
  if
    List.length order <> n
    || List.sort compare order <> List.init n Fun.id
  then invalid_arg "Sched.inline: order hook must permute 0..size-1";
  let thunks = Array.of_list thunks in
  let results = Array.make n None in
  List.iter
    (fun i ->
      Metrics.incr m_tasks;
      results.(i) <-
        Some
          (try
             t.on_task ~batch ~index:i;
             Ok (thunks.(i) ())
           with e -> Error e))
    order;
  Array.to_list results
  |> List.map (function
       | Some (Ok y) -> y
       | Some (Error e) -> raise e
       | None -> assert false)

let map t thunks =
  match t with Pool p -> pool_map p thunks | Inline i -> inline_map i thunks

let shutdown = function
  | Inline _ -> ()
  | Pool t ->
      Mutex.lock t.mutex;
      t.stopping <- true;
      Condition.broadcast t.nonempty;
      Condition.broadcast t.nonfull;
      Mutex.unlock t.mutex;
      List.iter Domain.join t.workers;
      t.workers <- []
