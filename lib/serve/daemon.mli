(** The multi-client serving daemon.

    Listens on any mix of Unix-domain and TCP sockets; each accepted
    connection runs its own {!Server.session} (per-client NDJSON
    framing, in-order replies) on a handler thread, while all
    connections share one {!Sched} worker pool, one verdict cache and
    — when configured — one persistent {!Store}.

    Lifecycle: {!create} binds the sockets (a TCP port of [0] is
    resolved to the kernel's choice, see {!addresses}), {!start}
    spawns the accept threads, {!stop} begins the drain (close
    listeners, EOF every open connection's read side; in-flight
    batches still complete and answer), {!wait} blocks until the last
    handler has finished, then shuts the scheduler down and closes the
    store.  [stop] is safe to call from a signal handler.

    Metrics: [serve.connections] (accepted, total) and [serve.active]
    (current handler count), on top of the per-session counters. *)

type endpoint = Unix_socket of string | Tcp of string * int

val pp_endpoint : Format.formatter -> endpoint -> unit
(** [unix://PATH] or [tcp://HOST:PORT]. *)

type t

val create :
  ?batch:int ->
  ?jobs:int ->
  ?queue:int ->
  ?cache:Smem_cache.Cache.t ->
  ?store:string ->
  endpoints:endpoint list ->
  unit ->
  t
(** Bind every endpoint (an existing file at a Unix-socket path is
    replaced), build the shared scheduler ([jobs] workers, default
    {!Smem_parallel.Pool.default_jobs}; [queue] bounds admitted tasks)
    and services, and — when both [store] and [cache] are given —
    replay the persistent store into the cache and arm its append
    hook.  SIGPIPE is ignored process-wide (a vanished client must be
    a per-connection error).
    @raise Invalid_argument on an empty endpoint list.
    @raise Unix.Unix_error if a socket cannot be bound. *)

val addresses : t -> endpoint list
(** The bound endpoints, with TCP port [0] replaced by the actual
    port. *)

val store : t -> Store.t option

val start : t -> unit
val stop : t -> unit
val wait : t -> unit
