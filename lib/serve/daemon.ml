(* The multi-client daemon: Unix-domain and TCP listeners feeding
   per-connection {!Server.session} loops.

   Threading model: each listener gets an accept thread, each accepted
   connection a handler thread.  Connection threads mostly block on
   I/O (blocking reads release the runtime lock), so they all live on
   the spawning domain; the compute runs on the shared {!Sched} worker
   domains.  Parallelism is therefore pooled: N clients share [jobs]
   workers instead of spawning N pools.

   Drain protocol ([stop]): flag the acceptors, which close their
   listeners (no new connections) within a poll tick, and
   [shutdown(SHUTDOWN_RECEIVE)] every open connection — the
   handler's blocking read returns EOF, it finishes and answers the
   batch it already read, flushes, and closes.  [wait] returns once
   the last handler is gone, then tears down the scheduler and closes
   the verdict store, so every answered verdict is on disk before the
   process exits. *)

module Metrics = Smem_obs.Metrics

let m_connections = Metrics.counter "serve.connections"
let m_active = Metrics.gauge "serve.active"

type endpoint = Unix_socket of string | Tcp of string * int

let pp_endpoint ppf = function
  | Unix_socket path -> Format.fprintf ppf "unix://%s" path
  | Tcp (host, port) -> Format.fprintf ppf "tcp://%s:%d" host port

type t = {
  mutex : Mutex.t;
  idle : Condition.t;  (* signalled when a handler or acceptor exits *)
  mutable stopping : bool;
  mutable acceptors : Thread.t list;
  mutable handlers : int;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable next_conn : int;
  listeners : (Unix.file_descr * endpoint) list;
  sched : Sched.t;
  solo : Service.t;
  fan : Service.t;
  store : Store.t option;
  batch : int;
}

let bind_endpoint = function
  | Unix_socket path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      (fd, Unix_socket path)
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      (* port 0 means "pick one"; report what the kernel chose *)
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, Tcp (host, port))

let create ?(batch = 16) ?jobs ?queue ?cache ?store ~endpoints () =
  if endpoints = [] then invalid_arg "Daemon.create: no endpoints";
  let jobs =
    match jobs with Some j -> j | None -> Smem_parallel.Pool.default_jobs ()
  in
  (* A client hanging up mid-reply must be an EPIPE on that connection,
     not a fatal signal for the whole daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let store =
    match (store, cache) with
    | Some path, Some cache -> Some (Store.attach ~path cache)
    | _ -> None
  in
  {
    mutex = Mutex.create ();
    idle = Condition.create ();
    stopping = false;
    acceptors = [];
    handlers = 0;
    conns = Hashtbl.create 16;
    next_conn = 0;
    listeners = List.map bind_endpoint endpoints;
    sched = Sched.create ?queue ~jobs ();
    solo = Service.create ?cache ~jobs ();
    fan = Service.create ?cache ~jobs:1 ();
    store;
    batch;
  }

let addresses t = List.map snd t.listeners
let store t = t.store

let handle t conn_id fd =
  let finally () =
    Mutex.lock t.mutex;
    Hashtbl.remove t.conns conn_id;
    t.handlers <- t.handlers - 1;
    Metrics.set m_active t.handlers;
    Condition.signal t.idle;
    Mutex.unlock t.mutex;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  Fun.protect ~finally (fun () ->
      let frames = Frames.of_fd fd in
      let oc = Unix.out_channel_of_descr fd in
      (* A torn connection (reset mid-read, gone mid-write) ends the
         session; it must not kill the daemon. *)
      try Server.session ~batch:t.batch ~sched:t.sched ~solo:t.solo
            ~fan:t.fan frames oc;
          (try flush oc with Sys_error _ -> ())
      with Sys_error _ | Unix.Unix_error _ -> ())

(* The accept loop polls: a closed listener does not reliably wake a
   thread blocked in [accept], so the listener is non-blocking and
   guarded by a short [select] — [stop] is observed within a poll
   tick, with no wake-up race. *)
let accept_tick = 0.25

let accept_loop t (lfd, endpoint) =
  let cleanup () =
    (try Unix.close lfd with Unix.Unix_error _ -> ());
    (match endpoint with
    | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
    | Tcp _ -> ());
    Mutex.lock t.mutex;
    Condition.signal t.idle;
    Mutex.unlock t.mutex
  in
  let rec loop () =
    if t.stopping then cleanup ()
    else
      match Unix.select [ lfd ] [] [] accept_tick with
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.accept lfd with
          | cfd, _ ->
              Unix.clear_nonblock cfd;
              Metrics.incr m_connections;
              Mutex.lock t.mutex;
              if t.stopping then begin
                Mutex.unlock t.mutex;
                (try Unix.close cfd with Unix.Unix_error _ -> ());
                cleanup ()
              end
              else begin
                t.next_conn <- t.next_conn + 1;
                let id = t.next_conn in
                Hashtbl.replace t.conns id cfd;
                t.handlers <- t.handlers + 1;
                Metrics.set m_active t.handlers;
                Mutex.unlock t.mutex;
                ignore (Thread.create (fun () -> handle t id cfd) ());
                loop ()
              end
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              loop ()
          | exception Unix.Unix_error _ -> cleanup ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> cleanup ()
  in
  loop ()

let start t =
  t.acceptors <- List.map (fun l -> Thread.create (accept_loop t) l) t.listeners

let stop t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  let open_conns = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns [] in
  Mutex.unlock t.mutex;
  if not already then
    (* Each acceptor notices [stopping] within a poll tick and closes
       its own listener.  Handlers blocked in a read see EOF, answer
       what they already hold, and exit; in-flight batches complete
       normally. *)
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      open_conns

let wait t =
  List.iter Thread.join t.acceptors;
  Mutex.lock t.mutex;
  while t.handlers > 0 do
    Condition.wait t.idle t.mutex
  done;
  Mutex.unlock t.mutex;
  Sched.shutdown t.sched;
  Option.iter Store.close t.store
