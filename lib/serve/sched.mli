(** Shared worker-domain scheduler for the serving daemon.

    One bounded FIFO task queue drained by a fixed set of domains.
    Connection threads submit whole request batches with {!map} and
    block for the results; because each connection waits for its batch
    before reading the next, FIFO admission is fair across clients (no
    connection holds more than its batch size in queue slots), and the
    queue bound is the server's backpressure: a full queue blocks the
    submitter, which stops reading its socket, which pushes the stall
    back to the client.

    Metrics: [sched.tasks] (tasks executed) and [sched.queue_high]
    (high-water queue depth). *)

type t

val create : ?queue:int -> jobs:int -> unit -> t
(** [jobs] worker domains, a queue bounded at [queue] (default 256)
    pending tasks.
    @raise Invalid_argument if either is non-positive. *)

val map : t -> (unit -> 'a) list -> 'a list
(** Run every thunk on the worker pool and return the results in input
    order.  Blocks while the queue is full (backpressure) and until
    the whole batch has completed.  A thunk's exception is re-raised
    at the submitter; the workers themselves never die.  After
    {!shutdown} has begun, thunks run inline on the caller so draining
    connections still complete. *)

val shutdown : t -> unit
(** Close the queue, let the workers drain what is already queued,
    and join them.  Idempotent in effect; subsequent {!map} calls run
    inline. *)
