(** Shared worker scheduler for the serving daemon, with two backends.

    The production backend ({!create}) is one bounded FIFO task queue
    drained by a fixed set of domains.  Connection threads submit whole
    request batches with {!map} and block for the results; because each
    connection waits for its batch before reading the next, FIFO
    admission is fair across clients (no connection holds more than its
    batch size in queue slots), and the queue bound is the server's
    backpressure: a full queue blocks the submitter, which stops
    reading its socket, which pushes the stall back to the client.

    The deterministic backend ({!inline}) exists for the simulation
    harness ({!Smem_sim}): no domains, no queue — a batch's tasks run
    on the submitting thread in an order chosen by an injectable hook,
    and a pre-task hook may raise {!Worker_crashed} to model a worker
    domain dying mid-batch.  Both backends honor the same {!map}
    contract, so {!Server} code cannot tell them apart.

    Metrics: [sched.tasks] (tasks executed) and [sched.queue_high]
    (high-water queue depth, production backend only). *)

type t

exception Worker_crashed of string
(** Simulated worker-domain crash: raised by an {!inline} [on_task]
    hook; the serving loop answers the affected request with an
    [internal] error in position instead of dying. *)

val create : ?queue:int -> jobs:int -> unit -> t
(** [jobs] worker domains, a queue bounded at [queue] (default 256)
    pending tasks.
    @raise Invalid_argument if either is non-positive. *)

val inline :
  ?order:(batch:int -> size:int -> int list) ->
  ?on_task:(batch:int -> index:int -> unit) ->
  unit ->
  t
(** A deterministic scheduler running every task on the caller.
    [order ~batch ~size] picks the execution order of the [batch]-th
    {!map} call's [size] tasks (default: input order; must be a
    permutation of [0..size-1]).  [on_task ~batch ~index] runs just
    before task [index]; an exception it raises is recorded as that
    task's failure — raise {!Worker_crashed} to simulate a worker
    dying mid-batch. *)

val map : t -> (unit -> 'a) list -> 'a list
(** Run every thunk and return the results in input order.  On the
    production backend this fans over the worker pool, blocks while
    the queue is full (backpressure) and until the whole batch has
    completed; after {!shutdown} has begun, thunks run inline on the
    caller so draining connections still complete.  On either backend
    a task's exception is re-raised at the submitter and the scheduler
    itself survives. *)

val shutdown : t -> unit
(** Close the queue, let the workers drain what is already queued,
    and join them.  Idempotent in effect; subsequent {!map} calls run
    inline.  A no-op on the {!inline} backend. *)
