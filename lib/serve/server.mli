(** The NDJSON serving loop: requests in, responses out, in order.

    Requests arrive one JSON object per line ({!Smem_api.Wire}),
    responses leave the same way, in per-client request order.  The
    reader blocks for the {e first} line of a batch and then drains
    only what is already available (up to [batch] lines, via
    {!Frames}), so strict request/response clients get partial batches
    answered immediately — no [--batch 1] workaround, no head-of-line
    stall — while pipelining clients still fill whole batches and get
    cross-request parallelism.

    Execution: a lone request runs on a service owning the full [jobs]
    budget (its cells parallelize even when it is the only request in
    flight); batches of two or more fan across the shared {!Sched}
    with a [jobs = 1] service each, so the two layers of parallelism
    never multiply.

    Requests that carry no [id] are numbered by arrival order within
    the session (starting at 1).  Unparseable lines produce
    [bad-request] error responses in position, and never tear the loop
    down.  A request whose {e execution} raises — a worker crash
    mid-batch, an engine bug — answers with an [internal] error in
    position and the session keeps serving; if the scheduler itself
    fails, the whole batch answers [internal] errors, in order.

    The loop is exposed both whole ({!session}: loop to end of input)
    and one iteration at a time ({!step}), which is how the
    deterministic simulation harness drives it — one batch per
    schedule step, over in-memory frames and sinks.

    Metrics: [serve.requests], [serve.batches],
    [serve.partial_batches], [serve.parse_errors],
    [serve.task_failures]. *)

type sink = { write : string -> unit; flush : unit -> unit }
(** Where response lines go: an {!out_channel} in production
    ({!sink_of_channel}), an in-memory buffer under simulation. *)

val sink_of_channel : out_channel -> sink

type conn
(** One client's session state: its frame reader, response sink, and
    arrival counter. *)

val conn : Frames.t -> sink -> conn

val step :
  ?batch:int -> sched:Sched.t -> solo:Service.t -> fan:Service.t -> conn -> bool
(** One read/execute/reply iteration: block for the first request
    line, drain up to [batch - 1] more without blocking, execute,
    write every response (in order) and flush.  Returns [false] at end
    of input, [true] otherwise.  [batch] defaults to [16]. *)

val session :
  ?batch:int ->
  sched:Sched.t ->
  solo:Service.t ->
  fan:Service.t ->
  Frames.t ->
  out_channel ->
  unit
(** One client's read/execute/reply loop ({!step} iterated to end of
    input), over shared infrastructure — the {!Daemon} runs one
    [session] per connection against one process-wide scheduler and
    service pair. *)

val run :
  ?batch:int ->
  ?jobs:int ->
  ?cache:Smem_cache.Cache.t ->
  ?store:string ->
  in_channel ->
  out_channel ->
  unit
(** Self-contained single-client loop (the [smem serve] stdio mode and
    the tests): builds a scheduler with [jobs] workers (default
    {!Smem_parallel.Pool.default_jobs}), attaches the persistent
    verdict store at [store] when both it and a [cache] are given,
    runs a {!session}, and tears everything down at EOF.

    The input channel's descriptor is read directly (see
    {!Frames.of_in_channel}); do not read from [ic] around this
    call. *)
