(** The [smem serve] daemon loop: newline-delimited JSON over a
    channel pair.

    Requests arrive one JSON object per line ({!Smem_api.Wire}),
    responses leave the same way, in request order.  The loop reads up
    to [batch] lines, executes the batch's independent requests across
    a {!Smem_parallel.Pool}, writes the responses, flushes, and
    repeats until end of input.

    Batching semantics: the reader {e blocks} until the batch fills or
    input ends, so a client that waits for an answer before sending its
    next request must run with [batch = 1] (strict request/response
    alternation).  Pipelining clients — and pipes that send a whole
    corpus and close, like the CI smoke test — get cross-request
    parallelism for free.

    Requests that carry no [id] are numbered by arrival order
    (starting at 1) so every response is attributable.  Unparseable
    lines produce [bad-request] error responses in position, and never
    tear the loop down.

    Metrics: [serve.requests], [serve.batches], [serve.parse_errors]
    in {!Smem_obs.Metrics}. *)

val run :
  ?batch:int ->
  ?jobs:int ->
  ?cache:Smem_cache.Cache.t ->
  in_channel ->
  out_channel ->
  unit
(** [batch] defaults to [16]; [jobs] (default
    {!Smem_parallel.Pool.default_jobs}) bounds the domains used per
    batch.  The underlying {!Service.t} is built with [jobs = 1]:
    parallelism comes from fanning requests, never nested pools. *)
