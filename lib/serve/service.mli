(** The engine behind the typed API: executes {!Smem_api.Request}s.

    One service instance owns an optional verdict cache and a
    parallelism budget.  Membership questions (check/corpus cells, and
    the fuzzer's oracle queries via {!check_history}) are answered
    through the cache when one is attached, keyed by
    [(Canon.digest history, model key)] — so a history resubmitted
    under any processor permutation or location/value renaming is a
    cache hit.  Classification and distinction requests enumerate
    history spaces and are always computed fresh.

    [jobs] bounds the worker domains {e one} request may use.  The
    {!Server} fans whole requests across a pool instead, so it builds
    its service with [jobs = 1] — nesting pools would multiply
    domains. *)

type t

val create :
  ?cache:Smem_cache.Cache.t -> ?jobs:int -> ?clock:(unit -> int) -> unit -> t
(** [jobs] defaults to [1].  [clock] supplies the nanosecond readings
    behind each response's [elapsed_ns] (default
    {!Smem_obs.Clock.now}); the simulation harness injects a virtual
    clock here so responses are byte-identical across runs. *)

val cache : t -> Smem_cache.Cache.t option

val check_model :
  t -> Smem_core.Model.t -> Smem_core.History.t -> bool * bool
(** [(verdict, cached)] — is the history allowed by the model, and was
    the answer served from the cache. *)

val check_history : t -> Smem_core.Model.t -> Smem_core.History.t -> bool
(** [fst (check_model t m h)] — drop-in for {!Smem_core.Model.check}
    call sites that want caching without the provenance bit. *)

val handle : ?id:int -> t -> Smem_api.Request.t -> Smem_api.Response.t
(** Execute one request.  Never raises on bad input — unknown models or
    tests, unparseable litmus text, uncertifiable models and
    kernel-rejected certificates all come back as structured
    {!Smem_api.Response.Error} payloads. *)
