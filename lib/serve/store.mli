(** Persistent on-disk verdict store (smem-store/1).

    An append-only log of [(canonical digest, model key, verdict)]
    records.  {!attach} replays an existing log into the cache (so a
    restarted daemon answers known histories without recomputing) and
    then subscribes to the cache's [on_store] hook, appending — and
    flushing — every subsequently computed verdict.

    Replay tolerates a truncated final line (crash mid-append) and
    skips comments and malformed records instead of failing; verdicts
    never change for a given key, so the log needs no compaction and
    duplicate records are harmless.

    Metrics: [store.appends], [store.replayed]. *)

type t

val attach : path:string -> Smem_cache.Cache.t -> t
(** Replay [path] (if it exists) into the cache with the hook
    disarmed, create the file otherwise, then install the append hook.
    The store becomes the cache's persistence sink until {!close}. *)

val replayed : t -> int
(** Records loaded into the cache at {!attach} time. *)

val appended : t -> int
(** Records appended since {!attach}. *)

val path : t -> string

val close : t -> unit
(** Flush and close the log.  Later cache stores are dropped silently
    (the hook stays installed but writes nowhere) — close on the way
    out, after the daemon has drained. *)
