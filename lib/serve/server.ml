module Wire = Smem_api.Wire
module Response = Smem_api.Response
module Metrics = Smem_obs.Metrics

let m_requests = Metrics.counter "serve.requests"
let m_batches = Metrics.counter "serve.batches"
let m_partial_batches = Metrics.counter "serve.partial_batches"
let m_parse_errors = Metrics.counter "serve.parse_errors"

(* One parsed line: either a request or its in-position bad-request
   reply.  Arrival numbering is per session (per connection), starting
   at 1, and only used when the client sent no id of its own. *)
type parsed =
  | Req of int * Smem_api.Request.t
  | Bad of int * string

let parse_line next_id line =
  incr next_id;
  let arrival = !next_id in
  match Wire.parse_request_line line with
  | Error message ->
      Metrics.incr m_parse_errors;
      Bad (arrival, message)
  | Ok (id, req) -> Req (Option.value id ~default:arrival, req)

let run_parsed service = function
  | Bad (id, message) ->
      Response.error ~id ~code:Response.Bad_request message
  | Req (id, req) -> Service.handle ~id service req

(* Read one batch: block for the first line, then take only what is
   already available.  This is the fix for the head-of-line stall — a
   client that sends a single request and waits for its reply gets a
   batch of one instead of hanging against a reader that wants 16. *)
let read_batch frames batch =
  match Frames.next frames with
  | None -> []
  | Some first -> first :: Frames.drain frames ~max:(batch - 1)

(* One client session over a frame reader and an output channel.

   Lone requests run on [solo] (the full jobs budget — a single heavy
   corpus request in an otherwise idle batch still parallelizes across
   its cells); batches of two or more fan across [sched] with the
   [fan] service (jobs = 1 per request, parallelism from the fanning,
   so the domain budget is never multiplied). *)
let session ?(batch = 16) ~sched ~solo ~fan frames oc =
  let batch = max 1 batch in
  let next_id = ref 0 in
  let rec loop () =
    match read_batch frames batch with
    | [] -> ()
    | lines ->
        Metrics.incr m_batches;
        if List.compare_length_with lines batch < 0 then
          Metrics.incr m_partial_batches;
        Metrics.add m_requests (List.length lines);
        let parsed = List.map (parse_line next_id) lines in
        let responses =
          match parsed with
          | [ one ] -> [ run_parsed solo one ]
          | many ->
              Sched.map sched (List.map (fun p () -> run_parsed fan p) many)
        in
        List.iter
          (fun resp -> Out_channel.output_string oc (Wire.response_line resp))
          responses;
        Out_channel.flush oc;
        loop ()
  in
  loop ()

let run ?(batch = 16) ?jobs ?cache ?store ic oc =
  let jobs =
    match jobs with Some j -> j | None -> Smem_parallel.Pool.default_jobs ()
  in
  let store =
    match (store, cache) with
    | Some path, Some cache -> Some (Store.attach ~path cache)
    | Some _, None -> None  (* nothing to persist without a cache *)
    | None, _ -> None
  in
  let sched = Sched.create ~jobs () in
  let solo = Service.create ?cache ~jobs () in
  let fan = Service.create ?cache ~jobs:1 () in
  Fun.protect
    ~finally:(fun () ->
      Sched.shutdown sched;
      Option.iter Store.close store)
    (fun () -> session ~batch ~sched ~solo ~fan (Frames.of_in_channel ic) oc)
