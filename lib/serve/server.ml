module Wire = Smem_api.Wire
module Response = Smem_api.Response
module Metrics = Smem_obs.Metrics

let m_requests = Metrics.counter "serve.requests"
let m_batches = Metrics.counter "serve.batches"
let m_partial_batches = Metrics.counter "serve.partial_batches"
let m_parse_errors = Metrics.counter "serve.parse_errors"
let m_task_failures = Metrics.counter "serve.task_failures"

(* One parsed line: either a request or its in-position bad-request
   reply, tagged with the protocol version the client spoke so the
   response comes back in the same version.  A line too broken to
   reveal its version is answered in v1, the lowest common
   denominator.  Arrival numbering is per session (per connection),
   starting at 1, and only used when the client sent no id of its
   own. *)
type parsed =
  | Req of int * Wire.proto * Smem_api.Request.t
  | Bad of int * string

let parse_line next_id line =
  incr next_id;
  let arrival = !next_id in
  match Wire.parse_request_line line with
  | Error message ->
      Metrics.incr m_parse_errors;
      Bad (arrival, message)
  | Ok (id, proto, req) -> Req (Option.value id ~default:arrival, proto, req)

let id_of_parsed = function Req (id, _, _) | Bad (id, _) -> id
let proto_of_parsed = function Req (_, proto, _) -> proto | Bad _ -> Wire.V1

let internal_error id e =
  Metrics.incr m_task_failures;
  Response.error ~id ~code:Response.Internal
    ("request execution failed: " ^ Printexc.to_string e)

(* Execute one parsed line.  {!Service.handle} never raises on bad
   input, but a crashed worker ({!Sched.Worker_crashed}) or an
   engine bug can still raise — that costs the one request an
   [internal] error in position, never the session. *)
let run_parsed service p =
  match p with
  | Bad (id, message) ->
      Response.error ~id ~code:Response.Bad_request message
  | Req (id, _, req) -> (
      try Service.handle ~id service req
      with e -> internal_error id e)

(* Read one batch: block for the first line, then take only what is
   already available.  This is the fix for the head-of-line stall — a
   client that sends a single request and waits for its reply gets a
   batch of one instead of hanging against a reader that wants 16. *)
let read_batch frames batch =
  match Frames.next frames with
  | None -> []
  | Some first -> first :: Frames.drain frames ~max:(batch - 1)

(* Where responses go.  An out_channel in production; the simulation
   harness captures responses in a buffer instead. *)
type sink = { write : string -> unit; flush : unit -> unit }

let sink_of_channel oc =
  {
    write = (fun s -> Out_channel.output_string oc s);
    flush = (fun () -> Out_channel.flush oc);
  }

type conn = { frames : Frames.t; sink : sink; next_id : int ref }

let conn frames sink = { frames; sink; next_id = ref 0 }

(* One read/execute/reply iteration of a session.

   Lone requests run on [solo] (the full jobs budget — a single heavy
   corpus request in an otherwise idle batch still parallelizes across
   its cells); batches of two or more fan across [sched] with the
   [fan] service (jobs = 1 per request, parallelism from the fanning,
   so the domain budget is never multiplied).

   Fault tolerance: a request whose execution raises — a worker crash
   mid-batch, an engine bug — answers with an [internal] error in its
   position.  If the scheduler itself fails, the whole batch answers
   [internal] errors, in order.  Either way the session keeps going:
   the next batch is read and served normally. *)
let step ?(batch = 16) ~sched ~solo ~fan { frames; sink; next_id } =
  let batch = max 1 batch in
  match read_batch frames batch with
  | [] -> false
  | lines ->
      Metrics.incr m_batches;
      if List.compare_length_with lines batch < 0 then
        Metrics.incr m_partial_batches;
      Metrics.add m_requests (List.length lines);
      let parsed = List.map (parse_line next_id) lines in
      let responses =
        match parsed with
        | [ one ] -> [ run_parsed solo one ]
        | many -> (
            try Sched.map sched (List.map (fun p () -> run_parsed fan p) many)
            with e -> List.map (fun p -> internal_error (id_of_parsed p) e) many)
      in
      List.iter2
        (fun p resp ->
          sink.write (Wire.response_line ~proto:(proto_of_parsed p) resp))
        parsed responses;
      sink.flush ();
      true

(* One client session: iterate {!step} to end of input. *)
let session ?batch ~sched ~solo ~fan frames oc =
  let c = conn frames (sink_of_channel oc) in
  let rec loop () = if step ?batch ~sched ~solo ~fan c then loop () in
  loop ()

let run ?(batch = 16) ?jobs ?cache ?store ic oc =
  let jobs =
    match jobs with Some j -> j | None -> Smem_parallel.Pool.default_jobs ()
  in
  let store =
    match (store, cache) with
    | Some path, Some cache -> Some (Store.attach ~path cache)
    | Some _, None -> None  (* nothing to persist without a cache *)
    | None, _ -> None
  in
  let sched = Sched.create ~jobs () in
  let solo = Service.create ?cache ~jobs () in
  let fan = Service.create ?cache ~jobs:1 () in
  Fun.protect
    ~finally:(fun () ->
      Sched.shutdown sched;
      Option.iter Store.close store)
    (fun () -> session ~batch ~sched ~solo ~fan (Frames.of_in_channel ic) oc)
