module Wire = Smem_api.Wire
module Response = Smem_api.Response
module Metrics = Smem_obs.Metrics

let m_requests = Metrics.counter "serve.requests"
let m_batches = Metrics.counter "serve.batches"
let m_parse_errors = Metrics.counter "serve.parse_errors"

let read_batch ic batch =
  let rec go acc n =
    if n >= batch then List.rev acc
    else
      match In_channel.input_line ic with
      | None -> List.rev acc
      | Some line -> go (line :: acc) (n + 1)
  in
  go [] 0

let run ?(batch = 16) ?jobs ?cache ic oc =
  let jobs =
    match jobs with Some j -> j | None -> Smem_parallel.Pool.default_jobs ()
  in
  let batch = max 1 batch in
  let service = Service.create ?cache ~jobs:1 () in
  let next_id = ref 0 in
  let answer line =
    incr next_id;
    let arrival = !next_id in
    match Wire.parse_request_line line with
    | Error message ->
        Metrics.incr m_parse_errors;
        fun () ->
          Response.error ~id:arrival ~code:Response.Bad_request message
    | Ok (id, req) ->
        let id = Option.value id ~default:arrival in
        fun () -> Service.handle ~id service req
  in
  let rec loop () =
    match read_batch ic batch with
    | [] -> ()
    | lines ->
        Metrics.incr m_batches;
        Metrics.add m_requests (List.length lines);
        (* Parse sequentially (arrival numbering is stateful), execute
           in parallel, emit in order. *)
        let tasks = List.map answer lines in
        let responses =
          Smem_parallel.Pool.map ~jobs (fun task -> task ()) tasks
        in
        List.iter
          (fun resp -> Out_channel.output_string oc (Wire.response_line resp))
          responses;
        Out_channel.flush oc;
        loop ()
  in
  loop ()
