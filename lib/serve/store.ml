(* The persistent verdict store: an append-only log of
   (canonical digest, model key, verdict) records backing the in-memory
   cache, so a restarted daemon starts warm.

   Format (smem-store/1): a '#'-prefixed header line, then one record
   per line — "digest model 0|1", space-separated.  Both key halves
   are space-free by construction (the digest is MD5 hex from
   {!Smem_core.Canon}, model keys are registry identifiers).  Replay
   is forgiving: blank, comment, malformed and truncated lines are
   skipped, so a crash mid-append costs at most the final record.

   The log is append-only on purpose: a verdict for a digest x model
   never changes (checkers are deterministic), so compaction would buy
   disk space, not correctness.  Re-computation after a cache eviction
   may append a duplicate record; replay collapses duplicates through
   [Cache.add]'s last-write-wins semantics.

   Appends go through the cache's [on_store] hook, which fires from
   whatever domain computed the verdict, so the writer is
   mutex-guarded.  Every append is flushed: a verdict costs a search,
   a flush costs a syscall. *)

module Metrics = Smem_obs.Metrics
module Cache = Smem_cache.Cache

let m_appends = Metrics.counter "store.appends"
let m_replayed = Metrics.counter "store.replayed"

let header = "# smem-store/1"

type t = {
  path : string;
  oc : out_channel;
  mutex : Mutex.t;
  replayed : int;
  mutable appended : int;
  mutable closed : bool;
}

let parse_record line =
  match String.split_on_char ' ' line with
  | [ digest; model; verdict ]
    when digest <> "" && model <> "" ->
      (match verdict with
      | "1" -> Some (digest, model, true)
      | "0" -> Some (digest, model, false)
      | _ -> None)
  | _ -> None

let replay_file path cache =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if line <> "" && line.[0] <> '#' then
               match parse_record line with
               | Some (digest, model, verdict) ->
                   (* notify:false — replaying must not re-append *)
                   Cache.add ~notify:false cache ~digest ~model verdict;
                   incr n
               | None -> ()
           done
         with End_of_file -> ());
        !n)
  end

let append t ~digest ~model verdict =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if not t.closed then begin
        output_string t.oc
          (Printf.sprintf "%s %s %c\n" digest model
             (if verdict then '1' else '0'));
        flush t.oc;
        t.appended <- t.appended + 1;
        Metrics.incr m_appends
      end)

(* A crash mid-append leaves a torn final record with no trailing
   newline.  Appending straight after it would splice the next record
   onto the torn bytes, corrupting a good record into garbage (found
   by the simulation harness's store-kill fault).  Sealing the tail
   with a newline turns the torn bytes into one malformed line that
   replay skips forever. *)
let torn_tail path =
  Sys.file_exists path
  && In_channel.with_open_bin path (fun ic ->
         let n = In_channel.length ic in
         n > 0L
         &&
         (In_channel.seek ic (Int64.sub n 1L);
          In_channel.input_char ic <> Some '\n'))

let attach ~path cache =
  let replayed = replay_file path cache in
  Metrics.add m_replayed replayed;
  let fresh = not (Sys.file_exists path) in
  let seal = torn_tail path in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  if fresh then begin
    output_string oc (header ^ "\n");
    flush oc
  end
  else if seal then begin
    output_string oc "\n";
    flush oc
  end;
  let t =
    { path; oc; mutex = Mutex.create (); replayed; appended = 0;
      closed = false }
  in
  Cache.on_store cache (append t);
  t

let replayed t = t.replayed
let appended t = t.appended
let path t = t.path

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        flush t.oc;
        close_out_noerr t.oc
      end)
