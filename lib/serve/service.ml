module Model = Smem_core.Model
module Registry = Smem_core.Registry
module Canon = Smem_core.Canon
module Cache = Smem_cache.Cache
module Request = Smem_api.Request
module Response = Smem_api.Response
module Verdict = Smem_api.Verdict
module Test = Smem_litmus.Test
module Clock = Smem_obs.Clock

type t = { cache : Cache.t option; jobs : int; clock : unit -> int }

(* The clock is a seam: responses carry [elapsed_ns], and the
   deterministic simulation harness needs byte-identical responses
   across runs, so it injects a virtual clock advancing a fixed tick
   per reading.  Production reads the monotonic clock. *)
let create ?cache ?(jobs = 1) ?(clock = Clock.now) () = { cache; jobs; clock }
let cache t = t.cache

let check_model t model h =
  match t.cache with
  | None -> (Model.check model h, false)
  | Some c ->
      let digest = Canon.digest h in
      Cache.find_or_add c ~digest ~model:model.Model.key (fun () ->
          Model.check model h)

let check_history t model h = fst (check_model t model h)

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)

type failure = { code : Response.error_code; message : string }

let ( let* ) = Result.bind

(* Registry.resolve's failure message carries the reason — a grammar
   parse error, a bad family argument, or an unknown name with a
   did-you-mean suggestion. *)
let resolve_model key =
  match Registry.resolve key with
  | Ok m -> Ok m
  | Error reason ->
      Error { code = Response.Unknown_model; message = reason }

let resolve_models = function
  | [] -> Ok Registry.all
  | keys ->
      List.fold_right
        (fun key acc ->
          let* acc = acc in
          let* m = resolve_model key in
          Ok (m :: acc))
        keys (Ok [])

let resolve_test = function
  | Request.Named name -> (
      match Smem_litmus.Corpus.find name with
      | Some t -> Ok t
      | None ->
          Error
            {
              code = Response.Unknown_test;
              message = "unknown corpus test: " ^ name;
            })
  | Request.Inline text -> (
      match Smem_litmus.Parse.test_of_string text with
      | Ok t -> Ok t
      | Error e ->
          Error
            {
              code = Response.Bad_request;
              message =
                Format.asprintf "litmus parse: %a" Smem_litmus.Parse.pp_error e;
            })

let scope_to_config (s : Request.scope) =
  {
    Smem_lattice.Enumerate.procs = s.Request.procs;
    nlocs = s.Request.nlocs;
    max_value = s.Request.max_value;
    labeled = s.Request.labeled;
  }

let resolve_scopes = function
  | [] -> Smem_lattice.Classify.standard_scopes
  | scopes -> List.map scope_to_config scopes

(* One check/corpus cell: a cached-or-fresh membership verdict. *)
let cell t (test, model) =
  let got, cached = check_model t model test.Test.history in
  ( Verdict.v ~subject:test.Test.name ~authority:model.Model.key ~cached
      ?expected:(Test.expected test model.Model.key)
      (Some (Verdict.status_of_bool got)),
    cached )

let check_cells t tests models =
  let cells =
    List.concat_map (fun tst -> List.map (fun m -> (tst, m)) models) tests
  in
  let results =
    if t.jobs > 1 then Smem_parallel.Pool.map ~jobs:t.jobs (cell t) cells
    else List.map (cell t) cells
  in
  let verdicts = List.map fst results in
  let cached = List.length (List.filter snd results) in
  (Response.Verdicts verdicts, cached, List.length results - cached)

let relation_name = function
  | Smem_lattice.Classify.Equal -> "equal"
  | Smem_lattice.Classify.Stronger -> "stronger"
  | Smem_lattice.Classify.Weaker -> "weaker"
  | Smem_lattice.Classify.Incomparable -> "incomparable"

let classify t models scopes =
  let matrix =
    Smem_lattice.Classify.classify_scopes ~jobs:t.jobs ~models scopes
  in
  let keys =
    Array.of_list
      (List.map (fun m -> m.Model.key) matrix.Smem_lattice.Classify.models)
  in
  let n = Array.length keys in
  let relations = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if i <> j then
        relations :=
          ( keys.(i),
            keys.(j),
            relation_name (Smem_lattice.Classify.relation matrix i j) )
          :: !relations
    done
  done;
  Response.Classification
    {
      total = matrix.Smem_lattice.Classify.total;
      allowed =
        List.mapi
          (fun i _ ->
            (keys.(i), matrix.Smem_lattice.Classify.allowed_counts.(i)))
          matrix.Smem_lattice.Classify.models;
      relations = !relations;
      hasse =
        List.map
          (fun (i, j) -> (keys.(i), keys.(j)))
          (Smem_lattice.Classify.hasse_edges matrix);
    }

let witness_text name h =
  Smem_litmus.Print.to_string (Test.of_history ~name ~expect:[] h)

let distinguish t a b scopes =
  match Smem_lattice.Distinguish.compare ~jobs:t.jobs ~a ~b scopes with
  | Smem_lattice.Distinguish.Equal ->
      Response.Distinction { relation = "equal"; witnesses = [] }
  | Smem_lattice.Distinguish.A_stronger w ->
      Response.Distinction
        {
          relation = "a-stronger";
          witnesses = [ ("allowed-by-b-only", witness_text "b_only" w) ];
        }
  | Smem_lattice.Distinguish.B_stronger w ->
      Response.Distinction
        {
          relation = "b-stronger";
          witnesses = [ ("allowed-by-a-only", witness_text "a_only" w) ];
        }
  | Smem_lattice.Distinguish.Incomparable (wa, wb) ->
      Response.Distinction
        {
          relation = "incomparable";
          witnesses =
            [
              ("allowed-by-a-only", witness_text "a_only" wa);
              ("allowed-by-b-only", witness_text "b_only" wb);
            ];
        }

let certify test model format =
  match
    Smem_cert.Cert.certify model ~name:test.Test.name test.Test.history
  with
  | None ->
      Error
        {
          code = Response.Uncertifiable;
          message =
            model.Model.key
            ^ " declares no parameter triple; it cannot be certified";
        }
  | Some cert -> (
      match Smem_cert.Kernel.verify cert with
      | Error reason ->
          Error
            {
              code = Response.Rejected;
              message = "kernel rejected the certificate: " ^ reason;
            }
      | Ok _ ->
          Ok
            (Response.Certificate
               {
                 format = (match format with `Sexp -> "sexp" | `Json -> "json");
                 body = Smem_cert.Cert.to_string ~format cert;
               }))

(* The model catalogue, from the registry — the single source of truth
   the CLI table and docs/API.md's model listing are generated from. *)
let catalogue () =
  Response.Catalogue
    {
      models =
        List.map
          (fun (m : Model.t) ->
            {
              Response.key = m.Model.key;
              name = m.Model.name;
              description = m.Model.description;
              params = Option.map Model.params_strings m.Model.params;
            })
          Registry.all;
      families =
        List.map
          (fun (f : Registry.family_info) ->
            {
              Response.family = f.Registry.family;
              doc = f.Registry.doc;
              params = f.Registry.params;
            })
          Registry.families;
    }

let execute t = function
  | Request.Check { test; models } ->
      let* test = resolve_test test in
      let* models = resolve_models models in
      Ok (check_cells t [ test ] models)
  | Request.Corpus { models } ->
      let* models = resolve_models models in
      Ok (check_cells t Smem_litmus.Corpus.all models)
  | Request.Classify { models; scopes } ->
      let* models =
        match models with
        | [] -> Ok Registry.comparable
        | keys -> resolve_models keys
      in
      Ok (classify t models (resolve_scopes scopes), 0, 0)
  | Request.Distinguish { a; b; scopes } ->
      let* a = resolve_model a in
      let* b = resolve_model b in
      Ok (distinguish t a b (resolve_scopes scopes), 0, 0)
  | Request.Certify { test; model; format } ->
      let* test = resolve_test test in
      let* model = resolve_model model in
      let* payload = certify test model format in
      Ok ((payload, 0, 1))
  | Request.Models -> Ok (catalogue (), 0, 0)

(* The view search raises the typed {!Smem_core.View.Too_large} on
   histories past its word-encoding capacity.  Workers re-raise in the
   parent ({!Smem_parallel.Pool.map}), so catching around [execute]
   covers the parallel cells too; the client gets a structured
   [too-large] instead of the catch-all [internal]. *)
let execute_safe t req =
  try execute t req
  with Smem_core.View.Too_large { nops; limit } ->
    Error
      {
        code = Response.Too_large;
        message =
          Printf.sprintf
            "history has %d operations; the view search supports at most %d"
            nops limit;
      }

let handle ?id t req =
  let t0 = t.clock () in
  let elapsed () = max 0 (t.clock () - t0) in
  let kind = Request.kind req in
  match execute_safe t req with
  | Ok (payload, cached, computed) ->
      { Response.id; kind; cached; computed; elapsed_ns = elapsed (); payload }
  | Error { code; message } ->
      {
        Response.id;
        kind;
        cached = 0;
        computed = 0;
        elapsed_ns = elapsed ();
        payload = Response.Error { code; message };
      }
