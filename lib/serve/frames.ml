(* A buffered NDJSON line reader over an abstract byte source.

   The server's batching bug was baked into [In_channel.input_line]:
   the channel cannot say whether another line is available without
   blocking, so a batch reader built on it must either block until the
   batch fills (head-of-line stall for request/response clients) or
   give up batching entirely.  Reading the bytes ourselves fixes that:
   [next] blocks for one line, [drain] takes whatever further complete
   lines can be had without blocking — the source's [readable] probe
   decides whether another [read] is safe.

   The source is abstract so the deterministic simulation harness
   ({!Smem_sim}) can feed a session from an in-memory channel with no
   descriptor underneath; [of_fd] wraps a real descriptor ([Unix.read]
   guarded by a zero-timeout [Unix.select]).

   Lines are split on '\n'; a trailing '\r' is dropped so CRLF clients
   work.  A final unterminated line is delivered at EOF.  For the fd
   source, [EINTR] is retried; [ECONNRESET]/[EPIPE] from a vanished
   peer count as EOF rather than tearing the server down. *)

type source = {
  read : Bytes.t -> int -> int -> int;
      (* like [Unix.read]: blocks for at least one byte, 0 = EOF *)
  readable : unit -> bool;
      (* would [read] return immediately, with bytes or EOF? *)
}

type t = {
  source : source;
  chunk : Bytes.t;
  pending : Buffer.t;  (* bytes read but not yet split into lines *)
  mutable lines : string list;  (* complete lines, oldest first *)
  mutable eof : bool;
}

let chunk_size = 65536

let of_source source =
  { source; chunk = Bytes.create chunk_size; pending = Buffer.create 256;
    lines = []; eof = false }

(* Would a [read] on [fd] return immediately?  True for regular files
   always (so file-fed tests and closed pipes still batch up to the
   limit), and for sockets exactly when data or EOF is pending. *)
let source_of_fd fd =
  let rec read buf pos len =
    match Unix.read fd buf pos len with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read buf pos len
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
  in
  let readable () =
    match Unix.select [ fd ] [] [] 0. with
    | [ _ ], _, _ -> true
    | _ -> false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  in
  { read; readable }

let of_fd fd = of_source (source_of_fd fd)
let of_in_channel ic = of_fd (Unix.descr_of_in_channel ic)

(* Split every complete line out of [pending] into [lines]. *)
let split_pending t =
  let s = Buffer.contents t.pending in
  match String.rindex_opt s '\n' with
  | None -> ()
  | Some last ->
      Buffer.clear t.pending;
      Buffer.add_substring t.pending s (last + 1) (String.length s - last - 1);
      let complete = String.sub s 0 last in
      let strip_cr l =
        let n = String.length l in
        if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l
      in
      t.lines <-
        t.lines @ List.map strip_cr (String.split_on_char '\n' complete)

let read_once t =
  match t.source.read t.chunk 0 chunk_size with
  | 0 -> t.eof <- true
  | n ->
      Buffer.add_subbytes t.pending t.chunk 0 n;
      split_pending t

let readable_now t = t.source.readable ()

let pop t =
  match t.lines with
  | l :: rest ->
      t.lines <- rest;
      Some l
  | [] -> None

(* The unterminated tail, delivered once at EOF. *)
let pop_tail t =
  if Buffer.length t.pending = 0 then None
  else begin
    let l = Buffer.contents t.pending in
    Buffer.clear t.pending;
    Some l
  end

let rec next t =
  match pop t with
  | Some _ as l -> l
  | None ->
      if t.eof then pop_tail t
      else begin
        read_once t;
        next t
      end

let drain t ~max:limit =
  let rec go acc n =
    if n >= limit then List.rev acc
    else
      match pop t with
      | Some l -> go (l :: acc) (n + 1)
      | None ->
          if (not t.eof) && readable_now t then begin
            read_once t;
            go acc n
          end
          else
            match if t.eof then pop_tail t else None with
            | Some l -> go (l :: acc) (n + 1)
            | None -> List.rev acc
  in
  go [] 0
