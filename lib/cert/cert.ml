open Smem_core

type row_op = {
  kind : Op.kind;
  loc : string;
  value : int;
  labeled : bool;
  at : (int * int) option;
}

type verdict = Smem_api.Verdict.status = Allowed | Forbidden

type evidence =
  | Witness of {
      views : (int * int list) list;
      rf : (int * int) list;
      sync : int list option;
      notes : string list;
    }
  | Frontier of { rf_maps : int; co_orders : int }

type t = {
  version : int;
  model : string;
  test : string option;
  rows : row_op list list;
  verdict : verdict;
  evidence : evidence;
}

let version = 1

(* ------------------------------------------------------------------ *)
(* History reconstruction                                             *)

let history c =
  let event r =
    let mk =
      match r.kind with Op.Read -> History.read | Op.Write -> History.write
    in
    match r.at with
    | Some at -> mk ~labeled:r.labeled ~at r.loc r.value
    | None -> mk ~labeled:r.labeled r.loc r.value
  in
  History.make (List.map (List.map event) c.rows)

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)

let rows_of_history h =
  List.init (History.nprocs h) (fun p ->
      History.proc_ops h p |> Array.to_list
      |> List.map (fun id ->
             let o = History.op h id in
             {
               kind = o.Op.kind;
               loc = History.loc_name h o.Op.loc;
               value = o.Op.value;
               labeled = Op.is_labeled o;
               at = History.interval h id;
             }))

(* Certificates number operations proc-major (row by row), matching the
   ids {!history} reassigns on reconstruction.  Histories recorded by
   the machine simulators interleave ids across processors, so witness
   evidence is remapped through this table on emission. *)
let remap_table h =
  let nprocs = History.nprocs h in
  let offsets = Array.make nprocs 0 in
  for p = 1 to nprocs - 1 do
    offsets.(p) <- offsets.(p - 1) + Array.length (History.proc_ops h (p - 1))
  done;
  fun id ->
    if id = History.init then History.init
    else
      let o = History.op h id in
      offsets.(o.Op.proc) + o.Op.index

let certify (m : Model.t) ?name (h : History.t) =
  match m.Model.params with
  | None -> None
  | Some _ ->
      let rows = rows_of_history h in
      let evidence =
        match Model.witness_of m h with
        | Some w ->
            let f = remap_table h in
            Witness
              {
                views =
                  List.map
                    (fun (p, seq) -> (p, List.map f seq))
                    w.Smem_core.Witness.views;
                rf =
                  List.map
                    (fun (r, wr) -> (f r, f wr))
                    w.Smem_core.Witness.rf;
                sync = Option.map (List.map f) w.Smem_core.Witness.sync;
                notes = w.Smem_core.Witness.notes;
              }
        | None ->
            let rf_maps, co_orders = Diagnose.candidate_space h in
            Frontier { rf_maps; co_orders }
      in
      let verdict =
        match evidence with Witness _ -> Allowed | Frontier _ -> Forbidden
      in
      Some { version; model = m.Model.key; test = name; rows; verdict; evidence }

(* ------------------------------------------------------------------ *)
(* S-expression form                                                  *)

let op_to_sexp r =
  let kw =
    (match r.kind with Op.Read -> "r" | Op.Write -> "w")
    ^ if r.labeled then "*" else ""
  in
  let base = [ Sexp.atom kw; Sexp.atom r.loc; Sexp.int r.value ] in
  let at =
    match r.at with
    | None -> []
    | Some (a, b) -> [ Sexp.list [ Sexp.atom "at"; Sexp.int a; Sexp.int b ] ]
  in
  Sexp.list (base @ at)

let evidence_to_sexp = function
  | Witness { views; rf; sync; notes } ->
      let view_s (p, seq) =
        Sexp.list
          [ Sexp.atom "view"; Sexp.int p; Sexp.list (List.map Sexp.int seq) ]
      in
      let pair_s (a, b) = Sexp.list [ Sexp.int a; Sexp.int b ] in
      List.concat
        [
          [ Sexp.list (Sexp.atom "views" :: List.map view_s views) ];
          [ Sexp.list (Sexp.atom "rf" :: List.map pair_s rf) ];
          (match sync with
          | None -> []
          | Some s -> [ Sexp.list (Sexp.atom "sync" :: List.map Sexp.int s) ]);
          [ Sexp.list (Sexp.atom "notes" :: List.map Sexp.atom notes) ];
        ]
  | Frontier { rf_maps; co_orders } ->
      [
        Sexp.list
          [
            Sexp.atom "frontier";
            Sexp.list [ Sexp.atom "rf-maps"; Sexp.int rf_maps ];
            Sexp.list [ Sexp.atom "co-orders"; Sexp.int co_orders ];
          ];
      ]

let to_sexp c =
  Sexp.list
    (List.concat
       [
         [ Sexp.atom "certificate" ];
         [ Sexp.list [ Sexp.atom "version"; Sexp.int c.version ] ];
         [ Sexp.list [ Sexp.atom "model"; Sexp.atom c.model ] ];
         (match c.test with
         | None -> []
         | Some t -> [ Sexp.list [ Sexp.atom "test"; Sexp.atom t ] ]);
         [
           Sexp.list
             (Sexp.atom "history"
             :: List.map
                  (fun row -> Sexp.list (Sexp.atom "proc" :: List.map op_to_sexp row))
                  c.rows);
         ];
         [
           Sexp.list
             [
               Sexp.atom "verdict";
               Sexp.atom
                 (match c.verdict with
                 | Allowed -> "allowed"
                 | Forbidden -> "forbidden");
             ];
         ];
         [ Sexp.list (Sexp.atom "evidence" :: evidence_to_sexp c.evidence) ];
       ])

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let field name items =
  List.find_map
    (function
      | Sexp.List (Sexp.Atom a :: rest) when a = name -> Some rest | _ -> None)
    items

let req_field name items =
  match field name items with
  | Some rest -> rest
  | None -> malformed "missing (%s ...)" name

let int_exn what s =
  match Sexp.to_int s with
  | Some n -> n
  | None -> malformed "expected integer in %s" what

let op_of_sexp = function
  | Sexp.List (Sexp.Atom kw :: Sexp.Atom loc :: v :: rest) ->
      let kind, labeled =
        match kw with
        | "r" -> (Op.Read, false)
        | "r*" -> (Op.Read, true)
        | "w" -> (Op.Write, false)
        | "w*" -> (Op.Write, true)
        | _ -> malformed "unknown operation %S" kw
      in
      let at =
        match rest with
        | [] -> None
        | [ Sexp.List [ Sexp.Atom "at"; a; b ] ] ->
            Some (int_exn "at" a, int_exn "at" b)
        | _ -> malformed "malformed operation tail"
      in
      { kind; loc; value = int_exn "operation value" v; labeled; at }
  | _ -> malformed "malformed operation"

let evidence_of_sexp ~verdict items =
  match verdict with
  | Allowed ->
      let views =
        req_field "views" items
        |> List.map (function
             | Sexp.List [ Sexp.Atom "view"; p; Sexp.List seq ] ->
                 (int_exn "view proc" p, List.map (int_exn "view") seq)
             | _ -> malformed "malformed view")
      in
      let rf =
        req_field "rf" items
        |> List.map (function
             | Sexp.List [ a; b ] -> (int_exn "rf" a, int_exn "rf" b)
             | _ -> malformed "malformed rf pair")
      in
      let sync =
        Option.map (List.map (int_exn "sync")) (field "sync" items)
      in
      let notes =
        req_field "notes" items
        |> List.map (function
             | Sexp.Atom s -> s
             | _ -> malformed "malformed note")
      in
      Witness { views; rf; sync; notes }
  | Forbidden ->
      let f = req_field "frontier" items in
      let one name =
        match req_field name f with
        | [ n ] -> int_exn name n
        | _ -> malformed "malformed (%s ...)" name
      in
      Frontier { rf_maps = one "rf-maps"; co_orders = one "co-orders" }

let of_sexp_exn = function
  | Sexp.List (Sexp.Atom "certificate" :: items) ->
      let version =
        match req_field "version" items with
        | [ v ] -> int_exn "version" v
        | _ -> malformed "malformed (version ...)"
      in
      let model =
        match req_field "model" items with
        | [ Sexp.Atom m ] -> m
        | _ -> malformed "malformed (model ...)"
      in
      let test =
        match field "test" items with
        | Some [ Sexp.Atom t ] -> Some t
        | Some _ -> malformed "malformed (test ...)"
        | None -> None
      in
      let rows =
        req_field "history" items
        |> List.map (function
             | Sexp.List (Sexp.Atom "proc" :: ops) -> List.map op_of_sexp ops
             | _ -> malformed "malformed (proc ...)")
      in
      let verdict =
        match req_field "verdict" items with
        | [ Sexp.Atom "allowed" ] -> Allowed
        | [ Sexp.Atom "forbidden" ] -> Forbidden
        | _ -> malformed "malformed (verdict ...)"
      in
      let evidence = evidence_of_sexp ~verdict (req_field "evidence" items) in
      { version; model; test; rows; verdict; evidence }
  | _ -> malformed "not a (certificate ...)"

let of_sexp s =
  match of_sexp_exn s with
  | c -> Ok c
  | exception Malformed msg -> Error msg

(* ------------------------------------------------------------------ *)
(* JSON form                                                          *)

let op_to_json r =
  Json.Obj
    (List.concat
       [
         [
           ("kind", Json.Str (match r.kind with Op.Read -> "r" | Op.Write -> "w"));
           ("loc", Json.Str r.loc);
           ("value", Json.Int r.value);
           ("labeled", Json.Bool r.labeled);
         ];
         (match r.at with
         | None -> []
         | Some (a, b) -> [ ("at", Json.Arr [ Json.Int a; Json.Int b ]) ]);
       ])

let evidence_to_json = function
  | Witness { views; rf; sync; notes } ->
      Json.Obj
        [
          ( "views",
            Json.Arr
              (List.map
                 (fun (p, seq) ->
                   Json.Obj
                     [
                       ("proc", Json.Int p);
                       ("seq", Json.Arr (List.map (fun i -> Json.Int i) seq));
                     ])
                 views) );
          ( "rf",
            Json.Arr
              (List.map (fun (a, b) -> Json.Arr [ Json.Int a; Json.Int b ]) rf)
          );
          ( "sync",
            match sync with
            | None -> Json.Null
            | Some s -> Json.Arr (List.map (fun i -> Json.Int i) s) );
          ("notes", Json.Arr (List.map (fun n -> Json.Str n) notes));
        ]
  | Frontier { rf_maps; co_orders } ->
      Json.Obj [ ("rf_maps", Json.Int rf_maps); ("co_orders", Json.Int co_orders) ]

let to_json c =
  Json.Obj
    (List.concat
       [
         [ ("version", Json.Int c.version); ("model", Json.Str c.model) ];
         (match c.test with
         | None -> []
         | Some t -> [ ("test", Json.Str t) ]);
         [
           ( "history",
             Json.Arr
               (List.map (fun row -> Json.Arr (List.map op_to_json row)) c.rows)
           );
           ( "verdict",
             Json.Str
               (match c.verdict with
               | Allowed -> "allowed"
               | Forbidden -> "forbidden") );
           ("evidence", evidence_to_json c.evidence);
         ];
       ])

let jfield what name obj =
  match Json.member name obj with
  | Some v -> v
  | None -> malformed "missing %S in %s" name what

let jint what = function
  | Json.Int n -> n
  | _ -> malformed "expected integer in %s" what

let jstr what = function
  | Json.Str s -> s
  | _ -> malformed "expected string in %s" what

let jarr what = function
  | Json.Arr items -> items
  | _ -> malformed "expected array in %s" what

let op_of_json j =
  let kind, labeled =
    let k = jstr "kind" (jfield "operation" "kind" j) in
    let labeled =
      match Json.member "labeled" j with
      | Some (Json.Bool b) -> b
      | Some _ -> malformed "expected boolean in labeled"
      | None -> false
    in
    match k with
    | "r" -> (Op.Read, labeled)
    | "w" -> (Op.Write, labeled)
    | _ -> malformed "unknown operation kind %S" k
  in
  let at =
    match Json.member "at" j with
    | None | Some Json.Null -> None
    | Some (Json.Arr [ a; b ]) -> Some (jint "at" a, jint "at" b)
    | Some _ -> malformed "malformed at"
  in
  {
    kind;
    loc = jstr "loc" (jfield "operation" "loc" j);
    value = jint "value" (jfield "operation" "value" j);
    labeled;
    at;
  }

let evidence_of_json ~verdict j =
  match verdict with
  | Allowed ->
      let views =
        jarr "views" (jfield "evidence" "views" j)
        |> List.map (fun v ->
               ( jint "proc" (jfield "view" "proc" v),
                 List.map (jint "seq") (jarr "seq" (jfield "view" "seq" v)) ))
      in
      let rf =
        jarr "rf" (jfield "evidence" "rf" j)
        |> List.map (function
             | Json.Arr [ a; b ] -> (jint "rf" a, jint "rf" b)
             | _ -> malformed "malformed rf pair")
      in
      let sync =
        match Json.member "sync" j with
        | None | Some Json.Null -> None
        | Some v -> Some (List.map (jint "sync") (jarr "sync" v))
      in
      let notes =
        jarr "notes" (jfield "evidence" "notes" j) |> List.map (jstr "note")
      in
      Witness { views; rf; sync; notes }
  | Forbidden ->
      Frontier
        {
          rf_maps = jint "rf_maps" (jfield "evidence" "rf_maps" j);
          co_orders = jint "co_orders" (jfield "evidence" "co_orders" j);
        }

let of_json_exn j =
  let verdict =
    match jstr "verdict" (jfield "certificate" "verdict" j) with
    | "allowed" -> Allowed
    | "forbidden" -> Forbidden
    | v -> malformed "unknown verdict %S" v
  in
  {
    version = jint "version" (jfield "certificate" "version" j);
    model = jstr "model" (jfield "certificate" "model" j);
    test =
      (match Json.member "test" j with
      | None | Some Json.Null -> None
      | Some v -> Some (jstr "test" v));
    rows =
      jarr "history" (jfield "certificate" "history" j)
      |> List.map (fun row -> List.map op_of_json (jarr "proc row" row));
    verdict;
    evidence = evidence_of_json ~verdict (jfield "certificate" "evidence" j);
  }

let of_json j =
  match of_json_exn j with
  | c -> Ok c
  | exception Malformed msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Front door                                                         *)

type format = [ `Sexp | `Json ]

let to_string ?(format = `Sexp) c =
  match format with
  | `Sexp -> Sexp.to_string (to_sexp c)
  | `Json -> Json.to_string (to_json c)

let parse s =
  let rec first_nonblank i =
    if i >= String.length s then None
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> first_nonblank (i + 1)
      | c -> Some c
  in
  match first_nonblank 0 with
  | Some '{' -> Result.bind (Json.of_string s) of_json
  | Some _ -> Result.bind (Sexp.of_string s) of_sexp
  | None -> Error "empty input"

let pp ppf c = Format.pp_print_string ppf (to_string c)
