(** Verdict certificates.

    A certificate is a self-contained, serializable record of a model's
    verdict on a history, carrying enough evidence for an independent
    kernel ({!Kernel}) to re-validate the verdict without re-running the
    search engine:

    - an {e allowed} certificate embeds the witness — the per-processor
      view sequences, the reads-from assignment the checker committed
      to, and (for the selective-synchronization memories) the total
      order on labeled operations;
    - a {e forbidden} certificate embeds the search-frontier summary
      (the analytically computed candidate-space size); on small
      histories the kernel additionally re-refutes by independent
      enumeration.

    Operations inside a certificate are numbered proc-major: row by row
    in history order, [0 ..].  {!certify} remaps machine-recorded ids to
    this canonical numbering, and {!history} reconstructs a history whose
    ids match it. *)

open Smem_core

type row_op = {
  kind : Op.kind;
  loc : string;
  value : int;
  labeled : bool;
  at : (int * int) option;  (** real-time interval, when recorded *)
}

type verdict = Smem_api.Verdict.status = Allowed | Forbidden
(** Alias of {!Smem_api.Verdict.status} — one verdict type across the
    toolkit; the constructors are re-exported so existing code keeps
    compiling. *)

type evidence =
  | Witness of {
      views : (int * int list) list;
      rf : (int * int) list;
      sync : int list option;
      notes : string list;
    }
  | Frontier of { rf_maps : int; co_orders : int }

type t = {
  version : int;
  model : string;  (** registry key of the judging model *)
  test : string option;  (** test name, when the history came from one *)
  rows : row_op list list;
  verdict : verdict;
  evidence : evidence;
}

val version : int
(** Current format version (1). *)

val certify : Model.t -> ?name:string -> History.t -> t option
(** Run the model's checker and package the verdict with its evidence.
    [None] when the model declares no parameter triple (it cannot be
    certified — e.g. the operational TSO replay). *)

val history : t -> History.t
(** Rebuild the judged history; operation ids match the certificate's
    proc-major numbering.
    @raise Invalid_argument on structurally impossible rows. *)

type format = [ `Sexp | `Json ]

val to_string : ?format:format -> t -> string
(** Serialize; default [`Sexp]. *)

val parse : string -> (t, string) result
(** Parse either format, auto-detected by the first non-blank character
    ([{] means JSON). *)

val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> (t, string) result
val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val pp : Format.formatter -> t -> unit
