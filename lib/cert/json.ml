(* The JSON printer/parser moved to Smem_obs.Json so the observability
   layer (Chrome traces, metrics, bench output) can share it without
   depending on the certificate machinery; this alias keeps every
   existing [Smem_cert.Json] consumer working, with type equality. *)

include Smem_obs.Json
