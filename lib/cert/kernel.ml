(* The independent checking kernel.

   Everything here is re-derived from the history and the model's
   parameter triple using only {!History}/{!Op} accessors and the
   standard library: the kernel deliberately reuses none of the search
   engine (Engine, View, Orders, Reads_from, Coherence, Diagnose), so a
   bug there cannot silently co-sign its own verdicts.  Relations are
   plain boolean matrices. *)

open Smem_core

type accepted =
  | Complete
  | Unverified_cap of { nops : int; max_search_ops : int }

exception Reject of string

let reject fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

(* ------------------------------------------------------------------ *)
(* Boolean-matrix relations                                           *)

let fresh_rel n = Array.make_matrix (max 1 n) (max 1 n) false

let union_into dst src =
  Array.iteri
    (fun i row -> Array.iteri (fun j v -> if v then dst.(i).(j) <- true) row)
    src

let copy_rel m = Array.map Array.copy m

let closure m =
  let n = Array.length m in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if m.(i).(k) then
        for j = 0 to n - 1 do
          if m.(k).(j) then m.(i).(j) <- true
        done
    done
  done

(* ------------------------------------------------------------------ *)
(* Ordering-requirement building blocks (the definitions of lib/core's
   Orders/Rc/Weak_ordering, re-stated from the paper)                  *)

let add_po_of_proc h m p =
  let row = History.proc_ops h p in
  let k = Array.length row in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      m.(row.(i)).(row.(j)) <- true
    done
  done

let add_po h m =
  for p = 0 to History.nprocs h - 1 do
    add_po_of_proc h m p
  done

let add_po_loc h m =
  for p = 0 to History.nprocs h - 1 do
    let row = History.proc_ops h p in
    let k = Array.length row in
    for i = 0 to k - 1 do
      for j = i + 1 to k - 1 do
        if Op.same_loc (History.op h row.(i)) (History.op h row.(j)) then
          m.(row.(i)).(row.(j)) <- true
      done
    done
  done

(* ppo keeps a program-order pair unless it is a write followed by a
   read of a different location; closure restores indirect pairs. *)
let ppo_of_rows h rows =
  let m = fresh_rel (History.nops h) in
  Array.iter
    (fun row ->
      let k = Array.length row in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          let a = History.op h row.(i) and b = History.op h row.(j) in
          let bypassable =
            Op.is_write a && Op.is_read b && not (Op.same_loc a b)
          in
          if not bypassable then m.(row.(i)).(row.(j)) <- true
        done
      done)
    rows;
  closure m;
  m

let ppo_all h =
  ppo_of_rows h (Array.init (History.nprocs h) (fun p -> History.proc_ops h p))

let ppo_of_proc h p = ppo_of_rows h [| History.proc_ops h p |]

let ppo_within h ~member =
  ppo_of_rows h
    (Array.init (History.nprocs h) (fun p ->
         History.proc_ops h p |> Array.to_list |> List.filter member
         |> Array.of_list))

let add_real_time h m =
  let n = History.nops h in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      match (History.interval h a, History.interval h b) with
      | Some (_, fa), Some (sb, _) when a <> b && fa < sb -> m.(a).(b) <- true
      | _ -> ()
    done
  done

let add_wb h m ~writer =
  List.iter
    (fun r ->
      let w = writer.(r) in
      if w <> History.init then m.(w).(r) <- true)
    (History.reads h)

(* all (earlier, later) pairs of a committed total order — not just
   consecutive ones: a view that omits an intermediate operation must
   still order the operations around it *)
let add_total m seq =
  let k = Array.length seq in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      m.(seq.(i)).(seq.(j)) <- true
    done
  done

(* same-processor pairs with a labeled endpoint: WO's two-way fences *)
let add_fence h m =
  for p = 0 to History.nprocs h - 1 do
    let row = History.proc_ops h p in
    let k = Array.length row in
    for i = 0 to k - 1 do
      for j = i + 1 to k - 1 do
        if
          Op.is_labeled (History.op h row.(i))
          || Op.is_labeled (History.op h row.(j))
        then m.(row.(i)).(row.(j)) <- true
      done
    done
  done

(* RC's §3.4 bracketing: an acquire's writer precedes the acquiring
   processor's later ordinary operations; a processor's earlier ordinary
   operations precede its release *)
let add_bracket h m ~writer =
  for q = 0 to History.nprocs h - 1 do
    let row = History.proc_ops h q in
    let k = Array.length row in
    for i = 0 to k - 1 do
      let op = History.op h row.(i) in
      if Op.is_acquire op then begin
        let w = writer.(row.(i)) in
        if w <> History.init then
          for j = i + 1 to k - 1 do
            if Op.is_ordinary (History.op h row.(j)) then m.(w).(row.(j)) <- true
          done
      end;
      if Op.is_release op then
        for j = 0 to i - 1 do
          if Op.is_ordinary (History.op h row.(j)) then
            m.(row.(j)).(row.(i)) <- true
        done
    done
  done

(* ------------------------------------------------------------------ *)
(* Coherence orders                                                   *)

type co = { rank : int array; loc_of : int array }

let build_co h per_loc =
  let n = max 1 (History.nops h) in
  let rank = Array.make n (-1) and loc_of = Array.make n (-1) in
  Array.iteri
    (fun l ws ->
      Array.iteri
        (fun i w ->
          rank.(w) <- i;
          loc_of.(w) <- l)
        ws)
    per_loc;
  { rank; loc_of }

let co_precedes co a b =
  co.loc_of.(a) >= 0 && co.loc_of.(a) = co.loc_of.(b) && co.rank.(a) < co.rank.(b)

let add_co_rel h m co =
  let n = History.nops h in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if co_precedes co a b then m.(a).(b) <- true
    done
  done

let needs_co = function
  | Model.Coherence_agreement | Model.Global_write_order | Model.Labeled_sc
  | Model.Labeled_pc ->
      true
  | Model.No_mutual | Model.Labeled_total -> false

(* ------------------------------------------------------------------ *)
(* Semi-causality (PC's ordering, also RC_pc's labeled requirement)    *)

let sem_matrix h ~ppo ~writer ~co ~member =
  let m = copy_rel ppo in
  (* remote writes-before: a write ppo-before r's writer precedes r *)
  List.iter
    (fun r ->
      if member r then begin
        let w' = writer.(r) in
        if w' <> History.init && member w' then
          List.iter
            (fun a -> if member a && ppo.(a).(w') then m.(a).(r) <- true)
            (History.writes h)
      end)
    (History.reads h);
  (* remote reads-before: r precedes writes ppo-after a co-later write
     to its location *)
  List.iter
    (fun r ->
      if member r then begin
        let w = writer.(r) in
        let loc = (History.op h r).Op.loc in
        List.iter
          (fun o' ->
            if
              member o' && o' <> w
              && (w = History.init || co_precedes co w o')
            then
              List.iter
                (fun b -> if member b && ppo.(o').(b) then m.(r).(b) <- true)
                (History.writes h))
          (History.writes_to h loc)
      end)
    (History.reads h);
  closure m;
  m

(* ------------------------------------------------------------------ *)
(* RC side conditions                                                 *)

let acquire_rf_ok h writer =
  List.for_all
    (fun r ->
      let op = History.op h r in
      (not (Op.is_acquire op))
      ||
      let w = writer.(r) in
      w = History.init
      || Op.is_labeled (History.op h w)
      || List.for_all
           (fun w' -> Op.is_ordinary (History.op h w'))
           (History.writes_to h op.Op.loc))
    (History.reads h)

let labeled_seq_legal h ~writer seq =
  let last = Array.make (max 1 (History.nlocs h)) History.init in
  Array.for_all
    (fun id ->
      let op = History.op h id in
      if Op.is_write op then begin
        last.(op.Op.loc) <- id;
        true
      end
      else
        let w = writer.(id) in
        if w = History.init then last.(op.Op.loc) = History.init
        else if Op.is_labeled (History.op h w) then last.(op.Op.loc) = w
        else true)
    seq

(* ------------------------------------------------------------------ *)
(* The ordering requirement as a per-view relation                    *)

let view_orders h (params : Model.params) ~writer ~sync ~co =
  let n = History.nops h in
  let co_exn () =
    match co with
    | Some c -> c
    | None ->
        reject
          "inconsistent parameter triple: the ordering requirement needs a \
           coherence order the mutual-consistency requirement does not provide"
  in
  let sync_exn () =
    match sync with
    | Some s -> s
    | None -> reject "inconsistent parameter triple: no sync order"
  in
  let proc_exn p =
    if p < 0 then
      reject "a per-owner ordering requirement needs processor views"
    else p
  in
  let shared m = fun (_ : int) -> copy_rel m in
  match params.Model.ordering with
  | Model.Program_order ->
      let m = fresh_rel n in
      add_po h m;
      shared m
  | Model.Partial_program_order -> shared (ppo_all h)
  | Model.Own_program_order ->
      fun p ->
        let m = fresh_rel n in
        add_po_of_proc h m (proc_exn p);
        m
  | Model.Own_po_plus_po_loc ->
      let base = fresh_rel n in
      add_po_loc h base;
      fun p ->
        let m = copy_rel base in
        add_po_of_proc h m (proc_exn p);
        m
  | Model.Po_plus_real_time ->
      let m = fresh_rel n in
      add_po h m;
      add_real_time h m;
      shared m
  | Model.Causal_order ->
      let m = fresh_rel n in
      add_po h m;
      add_wb h m ~writer;
      closure m;
      shared m
  | Model.Causal_plus_coherence ->
      let m = fresh_rel n in
      add_po h m;
      add_wb h m ~writer;
      add_co_rel h m (co_exn ());
      closure m;
      shared m
  | Model.Semi_causal ->
      shared
        (sem_matrix h ~ppo:(ppo_all h) ~writer ~co:(co_exn ())
           ~member:(fun _ -> true))
  | Model.Own_ppo_bracketed ->
      let base = fresh_rel n in
      add_bracket h base ~writer;
      (match params.Model.mutual with
      | Model.Labeled_sc -> add_total base (sync_exn ())
      | Model.Labeled_pc ->
          let labeled = Array.make (max 1 n) false in
          List.iter (fun a -> labeled.(a) <- true) (History.labeled h);
          let member a = labeled.(a) in
          union_into base
            (sem_matrix h ~ppo:(ppo_within h ~member) ~writer ~co:(co_exn ())
               ~member)
      | _ ->
          reject
            "inconsistent parameter triple: a bracketed ordering requires a \
             labeled mutual-consistency requirement");
      fun p ->
        let m = copy_rel base in
        union_into m (ppo_of_proc h (proc_exn p));
        m
  | Model.Sync_fences ->
      let m = fresh_rel n in
      add_fence h m;
      add_po_loc h m;
      add_total m (sync_exn ());
      shared m
  | Model.Session { ryw; mr; mw; wfr } ->
      (* Pairwise projections of (transitive) program order, restated
         from the guarantee definitions; wfr additionally orders each
         read's writer before the reader's later writes.  The relation
         is shared — restriction to each view happens in the ordering
         check, exactly like the causal orders. *)
      let m = fresh_rel n in
      for p = 0 to History.nprocs h - 1 do
        let row = History.proc_ops h p in
        let k = Array.length row in
        for i = 0 to k - 1 do
          for j = i + 1 to k - 1 do
            let a = History.op h row.(i) and b = History.op h row.(j) in
            if
              (ryw && Op.is_write a && Op.is_read b)
              || (mr && Op.is_read a && Op.is_read b)
              || (mw && Op.is_write a && Op.is_write b)
            then m.(row.(i)).(row.(j)) <- true
          done
        done
      done;
      if wfr then
        List.iter
          (fun r ->
            let w = writer.(r) in
            if w <> History.init then begin
              let ro = History.op h r in
              Array.iter
                (fun id ->
                  let o' = History.op h id in
                  if o'.Op.index > ro.Op.index && Op.is_write o' then
                    m.(w).(id) <- true)
                (History.proc_ops h ro.Op.proc)
            end)
          (History.reads h);
      shared m

(* ------------------------------------------------------------------ *)
(* Legality: replaying a view sequence against a location store        *)

(* Location sorts are re-derived from the name prefix (the convention
   {!Smem_core.Sort} documents) rather than through that module: the
   kernel restates even this classification so the search engine's
   code is nowhere on its trust path. *)
type sort = Reg | Que | Cnt

let sort_of h l =
  let name = History.loc_name h l in
  if String.length name >= 2 && name.[1] = ':' then
    match name.[0] with 'q' -> Que | 'c' -> Cnt | _ -> Reg
  else Reg

(* A location's replay state.  Value- and writer-legality use one int
   cell per location regardless of sort (every pre-existing model reads
   object locations as plain registers); object legality replays each
   sort's sequential specification. *)
type cell = Val of int | Wtr of int | Fifo of int list | Count of int

let initial_cell legality sort =
  match (legality, sort) with
  | Model.Value_legal, _ -> Val 0
  | Model.Writer_legal, _ -> Wtr History.init
  | Model.Object_legal, Reg -> Val 0
  | Model.Object_legal, Que -> Fifo []
  | Model.Object_legal, Cnt -> Count 0

let initial_cells h legality =
  Array.init
    (max 1 (History.nlocs h))
    (fun l -> initial_cell legality (sort_of h l))

(* [None] when the operation is not a legal transition. *)
let cell_step ~writer cell (op : Op.t) =
  if Op.is_write op then
    Some
      (match cell with
      | Val _ -> Val op.Op.value
      | Wtr _ -> Wtr op.Op.id
      | Fifo q -> Fifo (q @ [ op.Op.value ])
      | Count n -> Count (n + 1))
  else
    match cell with
    | Val v -> if v = op.Op.value then Some cell else None
    | Wtr w -> if w = writer.(op.Op.id) then Some cell else None
    | Fifo q -> (
        if op.Op.value = 0 then if q = [] then Some cell else None
        else
          match q with
          | head :: rest when head = op.Op.value -> Some (Fifo rest)
          | _ -> None)
    | Count n -> if op.Op.value = n then Some cell else None

let walk_legal h ~legality ~writer seq =
  let mem = initial_cells h legality in
  List.for_all
    (fun id ->
      let op = History.op h id in
      match cell_step ~writer mem.(op.Op.loc) op with
      | Some c ->
          mem.(op.Op.loc) <- c;
          true
      | None -> false)
    seq

(* ------------------------------------------------------------------ *)
(* Structural view checks per population                              *)

let check_views h (params : Model.params) views =
  let n = History.nops h in
  List.iter
    (fun (_, seq) ->
      List.iter
        (fun a -> if a < 0 || a >= n then reject "view id %d out of range" a)
        seq)
    views;
  let check_exact what seq expect =
    let got = Array.make (max 1 n) 0 in
    List.iter (fun a -> got.(a) <- got.(a) + 1) seq;
    for a = 0 to n - 1 do
      if expect.(a) && got.(a) <> 1 then
        reject "%s must contain operation %d exactly once" what a;
      if (not expect.(a)) && got.(a) <> 0 then
        reject "%s must not contain operation %d" what a
    done
  in
  match params.Model.population with
  | Model.Shared_all -> (
      match views with
      | [ (p, seq) ] ->
          if p <> -1 then reject "the shared view must use processor -1";
          check_exact "the shared view" seq (Array.make (max 1 n) true)
      | _ -> reject "expected exactly one shared view")
  | Model.Own_plus_writes ->
      if List.length views <> History.nprocs h then
        reject "expected one view per processor";
      let seen = Array.make (History.nprocs h) false in
      List.iter
        (fun (p, seq) ->
          if p < 0 || p >= History.nprocs h then
            reject "view processor %d out of range" p;
          if seen.(p) then reject "duplicate view for processor %d" p;
          seen.(p) <- true;
          let expect = Array.make (max 1 n) false in
          Array.iter (fun a -> expect.(a) <- true) (History.proc_ops h p);
          List.iter (fun w -> expect.(w) <- true) (History.writes h);
          check_exact (Printf.sprintf "the view of processor %d" p) seq expect)
        views
  | Model.Per_location ->
      if List.length views <> History.nlocs h then
        reject "expected one view per location";
      let covered = Array.make (max 1 (History.nlocs h)) false in
      List.iter
        (fun (p, seq) ->
          if p <> -1 then reject "location views must use processor -1";
          match seq with
          | [] -> reject "empty location view"
          | a :: _ ->
              let l = (History.op h a).Op.loc in
              if covered.(l) then
                reject "duplicate view for location %s" (History.loc_name h l);
              covered.(l) <- true;
              let expect = Array.make (max 1 n) false in
              Array.iter
                (fun (o : Op.t) -> if o.Op.loc = l then expect.(o.Op.id) <- true)
                (History.ops h);
              check_exact
                (Printf.sprintf "the view of location %s" (History.loc_name h l))
                seq expect)
        views
  | Model.Per_proc_block { blocks } ->
      (* One view per (processor, block) pair whose population — the
         owner's operations on the block's locations plus every write
         to them — is nonempty; empty pairs are omitted.  A view's
         block is recovered from its operations' locations (blocks
         partition the locations, so a nonempty view determines it). *)
      let expect_of p b =
        let expect = Array.make (max 1 n) false in
        let any = ref false in
        Array.iter
          (fun (o : Op.t) ->
            if o.Op.loc mod blocks = b && (o.Op.proc = p || Op.is_write o)
            then begin
              expect.(o.Op.id) <- true;
              any := true
            end)
          (History.ops h);
        if !any then Some expect else None
      in
      let nonempty = ref 0 in
      for p = 0 to History.nprocs h - 1 do
        for b = 0 to blocks - 1 do
          if Option.is_some (expect_of p b) then incr nonempty
        done
      done;
      if List.length views <> !nonempty then
        reject "expected %d (processor, block) views" !nonempty;
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (p, seq) ->
          if p < 0 || p >= History.nprocs h then
            reject "view processor %d out of range" p;
          match seq with
          | [] -> reject "empty (processor, block) view"
          | a :: _ -> (
              let b = (History.op h a).Op.loc mod blocks in
              if Hashtbl.mem seen (p, b) then
                reject "duplicate view for processor %d block %d" p b;
              Hashtbl.replace seen (p, b) ();
              match expect_of p b with
              | None -> reject "unexpected view for processor %d block %d" p b
              | Some expect ->
                  check_exact
                    (Printf.sprintf "the view of processor %d block %d" p b)
                    seq expect))
        views
  | Model.Own_plus_updates ->
      if List.length views <> History.nprocs h then
        reject "expected one view per processor";
      let seen = Array.make (History.nprocs h) false in
      (* Updates: every write, plus queue dequeues by any processor
         (a dequeue mutates the queue, so it appears in every view). *)
      let updates =
        List.filter
          (fun (o : Op.t) -> Op.is_write o || sort_of h o.Op.loc = Que)
          (Array.to_list (History.ops h))
      in
      List.iter
        (fun (p, seq) ->
          if p < 0 || p >= History.nprocs h then
            reject "view processor %d out of range" p;
          if seen.(p) then reject "duplicate view for processor %d" p;
          seen.(p) <- true;
          let expect = Array.make (max 1 n) false in
          Array.iter (fun a -> expect.(a) <- true) (History.proc_ops h p);
          List.iter (fun (o : Op.t) -> expect.(o.Op.id) <- true) updates;
          check_exact (Printf.sprintf "the view of processor %d" p) seq expect)
        views

(* ------------------------------------------------------------------ *)
(* Mutual consistency: derive the coherence order from the views       *)

let derive_co h (params : Model.params) views =
  let view_writes seq =
    List.filter (fun a -> Op.is_write (History.op h a)) seq
  in
  (match params.Model.mutual with
  | Model.Global_write_order -> (
      match List.map (fun (_, seq) -> view_writes seq) views with
      | [] -> ()
      | first :: rest ->
          List.iter
            (fun o ->
              if o <> first then
                reject "views disagree on the global write order")
            rest)
  | _ -> ());
  let per_loc_of seq =
    Array.init (max 1 (History.nlocs h)) (fun l ->
        List.filter
          (fun a ->
            let o = History.op h a in
            Op.is_write o && o.Op.loc = l)
          seq)
  in
  (* Agreement among the views that see a location's writes at all: a
     partition-consistency view holds no writes outside its block, so
     its (empty) projection constrains nothing there.  Populations
     whose views all contain every write (checked structurally before
     this point) degenerate to the old all-views-equal rule, since a
     nonempty write set projects nonempty into each of them. *)
  match views with
  | [] -> reject "no views"
  | _ ->
      let nlocs = max 1 (History.nlocs h) in
      let co_loc = Array.make nlocs [] in
      let seen = Array.make nlocs false in
      List.iter
        (fun (_, seq) ->
          Array.iteri
            (fun l ws ->
              match ws with
              | [] -> ()
              | ws when not seen.(l) ->
                  seen.(l) <- true;
                  co_loc.(l) <- ws
              | ws ->
                  if ws <> co_loc.(l) then
                    reject "views disagree on the write order for %s"
                      (History.loc_name h l))
            (per_loc_of seq))
        views;
      (* A location every view misses has either no writes at all, or
         writes no view was required to contain — the derived order is
         then empty and the ordering check simply has nothing to add. *)
      build_co h (Array.map Array.of_list co_loc)

(* ------------------------------------------------------------------ *)
(* Reads-from and sync-order validation                               *)

let rf_required (params : Model.params) =
  params.Model.legality = Model.Writer_legal
  ||
  match params.Model.ordering with
  | Model.Causal_order | Model.Causal_plus_coherence -> true
  | _ -> false

let sync_required (params : Model.params) =
  match params.Model.mutual with
  | Model.Labeled_sc | Model.Labeled_total -> true
  | _ -> false

let check_rf h params rf =
  let n = History.nops h in
  let writer = Array.make (max 1 n) History.init in
  if not (rf_required params) then begin
    if rf <> [] then
      reject "the model commits to no reads-from map; drop the rf evidence";
    writer
  end
  else begin
    let seen = Array.make (max 1 n) false in
    List.iter
      (fun (r, w) ->
        if r < 0 || r >= n then reject "rf: operation id %d out of range" r;
        let op = History.op h r in
        if not (Op.is_read op) then reject "rf: operation %d is not a read" r;
        if seen.(r) then reject "rf: duplicate entry for read %d" r;
        seen.(r) <- true;
        if params.Model.legality = Model.Object_legal && sort_of h op.Op.loc = Cnt
        then begin
          (* A counter read returns a count, not a written value: it
             has no writer and must be pinned to the initial
             pseudo-write (contributing no writes-before edge). *)
          if w <> History.init then
            reject "rf: counter read %d cannot have a writer" r
        end
        else if w = History.init then begin
          if op.Op.value <> 0 then
            reject "rf: read %d returns %d but is mapped to the initial write"
              r op.Op.value
        end
        else begin
          if w < 0 || w >= n then reject "rf: writer id %d out of range" w;
          let wo = History.op h w in
          if not (Op.is_write wo) then reject "rf: writer %d is not a write" w;
          if wo.Op.loc <> op.Op.loc then
            reject "rf: read %d and writer %d access different locations" r w;
          if wo.Op.value <> op.Op.value then
            reject "rf: read %d returns %d but writer %d wrote %d" r op.Op.value
              w wo.Op.value
        end;
        writer.(r) <- w)
      rf;
    List.iter
      (fun r -> if not seen.(r) then reject "rf: read %d is unassigned" r)
      (History.reads h);
    writer
  end

let check_sync h params ~writer sync =
  let n = History.nops h in
  match (sync, sync_required params) with
  | None, false -> None
  | Some _, false ->
      reject "the model commits to no labeled order; drop the sync evidence"
  | None, true -> reject "missing the total order on labeled operations"
  | Some s, true ->
      let s = Array.of_list s in
      Array.iter
        (fun a -> if a < 0 || a >= n then reject "sync: id %d out of range" a)
        s;
      let labeled = History.labeled h in
      if
        List.sort compare (Array.to_list s) <> List.sort compare labeled
      then
        reject "sync order must be a permutation of the labeled operations";
      let pos = Array.make (max 1 n) (-1) in
      Array.iteri (fun i a -> pos.(a) <- i) s;
      let po = fresh_rel n in
      add_po h po;
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if po.(a).(b) && pos.(a) > pos.(b) then
                reject "sync order contradicts program order (%d before %d)" b a)
            labeled)
        labeled;
      if
        params.Model.mutual = Model.Labeled_sc
        && not (labeled_seq_legal h ~writer s)
      then reject "sync order is not legal for the labeled subhistory";
      Some s

(* ------------------------------------------------------------------ *)
(* Witness verification                                               *)

let verify_witness h (params : Model.params) ~views ~rf ~sync =
  check_views h params views;
  let writer = check_rf h params rf in
  (match params.Model.ordering with
  | Model.Own_ppo_bracketed ->
      if not (acquire_rf_ok h writer) then
        reject
          "an acquire reads an ordinary write to a location that also \
           carries labeled writes"
  | _ -> ());
  let sync = check_sync h params ~writer sync in
  let co =
    if needs_co params.Model.mutual then Some (derive_co h params views)
    else None
  in
  let order_of = view_orders h params ~writer ~sync ~co in
  let n = History.nops h in
  List.iter
    (fun (p, seq) ->
      let order = order_of p in
      let pos = Array.make (max 1 n) (-1) in
      List.iteri (fun i a -> pos.(a) <- i) seq;
      (* includes a = b: a self-edge of a closed causal relation means
         the underlying global order is cyclic *)
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if order.(a).(b) && pos.(a) >= 0 && pos.(b) >= 0 && pos.(a) >= pos.(b)
          then
            reject "view %d violates the ordering requirement (%d before %d)" p
              b a
        done
      done;
      if not (walk_legal h ~legality:params.Model.legality ~writer seq) then
        reject "view %d is not a legal serialization" p)
    views

(* ------------------------------------------------------------------ *)
(* Frontier arithmetic (must agree with the emitter's summary)         *)

let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

let candidate_space h =
  let rf_count =
    List.fold_left
      (fun acc r ->
        let op = History.op h r in
        let cands =
          List.length
            (List.filter
               (fun w -> (History.op h w).Op.value = op.Op.value)
               (History.writes_to h op.Op.loc))
          + if op.Op.value = 0 then 1 else 0
        in
        sat_mul acc cands)
      1 (History.reads h)
  in
  let nprocs = History.nprocs h in
  let co_count = ref 1 in
  for l = 0 to History.nlocs h - 1 do
    let chain = Array.make nprocs 0 in
    List.iter
      (fun w ->
        let p = (History.op h w).Op.proc in
        chain.(p) <- chain.(p) + 1)
      (History.writes_to h l);
    let n = ref 0 in
    Array.iter
      (fun c ->
        for i = 1 to c do
          incr n;
          co_count :=
            (if !co_count > max_int / !n then max_int else !co_count * !n / i)
        done)
      chain
  done;
  (rf_count, !co_count)

(* ------------------------------------------------------------------ *)
(* Independent witness search (for refuting forbidden certificates)    *)

let exists_rf h ~legality ~f =
  let reads = Array.of_list (History.reads h) in
  let nreads = Array.length reads in
  let cands =
    Array.map
      (fun r ->
        let op = History.op h r in
        if legality = Model.Object_legal && sort_of h op.Op.loc = Cnt then
          (* counter reads have no writer: the assignment is forced *)
          [| History.init |]
        else
          let ws =
            List.filter
              (fun w -> (History.op h w).Op.value = op.Op.value)
              (History.writes_to h op.Op.loc)
          in
          Array.of_list (if op.Op.value = 0 then History.init :: ws else ws))
      reads
  in
  if Array.exists (fun c -> Array.length c = 0) cands then false
  else begin
    let writer = Array.make (max 1 (History.nops h)) History.init in
    let rec go i =
      if i = nreads then f writer
      else
        Array.exists
          (fun w ->
            writer.(reads.(i)) <- w;
            go (i + 1))
          cands.(i)
    in
    go 0
  end

(* enumerate the linear extensions of [precedes] over [items] *)
let exists_perm (items : int array) ~precedes ~f =
  let k = Array.length items in
  let used = Array.make k false in
  let out = Array.make k (-1) in
  let rec go depth =
    if depth = k then f out
    else begin
      let found = ref false in
      let i = ref 0 in
      while (not !found) && !i < k do
        if not used.(!i) then begin
          let a = items.(!i) in
          let ok = ref true in
          for j = 0 to k - 1 do
            if (not used.(j)) && j <> !i && precedes items.(j) a then ok := false
          done;
          if !ok then begin
            used.(!i) <- true;
            out.(depth) <- a;
            if go (depth + 1) then found := true else used.(!i) <- false
          end
        end;
        incr i
      done;
      !found
    end
  in
  go 0

let same_proc_before h a b =
  let oa = History.op h a and ob = History.op h b in
  Op.same_proc oa ob && oa.Op.index < ob.Op.index

(* product over locations of coherence orders respecting each
   processor's program order on its own writes *)
let exists_per_loc_co h ~f =
  let nlocs = History.nlocs h in
  let per_loc =
    Array.init nlocs (fun l -> Array.of_list (History.writes_to h l))
  in
  let chosen = Array.make (max 1 nlocs) [||] in
  let rec go l =
    if l = nlocs then f (Array.sub chosen 0 nlocs)
    else
      exists_perm per_loc.(l) ~precedes:(same_proc_before h) ~f:(fun ord ->
          chosen.(l) <- Array.copy ord;
          go (l + 1))
  in
  go 0

let view_specs h (params : Model.params) =
  let n = History.nops h in
  match params.Model.population with
  | Model.Shared_all -> [ (-1, List.init n Fun.id) ]
  | Model.Own_plus_writes ->
      List.init (History.nprocs h) (fun p ->
          let keep = Array.make (max 1 n) false in
          Array.iter (fun a -> keep.(a) <- true) (History.proc_ops h p);
          List.iter (fun w -> keep.(w) <- true) (History.writes h);
          (p, List.filter (fun a -> keep.(a)) (List.init n Fun.id)))
  | Model.Per_location ->
      List.init (History.nlocs h) (fun l ->
          (-1, List.filter (fun a -> (History.op h a).Op.loc = l) (List.init n Fun.id)))
  | Model.Per_proc_block { blocks } ->
      List.concat
        (List.init (History.nprocs h) (fun p ->
             List.filter_map
               (fun b ->
                 let ops =
                   List.filter
                     (fun a ->
                       let o = History.op h a in
                       o.Op.loc mod blocks = b
                       && (o.Op.proc = p || Op.is_write o))
                     (List.init n Fun.id)
                 in
                 if ops = [] then None else Some (p, ops))
               (List.init blocks Fun.id)))
  | Model.Own_plus_updates ->
      List.init (History.nprocs h) (fun p ->
          let keep = Array.make (max 1 n) false in
          Array.iter (fun a -> keep.(a) <- true) (History.proc_ops h p);
          Array.iter
            (fun (o : Op.t) ->
              if Op.is_write o || sort_of h o.Op.loc = Que then
                keep.(o.Op.id) <- true)
            (History.ops h);
          (p, List.filter (fun a -> keep.(a)) (List.init n Fun.id)))

(* backtracking placement of one view: order-predecessor readiness plus
   the legality walk (View.exists restated, without memoization).  The
   save/restore pair covers reads too: a queue dequeue consumes the
   head, so a backtracked read must put the cell back. *)
let place_view h ~ops ~order ~legality ~writer =
  let n = History.nops h in
  let ids = Array.of_list ops in
  let k = Array.length ids in
  let placed = Array.make (max 1 n) false in
  let in_view = Array.make (max 1 n) false in
  Array.iter (fun a -> in_view.(a) <- true) ids;
  let mem = initial_cells h legality in
  let ready a =
    let ok = ref true in
    for b = 0 to n - 1 do
      if order.(b).(a) && in_view.(b) && not placed.(b) then ok := false
    done;
    !ok
  in
  let rec go depth =
    depth = k
    ||
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i < k do
      let a = ids.(!i) in
      if (not placed.(a)) && ready a then begin
        let op = History.op h a in
        match cell_step ~writer mem.(op.Op.loc) op with
        | Some c ->
            let saved = mem.(op.Op.loc) in
            mem.(op.Op.loc) <- c;
            placed.(a) <- true;
            if go (depth + 1) then found := true
            else begin
              placed.(a) <- false;
              mem.(op.Op.loc) <- saved
            end
        | None -> ()
      end;
      incr i
    done;
    !found
  in
  go 0

let search_exn (params : Model.params) h =
  let n = History.nops h in
  let specs = view_specs h params in
  let po = fresh_rel n in
  add_po h po;
  let labeled = Array.of_list (History.labeled h) in
  let try_candidate ~writer ~sync ~co ~impose =
    let order_of = view_orders h params ~writer ~sync ~co in
    List.for_all
      (fun (p, ops) ->
        let order = order_of p in
        (match impose with Some m -> union_into order m | None -> ());
        place_view h ~ops ~order ~legality:params.Model.legality ~writer)
      specs
  in
  let with_co ~writer ~sync f =
    match params.Model.mutual with
    | Model.Global_write_order ->
        let writes = Array.of_list (History.writes h) in
        exists_perm writes ~precedes:(same_proc_before h) ~f:(fun ws ->
            let per_loc = Array.make (max 1 (History.nlocs h)) [] in
            Array.iter
              (fun w ->
                let l = (History.op h w).Op.loc in
                per_loc.(l) <- w :: per_loc.(l))
              ws;
            let per_loc =
              Array.map (fun l -> Array.of_list (List.rev l)) per_loc
            in
            let impose = fresh_rel n in
            add_total impose ws;
            f ~writer ~sync ~co:(Some (build_co h per_loc)) ~impose:(Some impose))
    | Model.Coherence_agreement | Model.Labeled_sc | Model.Labeled_pc ->
        exists_per_loc_co h ~f:(fun per_loc ->
            let co = build_co h per_loc in
            let impose = fresh_rel n in
            add_co_rel h impose co;
            f ~writer ~sync ~co:(Some co) ~impose:(Some impose))
    | Model.No_mutual | Model.Labeled_total ->
        f ~writer ~sync ~co:None ~impose:None
  in
  let with_sync ~writer f =
    if not (sync_required params) then f ~writer ~sync:None
    else
      exists_perm labeled
        ~precedes:(fun a b -> po.(a).(b))
        ~f:(fun seq ->
          (params.Model.mutual <> Model.Labeled_sc
          || labeled_seq_legal h ~writer seq)
          && f ~writer ~sync:(Some (Array.copy seq)))
  in
  let with_rf f =
    if rf_required params then
      exists_rf h ~legality:params.Model.legality ~f:(fun writer ->
          (match params.Model.ordering with
          | Model.Own_ppo_bracketed -> acquire_rf_ok h writer
          | _ -> true)
          && f ~writer)
    else f ~writer:(Array.make (max 1 n) History.init)
  in
  with_rf (fun ~writer ->
      with_sync ~writer (fun ~writer ~sync ->
          with_co ~writer ~sync try_candidate))

let search params h =
  try search_exn params h
  with Reject msg -> invalid_arg ("Kernel.search: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)

let default_max_search_ops = 8

let kernel_verifies = Smem_obs.Metrics.counter "cert.kernel_verifies"
let kernel_rejections = Smem_obs.Metrics.counter "cert.kernel_rejections"
let kernel_unverified_cap = Smem_obs.Metrics.counter "cert.kernel_unverified_cap"

let verify_checked ~max_search_ops (c : Cert.t) =
  try
    if c.Cert.version <> Cert.version then
      reject "unsupported certificate version %d" c.Cert.version;
    let params =
      match Registry.find c.Cert.model with
      | None -> reject "unknown model %S" c.Cert.model
      | Some m -> (
          match m.Model.params with
          | None ->
              reject "model %S declares no parameter triple (not certifiable)"
                c.Cert.model
          | Some p -> p)
    in
    let h =
      try Cert.history c
      with Invalid_argument msg -> reject "malformed history: %s" msg
    in
    match (c.Cert.verdict, c.Cert.evidence) with
    | Cert.Allowed, Cert.Witness { views; rf; sync; notes = _ } ->
        verify_witness h params ~views ~rf ~sync;
        Ok Complete
    | Cert.Forbidden, Cert.Frontier { rf_maps; co_orders } ->
        let rf', co' = candidate_space h in
        if rf' <> rf_maps || co' <> co_orders then
          reject
            "frontier summary does not match the history (claimed %d rf maps \
             x %d coherence orders, recomputed %d x %d)"
            rf_maps co_orders rf' co';
        if History.nops h <= max_search_ops then begin
          if search_exn params h then
            reject
              "the history is allowed: independent enumeration found a witness";
          Ok Complete
        end
        else Ok (Unverified_cap { nops = History.nops h; max_search_ops })
    | Cert.Allowed, Cert.Frontier _ ->
        reject "an allowed verdict must carry witness evidence"
    | Cert.Forbidden, Cert.Witness _ ->
        reject "a forbidden verdict must carry frontier evidence"
  with Reject msg -> Error msg

let verify ?(max_search_ops = default_max_search_ops) (c : Cert.t) =
  Smem_obs.Metrics.incr kernel_verifies;
  let result =
    Smem_obs.Trace.span ~cat:"cert"
      ~args:
        [
          ("model", Smem_obs.Json.Str c.Cert.model);
          ( "test",
            match c.Cert.test with
            | Some t -> Smem_obs.Json.Str t
            | None -> Smem_obs.Json.Null );
        ]
      "cert/kernel-verify"
      (fun () -> verify_checked ~max_search_ops c)
  in
  (match result with
  | Error _ -> Smem_obs.Metrics.incr kernel_rejections
  | Ok (Unverified_cap _) -> Smem_obs.Metrics.incr kernel_unverified_cap
  | Ok Complete -> ());
  result
