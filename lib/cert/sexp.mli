(** Minimal s-expressions: the certificate wire format readable by both
    humans and the checking kernel.  Hand-rolled because the toolkit
    takes no serialization dependency. *)

type t = Atom of string | List of t list

val atom : string -> t
val list : t list -> t
val int : int -> t
val to_int : t -> int option

val to_string : t -> string
(** Render with one nested list per line (stable, diffable output);
    atoms containing whitespace, parentheses, quotes, semicolons or
    backslashes are quoted and escaped. *)

val of_string : string -> (t, string) result
(** Parse exactly one s-expression (plus surrounding whitespace and
    [;]-comments). *)
