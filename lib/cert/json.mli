(** Minimal JSON: the machine-facing certificate format.  Hand-rolled
    (integers only — the certificate carries no floats). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
val of_string : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)
