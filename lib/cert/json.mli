(** Minimal JSON: the machine-facing certificate format.  An alias of
    {!Smem_obs.Json} (where the implementation moved so traces, metrics
    and the bench harness can share it); [Smem_cert.Json.t] and
    [Smem_obs.Json.t] are the same type. *)

include module type of struct
  include Smem_obs.Json
end
