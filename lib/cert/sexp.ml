type t = Atom of string | List of t list

let atom s = Atom s
let list l = List l
let int n = Atom (string_of_int n)

let to_int = function
  | Atom s -> int_of_string_opt s
  | List _ -> None

(* An atom needs quoting when it is empty or contains a character that
   the tokenizer treats specially. *)
let needs_quoting s =
  s = ""
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' | '\\' -> true
         | _ -> false)
       s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec write buf ~indent = function
  | Atom s -> Buffer.add_string buf (if needs_quoting s then escape s else s)
  | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          (match item with
          | List _ when i > 0 ->
              Buffer.add_char buf '\n';
              Buffer.add_string buf (String.make (indent + 1) ' ')
          | _ -> if i > 0 then Buffer.add_char buf ' ');
          write buf ~indent:(indent + 1) item)
        items;
      Buffer.add_char buf ')'

let to_string t =
  let buf = Buffer.create 256 in
  write buf ~indent:0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
          incr pos;
          skip_ws ()
      | ';' ->
          (* comment to end of line *)
          while !pos < n && s.[!pos] <> '\n' do
            incr pos
          done;
          skip_ws ()
      | _ -> ()
  in
  let quoted_atom () =
    incr pos;
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            if !pos + 1 >= n then fail "dangling escape"
            else begin
              (match s.[!pos + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | c -> Buffer.add_char buf c);
              pos := !pos + 2;
              go ()
            end
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let bare_atom () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> false
      | _ -> true
    do
      incr pos
    done;
    if !pos = start then fail "expected atom";
    Atom (String.sub s start (!pos - start))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '(' ->
        incr pos;
        let items = ref [] in
        let rec items_loop () =
          skip_ws ();
          match peek () with
          | None -> fail "unterminated list"
          | Some ')' -> incr pos
          | Some _ ->
              items := value () :: !items;
              items_loop ()
        in
        items_loop ();
        List (List.rev !items)
    | Some ')' -> fail "unexpected ')'"
    | Some '"' -> quoted_atom ()
    | Some _ -> bare_atom ()
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
