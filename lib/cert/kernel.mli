(** The independent certificate-checking kernel.

    [verify] re-derives every obligation named by the certified model's
    parameter triple ({!Smem_core.Model.params}) from the embedded
    history alone — view populations, the ordering requirement
    (po/ppo/causal/semi-causal/fences/brackets recomputed from scratch),
    mutual consistency (the coherence order is {e derived} from the
    views and checked for agreement), and view legality (a replay of
    each view against a location store).  None of the search engine's
    code (Engine, View, Orders, Reads_from, Coherence, Diagnose) is
    reused: relations are hand-rolled boolean matrices, so an engine bug
    cannot co-sign its own verdicts.

    Trust boundary: the kernel trusts {!Smem_core.History}/{!Smem_core.Op}
    structural accessors, the registry's parameter triples, and the
    standard library — nothing else. *)

open Smem_core

type accepted =
  | Complete  (** every obligation was independently re-checked *)
  | Unverified_cap of { nops : int; max_search_ops : int }
      (** a forbidden certificate whose history exceeds
          [max_search_ops]: the frontier summary was re-computed and
          matched, but the refutation was {e not} re-run by independent
          enumeration.  Surfaced as an explicit status (and the
          [cert.kernel_unverified_cap] metric) so a capped acceptance
          can never silently masquerade as a full one; re-verify with a
          larger [?max_search_ops] to upgrade it to {!Complete}. *)

val default_max_search_ops : int
(** 8: forbidden certificates on histories up to this many operations
    are re-refuted exhaustively. *)

val verify : ?max_search_ops:int -> Cert.t -> (accepted, string) result
(** Check a certificate.  [Error reason] on any mismatch: malformed or
    forged evidence, a view violating the model's ordering requirement,
    an illegal view serialization, disagreeing coherence orders, a
    frontier summary that does not match the history, or a forbidden
    claim refuted by independent enumeration. *)

val search : Model.params -> History.t -> bool
(** Independent witness search directly from a parameter triple:
    enumerate reads-from maps, labeled orders and coherence orders, and
    backtrack over view placements.  Exponential — intended for
    histories of at most ~{!default_max_search_ops} operations.
    @raise Invalid_argument on an inconsistent parameter triple. *)
