module H = Smem_core.History
module Canon = Smem_core.Canon
module Test = Smem_litmus.Test
module Programs = Smem_lang.Programs
module Dpor = Smem_lang.Dpor
module Explore = Smem_lang.Explore
module Machines = Smem_machine.Machines

let version = "smem-corpus/1"

(* ------------------------------------------------------------------ *)
(* Candidate extraction                                                *)
(* ------------------------------------------------------------------ *)

(* A prefix of a recorded history in execution order is itself a
   history: ids are dense by construction and each processor's indices
   stay dense because the recording order refines program order.  This
   is how long cyclic runs (Bakery, spinlock stress) contribute small
   checkable tests. *)
let prefix h k =
  let ops = H.ops h in
  if k >= Array.length ops then None
  else
    let loc_names = Array.init (H.nlocs h) (H.loc_name h) in
    match
      H.of_ops ~nprocs:(H.nprocs h) ~loc_names
        (Array.to_list (Array.sub ops 0 k))
    with
    | p -> Some p
    | exception Invalid_argument _ -> None

type acc = {
  mutable n : int;
  target : int;
  max_ops : int;
  seen : (string, unit) Hashtbl.t;
  mutable out : (H.t * string) list;  (* canonical history, source doc *)
}

exception Enough

let add acc ~doc h =
  let nops = H.nops h in
  if nops >= 2 && nops <= acc.max_ops then begin
    let c = Canon.canonicalize h in
    let d = Canon.digest c in
    if not (Hashtbl.mem acc.seen d) then begin
      Hashtbl.add acc.seen d ();
      acc.out <- (c, doc) :: acc.out;
      acc.n <- acc.n + 1;
      if acc.n >= acc.target then raise Enough
    end
  end

let prefix_sizes = [ 4; 6; 8; 10; 12 ]

let add_with_prefixes acc ~doc h =
  List.iter
    (fun k ->
      match prefix h k with
      | Some p -> add acc ~doc:(Printf.sprintf "%s prefix=%d" doc k) p
      | None -> ())
    prefix_sizes;
  add acc ~doc h

(* ------------------------------------------------------------------ *)
(* Sources                                                             *)
(* ------------------------------------------------------------------ *)

(* Upper bound on the memory accesses a complete execution of a
   loop-free program performs ([If] counts its larger arm, [For] its
   literal trip count when constant). *)
let static_accesses (p : Smem_lang.Ast.program) =
  let open Smem_lang.Ast in
  let rec stmt = function
    | Load _ | Store _ | Tas _ -> 1
    | Assign _ | Cs_enter | Cs_exit -> 0
    | If (_, a, b) -> max (block a) (block b)
    | While (_, body) -> 100 + block body (* unbounded: effectively reject *)
    | For { from_ = Int a; to_ = Int b; body; _ } ->
        max 0 (b - a + 1) * block body
    | For { body; _ } -> 100 + block body
  and block stmts = List.fold_left (fun n s -> n + stmt s) 0 stmts in
  Array.fold_left (fun n t -> n + block t) 0 p.threads

let loop_free_sources () =
  [
    ("mp", Programs.mp ());
    ("mp-u", Programs.mp ~labeled:false ());
    ("sb", Programs.sb ());
    ("sb-l", Programs.sb ~labeled:true ());
    ("seqlock", Programs.seqlock ());
    ("seqlock-u", Programs.seqlock ~labeled:false ());
  ]

let cyclic_sources () =
  [
    ("bakery2", Programs.bakery ~n:2 ());
    ("bakery2u", Programs.bakery ~n:2 ~labeled:false ());
    ("bakery3", Programs.bakery ~n:3 ());
    ("peterson", Programs.peterson ());
    ("dekker", Programs.dekker ());
    ("naive-flags", Programs.naive_flags ());
    ("spinlock", Programs.tas_spinlock ());
    ("spinlock3", Programs.spinlock_stress ());
  ]

let generate ?(seed = 42) ?(count = 1000) ?(max_ops = 12) ?(expect = []) () =
  let acc =
    { n = 0; target = count; max_ops; seen = Hashtbl.create 4096; out = [] }
  in
  let machines = Machines.all in
  (try
     (* Exhaustive trace classes of the loop-free shapes, one
        representative interleaving each, on every machine: these carry
        the model-separating outcomes (stale reads, torn seqlock
        snapshots) and seed the corpus with the classic weak-memory
        behaviors. *)
     List.iter
       (fun (pname, p) ->
         List.iter
           (fun m ->
             let doc = Printf.sprintf "%s/%s" pname (Machines.name m) in
             ignore
               (Dpor.fold_traces ~max_transitions:50_000 m p ~init:()
                  ~f:(fun () (h, _envs) -> add acc ~doc h)))
           machines)
       (loop_free_sources ());
     (* Two unbounded sources, interleaved in rounds until the target
        is met: seeded random schedules of the cyclic algorithms
        (prefixes included — a Bakery run's first dozen operations are
        a perfectly good small test), and random loop-free programs
        enumerated exhaustively.  PRNGs are keyed by (seed, stage,
        indices) so the sequence is reproducible and independent of
        list lengths elsewhere. *)
     let cyclic = cyclic_sources () in
     let nmachines = List.length machines in
     let stale_rounds = ref 0 in
     let round = ref 0 in
     while !stale_rounds < 3 do
       let before = acc.n in
       for run = 16 * !round to (16 * !round) + 15 do
         List.iteri
           (fun pi (pname, p) ->
             List.iteri
               (fun mi m ->
                 let rand = Random.State.make [| seed; 1; pi; mi; run |] in
                 let doc =
                   Printf.sprintf "%s/%s run=%d" pname (Machines.name m) run
                 in
                 let h, _violated =
                   Explore.run_random ~max_steps:200 m p ~rand
                 in
                 add_with_prefixes acc ~doc h)
               machines)
           cyclic
       done;
       for i = 200 * !round to (200 * !round) + 199 do
         let rand = Random.State.make [| seed; 2; i |] in
         let nprocs = 2 + (i mod 3) in
         let nlocs = 2 + (i mod 4) in
         let len = 1 + (i mod 3) in
         let labels = [| `No; `Mixed; `Separated |].(i mod 3) in
         let p = Programs.random ~rand ~nprocs ~nlocs ~len ~labels () in
         (* Programs that cannot complete within [max_ops] accesses are
            skipped before exploration, so saturated sweeps stay
            cheap. *)
         if static_accesses p <= max_ops + 2 then begin
           let m = List.nth machines (i mod nmachines) in
           let doc = Printf.sprintf "rand=%d/%s" i (Machines.name m) in
           ignore
             (Dpor.fold_traces ~max_transitions:10_000 m p ~init:()
                ~f:(fun () (h, _envs) -> add acc ~doc h))
         end
       done;
       incr round;
       (* three consecutive dry rounds: the space under [max_ops] has
          saturated below [count]; return what exists *)
       if acc.n = before then incr stale_rounds else stale_rounds := 0
     done
   with Enough -> ());
  let tests = List.rev acc.out in
  List.mapi
    (fun i (h, doc) ->
      let expectations =
        List.map
          (fun (m : Smem_core.Model.t) ->
            ( m.Smem_core.Model.key,
              match m.Smem_core.Model.witness h with
              | Some _ -> Test.Allowed
              | None -> Test.Forbidden ))
          expect
      in
      Test.of_history
        ~name:(Printf.sprintf "c%05d" i)
        ~doc ~expect:expectations h)
    tests

(* ------------------------------------------------------------------ *)
(* Artifact                                                            *)
(* ------------------------------------------------------------------ *)

let to_string ~seed tests =
  let b = Buffer.create 65_536 in
  Buffer.add_string b
    (Printf.sprintf "# %s seed=%d count=%d\n" version seed (List.length tests));
  List.iter
    (fun t ->
      Buffer.add_char b '\n';
      Buffer.add_string b (Smem_litmus.Print.to_string t))
    tests;
  Buffer.contents b

let parse s =
  let header =
    match String.index_opt s '\n' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let expected = "# " ^ version in
  if
    String.length header < String.length expected
    || String.sub header 0 (String.length expected) <> expected
  then
    Error
      (Printf.sprintf "not a %s artifact (header %S)" version
         (if String.length header > 40 then String.sub header 0 40 else header))
  else
    match Smem_litmus.Parse.tests_of_string s with
    | Ok tests -> Ok tests
    | Error e -> Error (Format.asprintf "%a" Smem_litmus.Parse.pp_error e)

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      parse s
