(** Generated litmus corpora: the standard test load.

    The generator walks programs — the library's mutual-exclusion
    algorithms, the message-passing / store-buffering / seqlock
    shapes, and seeded {!Smem_lang.Programs.random} programs — across
    every machine in the catalogue, extracts candidate histories from
    their executions, canonicalizes each with {!Smem_core.Canon} and
    deduplicates on the content digest.  Loop-free programs are
    enumerated exhaustively, one representative interleaving per
    Mazurkiewicz trace class, with {!Smem_lang.Dpor.fold_traces};
    cyclic programs contribute seeded random schedules, from which
    down-closed prefixes are carved so that even the Bakery algorithm's
    long runs yield checkable small tests.

    Everything is deterministic in the seed: the same [seed] and
    [count] produce a byte-identical artifact, which is the property
    the corpus tests pin down. *)

val version : string
(** ["smem-corpus/1"] — the artifact format tag carried in the header
    line. *)

val generate :
  ?seed:int ->
  ?count:int ->
  ?max_ops:int ->
  ?expect:Smem_core.Model.t list ->
  unit ->
  Smem_litmus.Test.t list
(** [generate ~seed ~count ()] builds [count] (default [1000])
    deduplicated litmus tests, named [c00000, c00001, ...] in
    generation order.  Histories keep at most [max_ops] (default [12])
    operations — larger executions contribute their prefixes instead —
    so every test stays cheap to check.  Each model in [expect]
    (default none) stamps its computed verdict on every test as an
    [expect] line.  Deterministic in [seed] (default [42]). *)

val to_string : seed:int -> Smem_litmus.Test.t list -> string
(** The versioned artifact: a [# smem-corpus/1 seed=S count=N] header
    line followed by the tests in the litmus syntax of
    {!Smem_litmus.Print} — the whole file parses back with
    {!Smem_litmus.Parse.tests_of_string} (the header is a comment). *)

val parse : string -> (Smem_litmus.Test.t list, string) result
(** Read an artifact back, insisting on the {!version} header. *)

val load : string -> (Smem_litmus.Test.t list, string) result
(** [parse] of a file's contents. *)
