(** Deterministic simulation of the serving stack.

    The harness runs the real serving code — {!Smem_serve.Server.step}
    over {!Smem_serve.Frames}, a real {!Smem_cache.Cache}, a real
    on-disk {!Smem_serve.Store} — with every source of nondeterminism
    replaced by a seam: in-memory byte channels instead of sockets, the
    {!Smem_serve.Sched.inline} scheduler instead of worker domains, a
    virtual clock instead of wall time.  A case is then a pure function
    of [(config, seed, case, schedule)]: two runs produce byte-identical
    event logs, which {!report.digest} witnesses.

    Each case scripts a few clients' worth of NDJSON requests, executes
    a {!Schedule} (deliveries, serving steps, closes, fault
    injections), and checks invariants after every event:

    - the serving stack never raises;
    - every response arrives in position with the right id — junk
      lines answer [bad-request], unknown models answer
      [unknown-model], a crashed batch answers [internal] errors;
    - every verdict agrees with a fresh recompute (cache hits
      included — cached corruption cannot hide);
    - store records always agree with fresh recomputes, and a store
      killed mid-append replays to exactly the pre-kill verdict set
      minus at most the torn final record;
    - at the end of the run every delivered line has been answered.

    A failing schedule is minimized with {!Smem_fuzz.Shrink.list} and
    reported as a replayable [--seed]/[--case]/[--schedule] triple
    ({!replay_command}).

    Metrics: [sim.cases], [sim.events], [sim.steps], [sim.responses],
    [sim.failures], [sim.shrink_steps], [sim.fault.<name>].  Each
    serving step runs under a [sim.step] trace span. *)

type config = {
  clients : int;  (** simulated connections per case *)
  requests_per_client : int;  (** scripted requests per connection *)
  batch : int;  (** serving batch bound, as in [smem serve --batch] *)
  cache_capacity : int;  (** verdict cache capacity (small: evictions matter) *)
  steps : int;  (** schedule length drawn per case *)
  faults : Schedule.fault list;  (** enabled fault injections *)
  store : bool;  (** attach a persistent store (a temp file per run) *)
}

val default : config
(** 3 clients, 5 requests each, batch 4, capacity 64, 80-event
    schedules, every benign fault, store attached. *)

type failure = {
  case : int;
  seed : int;
  reason : string;  (** first invariant violated, human-readable *)
  schedule : Schedule.event list;  (** minimized *)
  shrink_steps : int;  (** accepted shrink reductions *)
}

type report = {
  case : int;
  events : int;  (** schedule events executed (after shrinking, if any) *)
  responses : int;  (** responses verified *)
  digest : string;
      (** hex digest of the full event log — equal digests across two
          runs of the same (config, seed, case) witness determinism *)
  log : string;  (** the full event log, one line per event/response *)
  failure : failure option;
}

type outcome = {
  seed : int;
  cases : int;
  events : int;
  responses : int;
  failures : failure list;
  reports : report list;  (** in case order, independent of [jobs] *)
}

val generate_schedule : config -> seed:int -> case:int -> Schedule.event list
(** The schedule {!run_case} would draw for this case. *)

val run_case : ?schedule:Schedule.event list -> config -> seed:int -> case:int -> report
(** Run one case: draw (or take) its schedule, execute it with the
    invariant checks, and on failure shrink the schedule to a minimal
    failing one (re-running the case per candidate) and report it. *)

val run :
  ?jobs:int ->
  ?schedule:Schedule.event list ->
  config ->
  seed:int ->
  cases:int list ->
  outcome
(** A campaign over [cases].  [jobs > 1] fans cases over worker
    domains; each case is self-contained (own channels, cache, store
    file, PRNG streams), so the outcome — reports in case order — is
    identical to a sequential run. *)

val replay_command : config -> failure -> string
(** The [smem sim ...] invocation that re-executes exactly this failing
    (shrunk) schedule. *)
