module Model = Smem_core.Model
module Registry = Smem_core.Registry
module Canon = Smem_core.Canon
module Cache = Smem_cache.Cache
module Corpus = Smem_litmus.Corpus
module Test = Smem_litmus.Test
module Request = Smem_api.Request
module Response = Smem_api.Response
module Verdict = Smem_api.Verdict
module Wire = Smem_api.Wire
module Frames = Smem_serve.Frames
module Server = Smem_serve.Server
module Sched = Smem_serve.Sched
module Service = Smem_serve.Service
module Store = Smem_serve.Store
module Metrics = Smem_obs.Metrics
module Trace = Smem_obs.Trace
module Shrink = Smem_fuzz.Shrink

let m_cases = Metrics.counter "sim.cases"
let m_events = Metrics.counter "sim.events"
let m_steps = Metrics.counter "sim.steps"
let m_responses = Metrics.counter "sim.responses"
let m_failures = Metrics.counter "sim.failures"
let m_shrink_steps = Metrics.counter "sim.shrink_steps"
let fault_counter name = Metrics.counter ("sim.fault." ^ name)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type config = {
  clients : int;
  requests_per_client : int;
  batch : int;
  cache_capacity : int;
  steps : int;
  faults : Schedule.fault list;
  store : bool;
}

let default =
  {
    clients = 3;
    requests_per_client = 5;
    batch = 4;
    cache_capacity = 64;
    steps = 80;
    faults = Schedule.default_faults;
    store = true;
  }

(* ------------------------------------------------------------------ *)
(* In-memory channel: the simulated wire under a connection            *)

(* A byte queue standing in for a socket.  [push] is the scheduled
   delivery of script bytes; the {!Frames.source} view never blocks —
   a read with nothing buffered on an open channel raises, because the
   harness only steps a connection it knows has a full line pending
   (or is closed), so such a read is a harness bug, not a schedule. *)
module Chan = struct
  type t = { buf : Buffer.t; mutable pos : int; mutable closed : bool }

  let create () = { buf = Buffer.create 256; pos = 0; closed = false }
  let push t s = Buffer.add_string t.buf s
  let close t = t.closed <- true
  let available t = Buffer.length t.buf - t.pos

  let source t : Frames.source =
    {
      Frames.read =
        (fun b off len ->
          let n = min len (available t) in
          if n > 0 then begin
            Buffer.blit t.buf t.pos b off n;
            t.pos <- t.pos + n;
            n
          end
          else if t.closed then 0
          else failwith "Sim.Chan: read on an idle open channel");
      readable = (fun () -> available t > 0 || t.closed);
    }
end

(* ------------------------------------------------------------------ *)
(* Scripts: what each client sends, and what it must get back          *)

type expect =
  | Good of { id : int; test : string; models : string list }
  | Bad_model of { id : int }
  | Junk

type line = { text : string; expect : expect; start : int; stop : int }
type script = { lines : line array; text : string }

let test_pool = [| "fig1"; "fig2"; "mp"; "lb"; "sb+rfi" |]
let model_pool = [| "sc"; "causal"; "pram"; "coh"; "pc" |]

let junk_pool =
  [|
    "{";
    "not json";
    "{\"schema\":\"smem-api/999\",\"op\":\"check\"}";
    "[1,2,3]";
  |]

let chomp s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\n' then String.sub s 0 (n - 1) else s

let make_script entries =
  let b = Buffer.create 256 in
  let lines =
    List.map
      (fun (text, expect) ->
        let start = Buffer.length b in
        Buffer.add_string b text;
        Buffer.add_char b '\n';
        { text; expect; start; stop = Buffer.length b })
      entries
  in
  { lines = Array.of_list lines; text = Buffer.contents b }

let pick rng a = a.(Random.State.int rng (Array.length a))

let gen_script rng cfg c =
  let has_junk = List.mem Schedule.Malformed_frame cfg.faults in
  let entries = ref [] in
  for k = 1 to max 1 cfg.requests_per_client do
    if has_junk && Random.State.int rng 5 = 0 then
      entries := (pick rng junk_pool, Junk) :: !entries;
    let id = ((c + 1) * 1000) + k in
    let entry =
      if Random.State.int rng 12 = 0 then
        let test = pick rng test_pool in
        let text =
          chomp
            (Wire.request_line ~id
               (Request.Check
                  { test = Request.Named test; models = [ "no-such-model" ] }))
        in
        (text, Bad_model { id })
      else begin
        let test = pick rng test_pool in
        let models =
          List.init (1 + Random.State.int rng 2) (fun _ -> pick rng model_pool)
        in
        let text =
          chomp
            (Wire.request_line ~id
               (Request.Check { test = Request.Named test; models }))
        in
        (text, Good { id; test; models })
      end
    in
    entries := entry :: !entries
  done;
  make_script (List.rev !entries)

(* ------------------------------------------------------------------ *)
(* The harness                                                         *)

type conn_state = {
  cnum : int;
  chan : Chan.t;
  sconn : Server.conn;
  out : Buffer.t;
  mutable out_pos : int;
  script : script;
  mutable cursor : int;  (* script bytes delivered so far *)
  mutable answered : int;  (* responses verified so far *)
  mutable closed : bool;
  mutable drained : bool;  (* the serving loop saw end of input *)
}

type harness = {
  cfg : config;
  logb : Buffer.t;
  mutable failure : string option;
  reference : (string * string, bool) Hashtbl.t;  (* (test, model) *)
  digests : (string, string) Hashtbl.t;  (* test -> digest *)
  tests_by_digest : (string, string) Hashtbl.t;
  conns : conn_state array;
  mutable cache : Cache.t;
  mutable store : Store.t option;
  mutable solo : Service.t;
  mutable fan : Service.t;
  sched : Sched.t;
  clock : unit -> int;
  crash_armed : bool ref;
  crash_fired : bool ref;
  rng : Random.State.t;  (* runtime draws: store tear sizes *)
  mutable storms : int;
  mutable events_run : int;
  mutable responses : int;
}

let logf h fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string h.logb s;
      Buffer.add_char h.logb '\n')
    fmt

let failf h fmt =
  Printf.ksprintf
    (fun s ->
      if h.failure = None then h.failure <- Some s;
      Buffer.add_string h.logb ("FAIL " ^ s ^ "\n"))
    fmt

(* Fresh-recompute reference: what every verdict must agree with. *)
let ref_verdict h test model =
  match Hashtbl.find_opt h.reference (test, model) with
  | Some v -> v
  | None ->
      let t =
        match Corpus.find test with
        | Some t -> t
        | None -> invalid_arg ("Sim: unknown corpus test " ^ test)
      in
      let m =
        match Registry.find model with
        | Some m -> m
        | None -> invalid_arg ("Sim: unknown model " ^ model)
      in
      let v = Model.check m t.Test.history in
      Hashtbl.add h.reference (test, model) v;
      v

let digest_of h test =
  match Hashtbl.find_opt h.digests test with
  | Some d -> d
  | None ->
      let t =
        match Corpus.find test with
        | Some t -> t
        | None -> invalid_arg ("Sim: unknown corpus test " ^ test)
      in
      let d = Canon.digest t.Test.history in
      Hashtbl.add h.digests test d;
      Hashtbl.replace h.tests_by_digest d test;
      d

let delivered_lines cs =
  let n = Array.length cs.script.lines in
  let rec go i =
    if i < n && cs.script.lines.(i).stop <= cs.cursor then go (i + 1) else i
  in
  go 0

(* Expected responses so far: every fully delivered line, plus the
   unterminated tail once the channel has closed on it. *)
let expected_responses cs =
  let full = delivered_lines cs in
  let tail =
    cs.closed
    && full < Array.length cs.script.lines
    && cs.cursor > cs.script.lines.(full).start
  in
  full + if tail then 1 else 0

(* What must the [k]-th response to this connection look like? *)
let expected_at cs k =
  let n = Array.length cs.script.lines in
  if k >= n then None
  else
    let ln = cs.script.lines.(k) in
    if cs.cursor >= ln.stop then Some ln.expect
    else if cs.closed && cs.cursor > ln.start then
      (* tail line: delivered without its newline.  The full content
         parses as the scripted request; any proper prefix is junk. *)
      if cs.cursor - ln.start = String.length ln.text then Some ln.expect
      else Some Junk
    else None

let verify_response h cs ~crashed k raw =
  let arrival = k + 1 in
  match Wire.parse_response_line raw with
  | Error e ->
      failf h "conn %d response %d: unparseable (%s): %s" cs.cnum arrival e
        (String.trim raw)
  | Ok r -> (
      match expected_at cs k with
      | None ->
          failf h "conn %d response %d: answers an undelivered line" cs.cnum
            arrival
      | Some expect -> (
          let expected_id =
            match expect with
            | Good { id; _ } | Bad_model { id } -> id
            | Junk -> arrival
          in
          if r.Response.id <> Some expected_id then
            failf h "conn %d response %d: id %s, want %d" cs.cnum arrival
              (match r.Response.id with
              | Some i -> string_of_int i
              | None -> "none")
              expected_id
          else
            match (r.Response.payload, expect) with
            | Response.Error { code = Response.Internal; _ }, _ when crashed ->
                ()  (* a crashed batch answers internal errors, in position *)
            | Response.Error { code = Response.Bad_request; _ }, Junk -> ()
            | _, Junk ->
                failf h "conn %d response %d: want bad-request for junk line"
                  cs.cnum arrival
            | Response.Error { code = Response.Unknown_model; _ }, Bad_model _
              ->
                ()
            | _, Bad_model _ ->
                failf h "conn %d response %d: want unknown-model error" cs.cnum
                  arrival
            | Response.Verdicts vs, Good { test; models; _ } ->
                if List.length vs <> List.length models then
                  failf h "conn %d response %d: %d verdicts for %d models"
                    cs.cnum arrival (List.length vs) (List.length models)
                else
                  List.iter2
                    (fun v mk ->
                      let want = ref_verdict h test mk in
                      if v.Verdict.subject <> test then
                        failf h "conn %d response %d: subject %s, want %s"
                          cs.cnum arrival v.Verdict.subject test
                      else if v.Verdict.authority <> mk then
                        failf h "conn %d response %d: authority %s, want %s"
                          cs.cnum arrival v.Verdict.authority mk
                      else
                        match v.Verdict.status with
                        | Some s when Verdict.bool_of_status s = want -> ()
                        | _ ->
                            failf h
                              "conn %d response %d: verdict %s/%s diverged \
                               from fresh recompute"
                              cs.cnum arrival test mk)
                    vs models
            | _, Good _ ->
                failf h "conn %d response %d: want verdicts" cs.cnum arrival))

(* Pull complete response lines out of the sink and verify each in
   position.  Raw lines go to the event log: the per-case digest is a
   hash over exact response bytes, so any nondeterminism — a wall-time
   elapsed_ns, a reordered batch — shows up as a digest mismatch. *)
let scan_responses h cs ~crashed =
  let s = Buffer.contents cs.out in
  let rec loop pos =
    match String.index_from_opt s pos '\n' with
    | Some nl ->
        let raw = String.sub s pos (nl - pos) in
        verify_response h cs ~crashed cs.answered raw;
        cs.answered <- cs.answered + 1;
        h.responses <- h.responses + 1;
        Metrics.incr m_responses;
        logf h "  < conn %d #%d %s" cs.cnum cs.answered raw;
        loop (nl + 1)
    | None -> cs.out_pos <- pos
  in
  loop cs.out_pos

(* A step is legal only when the serving loop cannot block: a full
   line is pending somewhere between the channel and the frame
   reader, or the channel has closed. *)
let steppable cs =
  (not cs.drained) && (cs.closed || delivered_lines cs > cs.answered)

let do_step h cs =
  if cs.drained then logf h "step conn %d: already drained" cs.cnum
  else if not (steppable cs) then logf h "step conn %d: idle, skipped" cs.cnum
  else begin
    h.crash_fired := false;
    Metrics.incr m_steps;
    let more =
      Trace.span ~cat:"sim" "sim.step" (fun () ->
          Server.step ~batch:h.cfg.batch ~sched:h.sched ~solo:h.solo ~fan:h.fan
            cs.sconn)
    in
    if not more then cs.drained <- true;
    logf h "step conn %d%s%s" cs.cnum
      (if !(h.crash_fired) then " [worker crashed]" else "")
      (if more then "" else " [end of input]");
    scan_responses h cs ~crashed:!(h.crash_fired)
  end

let do_deliver h cs bytes =
  if cs.closed then logf h "deliver conn %d: closed, skipped" cs.cnum
  else begin
    let total = String.length cs.script.text in
    let n = min (max 0 bytes) (total - cs.cursor) in
    if n <= 0 then logf h "deliver conn %d: script exhausted" cs.cnum
    else begin
      Chan.push cs.chan (String.sub cs.script.text cs.cursor n);
      cs.cursor <- cs.cursor + n;
      logf h "deliver conn %d: +%d bytes (%d/%d)" cs.cnum n cs.cursor total
    end
  end

let do_close h cs =
  if cs.closed then logf h "close conn %d: already closed" cs.cnum
  else begin
    Chan.close cs.chan;
    cs.closed <- true;
    let full = delivered_lines cs in
    let mid_line =
      full < Array.length cs.script.lines
      && cs.cursor > cs.script.lines.(full).start
    in
    logf h "close conn %d (%d/%d bytes%s)" cs.cnum cs.cursor
      (String.length cs.script.text)
      (if mid_line then ", mid-line" else "")
  end

let do_crash h =
  h.crash_armed := true;
  Metrics.incr (fault_counter "worker-crash");
  logf h "fault worker-crash: armed for the next fanned batch"

let do_storm h =
  h.storms <- h.storms + 1;
  let n = 2 * h.cfg.cache_capacity in
  for i = 1 to n do
    (* notify:false — junk must not leak into the persistent store *)
    Cache.add ~notify:false h.cache
      ~digest:(Printf.sprintf "storm-%d-%d" h.storms i)
      ~model:"sc" true
  done;
  Metrics.incr (fault_counter "evict-storm");
  logf h "fault evict-storm: %d junk inserts" n

(* The deliberate bug (Bug_cache_corrupt): flip every scripted cached
   verdict in place.  The next check that hits one of these keys
   returns the flipped answer, and the cached-vs-recompute invariant
   must catch it — this is how the harness proves it detects real
   cache corruption. *)
let do_corrupt h =
  let n = ref 0 in
  Array.iter
    (fun cs ->
      Array.iter
        (fun ln ->
          match ln.expect with
          | Good { test; models; _ } ->
              List.iter
                (fun mk ->
                  let digest = digest_of h test in
                  let want = ref_verdict h test mk in
                  Cache.add ~notify:false h.cache ~digest ~model:mk (not want);
                  incr n)
                models
          | Bad_model _ | Junk -> ())
        cs.script.lines)
    h.conns;
  Metrics.incr (fault_counter "bug-cache-corrupt");
  logf h "fault bug-cache-corrupt: flipped %d cached verdicts" !n

let parse_store_content content =
  String.split_on_char '\n' content
  |> List.filter_map (fun line ->
         if line = "" || line.[0] = '#' then None
         else
           match String.split_on_char ' ' line with
           | [ d; m; "1" ] when d <> "" && m <> "" -> Some (d, m, true)
           | [ d; m; "0" ] when d <> "" && m <> "" -> Some (d, m, false)
           | _ -> None)

let read_file path =
  if Sys.file_exists path then
    In_channel.with_open_bin path In_channel.input_all
  else ""

let check_store_records h records =
  List.iter
    (fun (digest, model, v) ->
      match Hashtbl.find_opt h.tests_by_digest digest with
      | None ->
          failf h "store holds a record for an unknown digest %s" digest
      | Some test ->
          if ref_verdict h test model <> v then
            failf h "store record %s/%s diverged from fresh recompute" test
              model)
    records

(* Kill the store mid-append: close it, tear a random number of bytes
   off its final record, replay into a fresh cache, and demand the
   replay reproduce the pre-kill verdict set minus at most the torn
   record. *)
let do_kill h =
  match h.store with
  | None -> logf h "fault store-kill: no store attached, skipped"
  | Some s ->
      let path = Store.path s in
      Store.close s;
      let content = read_file path in
      let before = parse_store_content content in
      let torn =
        if before = [] then 0
        else begin
          let len = String.length content in
          let body =
            if len > 0 && content.[len - 1] = '\n' then
              String.sub content 0 (len - 1)
            else content
          in
          let last_start =
            match String.rindex_opt body '\n' with
            | Some i -> i + 1
            | None -> 0
          in
          let last_len = String.length body - last_start in
          let cut = 1 + Random.State.int h.rng (last_len + 1) in
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc (String.sub content 0 (len - cut)));
          cut
        end
      in
      let after = parse_store_content (read_file path) in
      let cache = Cache.create ~capacity:h.cfg.cache_capacity () in
      let s2 = Store.attach ~path cache in
      let nb = List.length before and na = List.length after in
      if Store.replayed s2 <> na then
        failf h "store replay recovered %d records, the log holds %d"
          (Store.replayed s2) na;
      if na > nb || nb - na > 1 then
        failf h "torn tail lost %d records, at most 1 allowed" (nb - na);
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: a', y :: b' -> x = y && is_prefix a' b'
        | _ :: _, [] -> false
      in
      if not (is_prefix after before) then
        failf h "store replay diverged from the pre-kill log";
      check_store_records h after;
      h.cache <- cache;
      h.store <- Some s2;
      h.solo <- Service.create ~cache ~jobs:1 ~clock:h.clock ();
      h.fan <- Service.create ~cache ~jobs:1 ~clock:h.clock ();
      Metrics.incr (fault_counter "store-kill");
      logf h "fault store-kill: tore %d byte(s), records %d -> %d, replayed %d"
        torn nb na (Store.replayed s2)

let exec_event h ev =
  h.events_run <- h.events_run + 1;
  Metrics.incr m_events;
  let conn_of c = h.conns.(c mod Array.length h.conns) in
  match ev with
  | Schedule.Deliver { conn; bytes } -> do_deliver h (conn_of conn) bytes
  | Schedule.Step c -> do_step h (conn_of c)
  | Schedule.Close c -> do_close h (conn_of c)
  | Schedule.Crash_worker -> do_crash h
  | Schedule.Evict -> do_storm h
  | Schedule.Kill_store -> do_kill h
  | Schedule.Corrupt_cache -> do_corrupt h

(* Epilogue, outside the schedule: close every channel and drain every
   connection, then audit completeness and the store.  Running this
   unconditionally means schedule shrinking cannot cheat an invariant
   away by dropping the steps that would have exposed it. *)
let finish h =
  Array.iter
    (fun cs ->
      if not cs.closed then begin
        Chan.close cs.chan;
        cs.closed <- true
      end)
    h.conns;
  let guard = ref 0 in
  while
    Array.exists (fun cs -> not cs.drained) h.conns
    && h.failure = None && !guard < 10_000
  do
    incr guard;
    Array.iter
      (fun cs -> if (not cs.drained) && h.failure = None then do_step h cs)
      h.conns
  done;
  if !guard >= 10_000 then failf h "drain did not converge";
  if h.failure = None then
    Array.iter
      (fun cs ->
        let want = expected_responses cs in
        if cs.answered <> want then
          failf h "conn %d: %d responses for %d delivered lines" cs.cnum
            cs.answered want;
        if cs.out_pos <> Buffer.length cs.out then
          failf h "conn %d: torn response bytes left in the sink" cs.cnum)
      h.conns;
  match h.store with
  | None -> ()
  | Some s ->
      Store.close s;
      check_store_records h (parse_store_content (read_file (Store.path s)))

(* ------------------------------------------------------------------ *)
(* One case                                                            *)

type raw_outcome = {
  failed : string option;
  log : string;
  events : int;
  responses : int;
}

let run_raw cfg ~seed ~case events =
  let cfg =
    {
      cfg with
      clients = max 1 cfg.clients;
      batch = max 1 cfg.batch;
      cache_capacity = max 8 cfg.cache_capacity;
    }
  in
  let script_rng = Random.State.make [| seed; case; 1 |] in
  let scripts = Array.init cfg.clients (gen_script script_rng cfg) in
  let store_path =
    if cfg.store then Some (Filename.temp_file "smem-sim" ".store") else None
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        store_path)
    (fun () ->
      let vtime = ref 0 in
      let clock () =
        vtime := !vtime + 1000;
        !vtime
      in
      let cache = Cache.create ~capacity:cfg.cache_capacity () in
      let store = Option.map (fun path -> Store.attach ~path cache) store_path in
      let crash_armed = ref false and crash_fired = ref false in
      let order_rng = Random.State.make [| seed; case; 4 |] in
      let order ~batch:_ ~size =
        let a = Array.init size Fun.id in
        for i = size - 1 downto 1 do
          let j = Random.State.int order_rng (i + 1) in
          let t = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- t
        done;
        Array.to_list a
      in
      let cur_batch = ref (-1) and exec_pos = ref 0 in
      let on_task ~batch ~index:_ =
        if batch <> !cur_batch then begin
          cur_batch := batch;
          exec_pos := 0
        end;
        incr exec_pos;
        (* fire on the second task executed: mid-batch, after some
           work has already completed *)
        if !crash_armed && !exec_pos = 2 then begin
          crash_armed := false;
          crash_fired := true;
          raise (Sched.Worker_crashed "simulated worker crash")
        end
      in
      let conns =
        Array.init cfg.clients (fun c ->
            let chan = Chan.create () in
            let out = Buffer.create 512 in
            let sink =
              {
                Server.write = (fun s -> Buffer.add_string out s);
                flush = (fun () -> ());
              }
            in
            {
              cnum = c;
              chan;
              sconn = Server.conn (Frames.of_source (Chan.source chan)) sink;
              out;
              out_pos = 0;
              script = scripts.(c);
              cursor = 0;
              answered = 0;
              closed = false;
              drained = false;
            })
      in
      let h =
        {
          cfg;
          logb = Buffer.create 4096;
          failure = None;
          reference = Hashtbl.create 64;
          digests = Hashtbl.create 16;
          tests_by_digest = Hashtbl.create 16;
          conns;
          cache;
          store;
          solo = Service.create ~cache ~jobs:1 ~clock ();
          fan = Service.create ~cache ~jobs:1 ~clock ();
          sched = Sched.inline ~order ~on_task ();
          clock;
          crash_armed;
          crash_fired;
          rng = Random.State.make [| seed; case; 3 |];
          storms = 0;
          events_run = 0;
          responses = 0;
        }
      in
      (* Pre-resolve every scripted test's canonical digest so store
         records can always be traced back to the test that produced
         them. *)
      Array.iter
        (fun s ->
          Array.iter
            (fun ln ->
              match ln.expect with
              | Good { test; _ } -> ignore (digest_of h test)
              | Bad_model _ | Junk -> ())
            s.lines)
        scripts;
      (try
         List.iter (fun ev -> if h.failure = None then exec_event h ev) events;
         finish h
       with e ->
         (* invariant zero: the serving stack never raises *)
         failf h "service raised: %s" (Printexc.to_string e);
         Option.iter Store.close h.store);
      {
        failed = h.failure;
        log = Buffer.contents h.logb;
        events = h.events_run;
        responses = h.responses;
      })

(* ------------------------------------------------------------------ *)
(* Campaign: many cases, shrinking on failure                          *)

type failure = {
  case : int;
  seed : int;
  reason : string;
  schedule : Schedule.event list;  (* minimized *)
  shrink_steps : int;
}

type report = {
  case : int;
  events : int;
  responses : int;
  digest : string;  (* hash of the full event log: determinism witness *)
  log : string;
  failure : failure option;
}

type outcome = {
  seed : int;
  cases : int;
  events : int;
  responses : int;
  failures : failure list;
  reports : report list;
}

let log_digest log = Digest.to_hex (Digest.string log)

let generate_schedule cfg ~seed ~case =
  Schedule.generate
    (Random.State.make [| seed; case; 2 |])
    ~clients:cfg.clients ~steps:cfg.steps ~faults:cfg.faults

let run_case ?schedule cfg ~seed ~case =
  let events =
    match schedule with
    | Some e -> e
    | None -> generate_schedule cfg ~seed ~case
  in
  Metrics.incr m_cases;
  let r = run_raw cfg ~seed ~case events in
  match r.failed with
  | None ->
      {
        case;
        events = r.events;
        responses = r.responses;
        digest = log_digest r.log;
        log = r.log;
        failure = None;
      }
  | Some reason ->
      Metrics.incr m_failures;
      (* minimize: any failure counts, so the shrunk schedule may
         expose a simpler symptom of the same bug *)
      let keep evs = (run_raw cfg ~seed ~case evs).failed <> None in
      let shrunk, shrink_steps = Shrink.list ~keep events in
      Metrics.add m_shrink_steps shrink_steps;
      let final = run_raw cfg ~seed ~case shrunk in
      let reason = Option.value final.failed ~default:reason in
      {
        case;
        events = final.events;
        responses = final.responses;
        digest = log_digest final.log;
        log = final.log;
        failure = Some { case; seed; reason; schedule = shrunk; shrink_steps };
      }

let run ?(jobs = 1) ?schedule cfg ~seed ~cases =
  let f case = run_case ?schedule cfg ~seed ~case in
  let reports =
    if jobs > 1 then Smem_parallel.Pool.map ~jobs f cases
    else List.map f cases
  in
  {
    seed;
    cases = List.length reports;
    events = List.fold_left (fun n (r : report) -> n + r.events) 0 reports;
    responses =
      List.fold_left (fun n (r : report) -> n + r.responses) 0 reports;
    failures = List.filter_map (fun (r : report) -> r.failure) reports;
    reports;
  }

let replay_command cfg (f : failure) =
  Printf.sprintf
    "smem sim --seed %d --case %d --clients %d --requests %d --batch %d \
     --steps %d --faults %s --schedule '%s'"
    f.seed f.case cfg.clients cfg.requests_per_client cfg.batch cfg.steps
    (String.concat "," (List.map Schedule.fault_name cfg.faults))
    (Schedule.to_string f.schedule)
