type fault =
  | Worker_crash
  | Evict_storm
  | Malformed_frame
  | Truncated_frame
  | Slow_reader
  | Oversized_batch
  | Store_kill
  | Bug_cache_corrupt

let all_faults =
  [
    Worker_crash;
    Evict_storm;
    Malformed_frame;
    Truncated_frame;
    Slow_reader;
    Oversized_batch;
    Store_kill;
    Bug_cache_corrupt;
  ]

let default_faults = List.filter (fun f -> f <> Bug_cache_corrupt) all_faults

let fault_name = function
  | Worker_crash -> "worker-crash"
  | Evict_storm -> "evict-storm"
  | Malformed_frame -> "malformed-frame"
  | Truncated_frame -> "truncated-frame"
  | Slow_reader -> "slow-reader"
  | Oversized_batch -> "oversized-batch"
  | Store_kill -> "store-kill"
  | Bug_cache_corrupt -> "bug-cache-corrupt"

let fault_of_name name =
  List.find_opt (fun f -> fault_name f = name) all_faults

let faults_of_string s =
  let names =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun n -> n <> "")
  in
  List.fold_right
    (fun name acc ->
      match acc with
      | Error _ as e -> e
      | Ok fs -> (
          match fault_of_name name with
          | Some f -> Ok (f :: fs)
          | None -> Error ("unknown fault: " ^ name)))
    names (Ok [])

type event =
  | Deliver of { conn : int; bytes : int }
  | Step of int
  | Close of int
  | Crash_worker
  | Evict
  | Kill_store
  | Corrupt_cache

let pp_event ppf = function
  | Deliver { conn; bytes } -> Format.fprintf ppf "d%d:%d" conn bytes
  | Step conn -> Format.fprintf ppf "s%d" conn
  | Close conn -> Format.fprintf ppf "x%d" conn
  | Crash_worker -> Format.pp_print_string ppf "crash"
  | Evict -> Format.pp_print_string ppf "storm"
  | Kill_store -> Format.pp_print_string ppf "kill"
  | Corrupt_cache -> Format.pp_print_string ppf "corrupt"

let to_string events =
  String.concat " "
    (List.map (fun e -> Format.asprintf "%a" pp_event e) events)

let parse_token tok =
  let num s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Printf.sprintf "bad token: %s" tok)
  in
  match tok with
  | "crash" -> Ok Crash_worker
  | "storm" -> Ok Evict
  | "kill" -> Ok Kill_store
  | "corrupt" -> Ok Corrupt_cache
  | _ when String.length tok >= 2 && tok.[0] = 'd' -> (
      let body = String.sub tok 1 (String.length tok - 1) in
      match String.index_opt body ':' with
      | None -> Error (Printf.sprintf "bad token: %s" tok)
      | Some i ->
          let c = String.sub body 0 i in
          let b = String.sub body (i + 1) (String.length body - i - 1) in
          Result.bind (num c) (fun conn ->
              Result.bind (num b) (fun bytes -> Ok (Deliver { conn; bytes }))))
  | _ when String.length tok >= 2 && tok.[0] = 's' ->
      Result.map
        (fun c -> Step c)
        (num (String.sub tok 1 (String.length tok - 1)))
  | _ when String.length tok >= 2 && tok.[0] = 'x' ->
      Result.map
        (fun c -> Close c)
        (num (String.sub tok 1 (String.length tok - 1)))
  | _ -> Error (Printf.sprintf "bad token: %s" tok)

let of_string s =
  let toks =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char '\n')
    |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  List.fold_right
    (fun tok acc ->
      match acc with
      | Error _ as e -> e
      | Ok evs -> Result.map (fun e -> e :: evs) (parse_token tok))
    toks (Ok [])

(* Draw one schedule.  The distribution keeps delivery and stepping
   dominant (a schedule that never steps tests nothing), sprinkling
   enabled faults in; draws for disabled faults degrade to plain
   steps so the event count is independent of the fault mix. *)
let generate rng ~clients ~steps ~faults =
  let has f = List.mem f faults in
  let clients = max 1 clients in
  let conn () = Random.State.int rng clients in
  let deliver () =
    let bytes =
      if has Slow_reader && Random.State.bool rng then
        1 + Random.State.int rng 8
      else if has Oversized_batch && Random.State.int rng 10 = 0 then
        1200 + Random.State.int rng 800
      else 20 + Random.State.int rng 160
    in
    Deliver { conn = conn (); bytes }
  in
  let events = ref [] in
  for _ = 1 to max 0 steps do
    let r = Random.State.int rng 100 in
    let ev =
      if r < 45 then deliver ()
      else if r < 83 then Step (conn ())
      else if r < 87 then
        if has Truncated_frame then Close (conn ()) else Step (conn ())
      else if r < 90 then if has Worker_crash then Crash_worker else Step (conn ())
      else if r < 93 then if has Evict_storm then Evict else Step (conn ())
      else if r < 97 then if has Store_kill then Kill_store else deliver ()
      else if has Bug_cache_corrupt then Corrupt_cache
      else Step (conn ())
    in
    events := ev :: !events
  done;
  List.rev !events
