(** Schedules: the deterministic simulation's unit of replay.

    A schedule is a finite list of events — byte deliveries, serving
    steps, connection closes, and named fault injections — executed
    one at a time by {!Sim}.  Everything nondeterministic about a
    simulated run lives here: given the same configuration, case
    number and schedule, a run is byte-identical (the harness's
    virtual clock and in-memory channels contribute no entropy of
    their own).

    Schedules round-trip through a compact textual form
    ({!to_string} / {!of_string}) so a failing run can be replayed
    from the command line: the harness prints the minimized schedule
    and [smem sim --schedule '...'] re-executes it verbatim.

    {2 Fault taxonomy}

    Faults come in two flavors.  {e Benign} faults model hostile but
    survivable conditions the daemon must absorb — a worker domain
    crashing mid-batch, a cache eviction storm, malformed or truncated
    client frames, byte-at-a-time slow readers, oversized batches, the
    store killed mid-append and replayed from its torn tail.  A run
    under any mix of benign faults must satisfy every invariant; a
    violation is a daemon bug.  {e Bug} faults ([Bug_cache_corrupt])
    deliberately break an internal invariant so the harness can prove,
    in its own test suite, that it catches real corruption and shrinks
    the schedule that exposes it. *)

type fault =
  | Worker_crash  (** a worker dies mid-batch ({!Smem_serve.Sched.Worker_crashed}) *)
  | Evict_storm  (** junk floods the verdict cache, evicting live entries *)
  | Malformed_frame  (** scripts interleave unparseable request lines *)
  | Truncated_frame  (** a connection closes mid-line *)
  | Slow_reader  (** deliveries shrink to a few bytes at a time *)
  | Oversized_batch  (** deliveries dump far more lines than one batch *)
  | Store_kill  (** the store dies mid-append; replay from the torn tail *)
  | Bug_cache_corrupt
      (** {e deliberate bug}: cached verdicts are flipped in place —
          the harness must catch the divergence *)

val all_faults : fault list
val default_faults : fault list
(** Every benign fault — everything except {!Bug_cache_corrupt}. *)

val fault_name : fault -> string
val fault_of_name : string -> fault option
val faults_of_string : string -> (fault list, string) result
(** Comma-separated fault names. *)

type event =
  | Deliver of { conn : int; bytes : int }
      (** move up to [bytes] of connection [conn]'s script onto its wire *)
  | Step of int  (** one {!Smem_serve.Server.step} on connection [conn] *)
  | Close of int  (** close connection [conn]'s input (mid-line closes truncate) *)
  | Crash_worker  (** arm a worker crash for the next fanned batch *)
  | Evict  (** flood the cache with junk entries *)
  | Kill_store  (** kill the store mid-append, tear its tail, replay *)
  | Corrupt_cache  (** flip every scripted cached verdict (bug fault) *)

val pp_event : Format.formatter -> event -> unit

val to_string : event list -> string
(** Space-separated tokens: [d<conn>:<bytes>] [s<conn>] [x<conn>]
    [crash] [storm] [kill] [corrupt]. *)

val of_string : string -> (event list, string) result
(** Inverse of {!to_string}; [Error] names the offending token. *)

val generate :
  Random.State.t -> clients:int -> steps:int -> faults:fault list -> event list
(** Draw a [steps]-event schedule over [clients] connections.  Only
    events whose fault is enabled are drawn; disabled draws fall back
    to plain delivery/step events.  Deterministic in the state of the
    given PRNG. *)
