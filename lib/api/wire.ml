module Json = Smem_obs.Json

let version = 1
let schema = "smem-api/1"

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Shared pieces                                                       *)

let source_to_json = function
  | Request.Named n -> Json.Obj [ ("corpus", Json.Str n) ]
  | Request.Inline text -> Json.Obj [ ("litmus", Json.Str text) ]

let source_of_json j =
  match (Json.member "corpus" j, Json.member "litmus" j) with
  | Some (Json.Str n), None -> Ok (Request.Named n)
  | None, Some (Json.Str text) -> Ok (Request.Inline text)
  | _ -> Error "test: expected {\"corpus\": name} or {\"litmus\": text}"

let scope_to_json (s : Request.scope) =
  Json.Obj
    [
      ("procs", Json.Arr (List.map (fun n -> Json.Int n) s.Request.procs));
      ("locs", Json.Int s.Request.nlocs);
      ("max_value", Json.Int s.Request.max_value);
      ("labeled", Json.Bool s.Request.labeled);
    ]

let scope_of_json j =
  let* procs =
    match Json.member "procs" j with
    | Some (Json.Arr items) ->
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            match item with
            | Json.Int n -> Ok (n :: acc)
            | _ -> Error "scope: procs must be integers")
          items (Ok [])
    | _ -> Error "scope: missing procs array"
  in
  let int name default =
    match Json.member name j with Some (Json.Int n) -> n | _ -> default
  in
  let labeled =
    match Json.member "labeled" j with Some (Json.Bool b) -> b | _ -> false
  in
  Ok
    {
      Request.procs;
      nlocs = int "locs" 2;
      max_value = int "max_value" 1;
      labeled;
    }

let str_list_of_json what = function
  | None -> Ok []
  | Some (Json.Arr items) ->
      List.fold_right
        (fun item acc ->
          let* acc = acc in
          match item with
          | Json.Str s -> Ok (s :: acc)
          | _ -> Error (what ^ ": expected strings"))
        items (Ok [])
  | Some _ -> Error (what ^ ": expected an array")

let scopes_of_json = function
  | None -> Ok []
  | Some (Json.Arr items) ->
      List.fold_right
        (fun item acc ->
          let* acc = acc in
          let* s = scope_of_json item in
          Ok (s :: acc))
        items (Ok [])
  | Some _ -> Error "scopes: expected an array"

let models_field models =
  ("models", Json.Arr (List.map (fun m -> Json.Str m) models))
let scopes_field scopes = ("scopes", Json.Arr (List.map scope_to_json scopes))

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

let request_to_json ?id r =
  let header =
    [ ("schema", Json.Str schema) ]
    @ (match id with None -> [] | Some id -> [ ("id", Json.Int id) ])
    @ [ ("kind", Json.Str (Request.kind r)) ]
  in
  Json.Obj
    (header
    @
    match r with
    | Request.Check { test; models } ->
        [ ("test", source_to_json test); models_field models ]
    | Request.Corpus { models } -> [ models_field models ]
    | Request.Classify { models; scopes } ->
        [ models_field models; scopes_field scopes ]
    | Request.Distinguish { a; b; scopes } ->
        [ ("a", Json.Str a); ("b", Json.Str b); scopes_field scopes ]
    | Request.Certify { test; model; format } ->
        [
          ("test", source_to_json test);
          ("model", Json.Str model);
          ( "format",
            Json.Str (match format with `Sexp -> "sexp" | `Json -> "json") );
        ])

let request_of_json j =
  let* () =
    match Json.member "schema" j with
    | None | Some (Json.Str "smem-api/1") -> Ok ()
    | Some (Json.Str other) ->
        Error
          (Printf.sprintf "unsupported schema %S (this server speaks %s)"
             other schema)
    | Some _ -> Error "schema: expected a string"
  in
  let id =
    match Json.member "id" j with Some (Json.Int n) -> Some n | _ -> None
  in
  let str name =
    match Json.member name j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" name)
  in
  let source () =
    match Json.member "test" j with
    | Some t -> source_of_json t
    | None -> Error "missing \"test\" field"
  in
  let* kind = str "kind" in
  let* req =
    match kind with
    | "check" ->
        let* test = source () in
        let* models = str_list_of_json "models" (Json.member "models" j) in
        Ok (Request.Check { test; models })
    | "corpus" ->
        let* models = str_list_of_json "models" (Json.member "models" j) in
        Ok (Request.Corpus { models })
    | "classify" ->
        let* models = str_list_of_json "models" (Json.member "models" j) in
        let* scopes = scopes_of_json (Json.member "scopes" j) in
        Ok (Request.Classify { models; scopes })
    | "distinguish" ->
        let* a = str "a" in
        let* b = str "b" in
        let* scopes = scopes_of_json (Json.member "scopes" j) in
        Ok (Request.Distinguish { a; b; scopes })
    | "certify" ->
        let* test = source () in
        let* model = str "model" in
        let* format =
          match Json.member "format" j with
          | None | Some (Json.Str "sexp") -> Ok `Sexp
          | Some (Json.Str "json") -> Ok `Json
          | Some _ -> Error "format: expected \"sexp\" or \"json\""
        in
        Ok (Request.Certify { test; model; format })
    | other -> Error (Printf.sprintf "unknown request kind %S" other)
  in
  Ok (id, req)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let payload_to_json = function
  | Response.Verdicts vs ->
      Json.Obj [ ("verdicts", Json.Arr (List.map Verdict.to_json vs)) ]
  | Response.Classification { total; allowed; relations; hasse } ->
      Json.Obj
        [
          ("total", Json.Int total);
          ( "allowed",
            Json.Arr
              (List.map
                 (fun (m, n) ->
                   Json.Obj [ ("model", Json.Str m); ("count", Json.Int n) ])
                 allowed) );
          ( "relations",
            Json.Arr
              (List.map
                 (fun (a, b, rel) ->
                   Json.Obj
                     [
                       ("a", Json.Str a);
                       ("b", Json.Str b);
                       ("relation", Json.Str rel);
                     ])
                 relations) );
          ( "hasse",
            Json.Arr
              (List.map
                 (fun (s, w) ->
                   Json.Obj
                     [ ("stronger", Json.Str s); ("weaker", Json.Str w) ])
                 hasse) );
        ]
  | Response.Distinction { relation; witnesses } ->
      Json.Obj
        [
          ("relation", Json.Str relation);
          ( "witnesses",
            Json.Arr
              (List.map
                 (fun (role, litmus) ->
                   Json.Obj
                     [ ("role", Json.Str role); ("litmus", Json.Str litmus) ])
                 witnesses) );
        ]
  | Response.Certificate { format; body } ->
      Json.Obj [ ("format", Json.Str format); ("body", Json.Str body) ]
  | Response.Error { code; message } ->
      Json.Obj
        [
          ("error", Json.Str (Response.error_code_to_string code));
          ("message", Json.Str message);
        ]

let response_to_json (t : Response.t) =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("id", match t.Response.id with Some n -> Json.Int n | None -> Json.Null);
      ("kind", Json.Str t.Response.kind);
      ("ok", Json.Bool (Response.ok t));
      ("cached", Json.Int t.Response.cached);
      ("computed", Json.Int t.Response.computed);
      ("elapsed_ns", Json.Int t.Response.elapsed_ns);
      ("payload", payload_to_json t.Response.payload);
    ]

let payload_of_json ~kind j =
  match Json.member "error" j with
  | Some (Json.Str code) ->
      let* code =
        match Response.error_code_of_string code with
        | Some c -> Ok c
        | None -> Error (Printf.sprintf "unknown error code %S" code)
      in
      let message =
        match Json.member "message" j with Some (Json.Str m) -> m | _ -> ""
      in
      Ok (Response.Error { code; message })
  | Some _ -> Error "error: expected a string code"
  | None -> (
      match kind with
      | "check" | "corpus" -> (
          match Json.member "verdicts" j with
          | Some (Json.Arr items) ->
              let* vs =
                List.fold_right
                  (fun item acc ->
                    let* acc = acc in
                    let* v = Verdict.of_json item in
                    Ok (v :: acc))
                  items (Ok [])
              in
              Ok (Response.Verdicts vs)
          | _ -> Error "payload: missing verdicts array")
      | "classify" ->
          let total =
            match Json.member "total" j with Some (Json.Int n) -> n | _ -> 0
          in
          let* allowed =
            match Json.member "allowed" j with
            | Some (Json.Arr items) ->
                List.fold_right
                  (fun item acc ->
                    let* acc = acc in
                    match
                      (Json.member "model" item, Json.member "count" item)
                    with
                    | Some (Json.Str m), Some (Json.Int n) -> Ok ((m, n) :: acc)
                    | _ -> Error "allowed: expected {model, count}")
                  items (Ok [])
            | _ -> Error "payload: missing allowed array"
          in
          let* relations =
            match Json.member "relations" j with
            | Some (Json.Arr items) ->
                List.fold_right
                  (fun item acc ->
                    let* acc = acc in
                    match
                      ( Json.member "a" item,
                        Json.member "b" item,
                        Json.member "relation" item )
                    with
                    | Some (Json.Str a), Some (Json.Str b), Some (Json.Str r)
                      ->
                        Ok ((a, b, r) :: acc)
                    | _ -> Error "relations: expected {a, b, relation}")
                  items (Ok [])
            | _ -> Error "payload: missing relations array"
          in
          let* hasse =
            match Json.member "hasse" j with
            | Some (Json.Arr items) ->
                List.fold_right
                  (fun item acc ->
                    let* acc = acc in
                    match
                      (Json.member "stronger" item, Json.member "weaker" item)
                    with
                    | Some (Json.Str s), Some (Json.Str w) ->
                        Ok ((s, w) :: acc)
                    | _ -> Error "hasse: expected {stronger, weaker}")
                  items (Ok [])
            | _ -> Error "payload: missing hasse array"
          in
          Ok (Response.Classification { total; allowed; relations; hasse })
      | "distinguish" ->
          let* relation =
            match Json.member "relation" j with
            | Some (Json.Str r) -> Ok r
            | _ -> Error "payload: missing relation"
          in
          let* witnesses =
            match Json.member "witnesses" j with
            | Some (Json.Arr items) ->
                List.fold_right
                  (fun item acc ->
                    let* acc = acc in
                    match
                      (Json.member "role" item, Json.member "litmus" item)
                    with
                    | Some (Json.Str role), Some (Json.Str text) ->
                        Ok ((role, text) :: acc)
                    | _ -> Error "witnesses: expected {role, litmus}")
                  items (Ok [])
            | _ -> Error "payload: missing witnesses array"
          in
          Ok (Response.Distinction { relation; witnesses })
      | "certify" -> (
          match (Json.member "format" j, Json.member "body" j) with
          | Some (Json.Str format), Some (Json.Str body) ->
              Ok (Response.Certificate { format; body })
          | _ -> Error "payload: expected {format, body}")
      | other -> Error (Printf.sprintf "unknown response kind %S" other))

let response_of_json j =
  let* () =
    match Json.member "schema" j with
    | None | Some (Json.Str "smem-api/1") -> Ok ()
    | Some _ -> Error "unsupported schema"
  in
  let id =
    match Json.member "id" j with Some (Json.Int n) -> Some n | _ -> None
  in
  let* kind =
    match Json.member "kind" j with
    | Some (Json.Str k) -> Ok k
    | _ -> Error "missing kind"
  in
  let int name =
    match Json.member name j with Some (Json.Int n) -> n | _ -> 0
  in
  let* payload =
    match Json.member "payload" j with
    | Some p -> payload_of_json ~kind p
    | None -> Error "missing payload"
  in
  Ok
    {
      Response.id;
      kind;
      cached = int "cached";
      computed = int "computed";
      elapsed_ns = int "elapsed_ns";
      payload;
    }

(* ------------------------------------------------------------------ *)
(* Line framing ({!Smem_obs.Json.to_string} is newline-terminated)     *)

let request_line ?id r = Json.to_string (request_to_json ?id r)
let response_line t = Json.to_string (response_to_json t)

let parse_line of_json line =
  match Json.of_string line with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok j -> of_json j

let parse_request_line line = parse_line request_of_json line
let parse_response_line line = parse_line response_of_json line
