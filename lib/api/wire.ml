module Json = Smem_obs.Json
module Model_ref = Smem_core.Model_ref

type proto = V1 | V2

let version = 2
let schema = "smem-api/2"
let schema_v1 = "smem-api/1"
let schema_of = function V1 -> schema_v1 | V2 -> schema
let version_of = function V1 -> 1 | V2 -> 2

let proto_of_schema = function
  | "smem-api/1" -> Ok V1
  | "smem-api/2" -> Ok V2
  | other ->
      Error
        (Printf.sprintf "unsupported schema %S (this server speaks %s and %s)"
           other schema_v1 schema)

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Shared pieces                                                       *)

let source_to_json = function
  | Request.Named n -> Json.Obj [ ("corpus", Json.Str n) ]
  | Request.Inline text -> Json.Obj [ ("litmus", Json.Str text) ]

let source_of_json j =
  match (Json.member "corpus" j, Json.member "litmus" j) with
  | Some (Json.Str n), None -> Ok (Request.Named n)
  | None, Some (Json.Str text) -> Ok (Request.Inline text)
  | _ -> Error "test: expected {\"corpus\": name} or {\"litmus\": text}"

let scope_to_json (s : Request.scope) =
  Json.Obj
    [
      ("procs", Json.Arr (List.map (fun n -> Json.Int n) s.Request.procs));
      ("locs", Json.Int s.Request.nlocs);
      ("max_value", Json.Int s.Request.max_value);
      ("labeled", Json.Bool s.Request.labeled);
    ]

let scope_of_json j =
  let* procs =
    match Json.member "procs" j with
    | Some (Json.Arr items) ->
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            match item with
            | Json.Int n -> Ok (n :: acc)
            | _ -> Error "scope: procs must be integers")
          items (Ok [])
    | _ -> Error "scope: missing procs array"
  in
  let int name default =
    match Json.member name j with Some (Json.Int n) -> n | _ -> default
  in
  let labeled =
    match Json.member "labeled" j with Some (Json.Bool b) -> b | _ -> false
  in
  Ok
    {
      Request.procs;
      nlocs = int "locs" 2;
      max_value = int "max_value" 1;
      labeled;
    }

(* ------------------------------------------------------------------ *)
(* Model references

   smem-api/1 carries model references as plain strings in the
   [Model_ref] grammar; smem-api/2 carries them structurally, one
   object per reference:

     {"family": "session", "args": [{"name": "ryw"},
                                    {"name": "mr", "value": "true"}]}

   with [args] omitted for nullary references.  Both parsers accept
   both spellings (the structured form is just the v2 spelling; a
   liberal reader costs nothing), and a structured reference is
   normalized through {!Model_ref.to_string} — the one place the
   grammar lives — so the rest of the stack only ever sees canonical
   strings. *)

let ref_to_json ~proto s =
  match proto with
  | V1 -> Json.Str s
  | V2 -> (
      match Model_ref.parse s with
      | Error _ -> Json.Str s
      | Ok r ->
          Json.Obj
            (("family", Json.Str r.Model_ref.family)
            ::
            (match r.Model_ref.args with
            | [] -> []
            | args ->
                [
                  ( "args",
                    Json.Arr
                      (List.map
                         (fun (name, value) ->
                           Json.Obj
                             (("name", Json.Str name)
                             ::
                             (if value = "" then []
                              else [ ("value", Json.Str value) ])))
                         args) );
                ])))

let ref_of_json = function
  | Json.Str s -> Ok s
  | Json.Obj _ as j -> (
      match Json.member "family" j with
      | Some (Json.Str family) ->
          let* args =
            match Json.member "args" j with
            | None -> Ok []
            | Some (Json.Arr items) ->
                List.fold_right
                  (fun item acc ->
                    let* acc = acc in
                    match Json.member "name" item with
                    | Some (Json.Str name) ->
                        let value =
                          match Json.member "value" item with
                          | Some (Json.Str v) -> v
                          | _ -> ""
                        in
                        Ok ((name, value) :: acc)
                    | _ -> Error "model ref: argument without a name")
                  items (Ok [])
            | Some _ -> Error "model ref: args must be an array"
          in
          Ok (Model_ref.to_string { Model_ref.family; args })
      | _ -> Error "model ref: expected a string or {family, args}")
  | _ -> Error "model ref: expected a string or {family, args}"

let refs_of_json what = function
  | None -> Ok []
  | Some (Json.Arr items) ->
      List.fold_right
        (fun item acc ->
          let* acc = acc in
          let* s = ref_of_json item in
          Ok (s :: acc))
        items (Ok [])
  | Some _ -> Error (what ^ ": expected an array")

let scopes_of_json = function
  | None -> Ok []
  | Some (Json.Arr items) ->
      List.fold_right
        (fun item acc ->
          let* acc = acc in
          let* s = scope_of_json item in
          Ok (s :: acc))
        items (Ok [])
  | Some _ -> Error "scopes: expected an array"

let models_field ~proto models =
  ("models", Json.Arr (List.map (ref_to_json ~proto) models))
let scopes_field scopes = ("scopes", Json.Arr (List.map scope_to_json scopes))

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

let request_to_json ?(proto = V2) ?id r =
  let header =
    [ ("schema", Json.Str (schema_of proto)) ]
    @ (match proto with
      | V1 -> []
      | V2 -> [ ("version", Json.Int (version_of proto)) ])
    @ (match id with None -> [] | Some id -> [ ("id", Json.Int id) ])
    @ [ ("kind", Json.Str (Request.kind r)) ]
  in
  Json.Obj
    (header
    @
    match r with
    | Request.Check { test; models } ->
        [ ("test", source_to_json test); models_field ~proto models ]
    | Request.Corpus { models } -> [ models_field ~proto models ]
    | Request.Classify { models; scopes } ->
        [ models_field ~proto models; scopes_field scopes ]
    | Request.Distinguish { a; b; scopes } ->
        [
          ("a", ref_to_json ~proto a);
          ("b", ref_to_json ~proto b);
          scopes_field scopes;
        ]
    | Request.Certify { test; model; format } ->
        [
          ("test", source_to_json test);
          ("model", ref_to_json ~proto model);
          ( "format",
            Json.Str (match format with `Sexp -> "sexp" | `Json -> "json") );
        ]
    | Request.Models -> [])

(* A missing [schema] means a v1 client from before the field was
   mandatory; an explicit [version] must agree with the schema. *)
let proto_of_json j =
  let* proto =
    match Json.member "schema" j with
    | None -> Ok V1
    | Some (Json.Str s) -> proto_of_schema s
    | Some _ -> Error "schema: expected a string"
  in
  match Json.member "version" j with
  | None -> Ok proto
  | Some (Json.Int n) when n = version_of proto -> Ok proto
  | Some (Json.Int n) ->
      Error
        (Printf.sprintf "version %d does not match schema %s" n
           (schema_of proto))
  | Some _ -> Error "version: expected an integer"

let request_of_json j =
  let* proto = proto_of_json j in
  let id =
    match Json.member "id" j with Some (Json.Int n) -> Some n | _ -> None
  in
  let str name =
    match Json.member name j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" name)
  in
  let ref_field name =
    match Json.member name j with
    | Some r -> ref_of_json r
    | None -> Error (Printf.sprintf "missing model reference %S" name)
  in
  let source () =
    match Json.member "test" j with
    | Some t -> source_of_json t
    | None -> Error "missing \"test\" field"
  in
  let* kind = str "kind" in
  let* req =
    match kind with
    | "check" ->
        let* test = source () in
        let* models = refs_of_json "models" (Json.member "models" j) in
        Ok (Request.Check { test; models })
    | "corpus" ->
        let* models = refs_of_json "models" (Json.member "models" j) in
        Ok (Request.Corpus { models })
    | "classify" ->
        let* models = refs_of_json "models" (Json.member "models" j) in
        let* scopes = scopes_of_json (Json.member "scopes" j) in
        Ok (Request.Classify { models; scopes })
    | "distinguish" ->
        let* a = ref_field "a" in
        let* b = ref_field "b" in
        let* scopes = scopes_of_json (Json.member "scopes" j) in
        Ok (Request.Distinguish { a; b; scopes })
    | "certify" ->
        let* test = source () in
        let* model = ref_field "model" in
        let* format =
          match Json.member "format" j with
          | None | Some (Json.Str "sexp") -> Ok `Sexp
          | Some (Json.Str "json") -> Ok `Json
          | Some _ -> Error "format: expected \"sexp\" or \"json\""
        in
        Ok (Request.Certify { test; model; format })
    | "models" -> Ok Request.Models
    | other -> Error (Printf.sprintf "unknown request kind %S" other)
  in
  Ok (id, proto, req)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let payload_to_json = function
  | Response.Verdicts vs ->
      Json.Obj [ ("verdicts", Json.Arr (List.map Verdict.to_json vs)) ]
  | Response.Classification { total; allowed; relations; hasse } ->
      Json.Obj
        [
          ("total", Json.Int total);
          ( "allowed",
            Json.Arr
              (List.map
                 (fun (m, n) ->
                   Json.Obj [ ("model", Json.Str m); ("count", Json.Int n) ])
                 allowed) );
          ( "relations",
            Json.Arr
              (List.map
                 (fun (a, b, rel) ->
                   Json.Obj
                     [
                       ("a", Json.Str a);
                       ("b", Json.Str b);
                       ("relation", Json.Str rel);
                     ])
                 relations) );
          ( "hasse",
            Json.Arr
              (List.map
                 (fun (s, w) ->
                   Json.Obj
                     [ ("stronger", Json.Str s); ("weaker", Json.Str w) ])
                 hasse) );
        ]
  | Response.Distinction { relation; witnesses } ->
      Json.Obj
        [
          ("relation", Json.Str relation);
          ( "witnesses",
            Json.Arr
              (List.map
                 (fun (role, litmus) ->
                   Json.Obj
                     [ ("role", Json.Str role); ("litmus", Json.Str litmus) ])
                 witnesses) );
        ]
  | Response.Certificate { format; body } ->
      Json.Obj [ ("format", Json.Str format); ("body", Json.Str body) ]
  | Response.Catalogue { models; families } ->
      let rows kvs =
        Json.Arr
          (List.map
             (fun (name, value) ->
               Json.Obj [ ("name", Json.Str name); ("value", Json.Str value) ])
             kvs)
      in
      Json.Obj
        [
          ( "models",
            Json.Arr
              (List.map
                 (fun (m : Response.model_info) ->
                   Json.Obj
                     [
                       ("key", Json.Str m.Response.key);
                       ("name", Json.Str m.Response.name);
                       ("description", Json.Str m.Response.description);
                       ( "params",
                         match m.Response.params with
                         | None -> Json.Null
                         | Some kvs -> rows kvs );
                     ])
                 models) );
          ( "families",
            Json.Arr
              (List.map
                 (fun (f : Response.family_info) ->
                   Json.Obj
                     [
                       ("family", Json.Str f.Response.family);
                       ("doc", Json.Str f.Response.doc);
                       ( "params",
                         Json.Arr
                           (List.map
                              (fun (name, doc) ->
                                Json.Obj
                                  [
                                    ("name", Json.Str name);
                                    ("doc", Json.Str doc);
                                  ])
                              f.Response.params) );
                     ])
                 families) );
        ]
  | Response.Error { code; message } ->
      Json.Obj
        [
          ("error", Json.Str (Response.error_code_to_string code));
          ("message", Json.Str message);
        ]

let response_to_json ?(proto = V2) (t : Response.t) =
  Json.Obj
    (("schema", Json.Str (schema_of proto))
    :: (match proto with
       | V1 -> []
       | V2 -> [ ("version", Json.Int (version_of proto)) ])
    @ [
        ( "id",
          match t.Response.id with Some n -> Json.Int n | None -> Json.Null );
        ("kind", Json.Str t.Response.kind);
        ("ok", Json.Bool (Response.ok t));
        ("cached", Json.Int t.Response.cached);
        ("computed", Json.Int t.Response.computed);
        ("elapsed_ns", Json.Int t.Response.elapsed_ns);
        ("payload", payload_to_json t.Response.payload);
      ])

let kv_rows what = function
  | Some (Json.Arr items) ->
      List.fold_right
        (fun item acc ->
          let* acc = acc in
          match (Json.member "name" item, Json.member "value" item) with
          | Some (Json.Str n), Some (Json.Str v) -> Ok ((n, v) :: acc)
          | _ -> Error (what ^ ": expected {name, value}"))
        items (Ok [])
  | _ -> Error ("payload: missing " ^ what ^ " array")

let payload_of_json ~kind j =
  match Json.member "error" j with
  | Some (Json.Str code) ->
      let* code =
        match Response.error_code_of_string code with
        | Some c -> Ok c
        | None -> Error (Printf.sprintf "unknown error code %S" code)
      in
      let message =
        match Json.member "message" j with Some (Json.Str m) -> m | _ -> ""
      in
      Ok (Response.Error { code; message })
  | Some _ -> Error "error: expected a string code"
  | None -> (
      match kind with
      | "check" | "corpus" -> (
          match Json.member "verdicts" j with
          | Some (Json.Arr items) ->
              let* vs =
                List.fold_right
                  (fun item acc ->
                    let* acc = acc in
                    let* v = Verdict.of_json item in
                    Ok (v :: acc))
                  items (Ok [])
              in
              Ok (Response.Verdicts vs)
          | _ -> Error "payload: missing verdicts array")
      | "classify" ->
          let total =
            match Json.member "total" j with Some (Json.Int n) -> n | _ -> 0
          in
          let* allowed =
            match Json.member "allowed" j with
            | Some (Json.Arr items) ->
                List.fold_right
                  (fun item acc ->
                    let* acc = acc in
                    match
                      (Json.member "model" item, Json.member "count" item)
                    with
                    | Some (Json.Str m), Some (Json.Int n) -> Ok ((m, n) :: acc)
                    | _ -> Error "allowed: expected {model, count}")
                  items (Ok [])
            | _ -> Error "payload: missing allowed array"
          in
          let* relations =
            match Json.member "relations" j with
            | Some (Json.Arr items) ->
                List.fold_right
                  (fun item acc ->
                    let* acc = acc in
                    match
                      ( Json.member "a" item,
                        Json.member "b" item,
                        Json.member "relation" item )
                    with
                    | Some (Json.Str a), Some (Json.Str b), Some (Json.Str r)
                      ->
                        Ok ((a, b, r) :: acc)
                    | _ -> Error "relations: expected {a, b, relation}")
                  items (Ok [])
            | _ -> Error "payload: missing relations array"
          in
          let* hasse =
            match Json.member "hasse" j with
            | Some (Json.Arr items) ->
                List.fold_right
                  (fun item acc ->
                    let* acc = acc in
                    match
                      (Json.member "stronger" item, Json.member "weaker" item)
                    with
                    | Some (Json.Str s), Some (Json.Str w) ->
                        Ok ((s, w) :: acc)
                    | _ -> Error "hasse: expected {stronger, weaker}")
                  items (Ok [])
            | _ -> Error "payload: missing hasse array"
          in
          Ok (Response.Classification { total; allowed; relations; hasse })
      | "distinguish" ->
          let* relation =
            match Json.member "relation" j with
            | Some (Json.Str r) -> Ok r
            | _ -> Error "payload: missing relation"
          in
          let* witnesses =
            match Json.member "witnesses" j with
            | Some (Json.Arr items) ->
                List.fold_right
                  (fun item acc ->
                    let* acc = acc in
                    match
                      (Json.member "role" item, Json.member "litmus" item)
                    with
                    | Some (Json.Str role), Some (Json.Str text) ->
                        Ok ((role, text) :: acc)
                    | _ -> Error "witnesses: expected {role, litmus}")
                  items (Ok [])
            | _ -> Error "payload: missing witnesses array"
          in
          Ok (Response.Distinction { relation; witnesses })
      | "certify" -> (
          match (Json.member "format" j, Json.member "body" j) with
          | Some (Json.Str format), Some (Json.Str body) ->
              Ok (Response.Certificate { format; body })
          | _ -> Error "payload: expected {format, body}")
      | "models" ->
          let* models =
            match Json.member "models" j with
            | Some (Json.Arr items) ->
                List.fold_right
                  (fun item acc ->
                    let* acc = acc in
                    match
                      ( Json.member "key" item,
                        Json.member "name" item,
                        Json.member "description" item )
                    with
                    | Some (Json.Str key), Some (Json.Str name),
                      Some (Json.Str description) ->
                        let* params =
                          match Json.member "params" item with
                          | None | Some Json.Null -> Ok None
                          | Some _ ->
                              let* kvs =
                                kv_rows "params" (Json.member "params" item)
                              in
                              Ok (Some kvs)
                        in
                        Ok
                          ({ Response.key; name; description; params } :: acc)
                    | _ -> Error "models: expected {key, name, description}")
                  items (Ok [])
            | _ -> Error "payload: missing models array"
          in
          let* families =
            match Json.member "families" j with
            | Some (Json.Arr items) ->
                List.fold_right
                  (fun item acc ->
                    let* acc = acc in
                    match
                      (Json.member "family" item, Json.member "doc" item)
                    with
                    | Some (Json.Str family), Some (Json.Str doc) ->
                        let* params =
                          match Json.member "params" item with
                          | Some (Json.Arr ps) ->
                              List.fold_right
                                (fun p acc ->
                                  let* acc = acc in
                                  match
                                    ( Json.member "name" p,
                                      Json.member "doc" p )
                                  with
                                  | Some (Json.Str n), Some (Json.Str d) ->
                                      Ok ((n, d) :: acc)
                                  | _ ->
                                      Error
                                        "family params: expected {name, doc}")
                                ps (Ok [])
                          | _ -> Ok []
                        in
                        Ok ({ Response.family; doc; params } :: acc)
                    | _ -> Error "families: expected {family, doc}")
                  items (Ok [])
            | _ -> Error "payload: missing families array"
          in
          Ok (Response.Catalogue { models; families })
      | other -> Error (Printf.sprintf "unknown response kind %S" other))

let response_of_json j =
  let* _proto = proto_of_json j in
  let id =
    match Json.member "id" j with Some (Json.Int n) -> Some n | _ -> None
  in
  let* kind =
    match Json.member "kind" j with
    | Some (Json.Str k) -> Ok k
    | _ -> Error "missing kind"
  in
  let int name =
    match Json.member name j with Some (Json.Int n) -> n | _ -> 0
  in
  let* payload =
    match Json.member "payload" j with
    | Some p -> payload_of_json ~kind p
    | None -> Error "missing payload"
  in
  Ok
    {
      Response.id;
      kind;
      cached = int "cached";
      computed = int "computed";
      elapsed_ns = int "elapsed_ns";
      payload;
    }

(* ------------------------------------------------------------------ *)
(* Line framing ({!Smem_obs.Json.to_string} is newline-terminated)     *)

let request_line ?proto ?id r = Json.to_string (request_to_json ?proto ?id r)
let response_line ?proto t = Json.to_string (response_to_json ?proto t)

let parse_line of_json line =
  match Json.of_string line with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok j -> of_json j

let parse_request_line line = parse_line request_of_json line
let parse_response_line line = parse_line response_of_json line
