(** The [smem-api/2] JSON wire schema, with [smem-api/1] compatibility.

    One JSON object per line (newline-delimited JSON) in each
    direction; see docs/API.md for the full field-by-field
    specification.  The printer/parser pair round-trips in both
    protocol versions: [request_of_json (request_to_json ~proto ~id r)
    = Ok (id, proto, r)], and likewise for responses.

    Version 2 adds an explicit [version] field, structured model
    references ([{"family": ..., "args": [...]}], normalized through
    {!Smem_core.Model_ref} — the one place the reference grammar
    lives), and the [models] catalogue request.  Version 1 lines — the
    schema field saying ["smem-api/1"], or absent entirely — are still
    accepted, and {!proto} tells the server which version the client
    spoke so it can answer in kind: a v1 request gets a byte-identical
    v1 response.

    Requests carry an optional client-chosen [id], echoed verbatim in
    the response so a client can pipeline requests and match answers;
    without one, the server numbers requests by arrival order. *)

type proto = V1 | V2
(** The protocol version of one parsed line. *)

val version : int
(** [2] — the current protocol version. *)

val schema : string
(** ["smem-api/2"] — the value of the [schema] field emitted on every
    current-version request and response. *)

val schema_v1 : string
(** ["smem-api/1"] — the legacy schema, still accepted on input. *)

val schema_of : proto -> string
val version_of : proto -> int

val request_to_json : ?proto:proto -> ?id:int -> Request.t -> Smem_obs.Json.t
(** Serialize a request; [proto] defaults to {!V2}. *)

val request_of_json :
  Smem_obs.Json.t -> (int option * proto * Request.t, string) result
(** Parse a request in either protocol version, reporting which one
    the line spoke.  Structured and string model references are both
    accepted in both versions; structured references are normalized to
    canonical grammar strings. *)

val response_to_json : ?proto:proto -> Response.t -> Smem_obs.Json.t
(** Serialize a response; [proto] defaults to {!V2}.  With [~proto:V1]
    the output is byte-identical to what an smem-api/1 server
    produced. *)

val response_of_json : Smem_obs.Json.t -> (Response.t, string) result

val request_line : ?proto:proto -> ?id:int -> Request.t -> string
(** The request as one newline-terminated JSON line. *)

val response_line : ?proto:proto -> Response.t -> string

val parse_request_line :
  string -> (int option * proto * Request.t, string) result

val parse_response_line : string -> (Response.t, string) result
