(** The [smem-api/1] JSON wire schema.

    One JSON object per line (newline-delimited JSON) in each
    direction; see docs/API.md for the full field-by-field
    specification.  The printer/parser pair round-trips:
    [request_of_json (request_to_json ~id r) = Ok (id, r)], and
    likewise for responses.

    Requests carry an optional client-chosen [id], echoed verbatim in
    the response so a client can pipeline requests and match answers;
    without one, the server numbers requests by arrival order. *)

val version : int
(** [1]. *)

val schema : string
(** ["smem-api/1"] — the value of the [schema] field on every request
    and response.  Parsers accept a missing [schema] and reject any
    other value. *)

val request_to_json : ?id:int -> Request.t -> Smem_obs.Json.t

val request_of_json :
  Smem_obs.Json.t -> (int option * Request.t, string) result

val response_to_json : Response.t -> Smem_obs.Json.t
val response_of_json : Smem_obs.Json.t -> (Response.t, string) result

val request_line : ?id:int -> Request.t -> string
(** The request as one newline-terminated JSON line. *)

val response_line : Response.t -> string

val parse_request_line : string -> (int option * Request.t, string) result
val parse_response_line : string -> (Response.t, string) result
