type status = Allowed | Forbidden

type t = {
  subject : string;
  authority : string;
  question : string;
  status : status option;
  expected : status option;
  cached : bool;
  states : int option;
  notes : string list;
}

let v ?(question = "membership") ?expected ?(cached = false) ?states
    ?(notes = []) ~subject ~authority status =
  { subject; authority; question; status; expected; cached; states; notes }

let status_of_bool b = if b then Allowed else Forbidden
let bool_of_status = function Allowed -> true | Forbidden -> false

let agrees t =
  match (t.expected, t.status) with
  | None, _ -> true
  | Some e, Some got -> e = got
  | Some _, None -> false

let pp_status ppf = function
  | Allowed -> Format.pp_print_string ppf "allowed"
  | Forbidden -> Format.pp_print_string ppf "forbidden"

let pp_status_opt ppf = function
  | Some s -> pp_status ppf s
  | None -> Format.pp_print_string ppf "undecided"

let pp ppf t =
  Format.fprintf ppf "%-16s %-10s %a%s" t.subject t.authority pp_status_opt
    t.status
    (match t.expected with
    | Some e when Some e <> t.status ->
        Format.asprintf "  (MISMATCH: expected %a)" pp_status e
    | _ -> "")

(* The subject × authority table previously rendered by
   {!Smem_litmus.Runner.pp_matrix}, generalized to any verdict list
   (the litmus runner now delegates here). *)
let pp_matrix ppf verdicts =
  let dedupe key xs =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun x ->
        let k = key x in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      xs
  in
  let subjects = dedupe (fun v -> v.subject) verdicts in
  let authorities = dedupe (fun v -> v.authority) verdicts in
  let by_cell = Hashtbl.create (List.length verdicts) in
  List.iter
    (fun v -> Hashtbl.replace by_cell (v.subject, v.authority) v)
    verdicts;
  let render v =
    let mark =
      match (v.expected, v.status) with
      | Some e, Some got when e <> got -> "!"
      | Some _, _ -> ""
      | None, _ -> " "
    in
    (match v.status with
    | Some Allowed -> "yes"
    | Some Forbidden -> "no"
    | None -> "?")
    ^ mark
  in
  Format.fprintf ppf "%-16s" "test";
  List.iter (fun v -> Format.fprintf ppf " %-10s" v.authority) authorities;
  Format.fprintf ppf "@.";
  List.iter
    (fun sv ->
      Format.fprintf ppf "%-16s" sv.subject;
      List.iter
        (fun av ->
          let s =
            match Hashtbl.find_opt by_cell (sv.subject, av.authority) with
            | Some v -> render v
            | None -> "-"
          in
          Format.fprintf ppf " %-10s" s)
        authorities;
      Format.fprintf ppf "@.")
    subjects

(* ------------------------------------------------------------------ *)
(* JSON form (wire schema smem-api/1; see docs/API.md)                 *)

module Json = Smem_obs.Json

let status_to_json = function
  | Allowed -> Json.Str "allowed"
  | Forbidden -> Json.Str "forbidden"

let to_json t =
  Json.Obj
    (List.concat
       [
         [
           ("subject", Json.Str t.subject);
           ("authority", Json.Str t.authority);
           ("question", Json.Str t.question);
           ( "status",
             match t.status with Some s -> status_to_json s | None -> Json.Null
           );
         ];
         (match t.expected with
         | None -> []
         | Some e -> [ ("expected", status_to_json e) ]);
         [ ("cached", Json.Bool t.cached) ];
         (match t.states with
         | None -> []
         | Some n -> [ ("states", Json.Int n) ]);
         (match t.notes with
         | [] -> []
         | notes ->
             [ ("notes", Json.Arr (List.map (fun n -> Json.Str n) notes)) ]);
       ])

let status_of_json = function
  | Json.Str "allowed" -> Ok Allowed
  | Json.Str "forbidden" -> Ok Forbidden
  | _ -> Error "expected \"allowed\" or \"forbidden\""

let of_json j =
  let str name =
    match Json.member name j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "verdict: missing string %S" name)
  in
  let ( let* ) = Result.bind in
  let* subject = str "subject" in
  let* authority = str "authority" in
  let* question = str "question" in
  let* status =
    match Json.member "status" j with
    | None | Some Json.Null -> Ok None
    | Some s -> Result.map Option.some (status_of_json s)
  in
  let* expected =
    match Json.member "expected" j with
    | None | Some Json.Null -> Ok None
    | Some s -> Result.map Option.some (status_of_json s)
  in
  let cached =
    match Json.member "cached" j with Some (Json.Bool b) -> b | _ -> false
  in
  let states =
    match Json.member "states" j with Some (Json.Int n) -> Some n | _ -> None
  in
  let* notes =
    match Json.member "notes" j with
    | None -> Ok []
    | Some (Json.Arr items) ->
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            match item with
            | Json.Str s -> Ok (s :: acc)
            | _ -> Error "verdict: notes must be strings")
          items (Ok [])
    | Some _ -> Error "verdict: notes must be an array"
  in
  Ok { subject; authority; question; status; expected; cached; states; notes }
