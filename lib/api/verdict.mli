(** The toolkit's single verdict vocabulary.

    Every checker in the system answers the same shape of question —
    {e is this behavior observable?} — about some subject, judged by
    some authority:

    - the axiomatic checkers decide membership of a history in a
      model's history set ({!Smem_litmus.Runner});
    - the machine driver decides reachability of a history on an
      operational machine ({!Smem_machine.Driver});
    - the explorer decides reachability of a violating state of a
      structured program ({!Smem_lang.Explore}).

    Historically each module returned its own shape (a record, a bare
    bool, a three-way variant).  This record unifies them: [status]
    always answers whether the queried behavior is admitted ([Allowed])
    or ruled out ([Forbidden]), [None] when a bounded exploration could
    not decide; [question] names which question was asked.  The
    per-module shapes survive as thin compatibility layers that convert
    into this record. *)

type status = Allowed | Forbidden

type t = {
  subject : string;  (** test, history, or program being judged *)
  authority : string;
      (** who judged: a model key ([sc]) or [machine:<name>] *)
  question : string;
      (** what was asked: [membership], [reachability],
          [mutual-exclusion], [deadlock-freedom], ... *)
  status : status option;  (** [None]: bounded search, undecided *)
  expected : status option;  (** stated expectation, when any *)
  cached : bool;  (** answered from the verdict cache, not recomputed *)
  states : int option;  (** states explored, for operational verdicts *)
  notes : string list;
}

val v :
  ?question:string ->
  ?expected:status ->
  ?cached:bool ->
  ?states:int ->
  ?notes:string list ->
  subject:string ->
  authority:string ->
  status option ->
  t
(** Build a verdict.  [question] defaults to ["membership"]. *)

val status_of_bool : bool -> status
(** [true] is [Allowed]. *)

val bool_of_status : status -> bool

val agrees : t -> bool
(** [true] when there is no stated expectation or the decided status
    matches it; an undecided verdict never agrees with a stated
    expectation. *)

val pp_status : Format.formatter -> status -> unit
(** [allowed] / [forbidden]. *)

val pp : Format.formatter -> t -> unit
(** One line: subject, authority, status, and a [MISMATCH] marker when
    the verdict disagrees with its stated expectation. *)

val pp_matrix : Format.formatter -> t list -> unit
(** A subject × authority status table, marking disagreements with the
    stated expectations with [!].  Row and column order follow first
    appearance in the list; a cell with no verdict prints [-], an
    undecided one [?]. *)

val to_json : t -> Smem_obs.Json.t
val of_json : Smem_obs.Json.t -> (t, string) result
