(** Typed requests — everything a client can ask the toolkit to do.

    These are the checking workloads of the CLI and the serving
    daemon, plus the catalogue introspection request, as pure data: no
    callbacks, no engine values, only names and inline sources, so a
    request can cross a process boundary intact ({!Wire}).  Model
    references are registry keys or {!Smem_core.Model_ref} grammar
    instances (e.g. [session(ryw,mr)]); an empty [models] list means
    "every registered model".  {!Smem_serve.Service} executes
    requests. *)

type test_source =
  | Named of string  (** a built-in corpus test, by name *)
  | Inline of string  (** full litmus text (see {!Smem_litmus.Parse}) *)

type scope = {
  procs : int list;  (** operations per processor *)
  nlocs : int;
  max_value : int;
  labeled : bool;
}
(** An enumeration scope — mirrors {!Smem_lattice.Enumerate.config},
    which the api layer cannot name (it sits below the lattice
    library). *)

type t =
  | Check of { test : test_source; models : string list }
      (** verdict of each model on one test *)
  | Corpus of { models : string list }
      (** the full built-in corpus × models verdict matrix *)
  | Classify of { models : string list; scopes : scope list }
      (** containment relations over enumerated scopes ([scopes = []]
          means the standard Figure-5 sweep) *)
  | Distinguish of { a : string; b : string; scopes : scope list }
      (** search for histories separating two models *)
  | Certify of {
      test : test_source;
      model : string;
      format : [ `Sexp | `Json ];
    }  (** a kernel-checkable verdict certificate for one cell *)
  | Models
      (** the model catalogue: every registered model with its
          parameter quadruple, and every parameterized family with its
          argument domains *)

val kind : t -> string
(** Wire tag: [check], [corpus], [classify], [distinguish],
    [certify], [models]. *)

val pp : Format.formatter -> t -> unit
