type error_code =
  | Bad_request
  | Unknown_model
  | Unknown_test
  | Uncertifiable
  | Rejected
  | Too_large
  | Internal

type family_info = {
  family : string;
  doc : string;
  params : (string * string) list;
}

type model_info = {
  key : string;
  name : string;
  description : string;
  params : (string * string) list option;
}

type payload =
  | Verdicts of Verdict.t list
  | Classification of {
      total : int;
      allowed : (string * int) list;
      relations : (string * string * string) list;
      hasse : (string * string) list;
    }
  | Distinction of {
      relation : string;
      witnesses : (string * string) list;
    }
  | Certificate of { format : string; body : string }
  | Catalogue of { models : model_info list; families : family_info list }
  | Error of { code : error_code; message : string }

type t = {
  id : int option;
  kind : string;
  cached : int;
  computed : int;
  elapsed_ns : int;
  payload : payload;
}

let ok t = match t.payload with Error _ -> false | _ -> true

let error ?id ~code message =
  {
    id;
    kind = "error";
    cached = 0;
    computed = 0;
    elapsed_ns = 0;
    payload = Error { code; message };
  }

let error_code_to_string = function
  | Bad_request -> "bad-request"
  | Unknown_model -> "unknown-model"
  | Unknown_test -> "unknown-test"
  | Uncertifiable -> "uncertifiable"
  | Rejected -> "rejected"
  | Too_large -> "too-large"
  | Internal -> "internal"

let error_code_of_string = function
  | "bad-request" -> Some Bad_request
  | "unknown-model" -> Some Unknown_model
  | "unknown-test" -> Some Unknown_test
  | "uncertifiable" -> Some Uncertifiable
  | "rejected" -> Some Rejected
  | "too-large" -> Some Too_large
  | "internal" -> Some Internal
  | _ -> None

let pp ppf t =
  match t.payload with
  | Verdicts vs ->
      Format.fprintf ppf "@[<v>%a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut Verdict.pp)
        vs
  | Classification { total; relations; _ } ->
      Format.fprintf ppf "classification over %d histories, %d relation(s)"
        total (List.length relations)
  | Distinction { relation; witnesses } ->
      Format.fprintf ppf "distinction: %s (%d witness(es))" relation
        (List.length witnesses)
  | Certificate { format; body } ->
      Format.fprintf ppf "certificate (%s, %d bytes)" format
        (String.length body)
  | Catalogue { models; families } ->
      Format.fprintf ppf "catalogue: %d model(s), %d family(ies)"
        (List.length models) (List.length families)
  | Error { code; message } ->
      Format.fprintf ppf "error %s: %s" (error_code_to_string code) message
