(** Structured responses — what every request answers with.

    A response pairs a payload (verdicts, a classification, separating
    witnesses, a serialized certificate, or a structured error) with
    serving statistics: how many verdict cells were answered from the
    cache vs. computed fresh, and the wall time spent.  Like requests,
    responses are pure data and cross process boundaries via
    {!Wire}. *)

type error_code =
  | Bad_request  (** malformed or unparseable request *)
  | Unknown_model
  | Unknown_test
  | Uncertifiable  (** the model declares no parameter triple *)
  | Rejected
      (** the independent kernel rejected the certificate the engine
          emitted — the engine and the kernel disagree *)
  | Too_large
      (** the history exceeds a hard capacity bound of the view search
          ({!Smem_core.View.Too_large}); the request is answered with
          this code instead of crashing the worker *)
  | Internal
      (** executing the request raised — a worker crashed mid-batch or
          a checker hit a bug.  The serving loop answers the affected
          requests with this code, in position, and keeps running. *)

type family_info = {
  family : string;  (** grammar name, e.g. ["pc-part"] *)
  doc : string;
  params : (string * string) list;
      (** parameter name → human-readable domain *)
}
(** One parameterized family of the catalogue — mirrors
    {!Smem_core.Registry.family_info} without the instantiation
    closure, so it can cross the wire. *)

type model_info = {
  key : string;
  name : string;
  description : string;
  params : (string * string) list option;
      (** the parameter quadruple as [(dimension, value)] rows
          ({!Smem_core.Model.params_strings}); [None] for operational
          or ad-hoc models, which cannot be certified *)
}
(** One catalogued model. *)

type payload =
  | Verdicts of Verdict.t list  (** [Check] / [Corpus] *)
  | Classification of {
      total : int;  (** histories enumerated *)
      allowed : (string * int) list;  (** histories allowed, per model *)
      relations : (string * string * string) list;
          (** (a, b, [equal|stronger|weaker|incomparable]) for every
              ordered model pair a ≠ b *)
      hasse : (string * string) list;
          (** transitive-reduction edges, stronger → weaker *)
    }  (** [Classify] *)
  | Distinction of {
      relation : string;
          (** [equal], [a-stronger], [b-stronger] or [incomparable] *)
      witnesses : (string * string) list;
          (** (role, replayable litmus text) *)
    }  (** [Distinguish] *)
  | Certificate of { format : string; body : string }  (** [Certify] *)
  | Catalogue of { models : model_info list; families : family_info list }
      (** [Models] — the source of truth for what the server can
          check; docs/API.md's model table is generated from it *)
  | Error of { code : error_code; message : string }

type t = {
  id : int option;  (** echo of the request id, when it carried one *)
  kind : string;  (** the request kind answered, or [error] *)
  cached : int;  (** verdict cells answered from the cache *)
  computed : int;  (** verdict cells computed by the engine *)
  elapsed_ns : int;
  payload : payload;
}

val ok : t -> bool
(** [false] exactly on an [Error] payload. *)

val error : ?id:int -> code:error_code -> string -> t

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

val pp : Format.formatter -> t -> unit
(** Human-readable rendering (one-line summary; verdict payloads list
    one verdict per line). *)
