type test_source = Named of string | Inline of string

type scope = {
  procs : int list;
  nlocs : int;
  max_value : int;
  labeled : bool;
}

type t =
  | Check of { test : test_source; models : string list }
  | Corpus of { models : string list }
  | Classify of { models : string list; scopes : scope list }
  | Distinguish of { a : string; b : string; scopes : scope list }
  | Certify of {
      test : test_source;
      model : string;
      format : [ `Sexp | `Json ];
    }
  | Models

let kind = function
  | Check _ -> "check"
  | Corpus _ -> "corpus"
  | Classify _ -> "classify"
  | Distinguish _ -> "distinguish"
  | Certify _ -> "certify"
  | Models -> "models"

let pp_source ppf = function
  | Named n -> Format.fprintf ppf "%s" n
  | Inline _ -> Format.pp_print_string ppf "<inline>"

let pp ppf t =
  match t with
  | Check { test; models } ->
      Format.fprintf ppf "check %a [%s]" pp_source test
        (String.concat "," models)
  | Corpus { models } ->
      Format.fprintf ppf "corpus [%s]" (String.concat "," models)
  | Classify { models; scopes } ->
      Format.fprintf ppf "classify [%s] (%d scope(s))"
        (String.concat "," models)
        (List.length scopes)
  | Distinguish { a; b; scopes } ->
      Format.fprintf ppf "distinguish %s %s (%d scope(s))" a b
        (List.length scopes)
  | Certify { test; model; format } ->
      Format.fprintf ppf "certify %a under %s as %s" pp_source test model
        (match format with `Sexp -> "sexp" | `Json -> "json")
  | Models -> Format.pp_print_string ppf "models"
