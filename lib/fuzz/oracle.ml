module H = Smem_core.History
module Model = Smem_core.Model
module Stats = Smem_core.Stats
module Machines = Smem_machine.Machines
module Driver = Smem_machine.Driver
module Test = Smem_litmus.Test
module Figure5 = Smem_lattice.Figure5
module Cert = Smem_cert.Cert

type kind =
  | Unsound of { machine : string; model : string }
  | Containment of { stronger : string; weaker : string }
  | Engine_mismatch of { model : string; enum : bool; solve : bool }

type violation = {
  kind : kind;
  case : int;
  original : H.t;
  shrunk : H.t;
  shrink_steps : int;
  test : Test.t;
  certificate : Cert.t option;
}

(* Route verdict queries through a caching {!Smem_serve.Service} when
   one is supplied: campaign-wide, structurally equivalent histories
   (and every shrink candidate) then cost one digest instead of one
   search. *)
let query ?service model h =
  match service with
  | Some s -> Smem_serve.Service.check_history s model h
  | None -> Model.check model h

let sound_key machine = "sound:" ^ machine
let pair_key s w = s ^ "<=" ^ w
let engine_key model = "solve==enum:" ^ model

(* The release-consistency models complete a case the paper leaves
   undefined — an acquire reading an ordinary write on a location that
   also carries labeled writes — by rejecting it (EXPERIMENTS.md §3),
   while the RC machines can operationally produce exactly such traces.
   The characterization is only claimed for properly labeled histories
   (all §5 considers), so RC soundness is asserted only there. *)
let proper_labels_only_models = [ "rc-sc"; "rc-pc" ]

let soundness ?service ~case machine h =
  let model = Machines.model machine in
  let machine_name = Machines.name machine in
  let key = sound_key machine_name in
  if
    List.mem model.Model.key proper_labels_only_models
    && not (Figure5.properly_labeled h)
  then None
  else if query ?service model h then begin
    Stats.count_fuzz_pass key;
    None
  end
  else begin
    Stats.count_fuzz_fail key;
    (* Shrink under "still a machine trace and still rejected": guided
       replay keeps the minimized history producible by the machine. *)
    let keep h' =
      (not (query ?service model h'))
      && Driver.reachable machine (Driver.program_of_history h') h'
    in
    let shrunk, steps = Shrink.shrink ~keep h in
    Stats.add_fuzz_shrink key steps;
    let test =
      Test.of_history
        ~name:(Printf.sprintf "fuzz-unsound-%s-case%d" machine_name case)
        ~doc:
          (Printf.sprintf
             "machine %s produced this history; model %s must allow it"
             machine_name model.Model.key)
        ~expect:[ (model.Model.key, Test.Allowed) ]
        shrunk
    in
    (* A forbidden certificate for the shrunk repro: the claim being
       violated is exactly "the model rejects this machine trace", and
       the kernel can re-refute it independently. *)
    let certificate = Cert.certify model ~name:test.Test.name shrunk in
    Some
      {
        kind = Unsound { machine = machine_name; model = model.Model.key };
        case;
        original = h;
        shrunk;
        shrink_steps = steps;
        test;
        certificate;
      }
  end

let lattice ?service ?pairs ~case h =
  let pairs = match pairs with Some ps -> ps | None -> Figure5.pairs h in
  (* Each model's verdict on [h] is needed by several pairs; memoize. *)
  let verdicts : (string, bool) Hashtbl.t = Hashtbl.create 8 in
  let check (m : Model.t) hist =
    if hist == h then
      match Hashtbl.find_opt verdicts m.Model.key with
      | Some v -> v
      | None ->
          let v = query ?service m hist in
          Hashtbl.add verdicts m.Model.key v;
          v
    else query ?service m hist
  in
  List.filter_map
    (fun ((stronger : Model.t), (weaker : Model.t)) ->
      let key = pair_key stronger.Model.key weaker.Model.key in
      if check stronger h && not (check weaker h) then begin
        Stats.count_fuzz_fail key;
        let keep h' = query ?service stronger h' && not (query ?service weaker h') in
        let shrunk, steps = Shrink.shrink ~keep h in
        Stats.add_fuzz_shrink key steps;
        let test =
          Test.of_history
            ~name:
              (Printf.sprintf "fuzz-containment-%s-%s-case%d"
                 stronger.Model.key weaker.Model.key case)
            ~doc:
              (Printf.sprintf
                 "allowed by %s, so %s must allow it too (Figure 5)"
                 stronger.Model.key weaker.Model.key)
            ~expect:
              [
                (stronger.Model.key, Test.Allowed);
                (weaker.Model.key, Test.Allowed);
              ]
            shrunk
        in
        (* The half of the broken containment a certificate can carry:
           the stronger model's witness that the history is allowed. *)
        let certificate = Cert.certify stronger ~name:test.Test.name shrunk in
        Some
          {
            kind =
              Containment
                { stronger = stronger.Model.key; weaker = weaker.Model.key };
            case;
            original = h;
            shrunk;
            shrink_steps = steps;
            test;
            certificate;
          }
      end
      else begin
        Stats.count_fuzz_pass key;
        None
      end)
    pairs

(* The engines differential: for every model with a parameter triple,
   the constraint-propagation engine and the model's own enumeration
   must return the same verdict.  Deliberately bypasses the service
   cache and {!Model.witness_of} dispatch — the point is to run BOTH
   engines on the same history, whatever the process-global mode. *)
let engines ~case h =
  List.filter_map
    (fun (m : Model.t) ->
      let key = engine_key m.Model.key in
      let differ h' =
        Option.is_some (m.Model.witness h')
        <> Option.is_some (Smem_solve.Solve.witness m h')
      in
      if not (differ h) then begin
        Stats.count_fuzz_pass key;
        None
      end
      else begin
        Stats.count_fuzz_fail key;
        let shrunk, steps = Shrink.shrink ~keep:differ h in
        Stats.add_fuzz_shrink key steps;
        let enum = Option.is_some (m.Model.witness shrunk) in
        let test =
          Test.of_history
            ~name:
              (Printf.sprintf "fuzz-engines-%s-case%d" m.Model.key case)
            ~doc:
              (Printf.sprintf
                 "enumerator says %s under %s; the solver must agree"
                 (if enum then "allowed" else "forbidden")
                 m.Model.key)
            ~expect:
              [ (m.Model.key, if enum then Test.Allowed else Test.Forbidden) ]
            shrunk
        in
        (* The enumerator's certificate for the shrunk repro: the kernel
           arbitrates which engine is wrong. *)
        let certificate = Cert.certify m ~name:test.Test.name shrunk in
        Some
          {
            kind =
              Engine_mismatch { model = m.Model.key; enum; solve = not enum };
            case;
            original = h;
            shrunk;
            shrink_steps = steps;
            test;
            certificate;
          }
      end)
    Smem_core.Registry.certifiable

let pp_kind ppf = function
  | Unsound { machine; model } ->
      Format.fprintf ppf "UNSOUND: machine %s escaped model %s" machine model
  | Containment { stronger; weaker } ->
      Format.fprintf ppf "CONTAINMENT BROKEN: %s allowed, %s rejected"
        stronger weaker
  | Engine_mismatch { model; enum; solve } ->
      let verdict b = if b then "allowed" else "forbidden" in
      Format.fprintf ppf
        "ENGINE MISMATCH under %s: enumeration says %s, solver says %s" model
        (verdict enum) (verdict solve)

let pp_violation ppf v =
  Format.fprintf ppf
    "@[<v>%a (case %d)@,original:@,%a@,shrunk (%d step(s)):@,%a@,replay:@,%s%s@]"
    pp_kind v.kind v.case H.pp v.original v.shrink_steps H.pp v.shrunk
    (String.trim (Smem_litmus.Print.to_string v.test))
    (match v.certificate with
    | None -> ""
    | Some c ->
        Printf.sprintf "\ncertificate: %s verdict for model %s" 
          (match c.Cert.verdict with
          | Cert.Allowed -> "allowed"
          | Cert.Forbidden -> "forbidden")
          c.Cert.model)
