(** Seeded, reproducible generation of random histories and programs.

    Every random draw is funneled through a [Random.State.t] derived
    from [(seed, case index)] by {!case_rand}, so a campaign is a pure
    function of its configuration: re-running with the same seed
    replays the same cases regardless of worker count or which earlier
    cases were skipped, and a failing case index is enough to
    regenerate its inputs exactly. *)

type labels = [ `No | `Mixed | `Separated ]
(** Labeling discipline: no labeled accesses, attribute drawn per
    access, or the last location dedicated to synchronization (the
    paper's properly-labeled discipline — required for the conditional
    RC containments of {!Smem_lattice.Figure5}). *)

type config = {
  seed : int;
  count : int;  (** cases to run *)
  jobs : int;  (** worker domains for the campaign *)
  min_procs : int;
  max_procs : int;
  min_ops : int;
  max_ops : int;  (** operations (or statement groups) per processor *)
  nlocs : int;  (** locations, at most 6 *)
  max_value : int;  (** largest written value *)
  labels : labels;
  machines : bool;  (** also run every machine on a random program *)
  lang_every : int;
      (** additionally run a random [Smem_lang] program on every
          machine each [lang_every]-th case; [0] disables *)
  engines : bool;
      (** also differential-test the constraint-propagation engine
          against each model's own enumeration ({!Oracle.engines}) on
          every history the case checks *)
  corpus : Smem_litmus.Test.t list;
      (** standard load: case [i] additionally replays the history of
          test [i mod length] through the lattice oracle, so a corpus
          file ([smem corpus generate]) rides along every campaign;
          empty disables *)
}

val default : config
(** Seed 42, 100 cases, 1 job, 2-3 processors, 1-4 operations,
    3 locations, values up to 2, [`Separated] labels, machines on,
    language programs every 3rd case. *)

val validate : config -> unit
(** @raise Invalid_argument on out-of-range fields. *)

val case_rand : config -> int -> Random.State.t
(** The PRNG for one case: [Random.State.make [| seed; index |]]. *)

val history : config -> rand:Random.State.t -> Smem_core.History.t
(** A random history.  Read values are biased toward values actually
    written to the same location (plus the initial [0]) so a useful
    fraction of histories is allowed by at least one model; a quarter
    of reads draw uniformly to exercise refutation paths. *)

val program : config -> rand:Random.State.t -> Smem_machine.Driver.program
(** A random straight-line machine program.  Write values are globally
    distinct so recorded traces have near-unambiguous reads-from maps. *)

val lang_program : config -> rand:Random.State.t -> Smem_lang.Ast.program
(** A random structured program via {!Smem_lang.Programs.random}. *)
