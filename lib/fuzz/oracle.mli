(** The differential oracles, and violation reports.

    Two families of assertion, both consequences of the paper's
    theorems:

    - {e soundness} — a history produced by an operational machine must
      be allowed by the axiomatic model characterizing it (§3: each
      machine implements its memory);
    - {e lattice} — a history allowed by a stronger model must be
      allowed by every weaker one (§4, Figure 5), the metamorphic
      check applied pairwise through {!Smem_lattice.Figure5}.

    A violation carries the original history, a shrunk minimal
    counterexample (still violating, see {!Shrink}), and a replayable
    litmus rendering whose [expect] lines restate the broken claim —
    [smem check] on the printed file reproduces the failure as a
    verdict mismatch.

    Every oracle evaluation bumps the {!Smem_core.Stats} fuzz counters
    under the key named here: [sound:<machine>] for soundness,
    [<stronger><=<weaker>] for containments. *)

type kind =
  | Unsound of { machine : string; model : string }
      (** the machine produced a history its model rejects *)
  | Containment of { stronger : string; weaker : string }
      (** a history allowed by [stronger] but rejected by [weaker] *)
  | Engine_mismatch of { model : string; enum : bool; solve : bool }
      (** the model's own enumeration and the constraint-propagation
          engine ([Smem_solve]) disagree on the verdict ([true] =
          allowed) *)

type violation = {
  kind : kind;
  case : int;  (** generator case index, for replay *)
  original : Smem_core.History.t;
  shrunk : Smem_core.History.t;
  shrink_steps : int;
  test : Smem_litmus.Test.t;  (** replayable litmus form of [shrunk] *)
  certificate : Smem_cert.Cert.t option;
      (** kernel-checkable evidence for the shrunk repro: the model's
          forbidden certificate for an unsoundness, the stronger model's
          allowed certificate for a broken containment.  [None] when the
          judging model is not certifiable. *)
}

val soundness :
  ?service:Smem_serve.Service.t ->
  case:int ->
  Smem_machine.Machine_sig.machine ->
  Smem_core.History.t ->
  violation option
(** Check one machine-produced history against the machine's model.
    [?service] routes every model query (including shrink keep
    predicates) through a caching {!Smem_serve.Service}, so
    canonically equivalent histories across the campaign are checked
    once; without it, {!Smem_core.Model.check} is called directly.
    On failure the counterexample is shrunk under the conjunction
    "still machine-reachable (guided replay) and still
    model-rejected", so the minimal history is a genuine machine trace.

    For the RC machines the check is skipped (no counter bumped) on
    histories that are not properly labeled: the paper leaves an
    acquire of an ordinary write on a mixed location undefined, the
    models complete it by rejection (EXPERIMENTS.md §3), and the
    machines can produce such traces — the characterization is only
    claimed under the §5 labeling discipline. *)

val lattice :
  ?service:Smem_serve.Service.t ->
  ?pairs:(Smem_core.Model.t * Smem_core.Model.t) list ->
  case:int ->
  Smem_core.History.t ->
  violation list
(** Check every containment pair applicable to the history
    ({!Smem_lattice.Figure5.pairs} by default; [?pairs] overrides it —
    how the tests inject a deliberately flipped containment and assert
    the oracle catches it).  Model verdicts are memoized per call, so
    each model checks the history at most once. *)

val engines : case:int -> Smem_core.History.t -> violation list
(** Differential-test the two witness engines: for every model with a
    parameter triple ({!Smem_core.Registry.certifiable}), the model's
    own enumeration and [Smem_solve.Solve.witness] must agree on
    whether the history is allowed.  Queries both engines directly
    (no service cache — a cached verdict would mask a disagreement);
    mismatches are shrunk under "the engines still disagree" and carry
    the enumerator's certificate so the kernel can arbitrate.  Bumps
    the fuzz counters under [solve==enum:<model>]. *)

val pp_violation : Format.formatter -> violation -> unit
(** Kind, case, original and shrunk histories, and the litmus text. *)
