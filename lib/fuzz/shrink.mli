(** Greedy counterexample minimization for histories.

    [shrink ~keep h] repeatedly applies the first size- or
    value-reducing transformation that preserves [keep] — drop a whole
    processor, drop one operation, lower a value (to [0], then by one),
    strip a label — until no single step preserves it, and returns the
    fixpoint with the number of accepted steps.

    Guarantees, relied on by the fuzzer's tests:
    - the result satisfies [keep] whenever the input does (if the input
      does not, the input is returned unchanged with [0] steps);
    - the result never has more operations, processors, larger values
      or more labels than the input;
    - the procedure is deterministic: candidates are tried in a fixed
      order and the first acceptable one is taken.

    [keep] must be total; an exception escaping it aborts the shrink.
    Real-time intervals are not preserved (fuzzed histories carry
    none). *)

val shrink :
  keep:(Smem_core.History.t -> bool) ->
  Smem_core.History.t ->
  Smem_core.History.t * int

val list : keep:('a list -> bool) -> 'a list -> 'a list * int
(** Generic greedy list minimization under the same contract as
    {!shrink}: if the input satisfies [keep], repeatedly remove the
    first contiguous span (largest spans first, halving down to single
    elements) whose removal preserves [keep], to a fixpoint; returns
    the minimized list and the number of accepted removals.  An input
    that fails [keep] comes back unchanged with [0] steps.  The
    simulation harness ({!Smem_sim}) shrinks failing event schedules
    with this. *)
