(** Running a fuzz campaign: generate cases, drive the oracles, fan
    out over the Domain pool, aggregate.

    A campaign with configuration [c] runs [c.count] cases.  Case [i]
    derives its own PRNG from [(c.seed, i)] and, from it:

    + generates a random history and runs the lattice oracle on it;
    + when [c.machines] is set, generates a random straight-line
      program, replays it on {e every} machine under a random schedule,
      and runs the soundness oracle (machine trace ⊆ machine's model)
      plus the lattice oracle on each recorded trace;
    + every [c.lang_every]-th case, additionally compiles a random
      structured [Smem_lang] program, runs it on every machine, and
      applies the same two oracles to the recorded traces;
    + when [c.corpus] is non-empty, additionally replays the history of
      corpus test [i mod length] through the lattice oracle — the
      generated corpus ([smem corpus generate]) as the standard load.

    Cases are independent, so they fan out over [c.jobs] worker domains
    ({!Smem_parallel.Pool}); verdicts, violation order and shrink
    results are identical for every [jobs] value. *)

type outcome = {
  cases : int;  (** cases executed *)
  histories : int;  (** histories checked, all sources *)
  machine_runs : int;  (** machine random-schedule replays *)
  lattice_checks : int;  (** containment pairs evaluated *)
  engine_checks : int;
      (** histories put through the solver ≡ enumerator differential
          ({!Oracle.engines}; requires [Gen.config.engines]) *)
  corpus_replays : int;  (** corpus tests replayed as standard load *)
  violations : Oracle.violation list;  (** in case order *)
  certified : int;
      (** violation certificates re-verified by {!Smem_cert.Kernel} *)
  cert_unverified_cap : int;
      (** of [certified], acceptances that were capped
          ({!Smem_cert.Kernel.Unverified_cap}): the frontier matched but
          the refutation was not re-enumerated *)
  cert_failures : string list;
      (** kernel rejections of emitted certificates — always empty
          unless the emitter and the kernel disagree *)
}

val run : Gen.config -> outcome
(** Run a campaign.  @raise Invalid_argument on a bad configuration
    (see {!Gen.validate}). *)

val pp_summary : Format.formatter -> outcome -> unit
(** One-paragraph totals; violations are {e not} printed (iterate
    [outcome.violations] with {!Oracle.pp_violation}). *)
