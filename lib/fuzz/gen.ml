module H = Smem_core.History
module Op = Smem_core.Op
module Driver = Smem_machine.Driver

type labels = [ `No | `Mixed | `Separated ]

type config = {
  seed : int;
  count : int;
  jobs : int;
  min_procs : int;
  max_procs : int;
  min_ops : int;
  max_ops : int;
  nlocs : int;
  max_value : int;
  labels : labels;
  machines : bool;
  lang_every : int;
  engines : bool;
  corpus : Smem_litmus.Test.t list;
}

let default =
  {
    seed = 42;
    count = 100;
    jobs = 1;
    min_procs = 2;
    max_procs = 3;
    min_ops = 1;
    max_ops = 4;
    nlocs = 3;
    max_value = 2;
    labels = `Separated;
    machines = true;
    lang_every = 3;
    engines = false;
    corpus = [];
  }

let loc_pool = [| "x"; "y"; "z"; "u"; "v"; "w" |]

let validate c =
  let fail msg = invalid_arg ("Gen: " ^ msg) in
  if c.count < 0 then fail "count must be non-negative";
  if c.min_procs < 1 || c.max_procs < c.min_procs then
    fail "need 1 <= min_procs <= max_procs";
  if c.min_ops < 1 || c.max_ops < c.min_ops then
    fail "need 1 <= min_ops <= max_ops";
  if c.nlocs < 1 || c.nlocs > Array.length loc_pool then
    fail "between 1 and 6 locations";
  if c.max_value < 1 then fail "max_value must be at least 1";
  if c.lang_every < 0 then fail "lang_every must be non-negative"

let case_rand c index = Random.State.make [| c.seed; index |]

let int_range rand lo hi = lo + Random.State.int rand (hi - lo + 1)

(* [List.init]/[List.map] do not specify their application order; the
   generators need one (the PRNG stream is part of the reproducibility
   contract), so lists of draws are built by an explicit loop. *)
let gen_list n f =
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f () :: acc) in
  go n []

let pick_labeled c rand loc =
  match c.labels with
  | `No -> false
  | `Mixed -> Random.State.bool rand
  | `Separated -> loc = c.nlocs - 1

(* Draws are sequenced explicitly (rows, then per-row ops, left to
   right) so the PRNG consumption order is part of the format: a case
   index reproduces its history bit-for-bit. *)
let history c ~rand =
  let nprocs = int_range rand c.min_procs c.max_procs in
  let written : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let note_write loc v =
    let prev = Option.value ~default:[] (Hashtbl.find_opt written loc) in
    Hashtbl.replace written loc (v :: prev)
  in
  let read_value loc =
    if Random.State.int rand 4 = 0 then Random.State.int rand (c.max_value + 1)
    else
      let candidates =
        0 :: Option.value ~default:[] (Hashtbl.find_opt written loc)
      in
      List.nth candidates (Random.State.int rand (List.length candidates))
  in
  let event () =
    let loc = Random.State.int rand c.nlocs in
    let labeled = pick_labeled c rand loc in
    if Random.State.bool rand then begin
      let v = int_range rand 1 c.max_value in
      note_write loc v;
      H.write ~labeled loc_pool.(loc) v
    end
    else H.read ~labeled loc_pool.(loc) (read_value loc)
  in
  let rows =
    gen_list nprocs (fun () ->
        let n = int_range rand c.min_ops c.max_ops in
        gen_list n event)
  in
  H.make rows

let program c ~rand =
  let nprocs = int_range rand c.min_procs c.max_procs in
  let next_value = ref 0 in
  let instr () =
    let loc = Random.State.int rand c.nlocs in
    let labeled = pick_labeled c rand loc in
    if Random.State.bool rand then begin
      incr next_value;
      { Driver.kind = Op.Write; loc; value = !next_value; labeled }
    end
    else { Driver.kind = Op.Read; loc; value = 0; labeled }
  in
  let code =
    gen_list nprocs (fun () ->
        let n = int_range rand c.min_ops c.max_ops in
        gen_list n instr)
    |> Array.of_list
  in
  {
    Driver.nprocs;
    nlocs = c.nlocs;
    loc_names = Array.sub loc_pool 0 c.nlocs;
    code;
  }

let lang_program c ~rand =
  let nprocs = int_range rand c.min_procs c.max_procs in
  let len = int_range rand c.min_ops (max c.min_ops (c.max_ops - 1)) in
  Smem_lang.Programs.random ~rand ~nprocs ~nlocs:c.nlocs ~len ~labels:c.labels
    ()
