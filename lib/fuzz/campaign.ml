module H = Smem_core.History
module Machines = Smem_machine.Machines
module Driver = Smem_machine.Driver
module Figure5 = Smem_lattice.Figure5

type outcome = {
  cases : int;
  histories : int;
  machine_runs : int;
  lattice_checks : int;
  engine_checks : int;
  corpus_replays : int;
  violations : Oracle.violation list;
  certified : int;
  cert_unverified_cap : int;
  cert_failures : string list;
}

let empty =
  {
    cases = 0;
    histories = 0;
    machine_runs = 0;
    lattice_checks = 0;
    engine_checks = 0;
    corpus_replays = 0;
    violations = [];
    certified = 0;
    cert_unverified_cap = 0;
    cert_failures = [];
  }

(* Every violation certificate is put through the independent kernel on
   the spot: a rejection means the emitter and the checker disagree and
   the violation report itself cannot be trusted. *)
let absorb_violations acc violations =
  List.fold_left
    (fun acc (v : Oracle.violation) ->
      let acc = { acc with violations = acc.violations @ [ v ] } in
      match v.Oracle.certificate with
      | None -> acc
      | Some c -> (
          match Smem_cert.Kernel.verify c with
          | Ok Smem_cert.Kernel.Complete ->
              { acc with certified = acc.certified + 1 }
          | Ok (Smem_cert.Kernel.Unverified_cap _) ->
              (* The kernel accepted on the frontier cross-check alone:
                 count it apart so a campaign full of capped acceptances
                 cannot read as fully re-verified. *)
              {
                acc with
                certified = acc.certified + 1;
                cert_unverified_cap = acc.cert_unverified_cap + 1;
              }
          | Error e ->
              {
                acc with
                cert_failures =
                  acc.cert_failures
                  @ [ Printf.sprintf "case %d: %s" v.Oracle.case e ];
              }))
    acc violations

(* One history through the lattice oracle (and, when configured, the
   engines differential), with bookkeeping. *)
let check_history ?(engines = false) ~service ~case acc h =
  let violations = Oracle.lattice ~service ~case h in
  let violations =
    if engines then violations @ Oracle.engines ~case h else violations
  in
  absorb_violations
    {
      acc with
      histories = acc.histories + 1;
      lattice_checks = acc.lattice_checks + List.length (Figure5.pairs h);
      engine_checks = (acc.engine_checks + if engines then 1 else 0);
    }
    violations

let check_machine_trace ?engines ~service ~case acc machine h =
  let acc = check_history ?engines ~service ~case acc h in
  let acc = { acc with machine_runs = acc.machine_runs + 1 } in
  match Oracle.soundness ~service ~case machine h with
  | None -> acc
  | Some v -> absorb_violations acc [ v ]

let fuzz_cases = Smem_obs.Metrics.counter "fuzz.cases"

let run_case ~service (c : Gen.config) i =
  Smem_obs.Metrics.incr fuzz_cases;
  Smem_obs.Trace.span ~cat:"fuzz"
    ~args:[ ("case", Smem_obs.Json.Int i) ]
    "fuzz/case"
  @@ fun () ->
  let rand = Gen.case_rand c i in
  let engines = c.engines in
  let acc = { empty with cases = 1 } in
  let acc = check_history ~engines ~service ~case:i acc (Gen.history c ~rand) in
  let acc =
    if not c.machines then acc
    else begin
      let program = Gen.program c ~rand in
      List.fold_left
        (fun acc machine ->
          let h = Driver.run_random machine program ~rand in
          check_machine_trace ~engines ~service ~case:i acc machine h)
        acc Machines.all
    end
  in
  let acc =
    if c.machines && c.lang_every > 0 && i mod c.lang_every = 0 then begin
      let program = Gen.lang_program c ~rand in
      List.fold_left
        (fun acc machine ->
          let h, _violated =
            Smem_lang.Explore.run_random machine program ~rand
          in
          check_machine_trace ~engines ~service ~case:i acc machine h)
        acc Machines.all
    end
    else acc
  in
  (* Corpus replay: the standard load rides along the random cases, one
     test per case in round-robin, through the same lattice oracle (a
     corpus history that breaks a Figure-5 containment is exactly as
     reportable as a generated one). *)
  match c.corpus with
  | [] -> acc
  | corpus ->
      let t = List.nth corpus (i mod List.length corpus) in
      let acc =
        check_history ~engines ~service ~case:i acc
          t.Smem_litmus.Test.history
      in
      { acc with corpus_replays = acc.corpus_replays + 1 }

let merge a b =
  {
    cases = a.cases + b.cases;
    histories = a.histories + b.histories;
    machine_runs = a.machine_runs + b.machine_runs;
    lattice_checks = a.lattice_checks + b.lattice_checks;
    engine_checks = a.engine_checks + b.engine_checks;
    corpus_replays = a.corpus_replays + b.corpus_replays;
    violations = a.violations @ b.violations;
    certified = a.certified + b.certified;
    cert_unverified_cap = a.cert_unverified_cap + b.cert_unverified_cap;
    cert_failures = a.cert_failures @ b.cert_failures;
  }

let verdict_cache_capacity = 8192

let run (c : Gen.config) =
  Gen.validate c;
  let jobs = max 1 c.jobs in
  (* One campaign-wide caching service: the sharded cache is
     domain-safe, so worker domains share verdicts on canonically
     equivalent histories (shrink candidates especially recur). *)
  let cache = Smem_cache.Cache.create ~capacity:verdict_cache_capacity () in
  let service = Smem_serve.Service.create ~cache ~jobs:1 () in
  List.init c.count Fun.id
  |> Smem_parallel.Pool.map ~jobs (run_case ~service c)
  |> List.fold_left merge empty

let pp_summary ppf o =
  Format.fprintf ppf
    "@[<v>fuzz campaign: %d case(s), %d history(ies) checked@,\
     machine replays        %d@,\
     containment checks     %d@,\
     engine differentials   %d@,\
     corpus replays         %d@,\
     oracle violations      %d@,\
     certificates verified  %d (%d kernel rejection(s), %d unverified-cap)@]"
    o.cases o.histories o.machine_runs o.lattice_checks o.engine_checks
    o.corpus_replays
    (List.length o.violations)
    o.certified
    (List.length o.cert_failures)
    o.cert_unverified_cap
