module H = Smem_core.History
module Op = Smem_core.Op

(* A concrete, transformable mirror of a history: one row of
   (kind, location name, value, labeled) per processor. *)
type cell = { kind : Op.kind; loc : string; value : int; labeled : bool }

let rows_of_history h =
  List.init (H.nprocs h) (fun p ->
      H.proc_ops h p |> Array.to_list
      |> List.map (fun id ->
             let op = H.op h id in
             {
               kind = op.Op.kind;
               loc = H.loc_name h op.Op.loc;
               value = op.Op.value;
               labeled = Op.is_labeled op;
             }))

let history_of_rows rows =
  let event c =
    match c.kind with
    | Op.Read -> H.read ~labeled:c.labeled c.loc c.value
    | Op.Write -> H.write ~labeled:c.labeled c.loc c.value
  in
  H.make (List.map (List.map event) rows)

(* All one-step reductions of [rows], in the order they are tried.
   Dropping never yields an empty history: a row emptied by an
   operation drop is removed only when others remain, and the last
   operation overall is never dropped. *)
let candidates rows =
  let nprocs = List.length rows in
  let nops = List.fold_left (fun n row -> n + List.length row) 0 rows in
  let without i xs = List.filteri (fun j _ -> j <> i) xs in
  let drop_proc =
    if nprocs <= 1 then []
    else List.init nprocs (fun p -> without p rows)
  in
  let drop_op =
    if nops <= 1 then []
    else
      List.concat
        (List.mapi
           (fun p row ->
             List.init (List.length row) (fun i ->
                 let row' = without i row in
                 if row' = [] && nprocs > 1 then without p rows
                 else
                   List.mapi (fun q r -> if q = p then row' else r) rows))
           rows)
  in
  let replace_op p i cell =
    List.mapi
      (fun q row ->
        if q <> p then row
        else List.mapi (fun j c -> if j = i then cell else c) row)
      rows
  in
  let tweak f =
    List.concat
      (List.mapi
         (fun p row ->
           List.concat
             (List.mapi
                (fun i c ->
                  List.map (fun c' -> replace_op p i c') (f c))
                row))
         rows)
  in
  let lower_value =
    tweak (fun c ->
        if c.value <= 0 then []
        else if c.value = 1 then [ { c with value = 0 } ]
        else [ { c with value = 0 }; { c with value = c.value - 1 } ])
  in
  let unlabel = tweak (fun c -> if c.labeled then [ { c with labeled = false } ] else []) in
  drop_proc @ drop_op @ lower_value @ unlabel

(* Generic greedy list minimization, same discipline as [shrink]:
   deterministic candidate order, first accepted reduction taken,
   iterate to a fixpoint.  Candidates are contiguous-span removals,
   largest spans first (halving down to single elements), so a failing
   schedule collapses in O(log n) big bites before element-by-element
   polishing.  The simulation harness shrinks event schedules with
   this. *)
let list ~keep xs =
  if not (keep xs) then (xs, 0)
  else begin
    let remove off len l =
      List.filteri (fun i _ -> i < off || i >= off + len) l
    in
    let reduce l =
      let n = List.length l in
      if n = 0 then None
      else begin
        let rec sizes s = if s < 1 then [] else s :: sizes (s / 2) in
        let candidates =
          List.concat_map
            (fun len -> List.init (n - len + 1) (fun off -> (off, len)))
            (sizes (max 1 (n / 2)))
        in
        let rec first = function
          | [] -> None
          | (off, len) :: rest ->
              let c = remove off len l in
              if keep c then Some c else first rest
        in
        first candidates
      end
    in
    let rec go l steps =
      match reduce l with
      | Some l' -> go l' (steps + 1)
      | None -> (l, steps)
    in
    go xs 0
  end

let shrink ~keep h =
  if not (keep h) then (h, 0)
  else begin
    let rows = ref (rows_of_history h) in
    let steps = ref 0 in
    let rec improve () =
      let next =
        List.find_opt (fun c -> keep (history_of_rows c)) (candidates !rows)
      in
      match next with
      | Some c ->
          rows := c;
          incr steps;
          improve ()
      | None -> ()
    in
    improve ();
    (history_of_rows !rows, !steps)
  end
