(** Exhaustive enumeration of small histories.

    A memory model {e is} its set of histories (§4), so the containment
    lattice of Figure 5 can be recomputed by classifying every history
    up to a size bound.  All of the paper's separating examples live
    within tiny bounds (Figures 1–3 fit in two or three processors, two
    locations, two values), so small scopes are decisive in practice.

    Write values range over [1 .. max_value] (writing the initial value
    0 only duplicates weaker histories); read values over
    [0 .. max_value]. *)

type config = {
  procs : int list;  (** operations per processor, e.g. [[2; 2]] *)
  nlocs : int;
  max_value : int;
  labeled : bool;  (** also enumerate the labeled/ordinary attribute *)
}

val default : config
(** [{procs = [2; 2]; nlocs = 2; max_value = 1; labeled = false}] *)

val count : config -> int
(** Number of histories the configuration generates. *)

val iter :
  ?parts:int -> ?part:int -> config -> f:(Smem_core.History.t -> unit) -> unit
(** [iter ~parts ~part config ~f] enumerates the slice of the space
    whose first operation slot has choice index [≡ part (mod parts)]
    (defaults: the whole space).  The [parts] slices are disjoint and
    cover the space, so a parallel classifier can fan them across
    domains; with [parts = nchoices config], concatenating the slices
    in part order reproduces the unpartitioned enumeration order
    exactly.
    @raise Invalid_argument unless [0 <= part < parts]. *)

val nchoices : config -> int
(** Number of distinct events one operation slot can hold — the natural
    partition width for {!iter}'s [parts]. *)

val loc_names : int -> string array
(** The location names used by the generator ([x], [y], [z], [l3]...). *)
