module Model = Smem_core.Model
module H = Smem_core.History

type relation = Equal | Stronger | Weaker | Incomparable

type matrix = {
  models : Model.t list;
  total : int;
  allowed_counts : int array;
  only_in : int array array;
  witness : H.t option array array;
}

let classify_part ~models config ~parts ~part =
  let models_arr = Array.of_list models in
  let n = Array.length models_arr in
  let total = ref 0 in
  let allowed_counts = Array.make n 0 in
  let only_in = Array.make_matrix n n 0 in
  let witness = Array.init n (fun _ -> Array.make n None) in
  Enumerate.iter ~parts ~part config ~f:(fun h ->
      incr total;
      let allowed = Array.map (fun m -> Model.check m h) models_arr in
      for i = 0 to n - 1 do
        if allowed.(i) then begin
          allowed_counts.(i) <- allowed_counts.(i) + 1;
          for j = 0 to n - 1 do
            if not allowed.(j) then begin
              only_in.(i).(j) <- only_in.(i).(j) + 1;
              if witness.(i).(j) = None then witness.(i).(j) <- Some h
            end
          done
        end
      done);
  { models; total = !total; allowed_counts; only_in; witness }

let merge a b =
  if List.map (fun (m : Model.t) -> m.Model.key) a.models
     <> List.map (fun (m : Model.t) -> m.Model.key) b.models
  then invalid_arg "Classify.merge: model lists differ";
  let n = List.length a.models in
  {
    models = a.models;
    total = a.total + b.total;
    allowed_counts = Array.map2 ( + ) a.allowed_counts b.allowed_counts;
    only_in =
      Array.init n (fun i -> Array.map2 ( + ) a.only_in.(i) b.only_in.(i));
    witness =
      Array.init n (fun i ->
          Array.init n (fun j ->
              match a.witness.(i).(j) with
              | Some _ as w -> w
              | None -> b.witness.(i).(j)));
  }

let classify ?(jobs = 1) ~models config =
  (* Partition the enumeration by first-slot choice — one part per
     choice, independent of [jobs] — and merge in part order.  The
     partition is fixed so the result (counts {e and} example
     witnesses) is identical for every [jobs], including the serial
     run. *)
  let parts = max 1 (Enumerate.nchoices config) in
  Smem_parallel.Pool.map ~jobs
    (fun part -> classify_part ~models config ~parts ~part)
    (List.init parts Fun.id)
  |> function
  | [] -> assert false
  | m :: rest -> List.fold_left merge m rest

let standard_scopes =
  [
    (* Figure 1 scope: 2x2 ops, two locations, one written value. *)
    { Enumerate.procs = [ 2; 2 ]; nlocs = 2; max_value = 1; labeled = false };
    (* Figure 2 scope: a writer, a forwarder, an observer. *)
    { Enumerate.procs = [ 1; 2; 2 ]; nlocs = 2; max_value = 1; labeled = false };
    (* Figure 3 scope: one location, two values, three ops each. *)
    { Enumerate.procs = [ 3; 3 ]; nlocs = 1; max_value = 2; labeled = false };
  ]

let classify_scopes ?jobs ~models scopes =
  match List.map (classify ?jobs ~models) scopes with
  | [] -> invalid_arg "Classify.classify_scopes: no scopes"
  | m :: rest -> List.fold_left merge m rest

let relation m i j =
  match (m.only_in.(i).(j), m.only_in.(j).(i)) with
  | 0, 0 -> Equal
  | 0, _ -> Stronger
  | _, 0 -> Weaker
  | _, _ -> Incomparable

let hasse_edges m =
  let n = List.length m.models in
  let stronger i j = i <> j && relation m i j = Stronger in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if stronger i j then begin
        let between = ref false in
        for k = 0 to n - 1 do
          if k <> i && k <> j && stronger i k && stronger k j then between := true
        done;
        if not !between then edges := (i, j) :: !edges
      end
    done
  done;
  List.rev !edges

let model_key m i = (List.nth m.models i).Model.key

let pp_summary ppf m =
  let n = List.length m.models in
  Format.fprintf ppf "@[<v>histories enumerated: %d@," m.total;
  List.iteri
    (fun i (model : Model.t) ->
      Format.fprintf ppf "%-28s allows %d@," model.Model.name m.allowed_counts.(i))
    m.models;
  Format.fprintf ppf "@,pairwise relations:@,";
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let describe = function
        | Equal -> "equivalent to"
        | Stronger -> "strictly stronger than"
        | Weaker -> "strictly weaker than"
        | Incomparable -> "incomparable with"
      in
      Format.fprintf ppf "%-12s %s %-12s" (model_key m i)
        (describe (relation m i j))
        (model_key m j);
      (match relation m i j with
      | Incomparable | Weaker -> (
          match m.witness.(i).(j) with
          | Some h ->
              Format.fprintf ppf "  (e.g. %s-only: %s)" (model_key m i)
                (String.concat " | "
                   (List.init (H.nprocs h) (fun p ->
                        Format.asprintf "%a" (H.pp_ops h)
                          (Array.to_list (H.proc_ops h p)))))
          | None -> ())
      | Equal | Stronger -> ());
      Format.fprintf ppf "@,"
    done
  done;
  Format.fprintf ppf "@,Hasse diagram (stronger -> weaker):@,";
  List.iter
    (fun (i, j) ->
      Format.fprintf ppf "  %s -> %s@," (model_key m i) (model_key m j))
    (hasse_edges m);
  Format.fprintf ppf "@]"

let to_dot m =
  let nodes =
    List.mapi
      (fun i (model : Model.t) ->
        (Printf.sprintf "m%d" i, Printf.sprintf "%s" model.Model.name))
      m.models
  in
  let edges =
    List.map
      (fun (i, j) -> (Printf.sprintf "m%d" i, Printf.sprintf "m%d" j))
      (hasse_edges m)
  in
  Smem_relation.Dot.of_edges ~name:"lattice" ~nodes ~edges ()
