(** Finding histories that separate two memory models — the §4/§7
    workflow of the paper, automated: to show model [a] is not stronger
    than model [b], exhibit a history allowed by [a] and forbidden by
    [b]. *)

type verdict =
  | Equal  (** same history sets over the searched scopes *)
  | A_stronger of Smem_core.History.t
      (** [a] ⊊ [b]: the witness is allowed by [b], forbidden by [a] *)
  | B_stronger of Smem_core.History.t
      (** [b] ⊊ [a]: the witness is allowed by [a], forbidden by [b] *)
  | Incomparable of Smem_core.History.t * Smem_core.History.t
      (** (allowed by [a] not [b], allowed by [b] not [a]) *)

val separating :
  allow:Smem_core.Model.t ->
  forbid:Smem_core.Model.t ->
  Enumerate.config list ->
  Smem_core.History.t option
(** First history in the scopes allowed by [allow] and forbidden by
    [forbid]. *)

val compare :
  ?jobs:int ->
  a:Smem_core.Model.t ->
  b:Smem_core.Model.t ->
  Enumerate.config list ->
  verdict
(** Relate two models over the given scopes.  [Equal] is relative to
    the scopes searched, of course; the other verdicts carry witnesses
    and are definitive.  [jobs >= 2] runs the two direction searches on
    separate domains; the verdict is identical for every [jobs]. *)

val pp_verdict :
  a:Smem_core.Model.t ->
  b:Smem_core.Model.t ->
  Format.formatter ->
  verdict ->
  unit
