(** The containment lattice of the paper's Figure 5 as {e data}.

    {!Classify} recomputes the lattice empirically by exhaustive
    enumeration; this module states it, so that other components — the
    differential fuzzer above all — can use the paper's theorems as a
    metamorphic oracle: a history allowed by a stronger model must be
    allowed by every weaker one.

    One containment is conditional.  [SC ⊆ RC_sc] (and transitively
    [SC ⊆ RC_pc]) holds only for {e properly labeled} histories, where
    synchronization locations are disjoint from data locations; for
    arbitrary labelings an acquire may legally (under SC) read an
    ordinary write to a location that also carries labeled writes, which
    RC_sc forbids (EXPERIMENTS.md §3).  Such containments are marked
    [proper_labels_only] and must be asserted only on histories
    satisfying {!properly_labeled}. *)

type containment = {
  stronger : string;  (** model key whose history set is contained *)
  weaker : string;  (** model key whose history set contains it *)
  proper_labels_only : bool;
      (** holds only on {!properly_labeled} histories *)
}

val model_keys : string list
(** The seven models of Figure 5 — [sc], [tso], [pc], [rc-sc],
    [rc-pc], [causal], [pram] — plus the extended-family nodes:
    [pc-g], the partition-consistency chain ([pc-part(blocks=2)],
    [pc-part(blocks=4)], [coh]) and the session-guarantee chain
    ([session(ryw,mr,mw,wfr)], [session(ryw,mr,mw)],
    [session(ryw,mr)]).  Parameterized keys resolve through the
    {!Smem_core.Model_ref} grammar. *)

val hasse : containment list
(** The edges of Figure 5 (transitive reduction): SC → TSO, SC → RC_sc
    (properly labeled), TSO → PC, TSO → Causal, RC_sc → RC_pc,
    PC → PRAM, Causal → PRAM; extended with
    SC → PC-G → pc-part(2) → pc-part(4) → coh, PC-G → PRAM, PC → coh,
    PRAM → session(ryw,mr,mw) → session(ryw,mr) and
    session(ryw,mr,mw,wfr) → session(ryw,mr,mw). *)

val containments : containment list
(** The transitive closure of {!hasse}.  A closure pair is
    [proper_labels_only] iff every Hasse path establishing it crosses a
    conditional edge. *)

val properly_labeled : Smem_core.History.t -> bool
(** Synchronization discipline of the paper's §5: every location is
    accessed either only by labeled operations or only by ordinary
    ones.  Histories with no labeled operation qualify trivially. *)

val pairs :
  Smem_core.History.t -> (Smem_core.Model.t * Smem_core.Model.t) list
(** The containments applicable to a history — all unconditional pairs,
    plus the conditional ones when the history is properly labeled —
    resolved against {!Smem_core.Registry} as
    [(stronger, weaker)] model pairs. *)

val all_pairs : proper_labels:bool -> (Smem_core.Model.t * Smem_core.Model.t) list
(** Same resolution from an explicit flag instead of a history. *)
