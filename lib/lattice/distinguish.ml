module H = Smem_core.History
module Model = Smem_core.Model

type verdict =
  | Equal
  | A_stronger of H.t
  | B_stronger of H.t
  | Incomparable of H.t * H.t

exception Found of H.t

let separating ~allow ~forbid scopes =
  try
    List.iter
      (fun scope ->
        Enumerate.iter scope ~f:(fun h ->
            if Model.check allow h && not (Model.check forbid h) then
              raise (Found h)))
      scopes;
    None
  with Found h -> Some h

let compare ?(jobs = 1) ~a ~b scopes =
  (* The two direction searches are independent: run them on the pool
     (at most two workers are useful here). *)
  let searches =
    Smem_parallel.Pool.map ~jobs
      (fun (allow, forbid) -> separating ~allow ~forbid scopes)
      [ (a, b); (b, a) ]
  in
  match searches with
  | [ a_only; b_only ] -> (
      match (a_only, b_only) with
      | None, None -> Equal
      | None, Some w -> A_stronger w
      | Some w, None -> B_stronger w
      | Some wa, Some wb -> Incomparable (wa, wb))
  | _ -> assert false

let pp_verdict ~a ~b ppf = function
  | Equal ->
      Format.fprintf ppf
        "%s and %s allow the same histories over the searched scopes"
        a.Model.key b.Model.key
  | A_stronger w ->
      Format.fprintf ppf
        "%s is strictly stronger than %s;@ witness allowed only by %s:@.%a"
        a.Model.key b.Model.key b.Model.key H.pp w
  | B_stronger w ->
      Format.fprintf ppf
        "%s is strictly stronger than %s;@ witness allowed only by %s:@.%a"
        b.Model.key a.Model.key a.Model.key H.pp w
  | Incomparable (wa, wb) ->
      Format.fprintf ppf
        "%s and %s are incomparable;@.allowed only by %s:@.%a@.allowed only \
         by %s:@.%a"
        a.Model.key b.Model.key a.Model.key H.pp wa b.Model.key H.pp wb
