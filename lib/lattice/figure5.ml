module H = Smem_core.History
module Op = Smem_core.Op

type containment = {
  stronger : string;
  weaker : string;
  proper_labels_only : bool;
}

let model_keys =
  [
    "sc";
    "tso";
    "pc";
    "rc-sc";
    "rc-pc";
    "causal";
    "pram";
    (* the extended families (PR 10); parameterized keys resolve
       through the Model_ref grammar *)
    "pc-g";
    "pc-part(blocks=2)";
    "pc-part(blocks=4)";
    "coh";
    "session(ryw,mr,mw,wfr)";
    "session(ryw,mr,mw)";
    "session(ryw,mr)";
  ]

let edge ?(proper = false) stronger weaker =
  { stronger; weaker; proper_labels_only = proper }

let hasse =
  [
    edge "sc" "tso";
    edge ~proper:true "sc" "rc-sc";
    edge "tso" "pc";
    edge "tso" "causal";
    edge "rc-sc" "rc-pc";
    edge "pc" "pram";
    edge "causal" "pram";
    (* The partition-consistency chain: an SC serialization restricts
       to per-(processor, block) views; coarser partitions constrain
       more (a mod-2 block is a union of mod-4 blocks); singleton
       blocks degenerate to per-location views, i.e. coherence. *)
    edge "sc" "pc-g";
    edge "pc-g" "pc-part(blocks=2)";
    edge "pc-part(blocks=2)" "pc-part(blocks=4)";
    edge "pc-part(blocks=4)" "coh";
    edge "pc-g" "pram";
    edge "pc" "coh";
    (* The session-guarantee chain: more guarantees is stronger, and
       PRAM's full program order implies ryw, mr and mw (but not wfr,
       which quantifies over a reads-from map PRAM never commits to). *)
    edge "pram" "session(ryw,mr,mw)";
    edge "session(ryw,mr,mw,wfr)" "session(ryw,mr,mw)";
    edge "session(ryw,mr,mw)" "session(ryw,mr)";
  ]

(* Transitive closure over two path strengths: a pair holds
   unconditionally iff some Hasse path to it uses only unconditional
   edges; it holds under proper labeling iff any path exists at all. *)
let containments =
  let keys = Array.of_list model_keys in
  let n = Array.length keys in
  let index k =
    let rec go i = if keys.(i) = k then i else go (i + 1) in
    go 0
  in
  let strong = Array.make_matrix n n false in
  let any = Array.make_matrix n n false in
  List.iter
    (fun c ->
      let i = index c.stronger and j = index c.weaker in
      any.(i).(j) <- true;
      if not c.proper_labels_only then strong.(i).(j) <- true)
    hasse;
  let close m =
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if m.(i).(k) && m.(k).(j) then m.(i).(j) <- true
        done
      done
    done
  in
  close strong;
  close any;
  let acc = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if any.(i).(j) then
        acc :=
          {
            stronger = keys.(i);
            weaker = keys.(j);
            proper_labels_only = not strong.(i).(j);
          }
          :: !acc
    done
  done;
  !acc

let properly_labeled h =
  let n = H.nlocs h in
  let labeled = Array.make n false in
  let ordinary = Array.make n false in
  Array.iter
    (fun (o : Op.t) ->
      if Op.is_labeled o then labeled.(o.Op.loc) <- true
      else ordinary.(o.Op.loc) <- true)
    (H.ops h);
  let ok = ref true in
  for l = 0 to n - 1 do
    if labeled.(l) && ordinary.(l) then ok := false
  done;
  !ok

let resolve key =
  match Smem_core.Registry.find key with
  | Some m -> m
  | None -> invalid_arg ("Figure5: model key not in registry: " ^ key)

let all_pairs ~proper_labels =
  List.filter_map
    (fun c ->
      if c.proper_labels_only && not proper_labels then None
      else Some (resolve c.stronger, resolve c.weaker))
    containments

let pairs h = all_pairs ~proper_labels:(properly_labeled h)
