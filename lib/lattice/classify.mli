(** Classify enumerated histories by model and compute the containment
    structure — the empirical Figure 5. *)

type relation = Equal | Stronger | Weaker | Incomparable
(** Relation of model [i] to model [j] over the enumerated scope:
    [Stronger] means [i]'s history set is strictly contained in [j]'s
    (i gives the stronger guarantee). *)

type matrix = {
  models : Smem_core.Model.t list;
  total : int;  (** histories enumerated *)
  allowed_counts : int array;  (** histories allowed, per model *)
  only_in : int array array;
      (** [only_in.(i).(j)]: histories allowed by [i] but not by [j] *)
  witness : Smem_core.History.t option array array;
      (** a history allowed by [i] but not [j], when one exists *)
}

val classify :
  ?jobs:int -> models:Smem_core.Model.t list -> Enumerate.config -> matrix
(** Classify every history of the scope.  [jobs] (default 1) fans
    fixed slices of the enumeration across worker domains; the slicing
    does not depend on [jobs], so counts and example witnesses are
    identical for every [jobs]. *)

val merge : matrix -> matrix -> matrix
(** Pointwise union of two classifications over the same model list
    (sums counts, keeps the first witness found).
    @raise Invalid_argument when the model lists differ. *)

val standard_scopes : Enumerate.config list
(** The sweep used to regenerate Figure 5: the union of these scopes
    contains separating histories for every strict containment and
    incomparability of the paper's diagram (each of Figures 1-3 fits in
    one of them). *)

val classify_scopes :
  ?jobs:int ->
  models:Smem_core.Model.t list ->
  Enumerate.config list ->
  matrix

val relation : matrix -> int -> int -> relation

val hasse_edges : matrix -> (int * int) list
(** Edges [i -> j] of the transitive reduction of the strictly-stronger
    relation: [i] strictly stronger than [j] with no model strictly
    between. *)

val pp_summary : Format.formatter -> matrix -> unit
(** Counts, pairwise relations and Hasse edges, with witnesses named. *)

val to_dot : matrix -> string
(** Graphviz rendering of the Hasse diagram (strongest at the top). *)
