module H = Smem_core.History
module Op = Smem_core.Op

type config = { procs : int list; nlocs : int; max_value : int; labeled : bool }

let default = { procs = [ 2; 2 ]; nlocs = 2; max_value = 1; labeled = false }

let loc_names nlocs =
  Array.init nlocs (fun i ->
      match i with 0 -> "x" | 1 -> "y" | 2 -> "z" | n -> Printf.sprintf "l%d" n)

(* Event choices for one operation slot. *)
let slot_choices config =
  let choices = ref [] in
  let attrs = if config.labeled then [ false; true ] else [ false ] in
  let names = loc_names config.nlocs in
  for loc = 0 to config.nlocs - 1 do
    List.iter
      (fun labeled ->
        for v = 1 to config.max_value do
          choices := H.write ~labeled names.(loc) v :: !choices
        done;
        for v = 0 to config.max_value do
          choices := H.read ~labeled names.(loc) v :: !choices
        done)
      attrs
  done;
  List.rev !choices

let count config =
  let per_slot = List.length (slot_choices config) in
  let total_slots = List.fold_left ( + ) 0 config.procs in
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  pow per_slot total_slots

let nchoices config = List.length (slot_choices config)

let iter ?(parts = 1) ?(part = 0) config ~f =
  if parts < 1 || part < 0 || part >= parts then
    invalid_arg "Enumerate.iter: need 0 <= part < parts";
  let choices = slot_choices config in
  (* Build per-processor rows slot by slot, processor-major.  [first]
     tracks whether we are filling the very first operation slot: the
     partition assigns a history to part [i mod parts] where [i] is the
     choice index of that slot, so the parts are disjoint and cover the
     space.  With [parts = nchoices] each part is one first-slot choice
     and concatenating the parts in order reproduces the unpartitioned
     enumeration order exactly. *)
  let rec fill_proc ~first remaining_slots row rows_rev procs_rest =
    match (remaining_slots, procs_rest) with
    | 0, [] -> f (H.make (List.rev (List.rev row :: rows_rev)))
    | 0, n :: rest -> fill_proc ~first n [] (List.rev row :: rows_rev) rest
    | n, _ ->
        List.iteri
          (fun i event ->
            if (not first) || i mod parts = part then
              fill_proc ~first:false (n - 1) (event :: row) rows_rev procs_rest)
          choices
  in
  match config.procs with
  | [] -> ()
  | n :: rest -> fill_proc ~first:true n [] [] rest
