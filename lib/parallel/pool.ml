(* A minimal work pool over OCaml 5 domains.

   Tasks are drawn from a shared atomic index (self-scheduling), so
   uneven task costs — a litmus cell whose search exhausts a large
   candidate space next to one that succeeds immediately — balance
   across workers without any task-size tuning.  Results are written
   into a preallocated slot per task, which keeps the output order
   identical to the input order regardless of completion order. *)

let default_jobs () = Domain.recommended_domain_count ()

let map ~jobs f xs =
  let input = Array.of_list xs in
  let n = Array.length input in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <-
            Some (try Ok (f input.(i)) with e -> Error e);
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.to_list results
    |> List.map (function
         | Some (Ok y) -> y
         | Some (Error e) -> raise e
         | None -> assert false)
  end

let iter ~jobs f xs = ignore (map ~jobs (fun x -> f x) xs)
