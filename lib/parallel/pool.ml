(* A minimal work pool over OCaml 5 domains.

   Tasks are drawn from a shared atomic index (self-scheduling), so
   uneven task costs — a litmus cell whose search exhausts a large
   candidate space next to one that succeeds immediately — balance
   across workers without any task-size tuning.  Results are written
   into a preallocated slot per task, which keeps the output order
   identical to the input order regardless of completion order. *)

module Metrics = Smem_obs.Metrics
module Trace = Smem_obs.Trace

let tasks_run = Metrics.counter "pool.tasks"
let maps_run = Metrics.counter "pool.maps"
let jobs_gauge = Metrics.gauge "pool.jobs"

let default_jobs () = Domain.recommended_domain_count ()

(* One task, observed: a trace span per task (guarded, so the untraced
   path allocates nothing) and a global task counter. *)
let run_task f x i =
  Metrics.incr tasks_run;
  if Trace.active () then
    Trace.span ~cat:"pool"
      ~args:[ ("index", Smem_obs.Json.Int i) ]
      "pool/task"
      (fun () -> f x)
  else f x

let map ~jobs f xs =
  let input = Array.of_list xs in
  let n = Array.length input in
  let jobs = max 1 (min jobs n) in
  Metrics.incr maps_run;
  Metrics.set_max jobs_gauge jobs;
  if jobs <= 1 then List.mapi (fun i x -> run_task f x i) xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* The backtrace is captured with the exception: re-raising
             with a bare [raise] at the join point would rewrite the
             trace to point here instead of at the task that failed. *)
          results.(i) <-
            Some
              (try Ok (run_task f input.(i) i)
               with e -> Error (e, Printexc.get_raw_backtrace ()));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.to_list results
    |> List.map (function
         | Some (Ok y) -> y
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let iter ~jobs f xs = ignore (map ~jobs (fun x -> f x) xs)
