(** A small fixed-size work pool over OCaml 5 domains.

    [map ~jobs f xs] applies [f] to every element of [xs] using up to
    [jobs] domains (the calling domain included) and returns the
    results {e in input order}, so for a pure [f] the result is
    observationally identical to [List.map f xs] for every [jobs].
    Tasks are self-scheduled from a shared atomic counter, which
    balances uneven task costs without tuning.

    [f] must not itself spawn unbounded domains (nested [map] calls
    multiply workers) and, if it touches shared state, that state must
    be domain-safe — the toolkit's checkers are pure except for the
    {!Smem_core.Stats} atomics, which are. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [jobs <= 1] degrades to [List.map].

    Failure semantics: a task exception does not cancel the pool — the
    self-scheduling workers keep draining the remaining tasks (there is
    no cross-domain cancellation), and only once every worker has
    joined is the first failing task {e in input order} re-raised, with
    its original backtrace ([Printexc.raise_with_backtrace], so the
    trace points at the task body, not at the join).

    Each task is counted in the ["pool.tasks"] metric and, when a
    {!Smem_obs.Trace} sink is armed, wrapped in a [pool/task] span
    carrying its input index. *)

val iter : jobs:int -> ('a -> unit) -> 'a list -> unit
