(** A small fixed-size work pool over OCaml 5 domains.

    [map ~jobs f xs] applies [f] to every element of [xs] using up to
    [jobs] domains (the calling domain included) and returns the
    results {e in input order}, so for a pure [f] the result is
    observationally identical to [List.map f xs] for every [jobs].
    Tasks are self-scheduled from a shared atomic counter, which
    balances uneven task costs without tuning.

    [f] must not itself spawn unbounded domains (nested [map] calls
    multiply workers) and, if it touches shared state, that state must
    be domain-safe — the toolkit's checkers are pure except for the
    {!Smem_core.Stats} atomics, which are. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [jobs <= 1] degrades to [List.map].  If [f] raises, the first
    exception in input order is re-raised after all workers finish. *)

val iter : jobs:int -> ('a -> unit) -> 'a list -> unit
