(* State of the replay: how far each processor has issued, the pending
   store buffers (front = oldest), and the shared memory contents. *)
type state = {
  ptr : int array;
  buffers : (int * int) list array;
  memory : int array;
}

let clone s =
  { ptr = Array.copy s.ptr; buffers = Array.copy s.buffers; memory = Array.copy s.memory }

let buffered_value buffer loc =
  (* Newest buffered write to [loc]: scan from the back. *)
  List.fold_left
    (fun acc (l, v) -> if l = loc then Some v else acc)
    None buffer

let check h =
  let nprocs = History.nprocs h in
  let nlocs = History.nlocs h in
  let visited = Hashtbl.create 997 in
  let rec explore s =
    let key = (s.ptr, s.buffers, s.memory) in
    if Hashtbl.mem visited key then false
    else begin
      Hashtbl.add visited key ();
      let done_ =
        Array.for_all2 (fun p row -> p = Array.length row)
          s.ptr
          (Array.init nprocs (History.proc_ops h))
      in
      if done_ then true
      else begin
        let step_issue p =
          let row = History.proc_ops h p in
          if s.ptr.(p) >= Array.length row then false
          else begin
            let op = History.op h row.(s.ptr.(p)) in
            match op.Op.kind with
            | Op.Write ->
                let s' = clone s in
                s'.ptr.(p) <- s.ptr.(p) + 1;
                s'.buffers.(p) <- s.buffers.(p) @ [ (op.Op.loc, op.Op.value) ];
                explore s'
            | Op.Read ->
                let visible =
                  match buffered_value s.buffers.(p) op.Op.loc with
                  | Some v -> v
                  | None -> s.memory.(op.Op.loc)
                in
                visible = op.Op.value
                &&
                let s' = clone s in
                s'.ptr.(p) <- s.ptr.(p) + 1;
                explore s'
          end
        in
        let step_flush p =
          match s.buffers.(p) with
          | [] -> false
          | (loc, v) :: rest ->
              let s' = clone s in
              s'.buffers.(p) <- rest;
              s'.memory.(loc) <- v;
              explore s'
        in
        let procs = List.init nprocs Fun.id in
        List.exists step_issue procs || List.exists step_flush procs
      end
    end
  in
  explore
    {
      ptr = Array.make nprocs 0;
      buffers = Array.make nprocs [];
      memory = Array.make (max 1 nlocs) 0;
    }

(* No parameter triple: the verdict comes from state-space replay, not
   from view construction, so there is no witness an independent kernel
   could re-validate — the model is deliberately uncertifiable (its role
   is to cross-validate the view-based TSO, which is). *)
let model =
  Model.make ~key:"tso-op" ~name:"TSO (operational replay)"
    ~description:
      "Store-buffer machine replay of the history: per-processor FIFO \
       buffers over a single-ported memory (cross-validates the \
       view-based TSO characterization)."
    (fun h ->
      if check h then
        Some (Witness.per_proc [] ~notes:[ "accepted by store-buffer replay" ])
      else None)
