module Rel = Smem_relation.Rel

let views_for h ~order =
  let rec go p acc =
    if p = History.nprocs h then Some (List.rev acc)
    else
      match
        View.exists h ~ops:(History.view_ops_writes h p) ~order
          ~legality:View.By_value
      with
      | None -> None
      | Some seq -> go (p + 1) ((p, seq) :: acc)
  in
  go 0 []

let witness h =
  let po = Orders.po h in
  let found = ref None in
  let _ : bool =
    Reads_from.iter h ~f:(fun rf ->
        let causal = Orders.causal_with h ~po ~rf in
        Rel.irreflexive causal
        &&
        match views_for h ~order:causal with
        | None -> false
        | Some views ->
            let note = Format.asprintf "writes-before: %a" (Reads_from.pp h) rf in
            found :=
              Some
                (Witness.per_proc ~rf:(Reads_from.pairs h rf) views
                   ~notes:[ note ]);
            true)
  in
  !found

let check h = Option.is_some (witness h)

let model =
  Model.make ~key:"causal" ~name:"Causal Memory"
    ~description:
      "Independent per-processor views of own operations plus all writes, \
       respecting the causal order (program order + writes-before, \
       transitively); no mutual consistency."
    ~params:
      {
        Model.population = Model.Own_plus_writes;
        ordering = Model.Causal_order;
        mutual = Model.No_mutual;
        legality = Model.Value_legal;
      }
    witness
