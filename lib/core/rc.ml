module Bitset = Smem_relation.Bitset
module Rel = Smem_relation.Rel

type flavor = Rc_sc | Rc_pc

(* §3.4's two bracketing conditions, as edges added to every view (the
   restriction to a view's operations implements "in all histories in
   which they both appear"). *)
let bracket_edges h ~rf =
  let rel = Rel.create (History.nops h) in
  for q = 0 to History.nprocs h - 1 do
    let row = History.proc_ops h q in
    let n = Array.length row in
    for i = 0 to n - 1 do
      let op = History.op h row.(i) in
      if Op.is_acquire op then begin
        let w = Reads_from.writer rf row.(i) in
        if w <> History.init then
          for j = i + 1 to n - 1 do
            if Op.is_ordinary (History.op h row.(j)) then Rel.add rel w row.(j)
          done
      end;
      if Op.is_release op then
        for j = 0 to i - 1 do
          if Op.is_ordinary (History.op h row.(j)) then Rel.add rel row.(j) row.(i)
        done
    done
  done;
  rel

(* Reject reads-from maps in which an acquire reads an ordinary write to
   a location that also carries labeled writes: no legal labeled
   subhistory could explain the value. *)
let acquire_rf_ok h rf =
  List.for_all
    (fun r ->
      let op = History.op h r in
      (not (Op.is_acquire op))
      ||
      let w = Reads_from.writer rf r in
      w = History.init
      || Op.is_labeled (History.op h w)
      || List.for_all
           (fun w' -> Op.is_ordinary (History.op h w'))
           (History.writes_to h op.Op.loc))
    (History.reads h)

(* Legality of a candidate total order on the labeled operations,
   relative to a reads-from map: an acquire reading a labeled write must
   have it as the most recent labeled write to the location; an acquire
   reading the initial value must see no earlier labeled write; an
   acquire whose writer is an ordinary write is exempt (its value comes
   from outside the labeled subhistory — acquire_rf_ok has already
   checked the location carries no labeled writes at all). *)
let labeled_seq_legal h ~rf seq =
  let last = Array.make (max 1 (History.nlocs h)) History.init in
  Array.for_all
    (fun id ->
      let op = History.op h id in
      if Op.is_write op then begin
        last.(op.Op.loc) <- id;
        true
      end
      else
        let w = Reads_from.writer rf id in
        if w = History.init then last.(op.Op.loc) = History.init
        else if Op.is_labeled (History.op h w) then last.(op.Op.loc) = w
        else true)
    seq

let total_order_rel nops seq =
  (* All (earlier, later) pairs — NOT just consecutive ones: a view that
     omits an intermediate operation (another processor's labeled read)
     must still order the operations around it. *)
  let rel = Rel.create nops in
  let n = Array.length seq in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Rel.add rel seq.(i) seq.(j)
    done
  done;
  rel

let base_views h =
  List.init (History.nprocs h) (fun p ->
      {
        Engine.proc = p;
        ops = History.view_ops_writes h p;
        order = Orders.ppo_of_proc h p;
      })

let witness flavor h =
  let nops = History.nops h in
  let labeled = History.labeled h in
  let labeled_set = Bitset.of_list nops labeled in
  let views = base_views h in
  let found = ref None in
  let run_candidate ~rf ~co ~extra ?sync ~notes () =
    match Engine.check h ~rf ~co ~extra ~views with
    | Some w ->
        found :=
          Some { w with Witness.sync; notes = notes @ w.Witness.notes };
        true
    | None -> false
  in
  let _ : bool =
    match flavor with
    | Rc_sc ->
        let po = Orders.po h in
        Reads_from.iter h ~f:(fun rf ->
            acquire_rf_ok h rf
            &&
            let bracket = bracket_edges h ~rf in
            Rel.linear_extensions ~universe:labeled_set po ~f:(fun t_seq ->
                labeled_seq_legal h ~rf t_seq
                &&
                let t_seq = Array.copy t_seq in
                let t_rel = total_order_rel nops t_seq in
                let extra = Rel.union t_rel bracket in
                Coherence.iter h ~f:(fun co ->
                    let note =
                      Format.asprintf "labeled order: %a" (History.pp_ops h)
                        (Array.to_list t_seq)
                    in
                    run_candidate ~rf ~co ~extra
                      ~sync:(Array.to_list t_seq) ~notes:[ note ] ())))
    | Rc_pc ->
        Reads_from.iter h ~f:(fun rf ->
            acquire_rf_ok h rf
            &&
            let bracket = bracket_edges h ~rf in
            Coherence.iter h ~f:(fun co ->
                let sem_l = Orders.sem_within h ~members:labeled_set ~rf ~co in
                let extra = Rel.union sem_l bracket in
                run_candidate ~rf ~co ~extra ~notes:[] ()))
  in
  !found

let check flavor h = Option.is_some (witness flavor h)

let rc_sc =
  Model.make ~key:"rc-sc" ~name:"Release Consistency (RC_sc)"
    ~description:
      "Release consistency with sequentially consistent labeled \
       (synchronization) operations, as in the DASH architecture."
    ~params:
      {
        Model.population = Model.Own_plus_writes;
        ordering = Model.Own_ppo_bracketed;
        mutual = Model.Labeled_sc;
        legality = Model.Writer_legal;
      }
    (witness Rc_sc)

let rc_pc =
  Model.make ~key:"rc-pc" ~name:"Release Consistency (RC_pc)"
    ~description:
      "Release consistency with processor consistent labeled \
       (synchronization) operations, as in the DASH architecture."
    ~params:
      {
        Model.population = Model.Own_plus_writes;
        ordering = Model.Own_ppo_bracketed;
        mutual = Model.Labeled_pc;
        legality = Model.Writer_legal;
      }
    (witness Rc_pc)
