type t = { family : string; args : (string * string) list }

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':' || c = '|'

let trim = String.trim

let valid_name s = s <> "" && String.for_all is_name_char s

let parse s =
  let s = trim s in
  match String.index_opt s '(' with
  | None ->
      if valid_name s then Ok { family = s; args = [] }
      else Error (Printf.sprintf "invalid model reference %S" s)
  | Some lp ->
      if String.length s = 0 || s.[String.length s - 1] <> ')' then
        Error (Printf.sprintf "missing closing ')' in %S" s)
      else
        let family = trim (String.sub s 0 lp) in
        if not (valid_name family) then
          Error (Printf.sprintf "invalid family name in %S" s)
        else
          let body = String.sub s (lp + 1) (String.length s - lp - 2) in
          let parts =
            if trim body = "" then []
            else String.split_on_char ',' body
          in
          let parse_arg acc part =
            match acc with
            | Error _ as e -> e
            | Ok args -> (
                match String.index_opt part '=' with
                | None ->
                    let k = trim part in
                    if valid_name k then Ok ((k, "") :: args)
                    else Error (Printf.sprintf "invalid argument %S in %S" part s)
                | Some eq ->
                    let k = trim (String.sub part 0 eq) in
                    let v =
                      trim
                        (String.sub part (eq + 1)
                           (String.length part - eq - 1))
                    in
                    if valid_name k && (v = "" || valid_name v) then
                      Ok ((k, v) :: args)
                    else
                      Error
                        (Printf.sprintf "invalid argument %S in %S" part s))
          in
          Result.map List.rev (List.fold_left parse_arg (Ok []) parts)
          |> Result.map (fun args -> { family; args })

let to_string { family; args } =
  match args with
  | [] -> family
  | _ ->
      family ^ "("
      ^ String.concat ","
          (List.map (fun (k, v) -> if v = "" then k else k ^ "=" ^ v) args)
      ^ ")"

let nullary family = { family; args = [] }

let flag t name =
  match List.assoc_opt name t.args with
  | None -> Ok false
  | Some ("" | "true" | "1") -> Ok true
  | Some ("false" | "0") -> Ok false
  | Some v ->
      Error
        (Printf.sprintf "argument %s of %s must be a boolean, got %S" name
           t.family v)

let int_arg t name =
  match List.assoc_opt name t.args with
  | None -> Ok None
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok (Some i)
      | None ->
          Error
            (Printf.sprintf "argument %s of %s must be an integer, got %S"
               name t.family v))

let unknown_args t ~known =
  List.filter_map
    (fun (k, _) -> if List.mem k known then None else Some k)
    t.args
