module Rel = Smem_relation.Rel
module Perm = Smem_relation.Perm

type t = {
  nops : int;
  per_loc : int array array;  (* location -> writes in coherence order *)
  pos : int array;  (* op id -> rank within its location, -1 for non-writes *)
  loc_of : int array;  (* op id -> location (duplicated for convenience) *)
}

let build nops nlocs per_loc =
  let pos = Array.make nops (-1) in
  let loc_of = Array.make nops (-1) in
  for l = 0 to nlocs - 1 do
    Array.iteri
      (fun rank w ->
        pos.(w) <- rank;
        loc_of.(w) <- l)
      per_loc.(l)
  done;
  { nops; per_loc; pos; loc_of }

let position t w =
  let p = t.pos.(w) in
  if p < 0 then invalid_arg "Coherence.position: not a write";
  p

let precedes t w1 w2 =
  t.loc_of.(w1) >= 0 && t.loc_of.(w1) = t.loc_of.(w2) && position t w1 < position t w2

let writes_in_order t loc = t.per_loc.(loc)

let to_rel t =
  let rel = Rel.create t.nops in
  Array.iter
    (fun ws ->
      let n = Array.length ws in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          Rel.add rel ws.(i) ws.(j)
        done
      done)
    t.per_loc;
  rel

let successors_from t w =
  let loc = t.loc_of.(w) in
  if loc < 0 then invalid_arg "Coherence.successors_from: not a write";
  let ws = t.per_loc.(loc) in
  let rank = t.pos.(w) in
  Array.to_list (Array.sub ws (rank + 1) (Array.length ws - rank - 1))

let of_write_order h ws =
  let nlocs = History.nlocs h in
  let per_loc = Array.make nlocs [] in
  Array.iter
    (fun w ->
      let loc = (History.op h w).Op.loc in
      per_loc.(loc) <- w :: per_loc.(loc))
    ws;
  let per_loc = Array.map (fun l -> Array.of_list (List.rev l)) per_loc in
  build (History.nops h) nlocs per_loc

let default_respect h w1 w2 =
  let o1 = History.op h w1 and o2 = History.op h w2 in
  Op.same_proc o1 o2 && o1.Op.index < o2.Op.index

let iter ?respect h ~f =
  Smem_obs.Trace.span ~cat:"search" "search/co-enumeration" @@ fun () ->
  let respect = match respect with Some r -> r | None -> default_respect h in
  let nlocs = History.nlocs h in
  let per_loc_writes =
    Array.init nlocs (fun l -> Array.of_list (History.writes_to h l))
  in
  (* Enumerate the product over locations of constrained permutations,
     building into a shared [chosen] array of rows. *)
  let chosen = Array.map Array.copy per_loc_writes in
  let rec go l =
    if l = nlocs then begin
      Stats.count_co ();
      f (build (History.nops h) nlocs (Array.map Array.copy chosen))
    end
    else
      Perm.iter_constrained per_loc_writes.(l) ~precedes:respect ~f:(fun order ->
          chosen.(l) <- Array.copy order;
          go (l + 1))
  in
  go 0

let pp h ppf t =
  let loc_name l = History.loc_name h l in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun l ws ->
      if Array.length ws > 1 then
        Format.fprintf ppf "co(%s): %a@," (loc_name l) (History.pp_ops h)
          (Array.to_list ws))
    t.per_loc;
  Format.fprintf ppf "@]"
