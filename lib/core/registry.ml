let all =
  [
    Atomic.model;
    Sc.model;
    Tso.model;
    Tso_operational.model;
    Pc.model;
    Rc.rc_sc;
    Rc.rc_pc;
    Weak_ordering.model;
    Pc_goodman.model;
    Causal_coherent.model;
    Causal.model;
    Coherence_only.model;
    Pram.model;
    Slow.model;
    Local.model;
  ]

let comparable = [ Sc.model; Tso.model; Pc.model; Causal.model; Pram.model ]

let certifiable =
  List.filter (fun (m : Model.t) -> Option.is_some m.Model.params) all

let find key = List.find_opt (fun (m : Model.t) -> m.Model.key = key) all

let keys () = List.map (fun (m : Model.t) -> m.Model.key) all
