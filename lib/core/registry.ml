let all =
  [
    Atomic.model;
    Sc.model;
    Tso.model;
    Tso_operational.model;
    Pc.model;
    Rc.rc_sc;
    Rc.rc_pc;
    Weak_ordering.model;
    Pc_goodman.model;
    Pc_part.exemplar_2;
    Pc_part.exemplar_4;
    Causal_coherent.model;
    Causal.model;
    Obj_causal.model;
    Coherence_only.model;
    Pram.model;
    Session.exemplar_all;
    Session.exemplar_rm;
    Slow.model;
    Local.model;
  ]

let comparable = [ Sc.model; Tso.model; Pc.model; Causal.model; Pram.model ]

let certifiable =
  List.filter (fun (m : Model.t) -> Option.is_some m.Model.params) all

let keys () = List.map (fun (m : Model.t) -> m.Model.key) all

(* ---- did-you-mean ------------------------------------------------- *)

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

(* ---- families ----------------------------------------------------- *)

type family_info = {
  family : string;
  doc : string;
  params : (string * string) list;
  instantiate : Model_ref.t -> (Model.t, string) result;
}

let check_args (r : Model_ref.t) ~known =
  match Model_ref.unknown_args r ~known with
  | [] -> Ok ()
  | bad :: _ ->
      let suggestion =
        List.fold_left
          (fun best k ->
            let d = levenshtein bad k in
            match best with
            | Some (_, d') when d' <= d -> best
            | _ when d <= 3 -> Some (k, d)
            | _ -> best)
          None known
      in
      Error
        (Printf.sprintf "unknown argument %S of %s%s" bad r.Model_ref.family
           (match suggestion with
           | Some (k, _) -> Printf.sprintf " (did you mean %S?)" k
           | None ->
               if known = [] then ""
               else
                 Printf.sprintf " (known: %s)" (String.concat ", " known)))

let ( let* ) = Result.bind

let inst_pc_part (r : Model_ref.t) =
  let* () = check_args r ~known:[ "blocks"; "partition" ] in
  let* blocks = Model_ref.int_arg r "blocks" in
  let partition = List.assoc_opt "partition" r.Model_ref.args in
  match (blocks, partition) with
  | Some _, Some _ -> Error "pc-part takes blocks= or partition=, not both"
  | None, None -> Error "pc-part requires blocks=<k> or partition=<a.b|c>"
  | Some k, None ->
      if k < 1 || k > 64 then
        Error (Printf.sprintf "pc-part blocks must be in 1..64, got %d" k)
      else Ok (Pc_part.instantiate ~blocks:k)
  | None, Some spec ->
      let blocks =
        List.map (String.split_on_char '.') (String.split_on_char '|' spec)
      in
      if spec = "" || List.exists (List.exists (fun l -> l = "")) blocks then
        Error (Printf.sprintf "bad pc-part partition %S (want a.b|c)" spec)
      else
        let locs = List.concat blocks in
        let dup =
          List.exists
            (fun l -> List.length (List.filter (String.equal l) locs) > 1)
            locs
        in
        if dup then
          Error (Printf.sprintf "pc-part partition %S lists a location twice" spec)
        else Ok (Pc_part.instantiate_named ~partition:blocks)

let inst_session (r : Model_ref.t) =
  let* () = check_args r ~known:[ "ryw"; "mr"; "mw"; "wfr" ] in
  let* ryw = Model_ref.flag r "ryw" in
  let* mr = Model_ref.flag r "mr" in
  let* mw = Model_ref.flag r "mw" in
  let* wfr = Model_ref.flag r "wfr" in
  Ok (Session.instantiate { Session.ryw; mr; mw; wfr })

let inst_causal_obj (r : Model_ref.t) =
  let* () = check_args r ~known:[] in
  Ok Obj_causal.model

let families =
  [
    {
      family = "pc-part";
      doc =
        "Partition consistency (Cheng-Higham-Kawash): per-processor views \
         per location-partition block, with a shared per-location write \
         serialization.  One block ~ PC-G, singleton blocks ~ coherence.";
      params =
        [
          ("blocks", "positive integer <= 64: location id modulo k partition");
          ( "partition",
            "explicit blocks by location name, '.'-separated within a block, \
             '|' between blocks (witness-only: no certificates)" );
        ];
      instantiate = inst_pc_part;
    };
    {
      family = "session";
      doc =
        "Session guarantees (Terry et al.): per-processor views ordered \
         only by the enabled guarantees.";
      params =
        [
          ("ryw", "flag: read-your-writes (own write->read program order)");
          ("mr", "flag: monotonic reads (own read->read program order)");
          ("mw", "flag: monotonic writes (every write->write program order)");
          ( "wfr",
            "flag: writes-follow-reads (read's writer before subsequent own \
             writes; commits to a reads-from map)" );
        ];
      instantiate = inst_session;
    };
    {
      family = "causal-obj";
      doc =
        "Causal consistency over sequential-spec objects \
         (Mostefaoui-Perrin-Raynal): queues (q:*), counters (c:*), \
         registers.";
      params = [];
      instantiate = inst_causal_obj;
    };
  ]

(* ---- resolution --------------------------------------------------- *)

(* Instances are memoized so repeated references share one [Model.t]
   (hence one verdict-cache key).  The daemon resolves references from
   several worker domains, so the table is guarded. *)
let memo : (string, Model.t) Hashtbl.t = Hashtbl.create 16
let memo_lock = Mutex.create ()

let memo_find key =
  Mutex.lock memo_lock;
  let r = Hashtbl.find_opt memo key in
  Mutex.unlock memo_lock;
  r

let memo_add key m =
  Mutex.lock memo_lock;
  (* Another domain may have instantiated the same reference
     concurrently; keep the first instance so callers share it. *)
  let m =
    match Hashtbl.find_opt memo key with
    | Some existing -> existing
    | None ->
        Hashtbl.replace memo key m;
        m
  in
  Mutex.unlock memo_lock;
  m

let suggest s =
  let candidates =
    keys () @ List.map (fun f -> f.family) families
  in
  List.fold_left
    (fun best k ->
      let d = levenshtein s k in
      match best with
      | Some (_, d') when d' <= d -> best
      | _ when d <= 3 -> Some (k, d)
      | _ -> best)
    None candidates
  |> Option.map fst

let resolve s =
  match List.find_opt (fun (m : Model.t) -> m.Model.key = s) all with
  | Some m -> Ok m
  | None -> (
      match memo_find s with
      | Some m -> Ok m
      | None -> (
          match Model_ref.parse s with
          | Error e -> Error e
          | Ok r -> (
              match
                List.find_opt (fun f -> f.family = r.Model_ref.family) families
              with
              | None ->
                  Error
                    (Printf.sprintf "unknown model or family %S%s"
                       r.Model_ref.family
                       (match suggest r.Model_ref.family with
                       | Some k -> Printf.sprintf " (did you mean %S?)" k
                       | None -> ""))
              | Some f -> (
                  match f.instantiate r with
                  | Error _ as e -> e
                  | Ok m ->
                      (* Prefer the catalogued exemplar when the
                         reference canonicalizes to its key, then
                         memoize under the canonical key and under the
                         input spelling, so both hit next time. *)
                      let m =
                        match
                          List.find_opt
                            (fun (c : Model.t) -> c.Model.key = m.Model.key)
                            all
                        with
                        | Some canonical -> canonical
                        | None -> memo_add m.Model.key m
                      in
                      let m = if s = m.Model.key then m else memo_add s m in
                      Ok m))))

let find s = Result.to_option (resolve s)
