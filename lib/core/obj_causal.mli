(** Causal consistency over sequential-specification objects
    (Mostéfaoui–Perrin–Raynal): queues and counters as well as
    registers, the sort of each location declared by its name
    ({!Sort}).

    Views are per-processor and contain the owner's operations plus
    every {e update} — all writes and all queue dequeues (a dequeue
    mutates the queue, so its return value must be consistent in every
    view, unlike a pure register or counter read).  Each view must be
    a linear extension of the causal order (program order plus
    writes-before, transitively) that replays as a legal sequential
    history of every object.  On register-only histories this model
    coincides extensionally with causal memory. *)

val view_ops_updates : History.t -> int -> Smem_relation.Bitset.t
(** Processor [p]'s own operations plus every update of the history
    (all writes, plus queue dequeues by any processor). *)

val iter_rf : History.t -> f:(Reads_from.t -> bool) -> bool
(** Enumerate reads-from maps over the {e rf-able} reads only
    (registers and queues); counter reads are assigned
    {!History.init} and contribute no writes-before edge.  Same
    early-stop contract as {!Reads_from.iter}. *)

val object_view_exists :
  History.t ->
  ops:Smem_relation.Bitset.t ->
  order:Smem_relation.Rel.t ->
  int list option
(** A linear extension of [order] restricted to [ops] that replays as
    a legal sequential object history, or [None].  Memoizes failed
    (placed-set, object-states) pairs, like {!View.exists}.
    @raise View.Too_large as {!View.exists}. *)

val model : Model.t
