(** The ordering relations of §2 (parameter 3), computed over the
    operation identifiers of a history as {!Smem_relation.Rel.t}.

    - {!po}: total per-processor program order.
    - {!ppo}: the partial program order of non-blocking memories — a
      write followed (in program order) by a read of a {e different}
      location is unordered; all other program-order pairs, and
      everything reachable by chaining, stay ordered.
    - {!po_loc}: program order restricted to same-location pairs.
    - {!causal}: Lamport-style causality [(po ∪ wb)+] for a given
      reads-from map.
    - {!rwb}, {!rrb}, {!sem}: the remote writes-before, remote
      reads-before and semi-causality relations of processor
      consistency, for a given reads-from map and coherence order.

    The [*_within] variants compute the same relations on the
    {e subhistory} induced by a set of operations (used for the labeled
    subhistories of release consistency): program-order adjacency is
    taken within the subhistory and edges never leave it. *)

module Bitset = Smem_relation.Bitset
module Rel = Smem_relation.Rel

val po : History.t -> Rel.t
val po_loc : History.t -> Rel.t
val ppo : History.t -> Rel.t

val po_of_proc : History.t -> int -> Rel.t
(** Program order restricted to one processor's own operations. *)

val ppo_of_proc : History.t -> int -> Rel.t
(** Partial program order restricted to one processor's own operations
    (the ordering clause of release consistency constrains only the
    view owner's operations). *)

val real_time : History.t -> Rel.t
(** Real-time precedence from operation intervals: [a] before [b] when
    [a]'s response strictly precedes [b]'s invocation.  Empty when the
    history carries no timing. *)

val causal : History.t -> rf:Reads_from.t -> Rel.t

val causal_with : History.t -> po:Rel.t -> rf:Reads_from.t -> Rel.t
(** {!causal} with the program order precomputed: enumeration loops
    call this with [po h] hoisted out of the per-candidate path. *)

val rwb : History.t -> rf:Reads_from.t -> Rel.t
(** [o1 →rwb o2]: [o1] is a write, [o2] a read whose writer [o'] has
    [o1 →ppo o']. *)

val rrb : History.t -> rf:Reads_from.t -> co:Coherence.t -> Rel.t
(** [o1 →rrb o2]: [o1] is a read whose writer is coherence-before some
    write [o'] to the same location (or is the initial write), and
    [o' →ppo o2]. *)

val sem : History.t -> rf:Reads_from.t -> co:Coherence.t -> Rel.t
(** Semi-causality: [(ppo ∪ rwb ∪ rrb)+]. *)

val sem_with :
  History.t -> ppo:Rel.t -> rf:Reads_from.t -> co:Coherence.t -> Rel.t
(** {!sem} with the partial program order precomputed (it is
    candidate-independent, so enumeration loops hoist it). *)

val ppo_within : History.t -> members:Bitset.t -> Rel.t
val sem_within :
  History.t -> members:Bitset.t -> rf:Reads_from.t -> co:Coherence.t -> Rel.t
(** Semi-causality of the subhistory induced by [members]; reads-from
    edges are considered only when both endpoints are members. *)
