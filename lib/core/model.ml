type population =
  | Shared_all
  | Own_plus_writes
  | Per_location
  | Per_proc_block of { blocks : int }
  | Own_plus_updates

type ordering =
  | Program_order
  | Partial_program_order
  | Own_program_order
  | Own_po_plus_po_loc
  | Po_plus_real_time
  | Causal_order
  | Causal_plus_coherence
  | Semi_causal
  | Own_ppo_bracketed
  | Sync_fences
  | Session of { ryw : bool; mr : bool; mw : bool; wfr : bool }

type mutual =
  | No_mutual
  | Coherence_agreement
  | Global_write_order
  | Labeled_sc
  | Labeled_pc
  | Labeled_total

type legality = Value_legal | Writer_legal | Object_legal

type params = {
  population : population;
  ordering : ordering;
  mutual : mutual;
  legality : legality;
}

type t = {
  key : string;
  name : string;
  description : string;
  params : params option;
  witness : History.t -> Witness.t option;
}

let make ~key ~name ~description ?params witness =
  { key; name; description; params; witness }

let population_to_string = function
  | Shared_all -> "shared-all"
  | Own_plus_writes -> "own+writes"
  | Per_location -> "per-location"
  | Per_proc_block { blocks } -> Printf.sprintf "per-proc-block(%d)" blocks
  | Own_plus_updates -> "own+updates"

let ordering_to_string = function
  | Program_order -> "po"
  | Partial_program_order -> "ppo"
  | Own_program_order -> "own-po"
  | Own_po_plus_po_loc -> "own-po+po-loc"
  | Po_plus_real_time -> "po+real-time"
  | Causal_order -> "causal"
  | Causal_plus_coherence -> "causal+co"
  | Semi_causal -> "semi-causal"
  | Own_ppo_bracketed -> "own-ppo+brackets"
  | Sync_fences -> "sync-fences"
  | Session { ryw; mr; mw; wfr } ->
      let flags =
        List.filter_map
          (fun (on, name) -> if on then Some name else None)
          [ (ryw, "ryw"); (mr, "mr"); (mw, "mw"); (wfr, "wfr") ]
      in
      Printf.sprintf "session(%s)" (String.concat "," flags)

let mutual_to_string = function
  | No_mutual -> "none"
  | Coherence_agreement -> "coherence"
  | Global_write_order -> "global-write-order"
  | Labeled_sc -> "labeled-sc"
  | Labeled_pc -> "labeled-pc"
  | Labeled_total -> "labeled-total"

let legality_to_string = function
  | Value_legal -> "value"
  | Writer_legal -> "writer"
  | Object_legal -> "object"

let params_strings p =
  [
    ("population", population_to_string p.population);
    ("ordering", ordering_to_string p.ordering);
    ("mutual", mutual_to_string p.mutual);
    ("legality", legality_to_string p.legality);
  ]

type engine = Enum | Solve

(* Engine selection is process-global, set once from the CLI before any
   worker domain spawns: every call site that wants a witness goes
   through [witness_of], so flipping the mode reroutes the entire stack
   (Runner, Service, certification) without threading a parameter
   through it.  The solver itself lives above this library
   (Smem_solve depends on Smem_core), so it registers a hook. *)
let engine_mode = ref Enum
let solver_hook : (t -> History.t -> Witness.t option) option ref = ref None

let set_engine e = engine_mode := e
let engine () = !engine_mode
let register_solver f = solver_hook := Some f

let witness_of t h =
  match (!engine_mode, !solver_hook, t.params) with
  | Solve, Some f, Some _ -> f t h
  | _ -> t.witness h

let check t h =
  Stats.count_check ();
  Smem_obs.Trace.span ~cat:"check"
    ~args:
      [
        ("model", Smem_obs.Json.Str t.key);
        ("nops", Smem_obs.Json.Int (History.nops h));
        ("nprocs", Smem_obs.Json.Int (History.nprocs h));
      ]
    ("check/" ^ t.key)
    (fun () -> Stats.time (fun () -> Option.is_some (witness_of t h)))
