type population = Shared_all | Own_plus_writes | Per_location

type ordering =
  | Program_order
  | Partial_program_order
  | Own_program_order
  | Own_po_plus_po_loc
  | Po_plus_real_time
  | Causal_order
  | Causal_plus_coherence
  | Semi_causal
  | Own_ppo_bracketed
  | Sync_fences

type mutual =
  | No_mutual
  | Coherence_agreement
  | Global_write_order
  | Labeled_sc
  | Labeled_pc
  | Labeled_total

type legality = Value_legal | Writer_legal

type params = {
  population : population;
  ordering : ordering;
  mutual : mutual;
  legality : legality;
}

type t = {
  key : string;
  name : string;
  description : string;
  params : params option;
  witness : History.t -> Witness.t option;
}

let make ~key ~name ~description ?params witness =
  { key; name; description; params; witness }

let check t h =
  Stats.count_check ();
  Smem_obs.Trace.span ~cat:"check"
    ~args:
      [
        ("model", Smem_obs.Json.Str t.key);
        ("nops", Smem_obs.Json.Int (History.nops h));
        ("nprocs", Smem_obs.Json.Int (History.nprocs h));
      ]
    ("check/" ^ t.key)
    (fun () -> Stats.time (fun () -> Option.is_some (t.witness h)))
