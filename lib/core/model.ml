type t = {
  key : string;
  name : string;
  description : string;
  witness : History.t -> Witness.t option;
}

let make ~key ~name ~description witness = { key; name; description; witness }

let check t h =
  Stats.count_check ();
  Stats.time (fun () -> Option.is_some (t.witness h))
