(** The session-guarantee family (Terry et al. 1994, via Almeida's
    consistency framework): per-processor views of own operations plus
    all writes, value-legal, constrained only by the selected
    guarantees instead of full program order.

    - [ryw] (read-your-writes): each processor's own write→read
      program-order pairs;
    - [mr] (monotonic reads): its own read→read pairs;
    - [mw] (monotonic writes): {e every} processor's write→write pairs
      (writes appear in every view, so this binds all views);
    - [wfr] (writes-follow-reads): for each read with assigned writer
      [w], [w] precedes the reader's subsequent writes in every view.
      This guarantee quantifies over a reads-from map, so enabling it
      switches the family to writer-legality.

    All four guarantees together are strictly weaker than PRAM (which
    also keeps read→write order); none of them is comparable to the
    coherence side of the lattice. *)

type flags = { ryw : bool; mr : bool; mw : bool; wfr : bool }

val all_flags : flags
val no_flags : flags

val key_of : flags -> string
(** Canonical key: enabled guarantees in [ryw,mr,mw,wfr] order, e.g.
    ["session(ryw,mr)"]; ["session()"] when none. *)

val edges :
  History.t -> flags -> rf:Reads_from.t option -> Smem_relation.Rel.t
(** The ordering requirement induced by the guarantees: the union of
    the selected projections ([wfr] edges only when [rf] is given).
    Shared by the witness search and the solver. *)

val instantiate : flags -> Model.t

val exemplar_rm : Model.t
(** [session(ryw,mr)] — the catalogued exemplar. *)

val exemplar_all : Model.t
(** [session(ryw,mr,mw,wfr)] — the catalogued exemplar. *)
