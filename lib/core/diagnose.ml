module Rel = Smem_relation.Rel

type edge_kind = Program_order | Reads_from | From_read | Coherence_order

let pp_edge_kind ppf = function
  | Program_order -> Format.pp_print_string ppf "po"
  | Reads_from -> Format.pp_print_string ppf "rf"
  | From_read -> Format.pp_print_string ppf "fr"
  | Coherence_order -> Format.pp_print_string ppf "co"

type cycle = { ops : int list; edges : (int * edge_kind * int) list }

(* Both counts are pure arithmetic: the reads-from space is a product
   of per-read candidate counts, and the coherence space factors per
   location into interleavings of per-processor write chains (the
   enumeration's [default_respect] constraint is exactly "same
   processor, program order"), i.e. a multinomial coefficient.  The old
   code multiplied unchecked ints for rf (silent overflow) and
   enumerated every coherence order just to count them (exponential
   blow-up on larger histories); both now saturate at [max_int]. *)
let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a > max_int / b then max_int
  else a * b

let candidate_space h =
  let rf_count =
    List.fold_left
      (fun acc r -> sat_mul acc (List.length (Reads_from.candidates h r)))
      1 (History.reads h)
  in
  let nprocs = History.nprocs h in
  let co_count = ref 1 in
  for l = 0 to History.nlocs h - 1 do
    let chain = Array.make nprocs 0 in
    List.iter
      (fun w ->
        let p = (History.op h w).Op.proc in
        chain.(p) <- chain.(p) + 1)
      (History.writes_to h l);
    (* multinomial (Σ chain)! / Π chain!, as a product of binomials;
       each step acc * (n0 + i) / i is exact integer arithmetic. *)
    let n = ref 0 in
    Array.iter
      (fun c ->
        for i = 1 to c do
          incr n;
          co_count :=
            (if !co_count > max_int / !n then max_int
             else !co_count * !n / i)
        done)
      chain
  done;
  (rf_count, !co_count)

let first_candidate h =
  let result = ref None in
  ignore
    (Reads_from.iter h ~f:(fun rf ->
         Coherence.iter h ~f:(fun co ->
             result := Some (rf, co);
             true)));
  !result

let sc_cycle h =
  match first_candidate h with
  | None -> None
  | Some (rf, co) -> (
      let po = Orders.po h in
      let rf_rel = Engine.rf_edges h ~rf in
      let fr_rel = Engine.fr_edges h ~rf ~co in
      let co_rel = Coherence.to_rel co in
      let graph = Rel.union (Rel.union po rf_rel) (Rel.union fr_rel co_rel) in
      match Rel.find_cycle graph with
      | None -> None
      | Some ops ->
          let arr = Array.of_list ops in
          let n = Array.length arr in
          let kind_of a b =
            if Rel.mem po a b then Program_order
            else if Rel.mem rf_rel a b then Reads_from
            else if Rel.mem fr_rel a b then From_read
            else Coherence_order
          in
          let edges =
            List.init n (fun i ->
                let a = arr.(i) and b = arr.((i + 1) mod n) in
                (a, kind_of a b, b))
          in
          Some { ops; edges })

let pp_cycle h ppf { ops = _; edges } =
  let loc_name l = History.loc_name h l in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (a, kind, b) ->
      Format.fprintf ppf "%a --%a--> %a@."
        (Op.pp ~loc_name) (History.op h a)
        pp_edge_kind kind
        (Op.pp ~loc_name) (History.op h b))
    edges;
  Format.fprintf ppf "@]"
