(** Diagnostics for forbidden histories.

    A history is forbidden when {e every} candidate witness fails, so a
    complete refutation is an exhaustive enumeration; what a user wants
    is (a) the size of the candidate space that was exhausted and (b) a
    concrete cycle showing why a representative candidate fails.  This
    module provides both for the sequential-consistency structure (one
    shared view), which is also the right explanation for the classic
    "why is this not SC?" question. *)

type edge_kind = Program_order | Reads_from | From_read | Coherence_order

val pp_edge_kind : Format.formatter -> edge_kind -> unit

type cycle = { ops : int list; edges : (int * edge_kind * int) list }
(** [ops] in cycle order; [edges] annotate each consecutive pair (and
    the wrap-around) with the relation that orders it. *)

val candidate_space : History.t -> int * int
(** (number of reads-from maps, number of coherence orders) the
    checkers enumerate for this history — the {e unpruned} size of the
    candidate space, computed analytically (no enumeration: the rf
    space is a product of per-read candidate counts, the coherence
    space a product of per-location chain-interleaving multinomials).
    Both components saturate at [max_int] instead of overflowing. *)

val sc_cycle : History.t -> cycle option
(** A cycle in the SC constraint graph (po ∪ rf ∪ fr ∪ co) under the
    first (reads-from, coherence) candidate, or [None] when the history
    is SC under that candidate or has no reads-from candidate at all.
    For a history the SC checker rejects, this is a concrete "why not"
    certificate for one representative execution candidate. *)

val pp_cycle : History.t -> Format.formatter -> cycle -> unit
