module Rel = Smem_relation.Rel

(* writer.(id) is the writer of read [id]; a sentinel -2 marks non-read slots. *)
type t = { writer : int array }

let no_writer = -2

let writer t r =
  let w = t.writer.(r) in
  if w = no_writer then invalid_arg "Reads_from.writer: not a read";
  w

let reads_from_init t r = writer t r = History.init

let candidates h r =
  let op = History.op h r in
  if not (Op.is_read op) then invalid_arg "Reads_from.candidates: not a read";
  let writes =
    History.writes_to h op.Op.loc
    |> List.filter (fun w -> (History.op h w).Op.value = op.Op.value)
  in
  if op.Op.value = 0 then History.init :: writes else writes

let iter h ~f =
  Smem_obs.Trace.span ~cat:"search" "search/rf-enumeration" @@ fun () ->
  let reads = Array.of_list (History.reads h) in
  let nreads = Array.length reads in
  (* Hoisted: the candidate writers of each read depend only on the
     history, so compute them once here instead of once per enumeration
     node (the old recursion recomputed read [k]'s candidates for every
     assignment of reads [0..k-1]). *)
  let cands = Array.map (fun r -> Array.of_list (candidates h r)) reads in
  let rejected = ref 0 in
  Array.iteri
    (fun i r ->
      let op = History.op h r in
      let possible =
        List.length (History.writes_to h op.Op.loc)
        + (if op.Op.value = 0 then 1 else 0)
      in
      rejected := !rejected + possible - Array.length cands.(i))
    reads;
  Stats.add_pruned !rejected;
  if !rejected > 0 && Smem_obs.Trace.active () then
    Smem_obs.Trace.instant ~cat:"search"
      ~args:[ ("rejected", Smem_obs.Json.Int !rejected) ]
      "search/prune";
  if Array.exists (fun c -> Array.length c = 0) cands then begin
    (* Some read returns a value nobody wrote: no reads-from map exists,
       so short-circuit before enumerating any prefix assignment (the
       old code still walked the full product of the earlier reads'
       candidates before failing on the empty one). *)
    Stats.add_pruned 1;
    false
  end
  else begin
    let writer = Array.make (History.nops h) no_writer in
    let rec go i =
      if i = nreads then begin
        Stats.count_rf ();
        f { writer = Array.copy writer }
      end
      else
        let r = reads.(i) in
        Array.exists
          (fun w ->
            writer.(r) <- w;
            let accepted = go (i + 1) in
            writer.(r) <- no_writer;
            accepted)
          cands.(i)
    in
    go 0
  end

let make h ~writer =
  let arr = Array.make (max 1 (History.nops h)) no_writer in
  List.iter (fun r -> arr.(r) <- writer r) (History.reads h);
  { writer = arr }

let pairs h t = List.map (fun r -> (r, writer t r)) (History.reads h)

let wb h t =
  let rel = Rel.create (History.nops h) in
  List.iter
    (fun r ->
      let w = writer t r in
      if w <> History.init then Rel.add rel w r)
    (History.reads h);
  rel

let pp h ppf t =
  let loc_name l = History.loc_name h l in
  Format.fprintf ppf "@[<hov>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf r ->
         let w = writer t r in
         if w = History.init then
           Format.fprintf ppf "%a<-init" (Op.pp ~loc_name) (History.op h r)
         else
           Format.fprintf ppf "%a<-%a" (Op.pp ~loc_name) (History.op h r)
             (Op.pp ~loc_name) (History.op h w)))
    (History.reads h)
