(** The catalogue of memory models, strongest first.  Keys are the CLI
    identifiers ([atomic], [sc], [tso], [pc], [rc-sc], [rc-pc], [wo], [pc-g], [causal],
    [causal-coh], [coh], [pram], [slow], [local], [tso-op]). *)

val all : Model.t list
(** Every model, strongest-to-weakest by the paper's Figure 5 (models
    incomparable in the lattice appear in a fixed documented order). *)

val comparable : Model.t list
(** The models of the paper's Figure 5 only: SC, TSO, PC, Causal,
    PRAM — the inputs to the lattice reconstruction. *)

val certifiable : Model.t list
(** The models declaring a parameter triple ({!Model.params}) — every
    built-in except the operational TSO replay.  Exactly these can emit
    verdict certificates checkable by {!Smem_cert.Kernel}. *)

val find : string -> Model.t option
(** Look up a model by key. *)

val keys : unit -> string list
