(** The catalogue of memory models: the fixed built-ins, family
    exemplars, and on-demand instantiation of parameterized families
    through the {!Model_ref} grammar.

    Keys are the CLI identifiers ([atomic], [sc], [tso], [pc],
    [rc-sc], [rc-pc], [wo], [pc-g], [pc-part(blocks=k)], [causal],
    [causal-obj], [session(...)], [causal-coh], [coh], [pram], [slow],
    [local], [tso-op]). *)

val all : Model.t list
(** Every catalogued model, strongest-to-weakest by the extended
    Figure 5 lattice (models incomparable in the lattice appear in a
    fixed documented order).  Includes one exemplar per family:
    [pc-part(blocks=2)], [pc-part(blocks=4)], [causal-obj],
    [session(ryw,mr,mw,wfr)], [session(ryw,mr)]. *)

val comparable : Model.t list
(** The models of the paper's Figure 5 only: SC, TSO, PC, Causal,
    PRAM — the inputs to the lattice reconstruction. *)

val certifiable : Model.t list
(** The catalogued models declaring a parameter triple
    ({!Model.params}).  Exactly these can emit verdict certificates
    checkable by {!Smem_cert.Kernel}. *)

(** {1 Families} *)

type family_info = {
  family : string;  (** grammar name, e.g. ["pc-part"] *)
  doc : string;
  params : (string * string) list;
      (** parameter name → human-readable domain *)
  instantiate : Model_ref.t -> (Model.t, string) result;
      (** build an instance; [Error] explains a bad or unknown
          argument (with a did-you-mean suggestion). *)
}

val families : family_info list
(** The parameterized families: [pc-part], [session], [causal-obj]. *)

(** {1 Resolution} *)

val resolve : string -> (Model.t, string) result
(** Resolve a key or model reference: an exact catalogue key first,
    then the {!Model_ref} grammar against {!families} (instances are
    memoized, so resolving the same reference twice yields the same
    [Model.t] and one shared verdict-cache line).  [Error] carries the
    parse or instantiation failure, or an unknown-name message with a
    did-you-mean suggestion. *)

val find : string -> Model.t option
(** [resolve] with the reason discarded. *)

val keys : unit -> string list
(** Keys of the catalogued models (not of on-demand instances). *)

val suggest : string -> string option
(** The closest catalogue key or family name within edit distance 3,
    if any — the did-you-mean candidate for an unknown name. *)
