let exact_limit = 6

let is_exact h = History.nprocs h <= exact_limit

(* Encode the history with rows taken in [order], renaming locations to
   first-use indices and nonzero values to per-location first-use
   indices (0 is the implicit initial value of every location and must
   stay fixed).  The encoding is injective on renamed histories: it
   spells out kind, attribute, location, value and interval of every
   operation, with unambiguous separators.

   Object locations ({!Sort}) additionally carry their sort character
   before the location index — a queue history must never collide with
   the register history spelled the same way — and counter locations
   skip value renaming entirely: a counter read's value is an absolute
   count, not an opaque token, so renaming it would conflate
   histories with different counts.  Register encodings are unchanged,
   keeping existing digests (and persistent verdict stores) valid. *)
let encode_order h order =
  let buf = Buffer.create 256 in
  let loc_map = Hashtbl.create 8 in
  let value_maps = Hashtbl.create 8 in
  let rename_loc l =
    match Hashtbl.find_opt loc_map l with
    | Some l' -> l'
    | None ->
        let l' = Hashtbl.length loc_map in
        Hashtbl.add loc_map l l';
        Hashtbl.add value_maps l' (Hashtbl.create 4);
        l'
  in
  let rename_value l' v =
    if v = 0 then 0
    else
      let vm = Hashtbl.find value_maps l' in
      match Hashtbl.find_opt vm v with
      | Some v' -> v'
      | None ->
          let v' = Hashtbl.length vm + 1 in
          Hashtbl.add vm v v';
          v'
  in
  Array.iter
    (fun p ->
      Buffer.add_char buf '|';
      Array.iter
        (fun id ->
          let op = History.op h id in
          let sort = Sort.of_loc h op.Op.loc in
          let l' = rename_loc op.Op.loc in
          let v' =
            match sort with
            | Sort.Counter -> op.Op.value
            | Sort.Register | Sort.Queue -> rename_value l' op.Op.value
          in
          Buffer.add_char buf
            (match op.Op.kind with Op.Read -> 'r' | Op.Write -> 'w');
          if Op.is_labeled op then Buffer.add_char buf '*';
          (match sort with
          | Sort.Register -> ()
          | Sort.Queue -> Buffer.add_char buf 'q'
          | Sort.Counter -> Buffer.add_char buf 'c');
          Buffer.add_string buf (string_of_int l');
          Buffer.add_char buf '=';
          Buffer.add_string buf (string_of_int v');
          (match History.interval h id with
          | None -> ()
          | Some (s, f) ->
              Buffer.add_char buf '@';
              Buffer.add_string buf (string_of_int s);
              Buffer.add_char buf ':';
              Buffer.add_string buf (string_of_int f));
          Buffer.add_char buf ';')
        (History.proc_ops h p))
    order;
  Buffer.contents buf

(* A single row encoded with row-local renaming: invariant under any
   global location renaming and per-location value bijection fixing 0,
   so it can order rows without fixing the renaming first. *)
let row_signature h p = encode_order h [| p |]

let identity n = Array.init n (fun i -> i)

let all_permutations n =
  let rec go acc prefix remaining =
    match remaining with
    | [] -> List.rev prefix :: acc
    | _ ->
        List.fold_left
          (fun acc x ->
            go acc (x :: prefix) (List.filter (fun y -> y <> x) remaining))
          acc remaining
  in
  List.rev_map Array.of_list (go [] [] (List.init n (fun i -> i)))

(* The row order realizing the canonical form: exact minimization over
   all row permutations up to [exact_limit] processors, deterministic
   signature sort (stable, so idempotent) above it. *)
let canonical_order h =
  let n = History.nprocs h in
  if n <= 1 then identity n
  else if n <= exact_limit then
    let best = ref (identity n) in
    let best_enc = ref (encode_order h !best) in
    List.iter
      (fun order ->
        let enc = encode_order h order in
        if enc < !best_enc then begin
          best := order;
          best_enc := enc
        end)
      (all_permutations n);
    !best
  else
    let rows = Array.init n (fun p -> (row_signature h p, p)) in
    let cmp (sa, pa) (sb, pb) =
      match String.compare sa sb with 0 -> compare pa pb | c -> c
    in
    Array.sort cmp rows;
    Array.map snd rows

let encode h = encode_order h (canonical_order h)

(* Rebuild the canonical history as a real History.t, replaying the
   same renaming the encoder applies. *)
let canonicalize h =
  let order = canonical_order h in
  let loc_map = Hashtbl.create 8 in
  let value_maps = Hashtbl.create 8 in
  let rename_loc l =
    match Hashtbl.find_opt loc_map l with
    | Some l' -> l'
    | None ->
        let l' = Hashtbl.length loc_map in
        Hashtbl.add loc_map l l';
        Hashtbl.add value_maps l' (Hashtbl.create 4);
        l'
  in
  let rename_value l' v =
    if v = 0 then 0
    else
      let vm = Hashtbl.find value_maps l' in
      match Hashtbl.find_opt vm v with
      | Some v' -> v'
      | None ->
          let v' = Hashtbl.length vm + 1 in
          Hashtbl.add vm v v';
          v'
  in
  let rows =
    Array.to_list order
    |> List.map (fun p ->
           History.proc_ops h p |> Array.to_list
           |> List.map (fun id ->
                  let op = History.op h id in
                  let sort = Sort.of_loc h op.Op.loc in
                  let l' = rename_loc op.Op.loc in
                  let v' =
                    match sort with
                    | Sort.Counter -> op.Op.value
                    | Sort.Register | Sort.Queue ->
                        rename_value l' op.Op.value
                  in
                  (* The sort prefix survives renaming, so the
                     canonical history classifies identically. *)
                  let loc = Sort.prefix sort ^ "l" ^ string_of_int l' in
                  let labeled = Op.is_labeled op in
                  let at = History.interval h id in
                  match op.Op.kind with
                  | Op.Read -> History.read ~labeled ?at loc v'
                  | Op.Write -> History.write ~labeled ?at loc v'))
  in
  History.make rows

let digest h = Digest.to_hex (Digest.string (encode h))

let equivalent a b = String.equal (encode a) (encode b)
