module Rel = Smem_relation.Rel

let witness h =
  let po = Orders.po h in
  let found = ref None in
  let _ : bool =
    Coherence.iter h ~f:(fun co ->
        let order = Rel.union po (Coherence.to_rel co) in
        Rel.acyclic order
        &&
        let rec go p acc =
          if p = History.nprocs h then begin
            found := Some (Witness.per_proc (List.rev acc) ~notes:[]);
            true
          end
          else
            match
              View.exists h ~ops:(History.view_ops_writes h p) ~order
                ~legality:View.By_value
            with
            | None -> false
            | Some seq -> go (p + 1) ((p, seq) :: acc)
        in
        go 0 [])
  in
  !found

let check h = Option.is_some (witness h)

let model =
  Model.make ~key:"pc-g" ~name:"Processor Consistency (Goodman)"
    ~description:
      "PRAM plus coherence: per-processor views respecting program order \
       that agree on a per-location write serialization (Goodman 1989, as \
       formalized by Ahamad et al. 1992)."
    ~params:
      {
        Model.population = Model.Own_plus_writes;
        ordering = Model.Program_order;
        mutual = Model.Coherence_agreement;
        legality = Model.Value_legal;
      }
    witness
