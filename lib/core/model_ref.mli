(** Structured model references — the one place the
    [family(key=value,...)] grammar is parsed and printed.

    A reference names either a catalogued model by key (a nullary
    reference, e.g. ["tso"]) or an instance of a parameterized family
    (e.g. ["pc-part(blocks=2)"], ["session(ryw,mr)"]).  Bare argument
    names are flags: ["session(ryw)"] is ["session(ryw=true)"].
    Whitespace around tokens is tolerated; printing is canonical
    (no spaces, arguments in the order given). *)

type t = {
  family : string;
  args : (string * string) list;
      (** argument name → value; [""] for a bare flag *)
}

val parse : string -> (t, string) result
(** Parse a reference.  Accepted names (family, keys, values) are
    nonempty runs of letters, digits, ['_'], ['-'], ['.'], [':'] and
    ['|'].  [Error] carries a human-readable reason. *)

val to_string : t -> string
(** Canonical form: [family] when there are no arguments, otherwise
    [family(k=v,...)] with bare flags printed without [=]. *)

val nullary : string -> t

val flag : t -> string -> (bool, string) result
(** Interpret an argument as a boolean flag: absent is [false]; bare,
    ["true"] or ["1"] is [true]; ["false"] or ["0"] is [false]. *)

val int_arg : t -> string -> (int option, string) result
(** Interpret an argument as an integer; [Ok None] when absent. *)

val unknown_args : t -> known:string list -> string list
(** Argument names not in [known] (for did-you-mean reporting). *)
