(** Sequential-specification sorts of locations.

    The object-consistency family (Mostéfaoui–Perrin–Raynal) extends
    the framework from read/write registers to arbitrary
    sequential-spec objects.  Rather than widen {!Op.t} — which would
    ripple through every engine, the canonicalizer, the wire codec and
    the certificate format — an object's sort is carried in its
    location {e name}: ["q:tail"] is a FIFO queue, ["c:hits"] a
    counter, anything else a register.  Object operations are ordinary
    reads and writes on the tagged location:

    - queue: [enq q v] is a write of [v] (values must be nonzero),
      [deq q v] a read returning [v], with [deq q 0] meaning "the queue
      was empty";
    - counter: [inc c] is a write (its stored value is ignored),
      [rdc c n] a read returning the number of increments before it.

    Every existing model treats the tagged locations as plain
    registers; only {!Model.Object_legal} legality interprets them. *)

type t = Register | Queue | Counter

val of_loc_name : string -> t
(** Classify a location by its name prefix: ["q:"] queue, ["c:"]
    counter, anything else a register. *)

val of_loc : History.t -> int -> t
(** Classify an interned location of a history. *)

val prefix : t -> string
(** The name prefix declaring the sort ([""] for registers). *)

val is_register : t -> bool

val has_objects : History.t -> bool
(** Does any location of the history carry a non-register sort? *)

(** {1 Sequential replay}

    The incremental object-state machine shared by the witness search
    ({!Obj_causal}) and the certificate kernel: both replay a candidate
    view one operation at a time and ask whether the next operation is
    a legal transition. *)

type state
(** Immutable per-location object state (so backtracking searches can
    keep prior states without undo bookkeeping). *)

val initial : t -> state
(** Empty queue, zero counter, register holding [0]. *)

val step : t -> state -> Op.t -> state option
(** [step sort st op] is the state after [op], or [None] when [op] is
    not a legal transition: a register read of a value other than the
    current one, a dequeue that does not return the head (or returns
    [0] while the queue is nonempty, or nonzero while it is empty), a
    counter read that is not the current count. *)
