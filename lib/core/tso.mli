(** Total Store Ordering (Sindhu, Frailong, Cekleov [17]), §3.2 of the
    paper.

    Views contain the processor's operations plus all writes of other
    processors ([δ_p = w]); mutual consistency is a single global total
    order on {e all} writes shared by every view; the ordering
    requirement is the partial program order [ppo] (a read may bypass a
    program-order-earlier write to a different location). *)

val write_po : History.t -> int -> int -> bool
(** Same-processor program order on writes: the constraint every
    candidate global write serialization must respect.  Exposed for the
    constraint-propagation engine, which enumerates the same candidate
    space. *)

val chain_rel : int -> int array -> Smem_relation.Rel.t
(** Consecutive-pair edges of a serialization (sufficient here: every
    write appears in every view, so no intermediate element is ever
    restricted away). *)

val witness : History.t -> Witness.t option
val check : History.t -> bool
val model : Model.t
