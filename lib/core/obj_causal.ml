module Rel = Smem_relation.Rel
module Bitset = Smem_relation.Bitset

let is_update h (o : Op.t) =
  Op.is_write o
  || (Op.is_read o && Sort.of_loc h o.Op.loc = Sort.Queue)

let view_ops_updates h p =
  let ops = Bitset.create (History.nops h) in
  Array.iter
    (fun (o : Op.t) ->
      if o.Op.proc = p || is_update h o then Bitset.add ops o.Op.id)
    (History.ops h);
  ops

(* Counter reads return a count, not a written value, so no write is
   their "writer": they are excluded from the reads-from product and
   mapped to {!History.init} (contributing no writes-before edge). *)
let iter_rf h ~f =
  let rfable =
    List.filter
      (fun r -> Sort.of_loc h (History.op h r).Op.loc <> Sort.Counter)
      (History.reads h)
  in
  let cands = List.map (fun r -> (r, Reads_from.candidates h r)) rfable in
  if List.exists (fun (_, cs) -> cs = []) cands then false
  else begin
    let writer = Array.make (max (History.nops h) 1) History.init in
    let rec go = function
      | [] -> f (Reads_from.make h ~writer:(fun r -> writer.(r)))
      | (r, cs) :: rest ->
          List.exists
            (fun w ->
              writer.(r) <- w;
              go rest)
            cs
    in
    go cands
  end

let object_view_exists h ~ops ~order =
  let nops = History.nops h in
  if nops >= Sys.int_size then
    raise (View.Too_large { nops; limit = Sys.int_size - 1 });
  let sorts = Array.init (History.nlocs h) (fun l -> Sort.of_loc h l) in
  let member = Array.make nops false in
  Bitset.iter (fun i -> member.(i) <- true) ops;
  let total = Bitset.cardinal ops in
  let preds = Array.make nops [] in
  Rel.iter_pairs
    (fun a b ->
      if a <> b && member.(a) && member.(b) then preds.(b) <- a :: preds.(b))
    order;
  let elems = Bitset.elements ops in
  let init_states =
    Array.init (History.nlocs h) (fun l -> Sort.initial sorts.(l))
  in
  let failed = Hashtbl.create 64 in
  let rec go placed seq count states =
    if count = total then Some (List.rev seq)
    else if Hashtbl.mem failed (placed, states) then None
    else begin
      let result = ref None in
      let try_op id =
        !result = None && member.(id)
        && placed land (1 lsl id) = 0
        && List.for_all (fun p -> placed land (1 lsl p) <> 0) preds.(id)
        &&
        let o = History.op h id in
        match Sort.step sorts.(o.Op.loc) states.(o.Op.loc) o with
        | None -> false
        | Some st ->
            let states' = Array.copy states in
            states'.(o.Op.loc) <- st;
            (match go (placed lor (1 lsl id)) (id :: seq) (count + 1) states' with
            | Some _ as r ->
                result := r;
                true
            | None -> false)
      in
      let _ : bool = List.exists try_op elems in
      if !result = None then Hashtbl.replace failed (placed, states) ();
      !result
    end
  in
  go 0 [] 0 init_states

let views_for h ~order =
  let rec go p acc =
    if p = History.nprocs h then Some (List.rev acc)
    else
      match object_view_exists h ~ops:(view_ops_updates h p) ~order with
      | None -> None
      | Some seq -> go (p + 1) ((p, seq) :: acc)
  in
  go 0 []

let witness h =
  let po = Orders.po h in
  let found = ref None in
  let _ : bool =
    iter_rf h ~f:(fun rf ->
        let causal = Orders.causal_with h ~po ~rf in
        Rel.irreflexive causal
        &&
        match views_for h ~order:causal with
        | None -> false
        | Some views ->
            found :=
              Some
                (Witness.per_proc ~rf:(Reads_from.pairs h rf) views
                   ~notes:[ "views replay queues FIFO and counters by count" ]);
            true)
  in
  !found

let model =
  Model.make ~key:"causal-obj" ~name:"Object Causal Memory"
    ~description:
      "Causal consistency over sequential-spec objects \
       (Mostefaoui-Perrin-Raynal): queues (q:*) and counters (c:*) as \
       well as registers.  Per-processor views of own operations plus \
       all updates respect the causal order and replay as legal \
       sequential object histories; coincides with causal memory on \
       register-only histories."
    ~params:
      {
        Model.population = Model.Own_plus_updates;
        ordering = Model.Causal_order;
        mutual = Model.No_mutual;
        legality = Model.Object_legal;
      }
    witness
