(** Weak ordering (Dubois, Scheurich, Briggs [1]) — the paper's §3.4
    cites it as the other "selective synchronization" memory besides
    release consistency.

    Operations are ordinary or labeled (synchronizing).  Conditions, in
    framework terms:

    - the labeled operations admit one global serialization that every
      view respects (synchronizing accesses are strongly ordered; their
      values are still drawn from the one shared memory, so legality is
      judged per view against all writes, unlike the labeled-subhistory
      legality of release consistency);
    - an operation issued after a labeled operation of its processor
      follows it in every view, and a labeled operation follows every
      earlier operation of its processor in every view (accesses
      complete across the system before/after a synchronization point);
    - per-location program order is preserved (uniprocessor data
      dependences hold even between synchronization points);
    - views contain the processor's operations plus all writes of
      others, and are legal.

    Unlike release consistency, weak ordering does not distinguish
    acquires from releases: a synchronization access is a full, global
    two-way fence — but between synchronization points, ordinary
    operations of one processor are mutually unordered (RC's partial
    program order does order them), so WO and RC are incomparable.
    SC ⊆ WO, and WO forbids the labeled store-buffering and labeled
    IRIW histories just as RC_sc does — the test suite checks all of
    this. *)

val fence_edges : History.t -> Smem_relation.Rel.t
(** Same-processor program-order pairs with a labeled endpoint (the
    two-way fence semantics).  Exposed for the constraint-propagation
    engine's identical leaf check. *)

val total_order_rel : int -> int array -> Smem_relation.Rel.t
(** All (earlier, later) pairs of a sequence, as a relation over [nops]
    operations. *)

val witness : History.t -> Witness.t option
val check : History.t -> bool
val model : Model.t
