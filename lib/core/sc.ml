module Rel = Smem_relation.Rel

let witness h =
  let po = Orders.po h in
  let all = History.all_ops_set h in
  let empty = Rel.create (History.nops h) in
  let found = ref None in
  let accept w =
    found := Some w;
    true
  in
  let views = [ { Engine.proc = -1; ops = all; order = po } ] in
  let _ : bool =
    Reads_from.iter h ~f:(fun rf ->
        (* rf edges depend only on the reads-from map: hoist them out
           of the coherence enumeration. *)
        let rf_rel = Engine.rf_edges h ~rf in
        Coherence.iter h ~f:(fun co ->
            match Engine.check h ~rf_rel ~rf ~co ~extra:empty ~views with
            | Some w -> accept w
            | None -> false))
  in
  !found

let check h = Option.is_some (witness h)

let model =
  Model.make ~key:"sc" ~name:"Sequential Consistency"
    ~description:
      "One legal interleaving of all operations, respecting program order, \
       shared by all processors (Lamport 1979)."
    ~params:
      {
        Model.population = Model.Shared_all;
        ordering = Model.Program_order;
        mutual = Model.No_mutual;
        legality = Model.Writer_legal;
      }
    witness
