(** Partition consistency (Cheng–Higham–Kawash): a family of models
    parameterized by a partition of the locations.  Each processor
    keeps one view {e per partition block}, holding its own operations
    on the block's locations plus every write to them; views respect
    program order and all views agree on a per-location write
    serialization.

    With every location in one block the family is PC-G minus PC-G's
    (redundant) global acyclicity pre-check — i.e. extensionally PC-G;
    with singleton blocks it is extensionally coherence.  Intermediate
    partitions are genuinely new models: consistency is enforced
    within a block but not across blocks.

    Two parameterizations exist:
    - [blocks=k]: location [l] (interned id) belongs to block
      [l mod k].  Expressible as {!Model.Per_proc_block}, so these
      instances are certifiable.
    - [partition=a.b|c]: an explicit partition by location name
      (['.'] separates locations, ['|'] blocks); unlisted locations
      get singleton blocks of their own.  Not expressible in the pure
      parameter triple, so these instances carry no [params] and
      cannot be certified. *)

val instantiate : blocks:int -> Model.t
(** The [blocks=k] instance, [k >= 1].  Key: ["pc-part(blocks=k)"]. *)

val instantiate_named : partition:string list list -> Model.t
(** The explicit-partition instance; each inner list is one block of
    location names. *)

val block_of_loc : blocks:int -> int -> int
(** The block of an interned location id under [blocks=k]. *)

val view_ops :
  History.t -> in_block:(int -> bool) -> int -> Smem_relation.Bitset.t
(** Processor [p]'s view population for one block: its own operations
    on the block's locations plus every write to them.  Shared with
    the constraint solver's view construction and leaf check. *)

val exemplar_2 : Model.t
(** [pc-part(blocks=2)] — the catalogued exemplar. *)

val exemplar_4 : Model.t
(** [pc-part(blocks=4)] — the catalogued exemplar. *)
