let witness h =
  let rec go p acc =
    if p = History.nprocs h then Some (Witness.per_proc (List.rev acc) ~notes:[])
    else
      match
        View.exists h ~ops:(History.view_ops_writes h p)
          ~order:(Orders.po_of_proc h p) ~legality:View.By_value
      with
      | None -> None
      | Some seq -> go (p + 1) ((p, seq) :: acc)
  in
  go 0 []

let check h = Option.is_some (witness h)

let model =
  Model.make ~key:"local" ~name:"Local Consistency"
    ~description:
      "Independent views respecting only the owner's program order; other \
       processors' writes may be observed in any order."
    ~params:
      {
        Model.population = Model.Own_plus_writes;
        ordering = Model.Own_program_order;
        mutual = Model.No_mutual;
        legality = Model.Value_legal;
      }
    witness
