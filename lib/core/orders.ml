module Bitset = Smem_relation.Bitset
module Rel = Smem_relation.Rel

let po h =
  let rel = Rel.create (History.nops h) in
  for p = 0 to History.nprocs h - 1 do
    let row = History.proc_ops h p in
    let n = Array.length row in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        Rel.add rel row.(i) row.(j)
      done
    done
  done;
  rel

let po_loc h =
  let rel = Rel.create (History.nops h) in
  for p = 0 to History.nprocs h - 1 do
    let row = History.proc_ops h p in
    let n = Array.length row in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Op.same_loc (History.op h row.(i)) (History.op h row.(j)) then
          Rel.add rel row.(i) row.(j)
      done
    done
  done;
  rel

let po_of_proc h p =
  let rel = Rel.create (History.nops h) in
  let row = History.proc_ops h p in
  let n = Array.length row in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Rel.add rel row.(i) row.(j)
    done
  done;
  rel

(* The base of ppo keeps a program-order pair unless it is a write
   followed by a read of a different location; the transitive closure
   restores pairs reachable through intermediate operations. *)
let ppo_of_rows h rows =
  let rel = Rel.create (History.nops h) in
  Array.iter
    (fun row ->
      let n = Array.length row in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a = History.op h row.(i) and b = History.op h row.(j) in
          let bypassable = Op.is_write a && Op.is_read b && not (Op.same_loc a b) in
          if not bypassable then Rel.add rel row.(i) row.(j)
        done
      done)
    rows;
  Rel.transitive_closure rel

let ppo h =
  ppo_of_rows h (Array.init (History.nprocs h) (fun p -> History.proc_ops h p))

let ppo_of_proc h p = ppo_of_rows h [| History.proc_ops h p |]

let ppo_within h ~members =
  let rows =
    Array.init (History.nprocs h) (fun p ->
        History.proc_ops h p |> Array.to_list
        |> List.filter (Bitset.mem members)
        |> Array.of_list)
  in
  ppo_of_rows h rows

let real_time h =
  let rel = Rel.create (History.nops h) in
  let n = History.nops h in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      match (History.interval h a, History.interval h b) with
      | Some (_, fa), Some (sb, _) when a <> b && fa < sb -> Rel.add rel a b
      | _ -> ()
    done
  done;
  rel

let causal_with h ~po ~rf =
  Rel.transitive_closure (Rel.union po (Reads_from.wb h rf))

let causal h ~rf = causal_with h ~po:(po h) ~rf

let rwb_into h ~rf ~ppo rel ~member =
  List.iter
    (fun r ->
      if member r then
        let w' = Reads_from.writer rf r in
        if w' <> History.init && member w' then
          List.iter
            (fun a ->
              if member a && Rel.mem ppo a w' then Rel.add rel a r)
            (History.writes h))
    (History.reads h)

let rrb_into h ~rf ~co ~ppo rel ~member =
  List.iter
    (fun r ->
      if member r then
        let w = Reads_from.writer rf r in
        let loc = (History.op h r).Op.loc in
        List.iter
          (fun o' ->
            if
              member o' && o' <> w
              && (w = History.init || Coherence.precedes co w o')
            then
              List.iter
                (fun b -> if member b && Rel.mem ppo o' b then Rel.add rel r b)
                (History.writes h))
          (History.writes_to h loc))
    (History.reads h)

let sem_of h ~ppo ~rf ~co ~member =
  let rel = Rel.copy ppo in
  rwb_into h ~rf ~ppo rel ~member;
  rrb_into h ~rf ~co ~ppo rel ~member;
  Rel.transitive_closure rel

let everyone _ = true

let rwb h ~rf =
  let ppo = ppo h in
  let rel = Rel.create (History.nops h) in
  rwb_into h ~rf ~ppo rel ~member:everyone;
  rel

let rrb h ~rf ~co =
  let ppo = ppo h in
  let rel = Rel.create (History.nops h) in
  rrb_into h ~rf ~co ~ppo rel ~member:everyone;
  rel

let sem_with h ~ppo ~rf ~co = sem_of h ~ppo ~rf ~co ~member:everyone

let sem h ~rf ~co = sem_with h ~ppo:(ppo h) ~rf ~co

let sem_within h ~members ~rf ~co =
  sem_of h ~ppo:(ppo_within h ~members) ~rf ~co ~member:(Bitset.mem members)
