module Rel = Smem_relation.Rel

let witness h =
  let nops = History.nops h in
  let empty = Rel.create nops in
  (* ppo and the view populations are candidate-independent; only the
     semi-causal augmentation varies with (rf, co). *)
  let ppo = Orders.ppo h in
  let view_ops =
    Array.init (History.nprocs h) (fun p -> History.view_ops_writes h p)
  in
  let found = ref None in
  let _ : bool =
    Reads_from.iter h ~f:(fun rf ->
        let rf_rel = Engine.rf_edges h ~rf in
        Coherence.iter h ~f:(fun co ->
            let sem = Orders.sem_with h ~ppo ~rf ~co in
            let views =
              List.init (History.nprocs h) (fun p ->
                  { Engine.proc = p; ops = view_ops.(p); order = sem })
            in
            match Engine.check h ~rf_rel ~rf ~co ~extra:empty ~views with
            | Some w ->
                found := Some w;
                true
            | None -> false))
  in
  !found

let check h = Option.is_some (witness h)

let model =
  Model.make ~key:"pc" ~name:"Processor Consistency (DASH)"
    ~description:
      "Per-processor views of own operations plus all writes; coherence as \
       mutual consistency; semi-causality (ppo + remote writes-before + \
       remote reads-before) as the ordering requirement."
    ~params:
      {
        Model.population = Model.Own_plus_writes;
        ordering = Model.Semi_causal;
        mutual = Model.Coherence_agreement;
        legality = Model.Writer_legal;
      }
    witness
