(* Search-statistics counters for the witness searches.

   The counters are process-global [Stdlib.Atomic] cells so the
   parallel runner's worker domains can bump them without
   synchronization beyond the atomic increment; a snapshot is therefore
   an aggregate over every check run since the last [reset], across all
   domains.  [Stdlib.Atomic] is spelled out because [Atomic] inside
   this library is the atomic-memory model. *)

module A = Stdlib.Atomic

type snapshot = {
  checks : int;
  rf_candidates : int;
  co_candidates : int;
  pruned : int;
  toposorts : int;
  wall_ns : int;
}

let checks = A.make 0
let rf_candidates = A.make 0
let co_candidates = A.make 0
let pruned = A.make 0
let toposorts = A.make 0
let wall_ns = A.make 0

let all = [ checks; rf_candidates; co_candidates; pruned; toposorts; wall_ns ]

(* Per-oracle counters for the differential fuzzer, keyed by oracle
   name (a machine/model pairing or a containment arrow).  The key set
   is small and insert-rare, so the table is an immutable association
   list swapped by compare-and-set: lookups are lock-free and bumps are
   plain atomic increments, preserving the module's domain-safety
   contract without a mutex. *)
type fuzz = { pass : int; fail : int; shrink_steps : int }

type fuzz_cell = { c_pass : int A.t; c_fail : int A.t; c_shrink : int A.t }

let fuzz_table : (string * fuzz_cell) list A.t = A.make []

let reset () =
  List.iter (fun c -> A.set c 0) all;
  A.set fuzz_table []

let snapshot () =
  {
    checks = A.get checks;
    rf_candidates = A.get rf_candidates;
    co_candidates = A.get co_candidates;
    pruned = A.get pruned;
    toposorts = A.get toposorts;
    wall_ns = A.get wall_ns;
  }

let diff a b =
  {
    checks = a.checks - b.checks;
    rf_candidates = a.rf_candidates - b.rf_candidates;
    co_candidates = a.co_candidates - b.co_candidates;
    pruned = a.pruned - b.pruned;
    toposorts = a.toposorts - b.toposorts;
    wall_ns = a.wall_ns - b.wall_ns;
  }

let bump c = A.incr c
let add c n = if n > 0 then ignore (A.fetch_and_add c n)

let rec fuzz_cell key =
  let table = A.get fuzz_table in
  match List.assoc_opt key table with
  | Some cell -> cell
  | None ->
      let cell = { c_pass = A.make 0; c_fail = A.make 0; c_shrink = A.make 0 } in
      if A.compare_and_set fuzz_table table ((key, cell) :: table) then cell
      else fuzz_cell key

let count_fuzz_pass key = bump (fuzz_cell key).c_pass
let count_fuzz_fail key = bump (fuzz_cell key).c_fail
let add_fuzz_shrink key n = add (fuzz_cell key).c_shrink n

let fuzz_snapshot () =
  A.get fuzz_table
  |> List.map (fun (key, cell) ->
         ( key,
           {
             pass = A.get cell.c_pass;
             fail = A.get cell.c_fail;
             shrink_steps = A.get cell.c_shrink;
           } ))
  |> List.sort compare

let pp_fuzz ppf counters =
  if counters = [] then Format.fprintf ppf "fuzz oracles: none run"
  else begin
    Format.fprintf ppf "@[<v>fuzz oracle counters (pass/fail/shrink steps):";
    List.iter
      (fun (key, f) ->
        Format.fprintf ppf "@,  %-24s %8d %4d %4d" key f.pass f.fail
          f.shrink_steps)
      counters;
    Format.fprintf ppf "@]"
  end

let count_check () = bump checks
let count_rf () = bump rf_candidates
let count_co () = bump co_candidates
let add_pruned n = add pruned n
let count_toposort () = bump toposorts
let add_wall_ns n = add wall_ns n

let time f =
  let t0 = Unix.gettimeofday () in
  let finally () =
    add_wall_ns (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
  in
  Fun.protect ~finally f

let pp_wall ppf ns =
  if ns >= 1_000_000_000 then Format.fprintf ppf "%.3f s" (float ns /. 1e9)
  else if ns >= 1_000_000 then Format.fprintf ppf "%.3f ms" (float ns /. 1e6)
  else if ns >= 1_000 then Format.fprintf ppf "%.3f us" (float ns /. 1e3)
  else Format.fprintf ppf "%d ns" ns

let pp ppf s =
  Format.fprintf ppf
    "@[<v>search statistics:@,\
    \  checks run            %d@,\
    \  rf maps enumerated    %d@,\
    \  co orders enumerated  %d@,\
    \  rf candidates pruned  %d@,\
    \  topological sorts     %d@,\
    \  wall time (all checks, summed across workers)  %a@]"
    s.checks s.rf_candidates s.co_candidates s.pruned s.toposorts pp_wall
    s.wall_ns
