(* Search-statistics counters for the witness searches.

   The counters are process-global [Stdlib.Atomic] cells so the
   parallel runner's worker domains can bump them without
   synchronization beyond the atomic increment; a snapshot is therefore
   an aggregate over every check run since the last [reset], across all
   domains.  [Stdlib.Atomic] is spelled out because [Atomic] inside
   this library is the atomic-memory model. *)

module A = Stdlib.Atomic

type snapshot = {
  checks : int;
  rf_candidates : int;
  co_candidates : int;
  pruned : int;
  toposorts : int;
  wall_ns : int;
}

let checks = A.make 0
let rf_candidates = A.make 0
let co_candidates = A.make 0
let pruned = A.make 0
let toposorts = A.make 0
let wall_ns = A.make 0

let all = [ checks; rf_candidates; co_candidates; pruned; toposorts; wall_ns ]

let reset () = List.iter (fun c -> A.set c 0) all

let snapshot () =
  {
    checks = A.get checks;
    rf_candidates = A.get rf_candidates;
    co_candidates = A.get co_candidates;
    pruned = A.get pruned;
    toposorts = A.get toposorts;
    wall_ns = A.get wall_ns;
  }

let diff a b =
  {
    checks = a.checks - b.checks;
    rf_candidates = a.rf_candidates - b.rf_candidates;
    co_candidates = a.co_candidates - b.co_candidates;
    pruned = a.pruned - b.pruned;
    toposorts = a.toposorts - b.toposorts;
    wall_ns = a.wall_ns - b.wall_ns;
  }

let bump c = A.incr c
let add c n = if n > 0 then ignore (A.fetch_and_add c n)

let count_check () = bump checks
let count_rf () = bump rf_candidates
let count_co () = bump co_candidates
let add_pruned n = add pruned n
let count_toposort () = bump toposorts
let add_wall_ns n = add wall_ns n

let time f =
  let t0 = Unix.gettimeofday () in
  let finally () =
    add_wall_ns (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
  in
  Fun.protect ~finally f

let pp_wall ppf ns =
  if ns >= 1_000_000_000 then Format.fprintf ppf "%.3f s" (float ns /. 1e9)
  else if ns >= 1_000_000 then Format.fprintf ppf "%.3f ms" (float ns /. 1e6)
  else if ns >= 1_000 then Format.fprintf ppf "%.3f us" (float ns /. 1e3)
  else Format.fprintf ppf "%d ns" ns

let pp ppf s =
  Format.fprintf ppf
    "@[<v>search statistics:@,\
    \  checks run            %d@,\
    \  rf maps enumerated    %d@,\
    \  co orders enumerated  %d@,\
    \  rf candidates pruned  %d@,\
    \  topological sorts     %d@,\
    \  wall time (all checks, summed across workers)  %a@]"
    s.checks s.rf_candidates s.co_candidates s.pruned s.toposorts pp_wall
    s.wall_ns
