(* Search-statistics counters for the witness searches.

   Since the observability layer landed these are thin typed views over
   the process-global [Smem_obs.Metrics] registry: the same cells the
   generic machinery snapshots for [--metrics] and the bench harness's
   BENCH_smem.json, so there is exactly one source of truth.  Cells are
   [Stdlib.Atomic] ints, so the parallel runner's worker domains bump
   them without synchronization beyond the atomic increment; a snapshot
   is an aggregate over every check run since the last [reset], across
   all domains. *)

module M = Smem_obs.Metrics

type snapshot = {
  checks : int;
  rf_candidates : int;
  co_candidates : int;
  pruned : int;
  toposorts : int;
  wall_ns : int;
  solve_decisions : int;
  solve_propagations : int;
  solve_conflicts : int;
  solve_nogoods : int;
  solve_nogood_hits : int;
  solve_leaves : int;
}

let checks = M.counter "search.checks"
let rf_candidates = M.counter "search.rf_candidates"
let co_candidates = M.counter "search.co_candidates"
let pruned = M.counter "search.pruned"
let toposorts = M.counter "search.toposorts"
let wall_ns = M.counter "search.wall_ns"

(* The propagation engine's own cost drivers, distinct from the
   enumeration counters above: decisions are variable assignments tried,
   propagations are closure edges inserted, conflicts are cycles caught
   before any leaf check, nogoods/nogood_hits measure learning. *)
let solve_decisions = M.counter "solve.decisions"
let solve_propagations = M.counter "solve.propagations"
let solve_conflicts = M.counter "solve.conflicts"
let solve_nogoods = M.counter "solve.nogoods"
let solve_nogood_hits = M.counter "solve.nogood_hits"
let solve_leaves = M.counter "solve.leaves"

(* Per-oracle counters for the differential fuzzer, keyed by oracle
   name (a machine/model pairing or a containment arrow).  Stored as
   dynamically registered metrics ["fuzz.pass.<key>"] etc., so they
   inherit the registry's domain-safety and show up in [--metrics]. *)
type fuzz = { pass : int; fail : int; shrink_steps : int }

let fuzz_pass_prefix = "fuzz.pass."
let fuzz_fail_prefix = "fuzz.fail."
let fuzz_shrink_prefix = "fuzz.shrink."

let reset () = M.reset ()

let snapshot () =
  {
    checks = M.value checks;
    rf_candidates = M.value rf_candidates;
    co_candidates = M.value co_candidates;
    pruned = M.value pruned;
    toposorts = M.value toposorts;
    wall_ns = M.value wall_ns;
    solve_decisions = M.value solve_decisions;
    solve_propagations = M.value solve_propagations;
    solve_conflicts = M.value solve_conflicts;
    solve_nogoods = M.value solve_nogoods;
    solve_nogood_hits = M.value solve_nogood_hits;
    solve_leaves = M.value solve_leaves;
  }

let diff a b =
  {
    checks = a.checks - b.checks;
    rf_candidates = a.rf_candidates - b.rf_candidates;
    co_candidates = a.co_candidates - b.co_candidates;
    pruned = a.pruned - b.pruned;
    toposorts = a.toposorts - b.toposorts;
    wall_ns = a.wall_ns - b.wall_ns;
    solve_decisions = a.solve_decisions - b.solve_decisions;
    solve_propagations = a.solve_propagations - b.solve_propagations;
    solve_conflicts = a.solve_conflicts - b.solve_conflicts;
    solve_nogoods = a.solve_nogoods - b.solve_nogoods;
    solve_nogood_hits = a.solve_nogood_hits - b.solve_nogood_hits;
    solve_leaves = a.solve_leaves - b.solve_leaves;
  }

let count_fuzz_pass key = M.incr (M.counter (fuzz_pass_prefix ^ key))
let count_fuzz_fail key = M.incr (M.counter (fuzz_fail_prefix ^ key))

let add_fuzz_shrink key n =
  if n > 0 then M.add (M.counter (fuzz_shrink_prefix ^ key)) n

let fuzz_snapshot () =
  let strip prefix name =
    if String.starts_with ~prefix name then
      Some
        (String.sub name (String.length prefix)
           (String.length name - String.length prefix))
    else None
  in
  let table = Hashtbl.create 16 in
  let get key =
    match Hashtbl.find_opt table key with
    | Some f -> f
    | None -> { pass = 0; fail = 0; shrink_steps = 0 }
  in
  List.iter
    (fun (name, v) ->
      match strip fuzz_pass_prefix name with
      | Some key -> Hashtbl.replace table key { (get key) with pass = v }
      | None -> (
          match strip fuzz_fail_prefix name with
          | Some key -> Hashtbl.replace table key { (get key) with fail = v }
          | None -> (
              match strip fuzz_shrink_prefix name with
              | Some key ->
                  Hashtbl.replace table key { (get key) with shrink_steps = v }
              | None -> ())))
    (M.snapshot ());
  Hashtbl.fold (fun key f acc -> (key, f) :: acc) table [] |> List.sort compare

let pp_fuzz ppf counters =
  if counters = [] then Format.fprintf ppf "fuzz oracles: none run"
  else begin
    Format.fprintf ppf "@[<v>fuzz oracle counters (pass/fail/shrink steps):";
    List.iter
      (fun (key, f) ->
        Format.fprintf ppf "@,  %-24s %8d %4d %4d" key f.pass f.fail
          f.shrink_steps)
      counters;
    Format.fprintf ppf "@]"
  end

let count_check () = M.incr checks
let count_rf () = M.incr rf_candidates
let count_co () = M.incr co_candidates
let add_pruned n = if n > 0 then M.add pruned n
let count_toposort () = M.incr toposorts
let add_wall_ns n = if n > 0 then M.add wall_ns n
let count_solve_decision () = M.incr solve_decisions
let add_solve_propagations n = if n > 0 then M.add solve_propagations n
let count_solve_conflict () = M.incr solve_conflicts
let count_solve_nogood () = M.incr solve_nogoods
let count_solve_nogood_hit () = M.incr solve_nogood_hits
let count_solve_leaf () = M.incr solve_leaves

(* Monotonic clock: a wall-clock source here (the old gettimeofday)
   could be stepped backwards by NTP mid-measure and record a negative
   or wildly skewed duration into the aggregate. *)
let time f =
  let t0 = Smem_obs.Clock.now () in
  let finally () = add_wall_ns (Smem_obs.Clock.elapsed_ns t0) in
  Fun.protect ~finally f

let pp_wall ppf ns =
  if ns >= 1_000_000_000 then Format.fprintf ppf "%.3f s" (float ns /. 1e9)
  else if ns >= 1_000_000 then Format.fprintf ppf "%.3f ms" (float ns /. 1e6)
  else if ns >= 1_000 then Format.fprintf ppf "%.3f us" (float ns /. 1e3)
  else Format.fprintf ppf "%d ns" ns

let pp ppf s =
  Format.fprintf ppf
    "@[<v>search statistics:@,\
    \  checks run            %d@,\
    \  rf maps enumerated    %d@,\
    \  co orders enumerated  %d@,\
    \  rf candidates pruned  %d@,\
    \  topological sorts     %d@,\
    \  wall time (all checks, summed across workers)  %a@]"
    s.checks s.rf_candidates s.co_candidates s.pruned s.toposorts pp_wall
    s.wall_ns;
  if
    s.solve_decisions + s.solve_propagations + s.solve_conflicts
    + s.solve_nogoods + s.solve_nogood_hits + s.solve_leaves
    > 0
  then
    Format.fprintf ppf
      "@,\
       @[<v>solver statistics:@,\
      \  decisions             %d@,\
      \  propagated edges      %d@,\
      \  conflicts             %d@,\
      \  nogoods learned       %d@,\
      \  nogood hits           %d@,\
      \  leaf checks           %d@]"
      s.solve_decisions s.solve_propagations s.solve_conflicts s.solve_nogoods
      s.solve_nogood_hits s.solve_leaves
