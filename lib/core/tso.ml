module Rel = Smem_relation.Rel
module Perm = Smem_relation.Perm

(* The global write serialization must agree with each processor's
   program order on its own writes (ppo orders same-processor writes, so
   a disagreeing serialization cycles in that processor's view): prune
   the enumeration accordingly. *)
let write_po h w1 w2 =
  let o1 = History.op h w1 and o2 = History.op h w2 in
  Op.same_proc o1 o2 && o1.Op.index < o2.Op.index

(* Consecutive-pair edges suffice here (unlike the labeled orders of
   RC_sc / weak ordering): every write appears in every view, so no
   intermediate element of the serialization is ever absent. *)
let chain_rel nops order =
  let rel = Rel.create nops in
  for i = 0 to Array.length order - 2 do
    Rel.add rel order.(i) order.(i + 1)
  done;
  rel

let witness h =
  let nops = History.nops h in
  let ppo = Orders.ppo h in
  let views =
    List.init (History.nprocs h) (fun p ->
        { Engine.proc = p; ops = History.view_ops_writes h p; order = ppo })
  in
  let writes = Array.of_list (History.writes h) in
  let found = ref None in
  let _ : bool =
    Reads_from.iter h ~f:(fun rf ->
        let rf_rel = Engine.rf_edges h ~rf in
        Perm.iter_constrained writes ~precedes:(write_po h) ~f:(fun worder ->
            Stats.count_co ();
            let co = Coherence.of_write_order h worder in
            let extra = chain_rel nops worder in
            match Engine.check h ~rf_rel ~rf ~co ~extra ~views with
            | Some w ->
                let note =
                  Format.asprintf "write order: %a" (History.pp_ops h)
                    (Array.to_list worder)
                in
                found := Some { w with Witness.notes = note :: w.Witness.notes };
                true
            | None -> false))
  in
  !found

let check h = Option.is_some (witness h)

let model =
  Model.make ~key:"tso" ~name:"Total Store Ordering"
    ~description:
      "Per-processor views of own operations plus all writes; a single \
       global write order shared by all views; partial program order \
       (reads may bypass earlier writes to other locations)."
    ~params:
      {
        Model.population = Model.Own_plus_writes;
        ordering = Model.Partial_program_order;
        mutual = Model.Global_write_order;
        legality = Model.Writer_legal;
      }
    witness
