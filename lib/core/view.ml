module Bitset = Smem_relation.Bitset
module Rel = Smem_relation.Rel

type legality = By_value | By_writer of Reads_from.t

exception Too_large of { nops : int; limit : int }

let () =
  Printexc.register_printer (function
    | Too_large { nops; limit } ->
        Some
          (Printf.sprintf
             "View.Too_large: history has %d operations; the word-encoded \
              legality search handles at most %d"
             nops limit)
    | _ -> None)

let exists ?(memoize = true) h ~ops ~order ~legality =
  Smem_obs.Trace.span ~cat:"search"
    ~args:[ ("memoize", Smem_obs.Json.Bool memoize) ]
    "search/legality"
  @@ fun () ->
  let nops = History.nops h in
  if nops >= Sys.int_size then
    raise (Too_large { nops; limit = Sys.int_size - 1 });
  let ids = Array.of_list (Bitset.elements ops) in
  let n = Array.length ids in
  (* Predecessor masks: op [a] is ready once all its order-predecessors
     within [ops] are placed. *)
  let pred_mask = Array.make nops 0 in
  Rel.iter_pairs
    (fun a b ->
      if Bitset.mem ops a && Bitset.mem ops b then
        pred_mask.(b) <- pred_mask.(b) lor (1 lsl a))
    order;
  let nlocs = History.nlocs h in
  let initial_cell = match legality with By_value -> 0 | By_writer _ -> History.init in
  let mem = Array.make (max 1 nlocs) initial_cell in
  let read_ok op =
    let cell = mem.((op : Op.t).Op.loc) in
    match legality with
    | By_value -> cell = op.Op.value
    | By_writer rf -> cell = Reads_from.writer rf op.Op.id
  in
  let cell_after op =
    match legality with By_value -> (op : Op.t).Op.value | By_writer _ -> op.Op.id
  in
  let seq = Array.make n (-1) in
  let failed = Hashtbl.create 97 in
  let rec go depth placed =
    if depth = n then true
    else begin
      let key = if memoize then Some (placed, Array.copy mem) else None in
      if memoize && Hashtbl.mem failed (Option.get key) then false
      else begin
        let ok = ref false in
        let i = ref 0 in
        while (not !ok) && !i < n do
          let a = ids.(!i) in
          let bit = 1 lsl a in
          if placed land bit = 0 && placed land pred_mask.(a) = pred_mask.(a) then begin
            let op = History.op h a in
            if Op.is_write op then begin
              let saved = mem.(op.Op.loc) in
              mem.(op.Op.loc) <- cell_after op;
              seq.(depth) <- a;
              if go (depth + 1) (placed lor bit) then ok := true
              else mem.(op.Op.loc) <- saved
            end
            else if read_ok op then begin
              seq.(depth) <- a;
              if go (depth + 1) (placed lor bit) then ok := true
            end
          end;
          incr i
        done;
        if memoize && not !ok then Hashtbl.add failed (Option.get key) ();
        !ok
      end
    end
  in
  if go 0 0 then Some (Array.to_list seq) else None
