module Bitset = Smem_relation.Bitset
module Rel = Smem_relation.Rel

(* Same-processor program-order pairs with a labeled endpoint: the
   two-way fence semantics of a synchronizing access. *)
let fence_edges h =
  let rel = Rel.create (History.nops h) in
  for q = 0 to History.nprocs h - 1 do
    let row = History.proc_ops h q in
    let n = Array.length row in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if
          Op.is_labeled (History.op h row.(i))
          || Op.is_labeled (History.op h row.(j))
        then Rel.add rel row.(i) row.(j)
      done
    done
  done;
  rel

let total_order_rel nops seq =
  (* All (earlier, later) pairs — NOT just consecutive ones: a view that
     omits an intermediate operation (another processor's labeled read)
     must still order the operations around it. *)
  let rel = Rel.create nops in
  let n = Array.length seq in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Rel.add rel seq.(i) seq.(j)
    done
  done;
  rel

let witness h =
  let nops = History.nops h in
  let labeled_set = Bitset.of_list nops (History.labeled h) in
  let po = Orders.po h in
  let fence = Rel.union (fence_edges h) (Orders.po_loc h) in
  let found = ref None in
  let _ : bool =
    Rel.linear_extensions ~universe:labeled_set po ~f:(fun t_seq ->
        let order = Rel.union fence (total_order_rel nops t_seq) in
        let note =
          Format.asprintf "synchronization order: %a" (History.pp_ops h)
            (Array.to_list t_seq)
        in
        let rec go p acc =
          if p = History.nprocs h then begin
            found :=
              Some
                (Witness.per_proc
                   ~sync:(Array.to_list t_seq)
                   (List.rev acc) ~notes:[ note ]);
            true
          end
          else
            match
              View.exists h ~ops:(History.view_ops_writes h p) ~order
                ~legality:View.By_value
            with
            | None -> false
            | Some seq -> go (p + 1) ((p, seq) :: acc)
        in
        go 0 [])
  in
  !found

let check h = Option.is_some (witness h)

let model =
  Model.make ~key:"wo" ~name:"Weak Ordering"
    ~description:
      "Selective synchronization with two-way fences: one global legal \
       order on labeled (synchronizing) accesses, every operation ordered \
       across each of its processor's synchronization points (Dubois, \
       Scheurich, Briggs 1988)."
    ~params:
      {
        Model.population = Model.Own_plus_writes;
        ordering = Model.Sync_fences;
        mutual = Model.Labeled_total;
        legality = Model.Value_legal;
      }
    witness
