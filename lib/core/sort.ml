type t = Register | Queue | Counter

let of_loc_name name =
  if String.length name >= 2 && name.[1] = ':' then
    match name.[0] with 'q' -> Queue | 'c' -> Counter | _ -> Register
  else Register

let of_loc h l = of_loc_name (History.loc_name h l)
let prefix = function Register -> "" | Queue -> "q:" | Counter -> "c:"
let is_register = function Register -> true | Queue | Counter -> false

let has_objects h =
  let rec go l =
    l < History.nlocs h && ((not (is_register (of_loc h l))) || go (l + 1))
  in
  go 0

(* Queues are tiny (litmus scale): a plain head-first list with O(n)
   enqueue keeps the states immutable, which is what the backtracking
   searches actually need. *)
type state = Reg of int | Que of int list | Cnt of int

let initial = function Register -> Reg 0 | Queue -> Que [] | Counter -> Cnt 0

let step sort st (op : Op.t) =
  match (sort, st, op.Op.kind) with
  | Register, Reg _, Op.Write -> Some (Reg op.Op.value)
  | Register, Reg v, Op.Read -> if op.Op.value = v then Some st else None
  | Queue, Que q, Op.Write -> Some (Que (q @ [ op.Op.value ]))
  | Queue, Que q, Op.Read -> (
      if op.Op.value = 0 then if q = [] then Some st else None
      else
        match q with
        | head :: rest when head = op.Op.value -> Some (Que rest)
        | _ -> None)
  | Counter, Cnt n, Op.Write -> Some (Cnt (n + 1))
  | Counter, Cnt n, Op.Read -> if op.Op.value = n then Some st else None
  | _ -> invalid_arg "Sort.step: state does not match sort"
