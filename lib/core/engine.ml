module Bitset = Smem_relation.Bitset
module Rel = Smem_relation.Rel

type view_spec = { proc : int; ops : Bitset.t; order : Rel.t }

let rf_edges h ~rf =
  let rel = Rel.create (History.nops h) in
  List.iter
    (fun r ->
      let w = Reads_from.writer rf r in
      if w <> History.init then Rel.add rel w r)
    (History.reads h);
  rel

let fr_edges h ~rf ~co =
  let rel = Rel.create (History.nops h) in
  List.iter
    (fun r ->
      let w = Reads_from.writer rf r in
      let loc = (History.op h r).Op.loc in
      if w = History.init then
        List.iter (fun w' -> if w' <> r then Rel.add rel r w') (History.writes_to h loc)
      else List.iter (fun w' -> Rel.add rel r w') (Coherence.successors_from co w))
    (History.reads h);
  rel

let check ?rf_rel h ~rf ~co ~extra ~views =
  let rf_rel = match rf_rel with Some r -> r | None -> rf_edges h ~rf in
  let base = Rel.union rf_rel (fr_edges h ~rf ~co) in
  Rel.union_into ~into:base (Coherence.to_rel co);
  Rel.union_into ~into:base extra;
  let solve_view spec =
    let graph = Rel.restrict (Rel.union spec.order base) spec.ops in
    Stats.count_toposort ();
    (* Span-per-toposort is the finest trace granularity; the [active]
       guard keeps the untraced hot path free of even the closure
       allocation. *)
    let sorted =
      if Smem_obs.Trace.active () then
        Smem_obs.Trace.span ~cat:"engine"
          ~args:[ ("proc", Smem_obs.Json.Int spec.proc) ]
          "engine/toposort"
          (fun () -> Rel.topological_sort graph)
      else Rel.topological_sort graph
    in
    match sorted with
    | None -> None
    | Some order ->
        let seq = List.filter (Bitset.mem spec.ops) order in
        Some (spec.proc, seq)
  in
  (* Notes are only rendered on success: formatting them eagerly made
     every failing candidate pay two asprintf calls in the hot loop. *)
  let notes () =
    let rf_note = Format.asprintf "reads-from: %a" (Reads_from.pp h) rf in
    let co_note = Format.asprintf "%a" (Coherence.pp h) co in
    if String.trim co_note = "" then [ rf_note ] else [ rf_note; co_note ]
  in
  let rec solve acc = function
    | [] ->
        Some
          (Witness.per_proc ~rf:(Reads_from.pairs h rf) (List.rev acc)
             ~notes:(notes ()))
    | spec :: rest -> (
        match solve_view spec with
        | None -> None
        | Some view -> solve (view :: acc) rest)
  in
  solve [] views
