(** Search-statistics counters for the witness searches.

    Every checker is an existential search over enumerated reads-from
    maps and coherence orders; these counters make the cost of that
    search observable ([smem ... --stats], the bench harness) instead of
    asserted.  Counters are process-global atomics: they aggregate over
    every check since the last {!reset}, across all worker domains of
    the parallel runner, and are safe to bump concurrently.

    The cells live in the {!Smem_obs.Metrics} registry (names
    ["search.checks"], ["search.rf_candidates"], … and
    ["fuzz.pass.<oracle>"], …), so the same values also appear in
    [--metrics] output and in the bench harness's [BENCH_smem.json];
    this module is the typed view the search code bumps through. *)

type snapshot = {
  checks : int;  (** {!Model.check} invocations *)
  rf_candidates : int;  (** complete reads-from maps enumerated *)
  co_candidates : int;  (** complete coherence orders enumerated *)
  pruned : int;
      (** rf writer candidates rejected before enumeration:
          value-incompatible writes, plus one per read whose candidate
          set is empty (which prunes the entire search) *)
  toposorts : int;  (** topological sorts run by the acyclicity engine *)
  wall_ns : int;
      (** wall time spent inside {!Model.check}, in nanoseconds, summed
          across concurrent workers (so it can exceed elapsed time) *)
  solve_decisions : int;
      (** variable assignments tried by the propagation engine *)
  solve_propagations : int;
      (** closure edges inserted by the solver's propagators *)
  solve_conflicts : int;
      (** cycles detected during propagation, before any leaf check *)
  solve_nogoods : int;  (** nogoods learned from conflicts *)
  solve_nogood_hits : int;
      (** candidate assignments rejected by a learned nogood *)
  solve_leaves : int;
      (** fully assigned candidates validated by the exact per-model
          leaf check *)
}

val reset : unit -> unit
(** Zero every counter — and, because the cells live in the shared
    registry, every other {!Smem_obs.Metrics} metric with them (one
    coherent epoch for [--stats]/[--metrics] reporting). *)

val snapshot : unit -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] — componentwise subtraction. *)

val pp : Format.formatter -> snapshot -> unit

(** {1 Instrumentation points}

    Called by the enumeration and engine hot paths; cheap atomic
    increments. *)

val count_check : unit -> unit
val count_rf : unit -> unit
val count_co : unit -> unit
val add_pruned : int -> unit
val count_toposort : unit -> unit
val add_wall_ns : int -> unit
val count_solve_decision : unit -> unit
val add_solve_propagations : int -> unit
val count_solve_conflict : unit -> unit
val count_solve_nogood : unit -> unit
val count_solve_nogood_hit : unit -> unit
val count_solve_leaf : unit -> unit

val time : (unit -> 'a) -> 'a
(** Run the thunk and add its duration to {!snapshot} [wall_ns] (also
    on exceptions).  Measured on the monotonic clock
    ({!Smem_obs.Clock}), so an NTP step mid-thunk cannot produce a
    negative or skewed reading. *)

(** {1 Differential-fuzzer counters}

    Pass/fail/shrink tallies keyed by oracle name — a machine/model
    soundness pairing such as ["sound:tso"] or a lattice containment
    arrow such as ["sc<=tso"].  Like the search counters they are
    process-global, domain-safe, and cleared by {!reset}. *)

type fuzz = { pass : int; fail : int; shrink_steps : int }

val count_fuzz_pass : string -> unit
val count_fuzz_fail : string -> unit

val add_fuzz_shrink : string -> int -> unit
(** Record [n] accepted shrinking steps for an oracle's counterexample. *)

val fuzz_snapshot : unit -> (string * fuzz) list
(** Every oracle bumped since the last {!reset}, sorted by key. *)

val pp_fuzz : Format.formatter -> (string * fuzz) list -> unit
