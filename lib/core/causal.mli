(** Causal memory (Ahamad, Burns, Hutto, Neiger [3]), §3.5 of the
    paper.

    Like PRAM, views contain own operations plus all writes and there is
    no mutual-consistency requirement, but views must respect the causal
    order [→co = (→po ∪ →wb)+] for some writes-before assignment.  The
    checker existentially quantifies over reads-from maps: for each, the
    induced causal order must be a partial order and every processor
    must admit a legal view respecting it. *)

val views_for :
  History.t -> order:Smem_relation.Rel.t -> (int * int list) list option
(** One legal [By_value] view per processor (own operations plus all
    writes) respecting [order], or [None] when some processor has none.
    Exposed for the constraint-propagation engine's identical leaf
    check. *)

val witness : History.t -> Witness.t option
val check : History.t -> bool
val model : Model.t
