module Bitset = Smem_relation.Bitset
module Rel = Smem_relation.Rel
module Perm = Smem_relation.Perm

type operations = [ `All_ops | `Writes_of_others ]

type mutual =
  [ `No_agreement | `Coherence | `Global_write_order | `Total_agreement ]

type ordering = [ `Po | `Ppo | `Po_loc | `Own_po | `Causal | `Semi_causal ]

let is_dynamic = function `Causal | `Semi_causal -> true | _ -> false

let needs_rf orderings = List.exists is_dynamic orderings

let view_ops h operations proc =
  match operations with
  | `All_ops -> History.all_ops_set h
  | `Writes_of_others -> History.view_ops_writes h proc

let write_po h w1 w2 =
  let o1 = History.op h w1 and o2 = History.op h w2 in
  Op.same_proc o1 o2 && o1.Op.index < o2.Op.index

let chain_rel nops order =
  let rel = Rel.create nops in
  for i = 0 to Array.length order - 2 do
    Rel.add rel order.(i) order.(i + 1)
  done;
  rel

let witness ~operations ~mutual ~orderings h =
  let nops = History.nops h in
  let nprocs = History.nprocs h in
  let found = ref None in
  (* Everything that does not depend on the enumerated (rf, co)
     candidate is hoisted here and computed once per history: the
     shared po/ppo/po-loc relations, the per-view static ordering
     unions, and the view populations.  The old code rebuilt all of it
     inside the Reads_from.iter × Coherence.iter product, once per
     candidate per processor. *)
  let po = lazy (Orders.po h) in
  let ppo = lazy (Orders.ppo h) in
  let po_loc = lazy (Orders.po_loc h) in
  let static_orderings, dynamic_orderings =
    List.partition (fun o -> not (is_dynamic o)) orderings
  in
  let static_order proc =
    let acc = Rel.create nops in
    List.iter
      (fun o ->
        let rel =
          match o with
          | `Po -> Lazy.force po
          | `Ppo -> Lazy.force ppo
          | `Po_loc -> Lazy.force po_loc
          | `Own_po -> Orders.po_of_proc h proc
          | `Causal | `Semi_causal -> assert false
        in
        Rel.union_into ~into:acc rel)
      static_orderings;
    acc
  in
  let view_procs =
    match mutual with
    | `Total_agreement -> [ -1 ]
    | _ -> List.init nprocs Fun.id
  in
  let static_views =
    List.map
      (fun p ->
        let ops =
          if p = -1 then History.all_ops_set h else view_ops h operations p
        in
        (p, ops, static_order p))
      view_procs
  in
  (* The dynamic orderings (causal, semi-causal) are candidate-dependent
     but processor-independent, so they are computed once per candidate
     and unioned into each view's hoisted static order. *)
  let dyn_rel ~rf ~co =
    match dynamic_orderings with
    | [] -> None
    | ds ->
        let acc = Rel.create nops in
        List.iter
          (fun o ->
            let rel =
              match o with
              | `Causal ->
                  Orders.causal_with h ~po:(Lazy.force po) ~rf:(Option.get rf)
              | `Semi_causal ->
                  Orders.sem_with h ~ppo:(Lazy.force ppo) ~rf:(Option.get rf)
                    ~co:(Option.get co)
              | _ -> assert false
            in
            Rel.union_into ~into:acc rel)
          ds;
        Some acc
  in
  let order_for static = function
    | None -> static
    | Some dyn -> Rel.union static dyn
  in
  let engine_a ~rf ~co ~rf_rel ~extra =
    let dyn = dyn_rel ~rf:(Some rf) ~co:(Some co) in
    let views =
      List.map
        (fun (p, ops, static) ->
          { Engine.proc = p; ops; order = order_for static dyn })
        static_views
    in
    match Engine.check h ~rf_rel ~rf ~co ~extra ~views with
    | Some w ->
        found := Some w;
        true
    | None -> false
  in
  let _ : bool =
    match mutual with
    | `No_agreement ->
        (* Independent views: engine B, with reads-from enumeration only
           when an ordering needs it. *)
        let statics = Array.of_list static_views in
        let attempt rf =
          let dyn = dyn_rel ~rf ~co:None in
          let rec go p acc =
            if p = nprocs then begin
              found := Some (Witness.per_proc (List.rev acc) ~notes:[]);
              true
            end
            else
              let _, ops, static = statics.(p) in
              let order = order_for static dyn in
              if not (Rel.acyclic order) then false
              else
                match View.exists h ~ops ~order ~legality:View.By_value with
                | None -> false
                | Some seq -> go (p + 1) ((p, seq) :: acc)
          in
          go 0 []
        in
        if needs_rf orderings then Reads_from.iter h ~f:(fun rf -> attempt (Some rf))
        else attempt None
    | `Coherence | `Total_agreement ->
        let extra = Rel.create nops in
        Reads_from.iter h ~f:(fun rf ->
            let rf_rel = Engine.rf_edges h ~rf in
            Coherence.iter h ~f:(fun co -> engine_a ~rf ~co ~rf_rel ~extra))
    | `Global_write_order ->
        let writes = Array.of_list (History.writes h) in
        Reads_from.iter h ~f:(fun rf ->
            let rf_rel = Engine.rf_edges h ~rf in
            Perm.iter_constrained writes ~precedes:(write_po h) ~f:(fun worder ->
                Stats.count_co ();
                let co = Coherence.of_write_order h worder in
                engine_a ~rf ~co ~rf_rel ~extra:(chain_rel nops worder)))
  in
  !found

let make ~key ~name ?description ~operations ~mutual ~orderings () =
  if mutual = `Total_agreement && operations <> `All_ops then
    invalid_arg "Build.make: total agreement requires all operations in views";
  if List.mem `Semi_causal orderings && mutual = `No_agreement then
    invalid_arg "Build.make: semi-causality needs a coherence witness";
  let description =
    match description with
    | Some d -> d
    | None ->
        Printf.sprintf "composed model: operations=%s, mutual=%s, ordering=%s"
          (match operations with `All_ops -> "all" | `Writes_of_others -> "writes")
          (match mutual with
          | `No_agreement -> "none"
          | `Coherence -> "coherence"
          | `Global_write_order -> "global-writes"
          | `Total_agreement -> "total")
          (String.concat "+"
             (List.map
                (function
                  | `Po -> "po"
                  | `Ppo -> "ppo"
                  | `Po_loc -> "po-loc"
                  | `Own_po -> "own-po"
                  | `Causal -> "causal"
                  | `Semi_causal -> "semi-causal")
                orderings))
  in
  Model.make ~key ~name ~description (witness ~operations ~mutual ~orderings)

let parse_operations = function
  | "all" -> Ok `All_ops
  | "writes" -> Ok `Writes_of_others
  | s -> Error (Printf.sprintf "unknown operation set %S (all | writes)" s)

let parse_mutual = function
  | "none" -> Ok `No_agreement
  | "coherence" -> Ok `Coherence
  | "global-writes" -> Ok `Global_write_order
  | "total" -> Ok `Total_agreement
  | s ->
      Error
        (Printf.sprintf
           "unknown mutual consistency %S (none | coherence | global-writes | total)"
           s)

let parse_ordering = function
  | "po" -> Ok `Po
  | "ppo" -> Ok `Ppo
  | "po-loc" -> Ok `Po_loc
  | "own-po" -> Ok `Own_po
  | "causal" -> Ok `Causal
  | "semi-causal" -> Ok `Semi_causal
  | s ->
      Error
        (Printf.sprintf
           "unknown ordering %S (po | ppo | po-loc | own-po | causal | semi-causal)"
           s)
