(** Engine A: the acyclicity engine.

    For memory models whose mutual-consistency requirement pins down a
    write serialization (a coherence order, a global write order, a
    labeled-operation order), checking a candidate witness reduces to a
    cycle check: build, per processor view, the digraph of all ordering
    obligations — the model's ordering relation, the serialization
    edges, reads-from edges, and the derived {e from-read} edges — and
    accept iff every view's digraph is acyclic.

    Soundness/completeness on a fixed candidate [(rf, co, extra)]: a
    legal view exists iff the digraph is acyclic, because any linear
    extension of an acyclic digraph containing [rf], [fr] and the
    coherence edges places each read immediately within the coherence
    window of its writer, which is exactly legality; conversely a legal
    view is itself a linear extension, so a cycle rules every view
    out. *)

module Bitset = Smem_relation.Bitset
module Rel = Smem_relation.Rel

type view_spec = {
  proc : int;  (** processor this view belongs to; [-1] for a shared view *)
  ops : Bitset.t;  (** operations included in the view *)
  order : Rel.t;  (** the model's ordering requirement (global; restricted here) *)
}

val rf_edges : History.t -> rf:Reads_from.t -> Rel.t
(** [writer r → r] for every read with a non-initial writer. *)

val fr_edges : History.t -> rf:Reads_from.t -> co:Coherence.t -> Rel.t
(** From-read edges: each read precedes every write that is
    coherence-after its writer (every write to the location, when the
    read reads the initial value). *)

val check :
  ?rf_rel:Rel.t ->
  History.t ->
  rf:Reads_from.t ->
  co:Coherence.t ->
  extra:Rel.t ->
  views:view_spec list ->
  Witness.t option
(** Check every view's digraph for acyclicity; on success return a
    witness with a deterministic linear extension per view and the
    committed reads-from assignment attached (certificates embed it).

    [?rf_rel] lets a caller that enumerates coherence orders inside a
    reads-from loop pass [rf_edges h ~rf] computed once per map instead
    of recomputing it for every coherence candidate; it must equal
    [rf_edges h ~rf] and is never mutated. *)
