(** Engine B: direct construction of legal views by memoized search.

    For memory models with {e no} mutual-consistency requirement (PRAM,
    causal memory, local and slow memory) each processor's view is
    independent, so the checker searches directly for a legal sequence
    of the view's operations that respects a required partial order.
    The search appends one operation at a time, maintaining the memory
    contents implied by the prefix; a read is appendable only if it is
    legal at that point.  Failed (placed-set, memory) states are
    memoized, making the search a reachability problem over a product
    automaton rather than a walk of all interleavings.

    Histories must have at most [Sys.int_size - 1] operations (the
    placed set is encoded as one machine word); litmus-scale histories
    are far below that bound.  Larger histories raise the typed
    {!Too_large} — callers that face untrusted input (the serving
    daemon) catch it and answer with a structured error instead of
    dying. *)

module Bitset = Smem_relation.Bitset
module Rel = Smem_relation.Rel

type legality =
  | By_value
      (** A read is legal when the most recent write to its location in
          the prefix (or the initial value [0]) has the read's value. *)
  | By_writer of Reads_from.t
      (** A read is legal when the most recent write to its location is
          exactly the read's assigned writer ({!History.init} meaning
          "no write yet"). *)

exception Too_large of { nops : int; limit : int }
(** Raised by {!exists} when the history exceeds the word-encoded
    search's capacity ([nops >= Sys.int_size]).  A typed exception
    rather than [Invalid_argument]: the serving daemon maps it to a
    [too-large] response code instead of crashing the worker. *)

val exists :
  ?memoize:bool ->
  History.t ->
  ops:Bitset.t ->
  order:Rel.t ->
  legality:legality ->
  int list option
(** [exists h ~ops ~order ~legality] searches for a legal sequence of
    [ops] that is a linear extension of [order] restricted to [ops].
    Returns the sequence found, or [None].

    [memoize] (default [true]) records failed (placed-set, memory)
    states; disabling it degrades the search to plain backtracking over
    interleavings — exposed only so the ablation benchmark can measure
    what the memoization buys (see bench/main.ml). *)
