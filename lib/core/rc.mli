(** Release consistency (Gharachorloo et al. [6]), §3.4 of the paper.

    Operations are split into {e ordinary} and {e labeled}
    (synchronization) accesses; a labeled read is an acquire, a labeled
    write a release.  Views contain the processor's operations plus all
    writes of others (labeled reads of other processors appear in no
    view but their owner's).  The requirements:

    - mutual consistency: coherence (shared per-location write order);
    - the view owner's operations respect its partial program order;
    - the labeled subhistory is sequentially consistent ([RC_sc]) or
      processor consistent ([RC_pc]) — an additional mutual-consistency
      requirement across views;
    - bracketing: an ordinary operation that program-order-follows an
      acquire follows, in every view, the write the acquire read; an
      ordinary operation that program-order-precedes a release precedes
      it in every view.

    Note: the paper's statement of the release condition says the
    ordinary operation "follows" the release; release semantics (and the
    paper's own motivating sentence, "RC ensures that an ordinary
    operation completes before the following release is performed")
    require "precedes", which is what we implement.  See DESIGN.md.

    Scope note: an acquire whose writer is an {e ordinary} write to a
    location that also has labeled writes is rejected (the labeled
    subhistory could not be legal); properly-labeled programs never do
    this. *)

type flavor = Rc_sc | Rc_pc

(** {1 Candidate-space ingredients}

    Exposed so the constraint-propagation engine ([Smem_solve]) builds
    its leaf checks from the {e same} code the enumerator uses — the
    differential guarantee "solver verdict ≡ enumerator verdict" then
    rests on shared definitions rather than a reimplementation. *)

val bracket_edges : History.t -> rf:Reads_from.t -> Smem_relation.Rel.t
(** The §3.4 bracketing edges for a committed reads-from map. *)

val acquire_rf_ok : History.t -> Reads_from.t -> bool
(** Reject maps in which an acquire reads an ordinary write to a
    location that also carries labeled writes. *)

val labeled_seq_legal : History.t -> rf:Reads_from.t -> int array -> bool
(** Legality of a candidate total order on the labeled operations,
    relative to a reads-from map.  Prefix-checkable: the condition at
    each element depends only on the elements before it. *)

val total_order_rel : int -> int array -> Smem_relation.Rel.t
(** All (earlier, later) pairs of a sequence, as a relation over [nops]
    operations. *)

val base_views : History.t -> Engine.view_spec list
(** One view per processor: own operations plus all writes, ordered by
    the owner's partial program order. *)

val witness : flavor -> History.t -> Witness.t option
val check : flavor -> History.t -> bool

val rc_sc : Model.t
val rc_pc : Model.t
