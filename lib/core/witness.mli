(** Witnesses: the per-processor views demonstrating that a history is
    allowed by a model.  A witness is what the paper exhibits when
    arguing an execution is possible (e.g. the [S_{p+w}] sequences given
    for Figures 1–4).

    Beyond the views themselves a witness may carry the existential
    companions the checker committed to — the reads-from assignment and,
    for the selective-synchronization memories, the total order on
    labeled operations.  Certificates ({!Smem_cert}) embed these so an
    independent kernel can re-validate the verdict without re-running
    the search. *)

type t = {
  views : (int * int list) list;
      (** (processor, operation ids in view order), one entry per view;
          a single entry with processor [-1] denotes the shared view of
          sequential consistency (the coherence model uses one [-1]
          entry per location). *)
  rf : (int * int) list;
      (** the reads-from assignment the checker committed to:
          [(read, writer)] per read, writer {!History.init} for the
          initial value.  Empty for models whose view legality is
          by value and whose ordering needs no reads-from map. *)
  sync : int list option;
      (** the total order on labeled operations (RC_sc, weak ordering);
          it cannot be recovered from the views because other
          processors' labeled reads appear in no view. *)
  notes : string list;  (** human-readable facts about the witness *)
}

val shared : ?rf:(int * int) list -> int list -> notes:string list -> t
(** A single shared view (sequential consistency). *)

val per_proc :
  ?rf:(int * int) list ->
  ?sync:int list ->
  (int * int list) list ->
  notes:string list ->
  t

val pp : History.t -> Format.formatter -> t -> unit
