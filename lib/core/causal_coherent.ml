module Rel = Smem_relation.Rel

let witness h =
  let found = ref None in
  let _ : bool =
    Reads_from.iter h ~f:(fun rf ->
        let causal = Orders.causal h ~rf in
        Rel.irreflexive causal
        && Coherence.iter h ~f:(fun co ->
               let order =
                 Rel.transitive_closure (Rel.union causal (Coherence.to_rel co))
               in
               Rel.irreflexive order
               &&
               let rec go p acc =
                 if p = History.nprocs h then begin
                   found :=
                     Some
                       (Witness.per_proc ~rf:(Reads_from.pairs h rf)
                          (List.rev acc) ~notes:[]);
                   true
                 end
                 else
                   match
                     View.exists h ~ops:(History.view_ops_writes h p) ~order
                       ~legality:View.By_value
                   with
                   | None -> false
                   | Some seq -> go (p + 1) ((p, seq) :: acc)
               in
               go 0 []))
  in
  !found

let check h = Option.is_some (witness h)

let model =
  Model.make ~key:"causal-coh" ~name:"Coherent Causal Memory"
    ~description:
      "Causal memory plus coherence (the new memory suggested in the \
       paper's concluding remarks): views respect causal order and agree \
       on a per-location write serialization."
    ~params:
      {
        Model.population = Model.Own_plus_writes;
        ordering = Model.Causal_plus_coherence;
        mutual = Model.Coherence_agreement;
        legality = Model.Value_legal;
      }
    witness
