(** Reads-from maps: the "writes-before" witness of the framework.

    The paper's writes-before order [o1 →wb o2] relates a write to a
    read that returns the value it wrote.  When several writes store the
    same value this assignment is ambiguous, so the checkers
    existentially quantify over {e reads-from maps}: total assignments
    of each read to a candidate writer (a same-location, same-value
    write, or the implicit initial write when the value read is [0]). *)

type t
(** A total assignment from reads to writers.  Writers are operation
    identifiers, or {!History.init} for the initial value. *)

val writer : t -> int -> int
(** [writer rf r] is the id of the write that read [r] reads from, or
    {!History.init}.  [r] must be a read of the underlying history. *)

val reads_from_init : t -> int -> bool

val candidates : History.t -> int -> int list
(** [candidates h r] lists the possible writers for read [r]: every
    write (by any processor, including [r]'s own) to the same location
    with the same value, plus {!History.init} when the value is [0].
    The read itself is never a candidate. *)

val make : History.t -> writer:(int -> int) -> t
(** [make h ~writer] builds the assignment mapping each read [r] of [h]
    to [writer r] (an op id or {!History.init}).  Used by the
    constraint-propagation engine, which decides writers one at a time
    instead of enumerating whole maps. *)

val iter : History.t -> f:(t -> bool) -> bool
(** Enumerate every reads-from map of the history (the cartesian
    product of per-read candidates), calling [f] on each.  Returns
    [true] — stopping early — as soon as [f] accepts, [false] when no
    map is accepted (including when some read has no candidate, i.e.
    the history reads a value nobody wrote). *)

val pairs : History.t -> t -> (int * int) list
(** [(read, writer)] for every read, ascending by read id; the form
    embedded in witnesses and certificates. *)

val wb : History.t -> t -> Smem_relation.Rel.t
(** The writes-before edges [{(writer r, r)}], omitting initial
    writes. *)

val pp : History.t -> Format.formatter -> t -> unit
