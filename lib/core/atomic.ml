module Rel = Smem_relation.Rel

let witness h =
  let order = Rel.union (Orders.po h) (Orders.real_time h) in
  let all = History.all_ops_set h in
  let empty = Rel.create (History.nops h) in
  let found = ref None in
  let _ : bool =
    Reads_from.iter h ~f:(fun rf ->
        Coherence.iter h ~f:(fun co ->
            match
              Engine.check h ~rf ~co ~extra:empty
                ~views:[ { Engine.proc = -1; ops = all; order } ]
            with
            | Some w ->
                found := Some w;
                true
            | None -> false))
  in
  !found

let check h = Option.is_some (witness h)

let model =
  Model.make ~key:"atomic" ~name:"Atomic Memory"
    ~description:
      "Sequential consistency plus real-time precedence: the shared view \
       orders an operation before any operation invoked after its response \
       (Misra 1986; linearizability).  Coincides with SC on histories \
       without timing information."
    ~params:
      {
        Model.population = Model.Shared_all;
        ordering = Model.Po_plus_real_time;
        mutual = Model.No_mutual;
        legality = Model.Writer_legal;
      }
    witness
