module Rel = Smem_relation.Rel

type flags = { ryw : bool; mr : bool; mw : bool; wfr : bool }

let all_flags = { ryw = true; mr = true; mw = true; wfr = true }
let no_flags = { ryw = false; mr = false; mw = false; wfr = false }

let key_of { ryw; mr; mw; wfr } =
  let enabled =
    List.filter_map
      (fun (on, name) -> if on then Some name else None)
      [ (ryw, "ryw"); (mr, "mr"); (mw, "mw"); (wfr, "wfr") ]
  in
  "session(" ^ String.concat "," enabled ^ ")"

(* The guarantees are pairwise axioms over (transitive) program order,
   so every ordered pair of the right kinds contributes an edge — not
   just adjacent ones. *)
let edges h { ryw; mr; mw; wfr } ~rf =
  let r = Rel.create (History.nops h) in
  for p = 0 to History.nprocs h - 1 do
    let ops = History.proc_ops h p in
    let n = Array.length ops in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let o1 = History.op h ops.(i) and o2 = History.op h ops.(j) in
        if
          (ryw && Op.is_write o1 && Op.is_read o2)
          || (mr && Op.is_read o1 && Op.is_read o2)
          || (mw && Op.is_write o1 && Op.is_write o2)
        then Rel.add r o1.Op.id o2.Op.id
      done
    done
  done;
  (match (wfr, rf) with
  | true, Some rf ->
      List.iter
        (fun rd ->
          let w = Reads_from.writer rf rd in
          if w <> History.init then
            let ro = History.op h rd in
            Array.iter
              (fun id ->
                let o' = History.op h id in
                if o'.Op.index > ro.Op.index && Op.is_write o' then
                  Rel.add r w o'.Op.id)
              (History.proc_ops h ro.Op.proc))
        (History.reads h)
  | _ -> ());
  r

let views_for h ~order ~legality =
  let rec go p acc =
    if p = History.nprocs h then Some (List.rev acc)
    else
      match
        View.exists h ~ops:(History.view_ops_writes h p) ~order ~legality
      with
      | None -> None
      | Some seq -> go (p + 1) ((p, seq) :: acc)
  in
  go 0 []

let witness flags h =
  if flags.wfr then begin
    let found = ref None in
    let _ : bool =
      Reads_from.iter h ~f:(fun rf ->
          let order = edges h flags ~rf:(Some rf) in
          Rel.irreflexive order
          &&
          match views_for h ~order ~legality:(View.By_writer rf) with
          | None -> false
          | Some views ->
              found :=
                Some
                  (Witness.per_proc ~rf:(Reads_from.pairs h rf) views
                     ~notes:[ "session guarantees incl. writes-follow-reads" ]);
              true)
    in
    !found
  end
  else
    let order = edges h flags ~rf:None in
    match views_for h ~order ~legality:View.By_value with
    | None -> None
    | Some views -> Some (Witness.per_proc views ~notes:[])

let describe { ryw; mr; mw; wfr } =
  let on b = if b then "on" else "off" in
  Printf.sprintf
    "Session guarantees (Terry et al.): read-your-writes %s, monotonic \
     reads %s, monotonic writes %s, writes-follow-reads %s.  Per-processor \
     views of own operations plus all writes, ordered only by the enabled \
     guarantees."
    (on ryw) (on mr) (on mw) (on wfr)

let instantiate flags =
  Model.make ~key:(key_of flags)
    ~name:("Session Guarantees " ^ key_of flags)
    ~description:(describe flags)
    ~params:
      {
        Model.population = Model.Own_plus_writes;
        ordering =
          Model.Session
            {
              ryw = flags.ryw;
              mr = flags.mr;
              mw = flags.mw;
              wfr = flags.wfr;
            };
        mutual = Model.No_mutual;
        legality = (if flags.wfr then Model.Writer_legal else Model.Value_legal);
      }
    (witness flags)

let exemplar_rm = instantiate { no_flags with ryw = true; mr = true }
let exemplar_all = instantiate all_flags
