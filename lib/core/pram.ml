let witness h =
  let po = Orders.po h in
  let rec views p acc =
    if p = History.nprocs h then
      Some (Witness.per_proc (List.rev acc) ~notes:[])
    else
      match
        View.exists h ~ops:(History.view_ops_writes h p) ~order:po
          ~legality:View.By_value
      with
      | None -> None
      | Some seq -> views (p + 1) ((p, seq) :: acc)
  in
  views 0 []

let check h = Option.is_some (witness h)

let model =
  Model.make ~key:"pram" ~name:"Pipelined RAM"
    ~description:
      "Independent per-processor views of own operations plus all writes, \
       respecting program order only; no mutual consistency."
    ~params:
      {
        Model.population = Model.Own_plus_writes;
        ordering = Model.Program_order;
        mutual = Model.No_mutual;
        legality = Model.Value_legal;
      }
    witness
