module Bitset = Smem_relation.Bitset
module Rel = Smem_relation.Rel

(* One "view" per location containing every access to it; the ordering
   requirement is program order, which restricted to a single location
   is exactly po_loc. *)
let witness h =
  let nops = History.nops h in
  let po = Orders.po h in
  let empty = Rel.create nops in
  let loc_views =
    List.init (History.nlocs h) (fun l ->
        let ops = Bitset.create nops in
        Array.iter
          (fun (o : Op.t) -> if o.Op.loc = l then Bitset.add ops o.Op.id)
          (History.ops h);
        { Engine.proc = -1; ops; order = po })
  in
  let found = ref None in
  let _ : bool =
    Reads_from.iter h ~f:(fun rf ->
        Coherence.iter h ~f:(fun co ->
            match Engine.check h ~rf ~co ~extra:empty ~views:loc_views with
            | Some w ->
                found :=
                  Some
                    {
                      w with
                      Witness.notes =
                        "one serialization per location" :: w.Witness.notes;
                    };
                true
            | None -> false))
  in
  !found

let check h = Option.is_some (witness h)

let model =
  Model.make ~key:"coh" ~name:"Coherence"
    ~description:
      "Each location is sequentially consistent in isolation: a single \
       serialization of all accesses per location, respecting per-location \
       program order."
    ~params:
      {
        Model.population = Model.Per_location;
        ordering = Model.Program_order;
        mutual = Model.No_mutual;
        legality = Model.Writer_legal;
      }
    witness
