type t = {
  views : (int * int list) list;
  rf : (int * int) list;
  sync : int list option;
  notes : string list;
}

let shared ?(rf = []) seq ~notes = { views = [ (-1, seq) ]; rf; sync = None; notes }

let per_proc ?(rf = []) ?sync views ~notes = { views; rf; sync; notes }

let pp h ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (p, seq) ->
      if p < 0 then Format.fprintf ppf "S (shared): %a@," (History.pp_ops h) seq
      else Format.fprintf ppf "S_p%d: %a@," p (History.pp_ops h) seq)
    t.views;
  (match t.sync with
  | Some seq -> Format.fprintf ppf "sync order: %a@," (History.pp_ops h) seq
  | None -> ());
  List.iter (fun note -> Format.fprintf ppf "note: %s@," note) t.notes;
  Format.fprintf ppf "@]"
