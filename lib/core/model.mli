(** A memory model, characterized — as in §4 of the paper — by the set
    of system execution histories it allows.  [witness] decides
    membership and, when the history is allowed, exhibits the processor
    views that demonstrate it. *)

type t = {
  key : string;  (** stable machine-readable identifier, e.g. ["tso"] *)
  name : string;  (** display name, e.g. ["Total Store Ordering"] *)
  description : string;
  witness : History.t -> Witness.t option;
}

val make :
  key:string ->
  name:string ->
  description:string ->
  (History.t -> Witness.t option) ->
  t

val check : t -> History.t -> bool
(** [check m h] — is [h] in the set of histories allowed by [m]?
    Bumps the {!Stats} check counter and accumulates wall time. *)
