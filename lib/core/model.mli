(** A memory model, characterized — as in §4 of the paper — by the set
    of system execution histories it allows.  [witness] decides
    membership and, when the history is allowed, exhibits the processor
    views that demonstrate it.

    A model may additionally declare its {e parameter triple} (§2 of the
    paper): the view population, the ordering requirement, and the
    mutual-consistency requirement, plus the legality discipline its
    views satisfy.  The triple is pure data; the certificate checking
    kernel ({!Smem_cert.Kernel}) re-derives every obligation it names
    from a history alone, without calling the search engine.  A model
    without a triple (the operational TSO replay, composed {!Build}
    models) cannot be certified. *)

type population =
  | Shared_all  (** one view containing every operation (SC, atomic) *)
  | Own_plus_writes
      (** per-processor views of own operations plus all writes
          ([δp = w]: TSO, PC, RC, PRAM, causal, ...) *)
  | Per_location
      (** one shared view per location containing exactly the accesses
          to it (the coherence model) *)
  | Per_proc_block of { blocks : int }
      (** the partition-consistency family (Cheng–Higham–Kawash): one
          view per processor {e per partition block}, holding the
          owner's operations on the block's locations plus every write
          to them.  Locations are partitioned by interned identifier
          modulo [blocks]; one block recovers a PC-G-like model,
          singleton blocks recover coherence. *)
  | Own_plus_updates
      (** per-processor views of own operations plus every {e update} —
          all writes, and the reads that mutate object state (queue
          dequeues).  On register-only histories this coincides with
          {!Own_plus_writes}; it is the population of the
          object-causal family. *)

type ordering =
  | Program_order  (** po (SC, PRAM, PC-G, coherence) *)
  | Partial_program_order  (** ppo — reads bypass earlier writes (TSO) *)
  | Own_program_order  (** the view owner's po only (local) *)
  | Own_po_plus_po_loc  (** owner's po plus everyone's po_loc (slow) *)
  | Po_plus_real_time  (** po plus interval precedence (atomic) *)
  | Causal_order  (** (po ∪ wb)+ for the committed reads-from map *)
  | Causal_plus_coherence  (** (causal ∪ co)+ (coherent causal) *)
  | Semi_causal  (** (ppo ∪ rwb ∪ rrb)+ (PC) *)
  | Own_ppo_bracketed
      (** owner's ppo plus the §3.4 bracketing edges (RC) *)
  | Sync_fences
      (** two-way fences around labeled accesses plus po_loc (WO) *)
  | Session of { ryw : bool; mr : bool; mw : bool; wfr : bool }
      (** the session-guarantee family (Terry et al., via Almeida's
          consistency framework): the selected program-order /
          writes-before projections, transitively closed.  [ryw]
          read-your-writes keeps each processor's own write→read
          program order; [mr] monotonic reads its own read→read order;
          [mw] monotonic writes every processor's write→write order in
          every view; [wfr] writes-follow-reads orders each read's
          writer before the reader's subsequent writes in every view
          (this one commits to a reads-from map, so it forces
          {!Writer_legal}). *)

type mutual =
  | No_mutual
  | Coherence_agreement
      (** all views order each location's writes identically *)
  | Global_write_order  (** all views order {e all} writes identically *)
  | Labeled_sc
      (** coherence plus one legal linear extension of po on labeled
          operations shared by all views (RC_sc) *)
  | Labeled_pc
      (** coherence plus the labeled subhistory's semi-causality
          (RC_pc) *)
  | Labeled_total
      (** one linear extension of po on labeled operations shared by
          all views, with no coherence requirement (weak ordering) *)

type legality =
  | Value_legal
      (** each read returns the value of the most recent write to its
          location in its view (or the initial 0) *)
  | Writer_legal
      (** each read returns exactly its assigned writer: the witness
          commits to a reads-from map *)
  | Object_legal
      (** each view is a legal sequential history of every object per
          its {!Sort}: registers return the most recent write, queues
          are FIFO, counters return the number of prior increments.
          Reads of rf-able sorts (registers, queues) still commit to a
          reads-from map — it seeds the causal order — while counter
          reads carry no reads-from edge. *)

type params = {
  population : population;
  ordering : ordering;
  mutual : mutual;
  legality : legality;
}

type t = {
  key : string;  (** stable machine-readable identifier, e.g. ["tso"] *)
  name : string;  (** display name, e.g. ["Total Store Ordering"] *)
  description : string;
  params : params option;
      (** the paper's parameter triple, when the model is expressible in
          it (drives certificate checking); [None] for operational or
          ad-hoc models *)
  witness : History.t -> Witness.t option;
}

val make :
  key:string ->
  name:string ->
  description:string ->
  ?params:params ->
  (History.t -> Witness.t option) ->
  t

(** {1 Parameter rendering}

    Stable human-and-machine-readable names for the parameter
    dimensions, used by the model catalogue ([smem models], the
    [models] API request) and the documentation. *)

val population_to_string : population -> string
val ordering_to_string : ordering -> string
val mutual_to_string : mutual -> string
val legality_to_string : legality -> string

val params_strings : params -> (string * string) list
(** The quadruple as [(dimension, value)] rows, in the fixed order
    population, ordering, mutual, legality. *)

val check : t -> History.t -> bool
(** [check m h] — is [h] in the set of histories allowed by [m]?
    Bumps the {!Stats} check counter and accumulates wall time.
    Routes through {!witness_of}, so it honours the selected engine. *)

(** {1 Engine selection}

    Two interchangeable witness searches exist: the models' own
    enumeration of rf × co candidates ([Enum], the baseline), and the
    constraint-propagation engine in [Smem_solve] ([Solve]).  The mode
    is process-global and must be set before worker domains spawn; the
    solver registers itself via {!register_solver} (this library cannot
    depend on it).  Models without a parameter triple always fall back
    to their own witness function. *)

type engine = Enum | Solve

val set_engine : engine -> unit
val engine : unit -> engine

val register_solver : (t -> History.t -> Witness.t option) -> unit
(** Install the [Solve] engine's witness function.  Called by
    [Smem_solve.Solve.install]. *)

val witness_of : t -> History.t -> Witness.t option
(** The model's witness through the selected engine: the registered
    solver when the mode is [Solve] and the model has a parameter
    triple, the model's own enumeration otherwise. *)
