module Rel = Smem_relation.Rel

let witness h =
  let po_loc = Orders.po_loc h in
  let rec go p acc =
    if p = History.nprocs h then Some (Witness.per_proc (List.rev acc) ~notes:[])
    else
      let order = Rel.union (Orders.po_of_proc h p) po_loc in
      match
        View.exists h ~ops:(History.view_ops_writes h p) ~order
          ~legality:View.By_value
      with
      | None -> None
      | Some seq -> go (p + 1) ((p, seq) :: acc)
  in
  go 0 []

let check h = Option.is_some (witness h)

let model =
  Model.make ~key:"slow" ~name:"Slow Memory"
    ~description:
      "Independent views respecting the owner's program order and each \
       processor's per-location write order only (Hutto and Ahamad)."
    ~params:
      {
        Model.population = Model.Own_plus_writes;
        ordering = Model.Own_po_plus_po_loc;
        mutual = Model.No_mutual;
        legality = Model.Value_legal;
      }
    witness
