module Rel = Smem_relation.Rel
module Bitset = Smem_relation.Bitset

let block_of_loc ~blocks l = l mod blocks

(* Processor [p]'s view of one partition block: own operations on the
   block's locations plus every write to them. *)
let view_ops h ~in_block p =
  let ops = Bitset.create (History.nops h) in
  Array.iter
    (fun (o : Op.t) ->
      if in_block o.Op.loc && (o.Op.proc = p || Op.is_write o) then
        Bitset.add ops o.Op.id)
    (History.ops h);
  ops

(* The PC-G search specialized per block: one coherence order shared by
   every view (the mutual-consistency requirement), then an independent
   value-legal view per (processor, block).  Deliberately {e no} global
   acyclic(po ∪ co) pre-check — for one block that check is redundant
   (a cycle must pass through a write-only co segment that a legal view
   would linearize anyway), and requiring it globally would break the
   singleton-blocks ≡ coherence extreme. *)
let witness_with h ~block_of ~nblocks =
  let po = Orders.po h in
  let found = ref None in
  let _ : bool =
    Coherence.iter h ~f:(fun co ->
        let order = Rel.union po (Coherence.to_rel co) in
        let rec go p b acc =
          if p = History.nprocs h then begin
            found :=
              Some
                (Witness.per_proc (List.rev acc)
                   ~notes:
                     [ Printf.sprintf "one view per processor per block" ]);
            true
          end
          else if b = nblocks then go (p + 1) 0 acc
          else
            let ops = view_ops h ~in_block:(fun l -> block_of l = b) p in
            if Bitset.is_empty ops then go p (b + 1) acc
            else
              match View.exists h ~ops ~order ~legality:View.By_value with
              | None -> false
              | Some seq -> go p (b + 1) ((p, seq) :: acc)
        in
        go 0 0 [])
  in
  !found

let witness ~blocks h =
  witness_with h ~block_of:(block_of_loc ~blocks) ~nblocks:blocks

let instantiate ~blocks =
  if blocks < 1 then invalid_arg "Pc_part.instantiate: blocks must be >= 1";
  Model.make
    ~key:(Printf.sprintf "pc-part(blocks=%d)" blocks)
    ~name:(Printf.sprintf "Partition Consistency (%d blocks)" blocks)
    ~description:
      (Printf.sprintf
         "Partition consistency over the mod-%d location partition: one \
          view per processor per block (own operations on the block plus \
          all writes to it) respecting program order, all views agreeing \
          on a per-location write serialization (Cheng-Higham-Kawash). \
          One block is PC-G; singleton blocks are coherence."
         blocks)
    ~params:
      {
        Model.population = Model.Per_proc_block { blocks };
        ordering = Model.Program_order;
        mutual = Model.Coherence_agreement;
        legality = Model.Value_legal;
      }
    (witness ~blocks)

let pp_partition blocks =
  String.concat "|" (List.map (String.concat ".") blocks)

let instantiate_named ~partition =
  if List.exists (fun b -> b = []) partition then
    invalid_arg "Pc_part.instantiate_named: empty block";
  let block_of_name name =
    let rec go i = function
      | [] -> None
      | block :: rest -> if List.mem name block then Some i else go (i + 1) rest
    in
    go 0 partition
  in
  let named = List.length partition in
  let witness h =
    (* Unlisted locations fall into singleton blocks of their own. *)
    let nlocs = History.nlocs h in
    let extra = ref 0 in
    let block = Array.make (max nlocs 1) 0 in
    for l = 0 to nlocs - 1 do
      block.(l) <-
        (match block_of_name (History.loc_name h l) with
        | Some b -> b
        | None ->
            incr extra;
            named + !extra - 1)
    done;
    witness_with h ~block_of:(fun l -> block.(l)) ~nblocks:(named + !extra)
  in
  Model.make
    ~key:(Printf.sprintf "pc-part(partition=%s)" (pp_partition partition))
    ~name:"Partition Consistency (named partition)"
    ~description:
      (Printf.sprintf
         "Partition consistency over the explicit location partition %s \
          (unlisted locations get singleton blocks).  Not expressible in \
          the pure parameter triple, so these instances cannot emit \
          certificates."
         (pp_partition partition))
    witness

let exemplar_2 = instantiate ~blocks:2
let exemplar_4 = instantiate ~blocks:4
