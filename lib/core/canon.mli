(** History canonicalization and content digests.

    Every model in {!Registry} is symmetric in processor identities,
    uses location identities only for equality, and uses values only
    for equality within a location — except the distinguished initial
    value [0], which every location implicitly holds (footnote 1 of the
    paper).  Real-time intervals, when present, are part of the
    behavior (the atomic model reads them) and are preserved verbatim.

    Consequently any combination of
    - a permutation of processors,
    - a renaming of locations, and
    - per-location value bijections that fix [0]
    maps a history to one with exactly the same verdict under every
    model.  [canonicalize] picks a distinguished representative of that
    orbit, and [digest] is a stable content hash of it — the cache key
    used by {!Smem_cache}, so that e.g. the store-buffering litmus test
    written with locations [x, y] and the same test written with
    [a, b] hit the same cache entry.

    For histories of at most {!exact_limit} processors the
    representative is exact: the encoding is minimized over all
    processor permutations, so every member of the orbit canonicalizes
    to the same history.  Above the limit a deterministic heuristic
    (sorting rows by a renaming-invariant signature) is used instead;
    it is still idempotent and verdict-preserving — two equivalent
    histories merely aren't {e guaranteed} to collapse to one digest,
    which costs cache hits, never correctness. *)

val exact_limit : int
(** [6] — the processor count up to which the canonical form is
    minimized over all [nprocs!] row permutations. *)

val is_exact : History.t -> bool
(** Whether [canonicalize] is exact (orbit-collapsing) for this
    history, i.e. [nprocs h <= exact_limit]. *)

val canonicalize : History.t -> History.t
(** The canonical representative.  Idempotent; preserves every model's
    verdict; preserves timing intervals.  Locations are renamed to
    [l0, l1, ...] in first-use order and nonzero values to [1, 2, ...]
    in first-use order per location. *)

val encode : History.t -> string
(** Compact textual encoding of [canonicalize h].  Injective on
    canonical histories: [encode a = encode b] iff the canonical forms
    are identical. *)

val digest : History.t -> string
(** Hex MD5 of [encode h] — the stable content digest. *)

val equivalent : History.t -> History.t -> bool
(** [encode a = encode b].  For histories within {!exact_limit} this
    decides orbit equivalence exactly. *)
