(** Data-race detection over sequentially consistent executions — the
    "properly labeled" program condition of §1/§5 made executable.

    The paper's first approach to weak consistency (release consistency,
    weak ordering) promises sequentially consistent behaviour to
    programs that are {e properly labeled}: every pair of conflicting
    accesses that can occur concurrently is made of labeled
    (synchronization) operations.  Following Adve–Hill, we detect races
    on the {e SC} executions of the program: a race is a reachable state
    in which two different threads are both about to access the same
    location, at least one access is a write (or read-modify-write), and
    at least one is ordinary.  Exhaustive exploration of the SC machine
    decides this exactly for our finite-state programs.

    The library's Bakery program with [~labeled:true] is properly
    labeled and therefore safe on the RC_sc machine (§5); with
    [~labeled:false] it races, and the weak machines break it — the
    test suite demonstrates the contrast. *)

type access = {
  thread : int;
  kind : [ `Read | `Write | `Rmw ];
  loc : int;
  labeled : bool;
}

type verdict =
  | Race_free of int  (** no race on any SC execution; states explored *)
  | Race of access * access
      (** a reachable pair of concurrent conflicting accesses with an
          ordinary participant *)
  | State_limit

val access_of_action : int -> Exec.action -> access option
(** The shared-memory access a thread's pending action performs, if
    any ([None] for critical-section markers).  Also used by the DPOR
    explorer to build its dependence relation. *)

val find_race : ?max_states:int -> ?fuel:int -> Ast.program -> verdict
(** Exhaustive race detection over the SC executions of the program. *)

val properly_labeled : ?max_states:int -> Ast.program -> bool
(** [true] iff {!find_race} reports no race ([State_limit] counts as
    not known to be properly labeled, hence [false]). *)

val pp_access : Format.formatter -> access -> unit
