(** Running programs on machines: exhaustive state-space exploration
    with a mutual-exclusion monitor, random scheduling, and history
    recording.

    The exhaustive explorer interleaves thread steps (each advancing one
    visible action) with machine-internal steps, memoizing visited
    (machine, threads) states; it decides whether two threads can be in
    their critical sections simultaneously — exactly the §5 question for
    the Bakery algorithm. *)

type verdict =
  | Safe of int  (** mutual exclusion holds; states explored *)
  | Violation of string list
      (** a schedule reaching two threads in the critical section, as a
          human-readable action trace *)
  | State_limit
      (** exploration hit the state bound — or a thread exhausted its
          local fuel — before finishing: the verdict is bounded, not
          exhaustive *)

val check_mutex :
  ?max_states:int ->
  ?fuel:int ->
  Smem_machine.Machine_sig.machine ->
  Ast.program ->
  verdict
(** Exhaustive check.  [max_states] defaults to 2_000_000; [fuel]
    bounds local computation per scheduling step (default 10_000).
    A thread that runs out of local fuel (a memory-free loop deeper
    than [fuel]) stops that branch and degrades the verdict to
    {!State_limit} rather than raising. *)

type liveness =
  | Deadlock_free of int
      (** from every reachable state some schedule completes all
          threads; states explored *)
  | Stuck of int
      (** number of reachable states from which no schedule terminates
          (spin loops whose exit condition can never become true) *)
  | Liveness_state_limit

val check_deadlock_freedom :
  ?max_states:int ->
  ?fuel:int ->
  Smem_machine.Machine_sig.machine ->
  Ast.program ->
  liveness
(** The paper's §5 recalls that the Bakery algorithm under SC "is free
    from deadlocks": here that is the graph property that every
    reachable state of the program × machine system can still reach the
    all-threads-finished state.  (Freedom from {e starvation} is a
    fairness property outside this explorer's scope.) *)

val run_random :
  ?fuel:int ->
  Smem_machine.Machine_sig.machine ->
  Ast.program ->
  rand:Random.State.t ->
  Smem_core.History.t * bool
(** One random schedule to completion.  Returns the history of memory
    operations performed and whether mutual exclusion was violated
    during the run. *)

val to_verdict :
  machine:string -> subject:string -> verdict -> Smem_api.Verdict.t
(** The exploration verdict as a shared API verdict answering the
    question [mutual-exclusion]: {e is a violation observable?}  So
    [Safe] maps to [Forbidden] (with the explored state count),
    [Violation] to [Allowed] (with the trace as notes), and
    [State_limit] to an undecided [None] status. *)
