(** Running programs on machines: exhaustive state-space exploration
    with a mutual-exclusion monitor, random scheduling, and history
    recording.

    The exhaustive explorer interleaves thread steps (each advancing one
    visible action) with machine-internal steps, memoizing visited
    (machine, threads) states; it decides whether two threads can be in
    their critical sections simultaneously — exactly the §5 question for
    the Bakery algorithm. *)

type verdict =
  | Safe of int  (** mutual exclusion holds; states explored *)
  | Violation of string list
      (** a schedule reaching two threads in the critical section, as a
          human-readable action trace *)
  | State_limit
      (** exploration hit the state bound — or a thread exhausted its
          local fuel — before finishing: the verdict is bounded, not
          exhaustive *)

val check_mutex :
  ?max_states:int ->
  ?max_transitions:int ->
  ?fuel:int ->
  Smem_machine.Machine_sig.machine ->
  Ast.program ->
  verdict
(** Exhaustive check, backed by the partial-order-reduced explorer
    ({!Dpor.check_mutex_stats}); the verdict matches the naive
    enumeration but [Safe] reports the (much smaller) reduced state
    count.  [max_states] defaults to 2_000_000, [max_transitions] to
    20_000_000; [fuel] bounds local computation per scheduling step
    (default 10_000).  A thread that runs out of local fuel (a
    memory-free loop deeper than [fuel]) stops that branch and degrades
    the verdict to {!State_limit} rather than raising. *)

val check_mutex_stats :
  ?max_states:int ->
  ?max_transitions:int ->
  ?fuel:int ->
  Smem_machine.Machine_sig.machine ->
  Ast.program ->
  verdict * Dpor.stats
(** {!check_mutex} plus the reduction counters ([smem mutex --stats]). *)

val check_mutex_naive :
  ?max_states:int ->
  ?max_transitions:int ->
  ?fuel:int ->
  Smem_machine.Machine_sig.machine ->
  Ast.program ->
  verdict * int
(** The unreduced enumerator: every enabled transition of every
    reachable state, memoized on states.  Returns the verdict and the
    number of explored transitions (edges traversed, revisits
    included) — the differential oracle for {!check_mutex} and the
    anchor for the pinned state/transition-count regression tests.
    [State_limit] now also fires when [max_transitions] edges have been
    traversed, so the budget accounts for work done, not just distinct
    states. *)

type liveness =
  | Deadlock_free of int
      (** from every reachable state some schedule completes all
          threads; states explored *)
  | Stuck of int
      (** number of reachable states from which no schedule terminates
          (spin loops whose exit condition can never become true) *)
  | Liveness_state_limit

val check_deadlock_freedom :
  ?max_states:int ->
  ?fuel:int ->
  Smem_machine.Machine_sig.machine ->
  Ast.program ->
  liveness
(** The paper's §5 recalls that the Bakery algorithm under SC "is free
    from deadlocks": here that is the graph property that every
    reachable state of the program × machine system can still reach the
    all-threads-finished state.  (Freedom from {e starvation} is a
    fairness property outside this explorer's scope.) *)

val run_random :
  ?fuel:int ->
  ?max_steps:int ->
  Smem_machine.Machine_sig.machine ->
  Ast.program ->
  rand:Random.State.t ->
  Smem_core.History.t * bool
(** One random schedule to completion — or to [max_steps] scheduling
    steps (default 100_000), whichever comes first.  The cap matters
    on cyclic programs: a spin loop over a stale copy that no pending
    internal step will refresh makes the unbounded walk diverge (the
    truncated trace is still a valid history).  Returns the history of
    memory operations performed and whether mutual exclusion was
    violated during the run. *)

val to_verdict :
  machine:string -> subject:string -> verdict -> Smem_api.Verdict.t
(** The exploration verdict as a shared API verdict answering the
    question [mutual-exclusion]: {e is a violation observable?}  So
    [Safe] maps to [Forbidden] (with the explored state count),
    [Violation] to [Allowed] (with the trace as notes), and
    [State_limit] to an undecided [None] status. *)
