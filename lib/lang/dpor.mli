(** Partial-order-reduced exploration of Lang programs (DESIGN §12).

    Two reducers over the machine × threads product automaton share one
    conservative dependence relation built from {!Races.access}:

    - {!check_mutex_stats} checks mutual exclusion on cyclic programs
      with ample-singleton persistent sets, sleep sets, covering-based
      state memoization and the stack proviso.  It preserves the
      verdict of {!Explore.check_mutex}, not the reachable state set
      (exploration stops once every thread has finished).
    - {!fold_traces} enumerates the maximal executions of a loop-free
      program, one representative per Mazurkiewicz trace class up to
      the dependence relation.  The corpus generator uses it as a
      semantic history deduplicator; with [~reduced:false] it is the
      naive full-interleaving enumerator the differential tests compare
      against.

    Internal machine steps (buffer flushes, deliveries) form a
    pseudo-process that is never reduced or slept: every internal
    successor is always expanded, and its dependence with thread
    accesses is approximated via
    {!Smem_machine.Machine_sig.MACHINE.internal_locs} and
    {!Smem_machine.Machine_sig.MACHINE.write_depends_on_internal}. *)

type verdict = Safe of int | Violation of string list | State_limit

type stats = {
  states : int;  (** distinct states expanded *)
  transitions : int;  (** transitions executed (threads + internal) *)
  ample_hits : int;  (** states expanded through a singleton ample set *)
  full_expansions : int;  (** states where every enabled transition ran *)
  sleep_skips : int;  (** transitions pruned by sleep sets *)
  covering_skips : int;  (** revisits pruned by the covering rule *)
  proviso_fallbacks : int;  (** ample choices vetoed by the stack proviso *)
  env_deferrals : int;
      (** states where the whole delivery lattice was postponed because
          every thread's next access was independent of the pending
          internal work *)
  enter_prunes : int;
      (** states cut off because no thread can ever enter a critical
          section again, so no violation lies ahead *)
}

val pp_stats : Format.formatter -> stats -> unit

val digest_key : 'a -> Digest.t
(** MD5 of the [Marshal] image of an immutable value: a constant-size
    hash-table key for deep (machine × threads) states.  [Hashtbl.hash]
    only samples a bounded prefix of the structure, so large buffered
    machine states collide en masse and bucket scans turn quadratic;
    digesting the whole value keeps lookups O(1).  Only sound for keys
    compared structurally (no functions, no cycles). *)

val check_mutex_stats :
  ?max_states:int ->
  ?max_transitions:int ->
  ?fuel:int ->
  Smem_machine.Machine_sig.machine ->
  Ast.program ->
  verdict * stats
(** Reduced exhaustive check of mutual exclusion.  [Safe n] reports the
    number of distinct states the {e reduced} search expanded (a lower
    bound on the full product automaton); [Violation trace] is a
    concrete interleaving ending in two threads inside the critical
    section; [State_limit] means a state, transition or fuel budget was
    hit first. *)

val loop_free : Ast.program -> bool
(** No [While] loop anywhere ([For] is bounded and allowed): the
    program's state space is acyclic and {!fold_traces} accepts it. *)

val fold_traces :
  ?reduced:bool ->
  ?max_transitions:int ->
  ?fuel:int ->
  Smem_machine.Machine_sig.machine ->
  Ast.program ->
  init:'a ->
  f:('a -> Smem_core.History.t * Exec.Env.t array -> 'a) ->
  ('a, string) result
(** Fold [f] over the maximal executions of a loop-free program on the
    given machine.  Each execution yields the history of its
    memory operations (read-modify-writes recorded as the labeled
    writes they perform, critical-section markers omitted) and the
    final register environments.  With [reduced] (default), sleep-set
    DPOR explores one interleaving per trace class: the multiset of
    emitted pairs shrinks but their {e set} is exactly that of the
    naive enumeration ([~reduced:false]), which is how the qcheck
    differential suite exercises it.  [Error _] on programs with
    [While] loops, on local-fuel exhaustion, and when more than
    [max_transitions] transitions have been executed. *)
